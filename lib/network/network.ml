module Vec = Simgen_base.Vec

type node_id = int

type kind = Pi of int | Gate of Truth_table.t

type node = { kind : kind; fanins : node_id array; name : string option }

type t = {
  mutable net_name : string;
  nodes : node Vec.t;
  mutable pi_ids : node_id list;  (* reversed *)
  mutable po_list : (node_id * string option) list;  (* reversed *)
  mutable fanout_cache : node_id list array option;
  mutable level_cache : int array option;
}

let dummy_node = { kind = Pi (-1); fanins = [||]; name = None }

let create ?(name = "network") () =
  {
    net_name = name;
    nodes = Vec.create ~dummy:dummy_node ();
    pi_ids = [];
    po_list = [];
    fanout_cache = None;
    level_cache = None;
  }

let name t = t.net_name
let set_name t s = t.net_name <- s

let num_nodes t = Vec.length t.nodes

(* Every mutator funnels through here: both derived-data caches go stale
   together, so a stale cache can only be observed through [Unsafe]. *)
let invalidate t =
  t.fanout_cache <- None;
  t.level_cache <- None

let add_pi ?name t =
  let id = num_nodes t in
  let idx = List.length t.pi_ids in
  Vec.push t.nodes { kind = Pi idx; fanins = [||]; name };
  t.pi_ids <- id :: t.pi_ids;
  invalidate t;
  id

let add_gate ?name t f fanins =
  if Truth_table.nvars f <> Array.length fanins then
    invalid_arg "Network.add_gate: arity mismatch";
  let id = num_nodes t in
  Array.iter
    (fun fi ->
      if fi < 0 || fi >= id then invalid_arg "Network.add_gate: bad fanin")
    fanins;
  Vec.push t.nodes { kind = Gate f; fanins; name };
  invalidate t;
  id

let add_const t b = add_gate t (Truth_table.create_const 0 b) [||]

let add_po ?name t id =
  if id < 0 || id >= num_nodes t then invalid_arg "Network.add_po";
  t.po_list <- (id, name) :: t.po_list

let num_pis t = List.length t.pi_ids
let num_pos t = List.length t.po_list
let num_gates t = num_nodes t - num_pis t

let node t id =
  if id < 0 || id >= num_nodes t then invalid_arg "Network: bad node id";
  Vec.get t.nodes id

let kind t id = (node t id).kind
let fanins t id = (node t id).fanins

let func t id =
  match (node t id).kind with
  | Gate f -> f
  | Pi _ -> invalid_arg "Network.func: primary input"

let is_pi t id = match (node t id).kind with Pi _ -> true | Gate _ -> false

let pis t = Array.of_list (List.rev t.pi_ids)
let pos t = Array.of_list (List.rev_map fst t.po_list)

let po_name t i =
  let arr = Array.of_list (List.rev t.po_list) in
  snd arr.(i)

let node_name t id = (node t id).name

let build_fanouts t =
  let fo = Array.make (num_nodes t) [] in
  for id = num_nodes t - 1 downto 0 do
    Array.iter (fun fi -> fo.(fi) <- id :: fo.(fi)) (node t id).fanins
  done;
  t.fanout_cache <- Some fo;
  fo

let fanouts t id =
  let fo = match t.fanout_cache with Some fo -> fo | None -> build_fanouts t in
  fo.(id)

let num_fanouts t id = List.length (fanouts t id)

let iter_nodes t f =
  for id = 0 to num_nodes t - 1 do
    f id
  done

let iter_gates t f =
  iter_nodes t (fun id -> if not (is_pi t id) then f id)

let eval t pi_values =
  if Array.length pi_values <> num_pis t then invalid_arg "Network.eval";
  let vals = Array.make (num_nodes t) false in
  iter_nodes t (fun id ->
      match (node t id).kind with
      | Pi idx -> vals.(id) <- pi_values.(idx)
      | Gate f ->
          let ins = Array.map (fun fi -> vals.(fi)) (node t id).fanins in
          vals.(id) <- Truth_table.eval f ins);
  vals

let eval_pos t pi_values =
  let vals = eval t pi_values in
  Array.map (fun id -> vals.(id)) (pos t)

let compute_levels t =
  let levels = Array.make (num_nodes t) 0 in
  iter_gates t (fun id ->
      let fanins = (node t id).fanins in
      if Array.length fanins > 0 then begin
        let m = Array.fold_left (fun acc fi -> max acc levels.(fi)) 0 fanins in
        levels.(id) <- m + 1
      end);
  levels

let levels t =
  match t.level_cache with
  | Some ls -> ls
  | None ->
      let ls = compute_levels t in
      t.level_cache <- Some ls;
      ls

let cached_levels t = t.level_cache

let max_fanin_arity t =
  let m = ref 0 in
  iter_nodes t (fun id -> m := max !m (Array.length (node t id).fanins));
  !m

let copy t =
  let t' = create ~name:t.net_name () in
  iter_nodes t (fun id ->
      let n = node t id in
      let id' =
        match n.kind with
        | Pi _ -> add_pi ?name:n.name t'
        | Gate f -> add_gate ?name:n.name t' f (Array.copy n.fanins)
      in
      assert (id' = id));
  List.iter (fun (id, name) -> add_po ?name t' id) (List.rev t.po_list);
  t'

let pp_stats fmt t =
  Format.fprintf fmt "%s: %d PIs, %d POs, %d gates, max arity %d" t.net_name
    (num_pis t) (num_pos t) (num_gates t) (max_fanin_arity t)

module Unsafe = struct
  let set_fanins t id fanins =
    let n = node t id in
    Vec.set t.nodes id { n with fanins };
    invalidate t

  let set_level_cache t levels = t.level_cache <- Some levels
end
