let compute net = Array.copy (Network.levels net)

let depth net =
  let levels = Network.levels net in
  Array.fold_left (fun acc id -> max acc levels.(id)) 0 (Network.pos net)
