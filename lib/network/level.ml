let compute net =
  let levels = Array.make (Network.num_nodes net) 0 in
  Network.iter_gates net (fun id ->
      let fanins = Network.fanins net id in
      if Array.length fanins > 0 then begin
        let m = Array.fold_left (fun acc fi -> max acc levels.(fi)) 0 fanins in
        levels.(id) <- m + 1
      end);
  levels

let depth net =
  let levels = compute net in
  Array.fold_left (fun acc id -> max acc levels.(id)) 0 (Network.pos net)
