(** NPN canonical forms of truth tables.

    Two functions are NPN-equivalent when one becomes the other under
    input Negation, input Permutation and output Negation. Canonical
    forms let function caches (row covers, LUT structure libraries) share
    entries across all equivalent LUTs — the same trick cut-rewriting
    libraries use.

    For up to {!exact_limit} inputs the canonical form is exact (the
    minimum over the full NPN orbit); above it a greedy semi-canonical
    form is used, which is still invariant enough to serve as a cache key
    but may distinguish some equivalent functions. *)

type transform = {
  perm : int array;  (** new position of each input *)
  input_neg : bool array;
  output_neg : bool;
}

val exact_limit : int
(** 4: orbits are enumerated exhaustively up to this arity. *)

val apply : Truth_table.t -> transform -> Truth_table.t
(** Apply a transform: negate inputs, permute, negate output. *)

val canonical : Truth_table.t -> Truth_table.t * transform
(** The canonical representative and a transform carrying the input
    function onto it. *)

val canonical_key : Truth_table.t -> Truth_table.t
(** Just the representative (the cache key). *)

val equivalent : Truth_table.t -> Truth_table.t -> bool
(** NPN equivalence — exact up to {!exact_limit} inputs, sound but
    incomplete above (may answer [false] for equivalent functions). *)
