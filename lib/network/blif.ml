module Srcloc = Simgen_base.Srcloc

exception Parse_error of Srcloc.t * string

let () =
  Printexc.register_printer (function
    | Parse_error (loc, msg) ->
        Some
          (match Srcloc.to_string loc with
           | Some at -> Printf.sprintf "BLIF parse error: %s: %s" at msg
           | None -> Printf.sprintf "BLIF parse error: %s" msg)
    | _ -> None)

let fail_at loc fmt = Printf.ksprintf (fun s -> raise (Parse_error (loc, s))) fmt

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type raw_gate = {
  output : string;
  inputs : string list;
  rows : (string * char) list;
  def_line : int;  (* the .names line, for post-parse diagnostics *)
}

let tokenize_lines text =
  (* Strip comments, join continuation lines, split into token lists.
     Every surviving logical line keeps the 1-based number of its first
     physical line, so errors point into the actual source. *)
  let lines = String.split_on_char '\n' text in
  let cleaned =
    List.map
      (fun line ->
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line)
      lines
  in
  let joined = ref [] in
  let pending = Buffer.create 64 in
  let pending_line = ref 0 in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if Buffer.length pending = 0 then pending_line := i + 1;
      if String.length line > 0 && line.[String.length line - 1] = '\\' then
        Buffer.add_string pending (String.sub line 0 (String.length line - 1) ^ " ")
      else begin
        Buffer.add_string pending line;
        joined := (!pending_line, Buffer.contents pending) :: !joined;
        Buffer.clear pending
      end)
    cleaned;
  if Buffer.length pending > 0 then
    joined := (!pending_line, Buffer.contents pending) :: !joined;
  List.rev_map
    (fun (line_no, line) ->
      ( line_no,
        String.split_on_char ' ' line |> List.filter (fun s -> s <> "") ))
    !joined
  |> List.filter (fun (_, toks) -> toks <> [])

let parse_string ?file text =
  let floc = Srcloc.make ?file () in
  let loc line = Srcloc.with_line floc line in
  let model = ref "blif" in
  let inputs = ref [] and outputs = ref [] in
  let gates = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some g -> gates := { g with rows = List.rev g.rows } :: !gates
    | None -> ()
  in
  let lines = tokenize_lines text in
  List.iter
    (fun (line_no, toks) ->
      let fail fmt = fail_at (loc line_no) fmt in
      match toks with
      | ".model" :: rest ->
          (match rest with m :: _ -> model := m | [] -> ())
      | ".inputs" :: rest -> inputs := !inputs @ rest
      | ".outputs" :: rest -> outputs := !outputs @ rest
      | ".names" :: rest ->
          flush ();
          (match List.rev rest with
           | out :: rev_ins ->
               current :=
                 Some
                   {
                     output = out;
                     inputs = List.rev rev_ins;
                     rows = [];
                     def_line = line_no;
                   }
           | [] -> fail ".names without signals")
      | ".end" :: _ -> flush (); current := None
      | ".latch" :: _ -> fail "sequential BLIF (.latch) not supported"
      | tok :: _ when String.length tok > 0 && tok.[0] = '.' ->
          (* Ignore other directives (.default_input_arrival etc.) *)
          ()
      | [ pat; out ] ->
          (match !current with
           | Some g when out = "0" || out = "1" ->
               current := Some { g with rows = (pat, out.[0]) :: g.rows }
           | Some _ -> fail "bad cover row %s %s" pat out
           | None -> fail "cover row outside .names")
      | [ out ] when out = "0" || out = "1" ->
          (match !current with
           | Some g ->
               if g.inputs <> [] then fail "row arity mismatch in %s" g.output;
               current := Some { g with rows = ("", out.[0]) :: g.rows }
           | None -> fail "cover row outside .names")
      | _ -> fail "unrecognized line: %s" (String.concat " " toks))
    lines;
  flush ();
  let gates = List.rev !gates in
  (* Build the network: PIs first, then gates in dependency order. *)
  let net = Network.create ~name:!model () in
  let ids : (string, Network.node_id) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun pi ->
      if Hashtbl.mem ids pi then fail_at floc "duplicate input %s" pi;
      Hashtbl.replace ids pi (Network.add_pi ~name:pi net))
    !inputs;
  let by_output = Hashtbl.create 64 in
  List.iter
    (fun g ->
      if Hashtbl.mem by_output g.output then
        fail_at (loc g.def_line) "signal %s defined twice" g.output;
      Hashtbl.replace by_output g.output g)
    gates;
  let building = Hashtbl.create 16 in
  let rec instantiate signal =
    match Hashtbl.find_opt ids signal with
    | Some id -> id
    | None ->
        let g =
          match Hashtbl.find_opt by_output signal with
          | Some g -> g
          | None -> fail_at floc "undefined signal %s" signal
        in
        if Hashtbl.mem building signal then
          fail_at (loc g.def_line) "combinational loop at %s" signal;
        Hashtbl.replace building signal ();
        let fanins = Array.of_list (List.map instantiate g.inputs) in
        let f = cover_to_table (loc g.def_line) (List.length g.inputs) g.rows in
        let id = Network.add_gate ~name:g.output net f fanins in
        Hashtbl.remove building signal;
        Hashtbl.replace ids signal id;
        id
  and cover_to_table at n rows =
    match rows with
    | [] -> Truth_table.create_const n false
    | (_, polarity) :: _ ->
        if not (List.for_all (fun (_, p) -> p = polarity) rows) then
          fail_at at "mixed on-set and off-set rows";
        let cube_of pat =
          if String.length pat <> n then fail_at at "row width mismatch";
          let lits =
            Array.init n (fun i ->
                match pat.[i] with
                | '1' -> Cube.T
                | '0' -> Cube.F
                | '-' -> Cube.DC
                | c -> fail_at at "bad cover character %c" c)
          in
          Cube.make lits (polarity = '1')
        in
        let union =
          List.fold_left
            (fun acc (pat, _) ->
              Truth_table.or_ acc (Cube.to_truth_table n (cube_of pat)))
            (Truth_table.create_const n false)
            rows
        in
        if polarity = '1' then union else Truth_table.not_ union
  in
  List.iter
    (fun out -> Network.add_po ~name:out net (instantiate out))
    !outputs;
  (* Also instantiate gates never reached from an output so that parsing is
     lossless for analysis purposes. *)
  List.iter (fun g -> ignore (instantiate g.output)) gates;
  net

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string ~file:path s

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let signal_names net =
  let used = Hashtbl.create 64 in
  let names = Array.make (Network.num_nodes net) "" in
  (* Output signals are always written as po<i>. A node may carry that
     name only when it drives that very PO (then its defining block IS
     the output definition and no buffer is emitted); any other node
     named po<i> must be renamed, or the buffer line emitted for the PO
     would define the signal twice. This is what keeps
     write -> parse -> write a fixpoint: the buffer gates materialized
     by the parser get their po<i> names back instead of spawning a
     fresh buffer per round trip. *)
  let po_driver = Hashtbl.create 16 in
  Array.iteri
    (fun i id ->
      let n = Printf.sprintf "po%d" i in
      if not (Hashtbl.mem po_driver n) then Hashtbl.add po_driver n id)
    (Network.pos net);
  let stolen name id =
    match Hashtbl.find_opt po_driver name with
    | Some driver -> driver <> id
    | None -> false
  in
  Network.iter_nodes net (fun id ->
      let base =
        match Network.node_name net id with
        | Some n when (not (Hashtbl.mem used n)) && not (stolen n id) -> n
        | _ -> Printf.sprintf "n%d" id
      in
      let rec fresh candidate k =
        if Hashtbl.mem used candidate then fresh (Printf.sprintf "%s_%d" base k) (k + 1)
        else candidate
      in
      let n = fresh base 0 in
      Hashtbl.replace used n ();
      names.(id) <- n);
  names

let to_string net =
  let buf = Buffer.create 4096 in
  let names = signal_names net in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" (Network.name net));
  let pis = Network.pis net in
  Buffer.add_string buf ".inputs";
  Array.iter (fun id -> Buffer.add_string buf (" " ^ names.(id))) pis;
  Buffer.add_char buf '\n';
  let pos = Network.pos net in
  Buffer.add_string buf ".outputs";
  Array.iteri
    (fun i _ -> Buffer.add_string buf (Printf.sprintf " po%d" i))
    pos;
  Buffer.add_char buf '\n';
  Network.iter_gates net (fun id ->
      let fanins = Network.fanins net id in
      Buffer.add_string buf ".names";
      Array.iter (fun fi -> Buffer.add_string buf (" " ^ names.(fi))) fanins;
      Buffer.add_string buf (" " ^ names.(id));
      Buffer.add_char buf '\n';
      let f = Network.func net id in
      (match Truth_table.is_const f with
       | Some false -> ()  (* no rows: constant 0 *)
       | Some true ->
           let pat = String.make (Array.length fanins) '-' in
           if pat = "" then Buffer.add_string buf "1\n"
           else Buffer.add_string buf (pat ^ " 1\n")
       | None ->
           List.iter
             (fun (c : Cube.t) ->
               let pat =
                 String.init (Array.length fanins) (fun i ->
                     match c.Cube.lits.(i) with
                     | Cube.T -> '1'
                     | Cube.F -> '0'
                     | Cube.DC -> '-')
               in
               Buffer.add_string buf (pat ^ " 1\n"))
             (Isop.cover f)));
  Array.iteri
    (fun i id ->
      (* Buffer each PO so outputs always have a defining .names — except
         when the driver already carries the output's name, in which case
         its own block is the definition and a buffer would redefine it. *)
      if names.(id) <> Printf.sprintf "po%d" i then
        Buffer.add_string buf
          (Printf.sprintf ".names %s po%d\n1 1\n" names.(id) i))
    pos;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc
