module TT = Truth_table

type transform = {
  perm : int array;
  input_neg : bool array;
  output_neg : bool;
}

let exact_limit = 4

let identity n =
  { perm = Array.init n Fun.id; input_neg = Array.make n false; output_neg = false }

let apply tt tr =
  let n = TT.nvars tt in
  if Array.length tr.perm <> n then invalid_arg "Npn.apply";
  (* Negate selected inputs first (swap cofactors), then permute, then
     negate the output. *)
  let negated =
    let acc = ref tt in
    Array.iteri
      (fun i neg ->
        if neg then begin
          (* f with input i negated: swap the two cofactors. *)
          let f0 = TT.cofactor !acc i false and f1 = TT.cofactor !acc i true in
          let xi = TT.var i n in
          acc := TT.or_ (TT.and_ xi f0) (TT.and_ (TT.not_ xi) f1)
        end)
      tr.input_neg;
    !acc
  in
  let permuted = TT.permute negated tr.perm in
  if tr.output_neg then TT.not_ permuted else permuted

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) xs in
          List.map (fun p -> x :: p) (permutations rest))
        xs

let all_transforms n =
  let perms = permutations (List.init n Fun.id) in
  let masks = List.init (1 lsl n) Fun.id in
  List.concat_map
    (fun perm ->
      List.concat_map
        (fun mask ->
          let input_neg = Array.init n (fun i -> (mask lsr i) land 1 = 1) in
          List.map
            (fun output_neg ->
              { perm = Array.of_list perm; input_neg; output_neg })
            [ false; true ])
        masks)
    perms

(* Cache the transform lists: they only depend on the arity. *)
let transform_cache = Hashtbl.create 8

let transforms_for n =
  match Hashtbl.find_opt transform_cache n with
  | Some ts -> ts
  | None ->
      let ts = all_transforms n in
      Hashtbl.replace transform_cache n ts;
      ts

let exact_canonical tt =
  let best = ref (apply tt (identity (TT.nvars tt))) in
  let best_tr = ref (identity (TT.nvars tt)) in
  List.iter
    (fun tr ->
      let candidate = apply tt tr in
      if TT.compare candidate !best < 0 then begin
        best := candidate;
        best_tr := tr
      end)
    (transforms_for (TT.nvars tt));
  (!best, !best_tr)

(* Greedy semi-canonical form for wider functions: normalise the output
   polarity by the on-set count, each input's polarity by its positive
   cofactor weight, and sort inputs by (cofactor weight, index pattern). *)
let greedy_canonical tt =
  let n = TT.nvars tt in
  let ones = TT.count_ones tt in
  let total = 1 lsl n in
  let output_neg = 2 * ones > total in
  let tt0 = if output_neg then TT.not_ tt else tt in
  let input_neg =
    Array.init n (fun i ->
        let pos = TT.count_ones (TT.cofactor tt0 i true) in
        let neg = TT.count_ones (TT.cofactor tt0 i false) in
        pos > neg)
  in
  let tt1 =
    apply tt0
      { perm = Array.init n Fun.id; input_neg; output_neg = false }
  in
  (* Sort inputs by their positive-cofactor weight (stable by index). *)
  let weights =
    Array.init n (fun i -> (TT.count_ones (TT.cofactor tt1 i true), i))
  in
  Array.sort compare weights;
  let perm = Array.make n 0 in
  Array.iteri (fun rank (_, original) -> perm.(original) <- rank) weights;
  let tr = { perm; input_neg; output_neg } in
  (apply tt tr, tr)

let canonical tt =
  if TT.nvars tt <= exact_limit then exact_canonical tt else greedy_canonical tt

let canonical_key tt = fst (canonical tt)

let equivalent a b =
  TT.nvars a = TT.nvars b && TT.equal (canonical_key a) (canonical_key b)
