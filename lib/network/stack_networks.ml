let append_copy result net ~feeders =
  (* Instantiate one copy of [net] inside [result]; PI [i] of the copy is
     driven by [feeders.(i)] when available, otherwise by a fresh PI.
     Returns the result-ids of the copy's POs. *)
  let map = Array.make (Network.num_nodes net) (-1) in
  Network.iter_nodes net (fun id ->
      match Network.kind net id with
      | Network.Pi idx ->
          map.(id) <-
            (if idx < Array.length feeders then feeders.(idx)
             else Network.add_pi result)
      | Network.Gate f ->
          let fanins = Array.map (fun fi -> map.(fi)) (Network.fanins net id) in
          map.(id) <- Network.add_gate result f fanins);
  Array.map (fun id -> map.(id)) (Network.pos net)

let stack net k =
  if k < 1 then invalid_arg "Stack_networks.stack";
  let result =
    Network.create ~name:(Printf.sprintf "%s_x%d" (Network.name net) k) ()
  in
  let n_pis = Network.num_pis net in
  let rec go i feeders =
    let pos = append_copy result net ~feeders in
    if i = k then Array.iter (fun id -> Network.add_po result id) pos
    else begin
      (* Surplus POs that do not feed the next copy become stack POs. *)
      if Array.length pos > n_pis then
        Array.iteri (fun j id -> if j >= n_pis then Network.add_po result id) pos;
      go (i + 1) pos
    end
  in
  go 1 [||];
  (* The copies were spliced through the raw mutators above; force the
     level cache so consumers (sweepers read levels at creation) start
     from a fresh computation rather than anything stale. *)
  ignore (Network.levels result);
  result

let putontop = stack
