(** Truth tables over a fixed number of input variables.

    A table over [n] variables stores [2^n] bits, bit [i] giving the output
    for the input minterm whose variable [k] equals bit [k] of [i]. Tables
    support up to {!max_vars} variables and are the canonical node-function
    representation of the Boolean-network substrate: every LUT in a mapped
    network carries one. *)

type t

val max_vars : int
(** 16: ample for K-LUT mapping (K = 6 in the paper's flow) and for BLIF
    nodes of moderate width. *)

val nvars : t -> int

val create_const : int -> bool -> t
(** [create_const n b] is the constant-[b] function of [n] variables. *)

val var : int -> int -> t
(** [var i n] is the projection of variable [i] among [n] variables. *)

val of_bits : int -> int64 -> t
(** [of_bits n bits] builds a table over [n <= 6] variables from the low
    [2^n] bits of [bits]. *)

val get_bit : t -> int -> bool
(** [get_bit t m] is the output on minterm [m]. *)

val eval : t -> bool array -> bool
(** [eval t inputs] with [Array.length inputs = nvars t]. *)

(** Pointwise connectives. Arguments must have equal [nvars]. *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val is_const : t -> bool option
(** [Some b] if the table is the constant [b], else [None]. *)

val cofactor : t -> int -> bool -> t
(** [cofactor t i b] fixes variable [i] to [b]; the result keeps the same
    [nvars] (variable [i] becomes irrelevant). *)

val depends_on : t -> int -> bool
(** Whether the function actually depends on variable [i]. *)

val support : t -> int list
(** Indices of variables the function depends on, ascending. *)

val count_ones : t -> int
(** Number of satisfied minterms. *)

val swap_adjacent : t -> int -> t
(** [swap_adjacent t i] exchanges the roles of variables [i] and [i+1]. *)

val permute : t -> int array -> t
(** [permute t p] renames variable [i] to [p.(i)]; [p] must be a permutation
    of [0 .. nvars-1]. *)

val expand : t -> int -> t
(** [expand t n] reinterprets [t] over [n >= nvars t] variables (the new
    high variables are don't-cares). *)

val of_minterms : int -> int list -> t
(** Table over [n] variables that is true exactly on the given minterms. *)

val random : Simgen_base.Rng.t -> int -> t
(** Uniformly random table over [n] variables. *)

val to_string : t -> string
(** Bit string, minterm [2^n - 1] first (matching common LUT notation). *)

val of_string : string -> t
(** Inverse of {!to_string}; the length must be a power of two. *)

val pp : Format.formatter -> t -> unit
