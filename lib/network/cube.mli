(** Ternary cubes: one "row" of a node's truth table with don't-cares.

    A cube over [n] inputs assigns each input [F] (0), [T] (1) or [DC]
    (unassigned / don't-care) and carries the output value the row produces.
    Cubes are the unit SimGen's implication and decision steps work on
    (paper §4 and §5). *)

type lit = F | T | DC

type t = { lits : lit array; out : bool }

val make : lit array -> bool -> t

val ninputs : t -> int

val dc_size : t -> int
(** Equation (1) of the paper: the number of don't-care inputs. *)

val num_assigned : t -> int
(** Inputs the cube fixes ([ninputs - dc_size]). *)

val matches_minterm : t -> int -> bool
(** Whether the minterm (bit [i] = value of input [i]) lies in the cube. *)

val eval_lits : bool array -> t -> bool
(** Whether a complete input assignment lies in the cube. *)

val to_truth_table : int -> t -> Truth_table.t
(** Characteristic function of the cube's input set over [n] variables. *)

val to_string : t -> string
(** E.g. ["1-0 -> 1"]. *)

val pp : Format.formatter -> t -> unit

val lit_equal : lit -> lit -> bool
