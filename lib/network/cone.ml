(* Traversals use explicit stacks: stacked benchmark networks (§6.4) can be
   deep enough to overflow the OCaml call stack with naive recursion. *)

let fanin_cone_many net targets =
  let seen = Array.make (Network.num_nodes net) false in
  let order = ref [] in
  let stack = ref [] in
  let push id = if not seen.(id) then stack := `Enter id :: !stack in
  List.iter (fun id -> stack := `Enter id :: !stack) (List.rev targets);
  let rec loop () =
    match !stack with
    | [] -> ()
    | `Exit id :: rest ->
        stack := rest;
        order := id :: !order;
        loop ()
    | `Enter id :: rest ->
        stack := rest;
        if not seen.(id) then begin
          seen.(id) <- true;
          stack := `Exit id :: !stack;
          let fanins = Network.fanins net id in
          for i = Array.length fanins - 1 downto 0 do
            push fanins.(i)
          done
        end;
        loop ()
  in
  loop ();
  List.rev !order

let fanin_cone net target = fanin_cone_many net [ target ]

let cone_pis net target =
  List.filter (Network.is_pi net) (fanin_cone net target)

let member_mask net ids =
  let mask = Array.make (Network.num_nodes net) false in
  List.iter (fun id -> mask.(id) <- true) ids;
  mask

let fanout_cone net target =
  let seen = Array.make (Network.num_nodes net) false in
  let acc = ref [] in
  let stack = ref [ target ] in
  let rec loop () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if not seen.(id) then begin
          seen.(id) <- true;
          acc := id :: !acc;
          List.iter (fun fo -> stack := fo :: !stack) (Network.fanouts net id)
        end;
        loop ()
  in
  loop ();
  List.rev !acc
