(** BLIF reader and writer (Berkeley Logic Interchange Format, the
    combinational subset: [.model], [.inputs], [.outputs], [.names],
    [.end]). Sufficient to exchange LUT networks with ABC-style tools. *)

exception Parse_error of string

val parse_string : string -> Network.t
val parse_file : string -> Network.t

val to_string : Network.t -> string
val write_file : string -> Network.t -> unit
