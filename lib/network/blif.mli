(** BLIF reader and writer (Berkeley Logic Interchange Format, the
    combinational subset: [.model], [.inputs], [.outputs], [.names],
    [.end]). Sufficient to exchange LUT networks with ABC-style tools. *)

exception Parse_error of Simgen_base.Srcloc.t * string
(** Malformed input, located as precisely as the reader can: cover rows
    and directives carry their line; elaboration errors (undefined or
    twice-defined signals, combinational loops) point at the offending
    [.names] definition. *)

val parse_string : ?file:string -> string -> Network.t
(** [file] only labels {!Parse_error} locations; the string is the input. *)

val parse_file : string -> Network.t

val to_string : Network.t -> string
val write_file : string -> Network.t -> unit
