(** Node levels: length of the longest path from any PI (paper §2.1). *)

val compute : Network.t -> int array
(** Level of every node, indexed by id. PIs and constants have level 0.
    Backed by the network's level cache ({!Network.levels}); the returned
    array is a private copy the caller owns. *)

val depth : Network.t -> int
(** Maximum level over the POs (0 for a network without gates). *)
