(** Fanin cones and transitive-fanin traversals (paper §2.1).

    The DFS node list of a target's fanin cone is the working set of
    SimGen's Algorithm 1 ([listDfs]). *)

val fanin_cone : Network.t -> Network.node_id -> Network.node_id list
(** All nodes that can reach the target through fanin edges, including the
    target itself, in DFS post-order (fanins before the target). *)

val fanin_cone_many : Network.t -> Network.node_id list -> Network.node_id list
(** Union of fanin cones, each node listed once, fanins first. *)

val cone_pis : Network.t -> Network.node_id -> Network.node_id list
(** Primary inputs inside the target's fanin cone. *)

val member_mask : Network.t -> Network.node_id list -> bool array
(** Characteristic array over all node ids of a node list. *)

val fanout_cone : Network.t -> Network.node_id -> Network.node_id list
(** All nodes reachable from the target through fanout edges, including the
    target. *)
