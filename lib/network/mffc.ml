let compute net root =
  if Network.is_pi net root then []
  else begin
    let in_mffc = Hashtbl.create 16 in
    Hashtbl.replace in_mffc root ();
    (* A PO tap is an external use: a path from the node to a PO that does
       not pass through the root, even when every gate fanout stays inside
       the cone. *)
    let po_tapped = Hashtbl.create 8 in
    Array.iter (fun po -> Hashtbl.replace po_tapped po ()) (Network.pos net);
    (* Fanin cone in fanins-first order; visiting it in reverse puts every
       node after all of its fanouts that lie in the cone, so the
       "all fanouts already in the MFFC" test is well-defined. *)
    let cone = Cone.fanin_cone net root in
    let rev = List.rev cone in
    List.iter
      (fun id ->
        if id <> root && not (Network.is_pi net id)
           && not (Hashtbl.mem po_tapped id)
        then
          let fos = Network.fanouts net id in
          if fos <> [] && List.for_all (Hashtbl.mem in_mffc) fos then
            Hashtbl.replace in_mffc id ())
      rev;
    List.filter (Hashtbl.mem in_mffc) cone
  end

let leaves net members =
  let mask = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace mask id ()) members;
  List.filter
    (fun id ->
      not
        (Array.exists (Hashtbl.mem mask) (Network.fanins net id)))
    members

let depth net levels root =
  match compute net root with
  | [] -> 0.0
  | members ->
      let lvs = leaves net members in
      let root_level = levels.(root) in
      let total =
        List.fold_left
          (fun acc leaf -> acc + (root_level - levels.(leaf)))
          0 lvs
      in
      float_of_int total /. float_of_int (List.length lvs)

type cache = {
  net : Network.t;
  levels : int array;
  depths : (Network.node_id, float) Hashtbl.t;
}

let cache net = { net; levels = Level.compute net; depths = Hashtbl.create 256 }

let cached_depth c id =
  match Hashtbl.find_opt c.depths id with
  | Some d -> d
  | None ->
      let d = depth c.net c.levels id in
      Hashtbl.replace c.depths id d;
      d
