type t = { nvars : int; words : int64 array }
(* Invariant: bits beyond 2^nvars in the last word are zero. *)

let max_vars = 16

let nvars t = t.nvars

let nbits n = 1 lsl n
let nwords n = if n <= 6 then 1 else 1 lsl (n - 6)

let last_mask n =
  if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (nbits n)) 1L

let normalize t =
  let w = t.words in
  let last = Array.length w - 1 in
  w.(last) <- Int64.logand w.(last) (last_mask t.nvars);
  t

let check_nvars n =
  if n < 0 || n > max_vars then invalid_arg "Truth_table: nvars out of range"

let create_const n b =
  check_nvars n;
  let fill = if b then -1L else 0L in
  normalize { nvars = n; words = Array.make (nwords n) fill }

(* Standard per-word variable patterns for variables 0..5. *)
let var_pattern = function
  | 0 -> 0xAAAAAAAAAAAAAAAAL
  | 1 -> 0xCCCCCCCCCCCCCCCCL
  | 2 -> 0xF0F0F0F0F0F0F0F0L
  | 3 -> 0xFF00FF00FF00FF00L
  | 4 -> 0xFFFF0000FFFF0000L
  | 5 -> 0xFFFFFFFF00000000L
  | _ -> assert false

let var i n =
  check_nvars n;
  if i < 0 || i >= n then invalid_arg "Truth_table.var";
  let words = Array.make (nwords n) 0L in
  if i < 6 then Array.fill words 0 (Array.length words) (var_pattern i)
  else begin
    (* Word w holds minterms [w*64, w*64+63]; variable i is bit (i-6) of w. *)
    let bit = i - 6 in
    for w = 0 to Array.length words - 1 do
      if (w lsr bit) land 1 = 1 then words.(w) <- -1L
    done
  end;
  normalize { nvars = n; words }

let of_bits n bits =
  check_nvars n;
  if n > 6 then invalid_arg "Truth_table.of_bits: nvars > 6";
  normalize { nvars = n; words = [| bits |] }

let get_bit t m =
  if m < 0 || m >= nbits t.nvars then invalid_arg "Truth_table.get_bit";
  let w = m lsr 6 and b = m land 63 in
  Int64.logand (Int64.shift_right_logical t.words.(w) b) 1L = 1L

let eval t inputs =
  if Array.length inputs <> t.nvars then invalid_arg "Truth_table.eval";
  let m = ref 0 in
  for i = 0 to t.nvars - 1 do
    if inputs.(i) then m := !m lor (1 lsl i)
  done;
  get_bit t !m

let map2 f a b =
  if a.nvars <> b.nvars then invalid_arg "Truth_table: arity mismatch";
  normalize { nvars = a.nvars; words = Array.map2 f a.words b.words }

let not_ a =
  normalize { nvars = a.nvars; words = Array.map Int64.lognot a.words }

let and_ a b = map2 Int64.logand a b
let or_ a b = map2 Int64.logor a b
let xor a b = map2 Int64.logxor a b

let equal a b = a.nvars = b.nvars && a.words = b.words
let compare a b = Stdlib.compare (a.nvars, a.words) (b.nvars, b.words)

let hash t =
  Array.fold_left
    (fun acc w ->
      (acc * 1000003) lxor Int64.to_int w lxor (Int64.to_int (Int64.shift_right_logical w 32)))
    t.nvars t.words

let is_const t =
  let all_zero = Array.for_all (fun w -> w = 0L) t.words in
  if all_zero then Some false
  else
    let ones = create_const t.nvars true in
    if t.words = ones.words then Some true else None

let cofactor t i b =
  if i < 0 || i >= t.nvars then invalid_arg "Truth_table.cofactor";
  let words = Array.copy t.words in
  if i < 6 then begin
    let p = var_pattern i in
    let shift = 1 lsl i in
    for w = 0 to Array.length words - 1 do
      let x = words.(w) in
      words.(w) <-
        (if b then
           let hi = Int64.logand x p in
           Int64.logor hi (Int64.shift_right_logical hi shift)
         else
           let lo = Int64.logand x (Int64.lognot p) in
           Int64.logor lo (Int64.shift_left lo shift))
    done
  end
  else begin
    (* Copy the selected half of the word array over the other half. *)
    let bit = i - 6 in
    let stride = 1 lsl bit in
    for w = 0 to Array.length words - 1 do
      let selected = (w lsr bit) land 1 = if b then 1 else 0 in
      if not selected then
        words.(w) <- words.(if b then w + stride else w - stride)
    done
  end;
  normalize { nvars = t.nvars; words }

let depends_on t i =
  not (equal (cofactor t i true) (cofactor t i false))

let support t =
  List.filter (depends_on t) (List.init t.nvars Fun.id)

let count_ones t =
  let popcount x =
    let c = ref 0 in
    let x = ref x in
    while !x <> 0L do
      c := !c + Int64.to_int (Int64.logand !x 1L);
      x := Int64.shift_right_logical !x 1
    done;
    !c
  in
  Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let of_minterms n ms =
  check_nvars n;
  let words = Array.make (nwords n) 0L in
  List.iter
    (fun m ->
      if m < 0 || m >= nbits n then invalid_arg "Truth_table.of_minterms";
      let w = m lsr 6 and b = m land 63 in
      words.(w) <- Int64.logor words.(w) (Int64.shift_left 1L b))
    ms;
  normalize { nvars = n; words }

(* Rebuild from the semantic function; simple and adequate for the rare
   structural operations (swap, permute, expand). *)
let tabulate n f =
  check_nvars n;
  let words = Array.make (nwords n) 0L in
  for m = 0 to nbits n - 1 do
    if f m then begin
      let w = m lsr 6 and b = m land 63 in
      words.(w) <- Int64.logor words.(w) (Int64.shift_left 1L b)
    end
  done;
  normalize { nvars = n; words }

let swap_adjacent t i =
  if i < 0 || i + 1 >= t.nvars then invalid_arg "Truth_table.swap_adjacent";
  tabulate t.nvars (fun m ->
      let bi = (m lsr i) land 1 and bj = (m lsr (i + 1)) land 1 in
      let m' = m land lnot ((1 lsl i) lor (1 lsl (i + 1))) in
      let m' = m' lor (bj lsl i) lor (bi lsl (i + 1)) in
      get_bit t m')

let permute t p =
  if Array.length p <> t.nvars then invalid_arg "Truth_table.permute";
  tabulate t.nvars (fun m ->
      (* Minterm m assigns value of variable p.(i) from source variable i:
         build the source minterm whose bit i is bit p.(i) of m. *)
      let src = ref 0 in
      for i = 0 to t.nvars - 1 do
        if (m lsr p.(i)) land 1 = 1 then src := !src lor (1 lsl i)
      done;
      get_bit t !src)

let expand t n =
  if n < t.nvars then invalid_arg "Truth_table.expand";
  if n = t.nvars then t
  else tabulate n (fun m -> get_bit t (m land (nbits t.nvars - 1)))

let random rng n =
  check_nvars n;
  let words = Array.init (nwords n) (fun _ -> Simgen_base.Rng.int64 rng) in
  normalize { nvars = n; words }

let to_string t =
  String.init (nbits t.nvars) (fun i ->
      if get_bit t (nbits t.nvars - 1 - i) then '1' else '0')

let of_string s =
  let len = String.length s in
  let n =
    let rec log2 k acc = if k = 1 then acc else log2 (k / 2) (acc + 1) in
    if len = 0 || len land (len - 1) <> 0 then
      invalid_arg "Truth_table.of_string: length not a power of two"
    else log2 len 0
  in
  tabulate n (fun m ->
      match s.[len - 1 - m] with
      | '1' -> true
      | '0' -> false
      | _ -> invalid_arg "Truth_table.of_string: bad character")

let pp fmt t = Format.fprintf fmt "%d'%s" t.nvars (to_string t)
