type lit = F | T | DC

type t = { lits : lit array; out : bool }

let make lits out = { lits; out }

let ninputs c = Array.length c.lits

let dc_size c =
  Array.fold_left (fun acc l -> if l = DC then acc + 1 else acc) 0 c.lits

let num_assigned c = ninputs c - dc_size c

let matches_minterm c m =
  let ok = ref true in
  Array.iteri
    (fun i l ->
      let bit = (m lsr i) land 1 = 1 in
      match l with
      | DC -> ()
      | T -> if not bit then ok := false
      | F -> if bit then ok := false)
    c.lits;
  !ok

let eval_lits inputs c =
  let ok = ref true in
  Array.iteri
    (fun i l ->
      match l with
      | DC -> ()
      | T -> if not inputs.(i) then ok := false
      | F -> if inputs.(i) then ok := false)
    c.lits;
  !ok

let to_truth_table n c =
  let acc = ref (Truth_table.create_const n true) in
  Array.iteri
    (fun i l ->
      match l with
      | DC -> ()
      | T -> acc := Truth_table.and_ !acc (Truth_table.var i n)
      | F -> acc := Truth_table.and_ !acc (Truth_table.not_ (Truth_table.var i n)))
    c.lits;
  !acc

let to_string c =
  let body =
    String.init (ninputs c) (fun i ->
        match c.lits.(i) with T -> '1' | F -> '0' | DC -> '-')
  in
  Printf.sprintf "%s -> %c" body (if c.out then '1' else '0')

let pp fmt c = Format.pp_print_string fmt (to_string c)

let lit_equal (a : lit) (b : lit) = a = b
