(** ISCAS / ITC'99 ".bench" reader and writer (combinational subset:
    INPUT, OUTPUT, AND/NAND/OR/NOR/XOR/XNOR/NOT/BUF gate assignments). *)

exception Parse_error of string

val parse_string : string -> Network.t
val parse_file : string -> Network.t

val to_string : Network.t -> string
(** Writes every gate as a LUT-style assignment using primitive gates when
    the node function is one, otherwise decomposes through its ISOP cover
    into AND/OR/NOT primitives. *)

val write_file : string -> Network.t -> unit
