(** ISCAS / ITC'99 ".bench" reader and writer (combinational subset:
    INPUT, OUTPUT, AND/NAND/OR/NOR/XOR/XNOR/NOT/BUF gate assignments). *)

exception Parse_error of Simgen_base.Srcloc.t * string
(** Malformed input with the offending line when known; elaboration errors
    (unknown gate, loop, double definition) point at the defining
    assignment. *)

val parse_string : ?file:string -> string -> Network.t
(** [file] only labels {!Parse_error} locations; the string is the input. *)

val parse_file : string -> Network.t

val to_string : Network.t -> string
(** Writes every gate as a LUT-style assignment using primitive gates when
    the node function is one, otherwise decomposes through its ISOP cover
    into AND/OR/NOT primitives. *)

val write_file : string -> Network.t -> unit
