(** Network stacking, equivalent to ABC's [&putontop] (paper §6.4).

    [stack net k] chains [k] copies of [net]: the POs of copy [i] drive the
    PIs of copy [i+1]. When a copy has more POs than PIs the surplus POs
    become POs of the stack; when it has more PIs than POs the missing PIs
    become fresh stack PIs. The result scales depth (and SAT hardness)
    roughly [k]-fold while keeping the node functions of the original. *)

val stack : Network.t -> int -> Network.t
(** Requires [k >= 1]; [stack net 1] is a plain copy. The result's level
    cache is recomputed before returning, so stacking can never leave a
    stale annotation behind. *)

val putontop : Network.t -> int -> Network.t
(** ABC-style alias of {!stack}. *)
