module Srcloc = Simgen_base.Srcloc

exception Parse_error of Srcloc.t * string

let () =
  Printexc.register_printer (function
    | Parse_error (loc, msg) ->
        Some
          (match Srcloc.to_string loc with
           | Some at -> Printf.sprintf "BENCH parse error: %s: %s" at msg
           | None -> Printf.sprintf "BENCH parse error: %s" msg)
    | _ -> None)

let fail_at loc fmt = Printf.ksprintf (fun s -> raise (Parse_error (loc, s))) fmt

let fail fmt = fail_at Srcloc.none fmt

(* ------------------------------------------------------------------ *)
(* Primitive gate functions                                            *)
(* ------------------------------------------------------------------ *)

let gate_table ?(at = Srcloc.none) name arity =
  let fail fmt = fail_at at fmt in
  let module TT = Truth_table in
  let all_and =
    let rec go i acc =
      if i >= arity then acc else go (i + 1) (TT.and_ acc (TT.var i arity))
    in
    go 0 (TT.create_const arity true)
  in
  let all_or =
    let rec go i acc =
      if i >= arity then acc else go (i + 1) (TT.or_ acc (TT.var i arity))
    in
    go 0 (TT.create_const arity false)
  in
  let all_xor =
    let rec go i acc =
      if i >= arity then acc else go (i + 1) (TT.xor acc (TT.var i arity))
    in
    go 0 (TT.create_const arity false)
  in
  match String.uppercase_ascii name with
  | "AND" -> all_and
  | "NAND" -> TT.not_ all_and
  | "OR" -> all_or
  | "NOR" -> TT.not_ all_or
  | "XOR" -> all_xor
  | "XNOR" -> TT.not_ all_xor
  | "NOT" | "INV" ->
      if arity <> 1 then fail "NOT with arity %d" arity;
      TT.not_ (TT.var 0 1)
  | "BUF" | "BUFF" ->
      if arity <> 1 then fail "BUF with arity %d" arity;
      TT.var 0 1
  | g -> fail "unknown gate %s" g

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type raw = { gate : string; inputs : string list; def_line : int }

let parse_string ?file text =
  let floc = Srcloc.make ?file () in
  let loc line = Srcloc.with_line floc line in
  let inputs = ref [] and outputs = ref [] in
  let defs : (string, raw) Hashtbl.t = Hashtbl.create 64 in
  let def_order = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      let fail fmt = fail_at (loc line_no) fmt in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then begin
        let upper = String.uppercase_ascii line in
        let inside l =
          match (String.index_opt l '(', String.rindex_opt l ')') with
          | Some i, Some j when j > i -> String.trim (String.sub l (i + 1) (j - i - 1))
          | _ -> fail "malformed line: %s" line
        in
        if String.length upper >= 6 && String.sub upper 0 6 = "INPUT(" then
          inputs := inside line :: !inputs
        else if String.length upper >= 7 && String.sub upper 0 7 = "OUTPUT(" then
          outputs := inside line :: !outputs
        else
          match String.index_opt line '=' with
          | None -> fail "malformed line: %s" line
          | Some eq ->
              let lhs = String.trim (String.sub line 0 eq) in
              let rhs = String.sub line (eq + 1) (String.length line - eq - 1) in
              let rhs = String.trim rhs in
              let op =
                match String.index_opt rhs '(' with
                | Some i -> String.trim (String.sub rhs 0 i)
                | None -> fail "malformed rhs: %s" rhs
              in
              let args =
                inside rhs |> String.split_on_char ','
                |> List.map String.trim
                |> List.filter (fun s -> s <> "")
              in
              if Hashtbl.mem defs lhs then fail "signal %s defined twice" lhs;
              Hashtbl.replace defs lhs
                { gate = op; inputs = args; def_line = line_no };
              def_order := lhs :: !def_order
      end)
    lines;
  let net = Network.create ~name:"bench" () in
  let ids = Hashtbl.create 64 in
  List.iter
    (fun pi ->
      if not (Hashtbl.mem ids pi) then
        Hashtbl.replace ids pi (Network.add_pi ~name:pi net))
    (List.rev !inputs);
  let building = Hashtbl.create 16 in
  let rec instantiate signal =
    match Hashtbl.find_opt ids signal with
    | Some id -> id
    | None ->
        let raw =
          match Hashtbl.find_opt defs signal with
          | Some r -> r
          | None -> fail_at floc "undefined signal %s" signal
        in
        if Hashtbl.mem building signal then
          fail_at (loc raw.def_line) "loop at %s" signal;
        Hashtbl.replace building signal ();
        let fanins = Array.of_list (List.map instantiate raw.inputs) in
        let f = gate_table ~at:(loc raw.def_line) raw.gate (Array.length fanins) in
        let id = Network.add_gate ~name:signal net f fanins in
        Hashtbl.remove building signal;
        Hashtbl.replace ids signal id;
        id
  in
  List.iter (fun out -> Network.add_po ~name:out net (instantiate out)) (List.rev !outputs);
  List.iter (fun s -> ignore (instantiate s)) (List.rev !def_order);
  net

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string ~file:path s

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let recognize_primitive f =
  let module TT = Truth_table in
  let n = TT.nvars f in
  if n = 0 then None
  else
    let candidates =
      [ "AND"; "NAND"; "OR"; "NOR"; "XOR"; "XNOR" ]
      @ (if n = 1 then [ "NOT"; "BUF" ] else [])
    in
    List.find_opt (fun g -> TT.equal (gate_table g n) f) candidates

let to_string net =
  let buf = Buffer.create 4096 in
  let names = Array.make (Network.num_nodes net) "" in
  Network.iter_nodes net (fun id -> names.(id) <- Printf.sprintf "n%d" id);
  Array.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" names.(id)))
    (Network.pis net);
  Array.iteri
    (fun i _ -> Buffer.add_string buf (Printf.sprintf "OUTPUT(po%d)\n" i))
    (Network.pos net);
  let fresh =
    let k = ref 0 in
    fun () -> incr k; Printf.sprintf "t%d" !k
  in
  let emit name op args =
    Buffer.add_string buf
      (Printf.sprintf "%s = %s(%s)\n" name op (String.concat ", " args))
  in
  Network.iter_gates net (fun id ->
      let f = Network.func net id in
      let fanins = Network.fanins net id in
      let args = Array.to_list (Array.map (fun fi -> names.(fi)) fanins) in
      match Truth_table.is_const f with
      | Some b ->
          (* Constants: encode through a vacuous XOR/XNOR on the first PI if
             one exists, else leave as a self-buffer convention. *)
          let pi0 =
            match Array.to_list (Network.pis net) with
            | pi :: _ -> names.(pi)
            | [] -> fail "cannot serialize constants without PIs"
          in
          emit names.(id) (if b then "XNOR" else "XOR") [ pi0; pi0 ]
      | None ->
          (match recognize_primitive f with
           | Some g -> emit names.(id) g args
           | None ->
               (* Decompose through the ISOP cover: OR of ANDs of literals. *)
               let cube_signal (c : Cube.t) =
                 let lits = ref [] in
                 Array.iteri
                   (fun i l ->
                     match l with
                     | Cube.DC -> ()
                     | Cube.T -> lits := names.(fanins.(i)) :: !lits
                     | Cube.F ->
                         let t = fresh () in
                         emit t "NOT" [ names.(fanins.(i)) ];
                         lits := t :: !lits)
                   c.Cube.lits;
                 match !lits with
                 | [] -> fail "tautology cube in non-constant function"
                 | [ single ] -> single
                 | many ->
                     let t = fresh () in
                     emit t "AND" (List.rev many);
                     t
               in
               let terms = List.map cube_signal (Isop.cover f) in
               (match terms with
                | [ single ] -> emit names.(id) "BUF" [ single ]
                | many -> emit names.(id) "OR" many)));
  Array.iteri
    (fun i id -> emit (Printf.sprintf "po%d" i) "BUF" [ names.(id) ])
    (Network.pos net);
  Buffer.contents buf

let write_file path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc
