(** Irredundant sum-of-products covers (Minato–Morreale ISOP).

    SimGen's implication and decision procedures iterate over "truth table
    rows", i.e. a cube cover of the node function. We compute an irredundant
    cover of the on-set and of the off-set so that don't-cares are maximal —
    exactly the DCs the heuristic of §5 prefers to keep unassigned. *)

val cover : Truth_table.t -> Cube.t list
(** Cubes with [out = true] covering exactly the on-set of the function.
    Constant functions yield a single all-DC cube ([true]) or no cube
    ([false]). *)

val rows : Truth_table.t -> Cube.t list
(** On-set cubes (out = true) followed by off-set cubes (out = false): the
    complete row set of the node's "truth table with don't-cares". *)

val cover_to_truth_table : int -> Cube.t list -> Truth_table.t
(** Union of the given cubes' input sets (ignores [out]); used by tests to
    verify [cover f] reconstructs [f]. *)
