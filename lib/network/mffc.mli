(** Maximum Fanout-Free Cones (paper §2.1, used by the §5 decision
    heuristic).

    The MFFC of a node [n] is the largest subset of its fanin cone such that
    every path from a member node to a PO passes through [n]. Gates inside
    the MFFC feed only [n]'s logic, so value assignments there cannot
    conflict with propagations from other outputs. *)

val compute : Network.t -> Network.node_id -> Network.node_id list
(** Members of the MFFC rooted at the node (gates only, root included),
    fanins-first order. A PI argument yields the empty list. A node tapped
    as a primary output is never an interior member: the PO is an external
    observation of its value. *)

val leaves : Network.t -> Network.node_id list -> Network.node_id list
(** Members with no fanin inside the cone — the first cone nodes met on any
    PI-to-cone path. For the singleton cone this is the root itself. *)

val depth : Network.t -> int array -> Network.node_id -> float
(** Equation (2): average over the MFFC's leaves of
    [level(root) - level(leaf)], given precomputed levels. A PI (empty
    MFFC) has depth [0.]. *)

type cache

val cache : Network.t -> cache
(** Memoizes per-node MFFC depths against a fixed network/level snapshot. *)

val cached_depth : cache -> Network.node_id -> float
