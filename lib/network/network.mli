(** Boolean networks: DAGs of single-output logic nodes (paper §2.1).

    A network is a mutable table of nodes indexed by dense integer ids.
    Nodes are primary inputs or gates; a gate carries a {!Truth_table.t}
    over its fanins. Primary outputs designate existing nodes. Gates must be
    added in topological order (fanins before fanouts), which every
    construction path in this repository guarantees. *)

type node_id = int

type kind =
  | Pi of int  (** primary input with its PI index *)
  | Gate of Truth_table.t  (** logic node; arity = [Array.length fanins] *)

type t

val create : ?name:string -> unit -> t

val name : t -> string
val set_name : t -> string -> unit

val add_pi : ?name:string -> t -> node_id
val add_const : t -> bool -> node_id
(** A zero-input gate with a constant function. *)

val add_gate : ?name:string -> t -> Truth_table.t -> node_id array -> node_id
(** [add_gate t f fanins] requires [Truth_table.nvars f = Array.length fanins]
    and every fanin id already present. *)

val add_po : ?name:string -> t -> node_id -> unit

val num_nodes : t -> int
(** Total nodes (PIs + gates). Ids are [0 .. num_nodes - 1]. *)

val num_pis : t -> int
val num_pos : t -> int
val num_gates : t -> int

val kind : t -> node_id -> kind
val fanins : t -> node_id -> node_id array
val func : t -> node_id -> Truth_table.t
(** @raise Invalid_argument on a PI. *)

val is_pi : t -> node_id -> bool
val pis : t -> node_id array
val pos : t -> node_id array
val po_name : t -> int -> string option
val node_name : t -> node_id -> string option

val fanouts : t -> node_id -> node_id list
(** Gate ids that use the node as a fanin (computed lazily, cached, and
    invalidated on mutation). *)

val num_fanouts : t -> node_id -> int

val iter_nodes : t -> (node_id -> unit) -> unit
(** All nodes in id (= topological) order. *)

val iter_gates : t -> (node_id -> unit) -> unit

val eval : t -> bool array -> bool array
(** [eval t pi_values] simulates one input vector scalar-ly and returns the
    value of every node, indexed by id. Mostly for tests; the word-parallel
    simulator lives in [simgen_sim]. *)

val eval_pos : t -> bool array -> bool array
(** PO values only, in PO order. *)

val levels : t -> int array
(** Longest-path level of every node, indexed by id (PIs and constants at
    0). Computed on demand, cached, and invalidated by every mutator — the
    same policy as {!fanouts}. Callers must not mutate the returned array:
    it is shared with the cache (take a copy, or use
    {!Level.compute}, to own one). *)

val cached_levels : t -> int array option
(** The current level cache without forcing a computation. [None] after
    any mutation since the last {!levels} call. The [simgen_check] staleness
    lint compares this against a fresh recomputation. *)

val max_fanin_arity : t -> int

val copy : t -> t

val pp_stats : Format.formatter -> t -> unit

(** Unchecked mutators, for mutation testing and experimental rewrites.

    These skip the topological-order and arity validation that [add_gate]
    enforces, so they can produce networks violating the IR invariants —
    exactly what the [simgen_check] linter exists to detect. Production
    code must not call them. *)
module Unsafe : sig
  val set_fanins : t -> node_id -> node_id array -> unit
  (** Replace a node's fanin array without any validation (the arity may
      disagree with the function, ids may be out of range or forward,
      creating combinational cycles). Invalidates the fanout and level
      caches like every honest mutator. *)

  val set_level_cache : t -> int array -> unit
  (** Install a level cache verbatim, bypassing recomputation — the
      corruption vector for the stale-level lint (N010). *)
end
