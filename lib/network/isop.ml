module TT = Truth_table

(* Minato-Morreale ISOP on the interval [lower, upper]. Returns the cube
   list together with the truth table of its union. Cubes are built over the
   full variable count [n]; [var] is the highest variable still eligible for
   splitting. *)
let rec isop n lower upper var =
  match (TT.is_const lower, TT.is_const upper) with
  | Some false, _ -> ([], TT.create_const n false)
  | _, Some true -> ([ Cube.make (Array.make n Cube.DC) true ], TT.create_const n true)
  | _ ->
      (* Find a splitting variable: one that lower or upper depends on. *)
      let rec find v =
        if v < 0 then None
        else if TT.depends_on lower v || TT.depends_on upper v then Some v
        else find (v - 1)
      in
      (match find var with
       | None ->
           (* Both constant-free of remaining vars; lower is not const0 and
              upper not const1 is impossible unless lower <= upper broken. *)
           assert false
       | Some v ->
           let l0 = TT.cofactor lower v false and l1 = TT.cofactor lower v true in
           let u0 = TT.cofactor upper v false and u1 = TT.cofactor upper v true in
           let c0, g0 = isop n (TT.and_ l0 (TT.not_ u1)) u0 (v - 1) in
           let c1, g1 = isop n (TT.and_ l1 (TT.not_ u0)) u1 (v - 1) in
           let lnew =
             TT.or_ (TT.and_ l0 (TT.not_ g0)) (TT.and_ l1 (TT.not_ g1))
           in
           let cd, gd = isop n lnew (TT.and_ u0 u1) (v - 1) in
           let set_lit lit (c : Cube.t) =
             let lits = Array.copy c.Cube.lits in
             lits.(v) <- lit;
             Cube.make lits true
           in
           let cubes =
             List.map (set_lit Cube.F) c0
             @ List.map (set_lit Cube.T) c1
             @ cd
           in
           let xv = TT.var v n in
           let g =
             TT.or_ gd
               (TT.or_ (TT.and_ (TT.not_ xv) g0) (TT.and_ xv g1))
           in
           (cubes, g))

let cover f =
  let n = TT.nvars f in
  let cubes, g = isop n f f (n - 1) in
  assert (TT.equal g f);
  cubes

let rows f =
  let onset = cover f in
  let offset =
    List.map (fun (c : Cube.t) -> Cube.make c.Cube.lits false) (cover (TT.not_ f))
  in
  onset @ offset

let cover_to_truth_table n cubes =
  List.fold_left
    (fun acc c -> TT.or_ acc (Cube.to_truth_table n c))
    (TT.create_const n false) cubes
