type var = int
type t = int

let pos v = 2 * v
let neg v = (2 * v) lor 1
let make v sign = if sign then neg v else pos v
let var l = l lsr 1
let sign l = l land 1 = 1
let negate l = l lxor 1

let to_string l = Printf.sprintf "%sx%d" (if sign l then "~" else "") (var l)

let to_dimacs l = if sign l then -(var l + 1) else var l + 1

let of_dimacs d =
  if d = 0 then invalid_arg "Literal.of_dimacs: zero";
  if d > 0 then pos (d - 1) else neg (-d - 1)
