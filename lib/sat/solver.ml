(* A MiniSat-style CDCL solver with Glucose-style clause-database management.

   Conventions: variables are ints from 0; literals follow [Literal]
   (2v / 2v+1). Assignment values are +1 (true), -1 (false), 0 (undefined)
   per variable. Watched literals are lits.(0) and lits.(1) of each clause.

   Clause lifetime: learned clauses are tagged with their LBD (literal
   block distance — the number of distinct decision levels among the
   literals, Audemard–Simon) at learn time and re-scored downwards when
   used in conflict analysis. [reduce_db] runs on a conflict schedule and
   deletes the worst half of the deletable learnts by (high LBD, low
   activity); glue clauses (LBD <= 2), binary clauses and reason clauses
   are never deleted. Problem clauses can be registered under a client
   group id and physically retracted with [remove_group]; [simplify]
   removes clauses satisfied at level 0 and rebuilds (compacts) every
   watch list. All deletions mark the clause [removed] and detach its
   watches immediately; clause lists drop marked entries lazily at the
   next [simplify], so retracting a group never pays an O(database) walk. *)

type clause = {
  mutable lits : int array;
  learnt : bool;
  mutable activity : float;
  mutable lbd : int;      (* 0 for problem clauses *)
  mutable removed : bool; (* detached, awaiting list compaction *)
}

type proof_event = Learn of int array | Delete of int array

module Limits = struct
  type t = { conflicts : int option; propagations : int option }

  let unlimited = { conflicts = None; propagations = None }
  let conflicts n = { unlimited with conflicts = Some n }
  let propagations n = { unlimited with propagations = Some n }
end

type t = {
  mutable ok : bool;
  mutable clauses : clause list;       (* problem clauses *)
  mutable learnts : clause list;
  mutable watches : clause list array; (* indexed by literal *)
  mutable assigns : int array;         (* per var: +1 / -1 / 0 *)
  mutable levels : int array;          (* per var *)
  mutable reasons : clause option array;
  mutable activity : float array;
  mutable phase : bool array;          (* saved phase: last assigned sign *)
  mutable heap : int array;            (* binary max-heap of vars *)
  mutable heap_pos : int array;        (* var -> heap index, -1 if absent *)
  mutable heap_size : int;
  mutable trail : int array;           (* literals in assignment order *)
  mutable trail_size : int;
  mutable trail_lim : int array;       (* decision-level boundaries *)
  mutable trail_lim_size : int;
  mutable qhead : int;
  mutable nvars : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable seen : bool array;
  mutable proof : proof_event list option;  (* newest first *)
  mutable proof_len : int;  (* length of [proof]: cheap slicing for sessions *)
  mutable failed : int list;  (* failed assumptions of the last Unsat *)
  groups : (int, clause list) Hashtbl.t;  (* retractable problem clauses *)
  (* clause-database state *)
  mutable num_clauses : int;   (* live problem clauses on [clauses] *)
  mutable num_learnts : int;   (* live learnt clauses on [learnts] *)
  mutable garbage : int;       (* removed clauses still on [clauses] *)
  mutable next_reduce : int;   (* conflict count scheduling [reduce_db] *)
  mutable lbd_mark : int array; (* per level: stamp scratch for LBD *)
  mutable lbd_stamp : int;
  mutable simp_assigns : int;  (* root trail size at the last [simplify] *)
  mutable simp_next : int;     (* propagation count gating auto-simplify *)
  (* restart state: the Luby sequence continues across [solve] calls so
     that assumption-heavy incremental use (many short queries on one
     instance) still restarts — a per-call budget would reset before the
     first restart fires (the BENCH_SAT_SESSION "restarts: 0" bug). *)
  mutable restart_seq : int;
  mutable restart_budget : int;
  (* decision focus: when [focus_on], branching is restricted to the
     variables flagged in [focus_flag] ([focus_vars] lists them so the
     next focus switch clears the flags in O(|focus|)). Variables popped
     off the order heap while unfocused stay out until a later
     [focus_decisions] / [unfocus_decisions] re-inserts them. *)
  mutable focus_on : bool;
  mutable focus_flag : bool array;
  mutable focus_vars : int list;
  (* solver-state sanitizer (R007..R013): [audit_every] > 0 samples the
     cheap audit every that many conflicts inside [solve_limited];
     [audit_counters] shadows the monotone counters between audits;
     [fence_off] is a test-only switch that disables the decision-focus
     propagation fence so the R010 check has something to catch. *)
  mutable audit_every : int;
  mutable audit_counters : int array;
  mutable fence_off : bool;
  (* statistics *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learned_total : int;
  mutable deleted_total : int;  (* learnt clauses deleted *)
  mutable removed_total : int;  (* problem clauses retracted / simplified away *)
  mutable reductions : int;
  mutable compactions : int;
  (* live learnt-clause counts per LBD tier (core <= 2 < mid <= 6 < local) *)
  mutable lbd_core : int;
  mutable lbd_mid : int;
  mutable lbd_local : int;
}

type result = Sat | Unsat

let restart_base = 100
let reduce_first = 2000
let reduce_step = 300

let create () =
  {
    ok = true;
    clauses = [];
    learnts = [];
    watches = Array.make 16 [];
    assigns = Array.make 8 0;
    levels = Array.make 8 0;
    reasons = Array.make 8 None;
    activity = Array.make 8 0.0;
    phase = Array.make 8 false;
    heap = Array.make 8 0;
    heap_pos = Array.make 8 (-1);
    heap_size = 0;
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = Array.make 8 0;
    trail_lim_size = 0;
    qhead = 0;
    nvars = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    seen = Array.make 8 false;
    proof = None;
    proof_len = 0;
    failed = [];
    groups = Hashtbl.create 64;
    num_clauses = 0;
    num_learnts = 0;
    garbage = 0;
    next_reduce = reduce_first;
    lbd_mark = Array.make 8 0;
    lbd_stamp = 0;
    simp_assigns = 0;
    simp_next = 0;
    restart_seq = 0;
    restart_budget = restart_base;
    focus_on = false;
    focus_flag = Array.make 8 false;
    focus_vars = [];
    audit_every = 0;
    audit_counters = [||];
    fence_off = false;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learned_total = 0;
    deleted_total = 0;
    removed_total = 0;
    reductions = 0;
    compactions = 0;
    lbd_core = 0;
    lbd_mid = 0;
    lbd_local = 0;
  }

let num_vars s = s.nvars

let enable_proof s = if s.proof = None then s.proof <- Some []

let log_proof s event =
  match s.proof with
  | None -> ()
  | Some events ->
      s.proof <- Some (event :: events);
      s.proof_len <- s.proof_len + 1

let proof_clause lits =
  let c = Array.copy lits in
  Array.sort compare c;
  c

let proof_events s =
  match s.proof with None -> [] | Some events -> List.rev events

let proof_event_count s = s.proof_len

(* Events with (oldest-first) index >= [i]: the per-query slices of an
   incremental session's certificate. The list is newest first, so the
   slice is the first [proof_len - i] elements, reversed. *)
let proof_events_from s i =
  match s.proof with
  | None -> []
  | Some events ->
      let rec take n acc = function
        | e :: rest when n > 0 -> take (n - 1) (e :: acc) rest
        | _ -> acc
      in
      take (s.proof_len - i) [] events

(* -------------------- dynamic array growth -------------------- *)

let grow arr n fill =
  if Array.length arr >= n then arr
  else begin
    let arr' = Array.make (max n (2 * Array.length arr)) fill in
    Array.blit arr 0 arr' 0 (Array.length arr);
    arr'
  end

(* -------------------- variable order heap -------------------- *)

let heap_less s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_pos.(vj) <- i;
  s.heap_pos.(vi) <- j

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap <- grow s.heap (s.heap_size + 1) 0;
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    let last = s.heap.(s.heap_size) in
    s.heap.(0) <- last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  v

let heap_decrease s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* -------------------- variables -------------------- *)

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assigns <- grow s.assigns s.nvars 0;
  s.levels <- grow s.levels s.nvars 0;
  s.reasons <- grow s.reasons s.nvars None;
  s.activity <- grow s.activity s.nvars 0.0;
  s.phase <- grow s.phase s.nvars false;
  s.heap_pos <- grow s.heap_pos s.nvars (-1);
  s.seen <- grow s.seen s.nvars false;
  s.focus_flag <- grow s.focus_flag s.nvars false;
  s.trail <- grow s.trail s.nvars 0;
  s.watches <- grow s.watches (2 * s.nvars) [];
  s.lbd_mark <- grow s.lbd_mark (s.nvars + 1) 0;
  heap_insert s v;
  v

let lit_value s l =
  let v = s.assigns.(Literal.var l) in
  if v = 0 then 0 else if Literal.sign l then -v else v

(* -------------------- trail -------------------- *)

let decision_level s = s.trail_lim_size

let enqueue s l reason =
  let v = Literal.var l in
  s.assigns.(v) <- (if Literal.sign l then -1 else 1);
  s.levels.(v) <- decision_level s;
  s.reasons.(v) <- reason;
  s.phase.(v) <- Literal.sign l;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let new_decision_level s =
  s.trail_lim <- grow s.trail_lim (s.trail_lim_size + 1) 0;
  s.trail_lim.(s.trail_lim_size) <- s.trail_size;
  s.trail_lim_size <- s.trail_lim_size + 1

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_size - 1 downto bound do
      let v = Literal.var s.trail.(i) in
      s.assigns.(v) <- 0;
      s.reasons.(v) <- None;
      if (not s.focus_on) || s.focus_flag.(v) then heap_insert s v
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.trail_lim_size <- lvl
  end

(* -------------------- decision focus -------------------- *)

module Runtime_check = Simgen_base.Runtime_check

(* Decision heap: heap/heap_pos form a bijection and the max-heap
   property holds under the current activities. Part of the solver-state
   sanitizer (see the audit section below); defined here so the focus
   switches can re-check the heap they just rebuilt. *)
let audit_heap s =
  for i = 0 to s.heap_size - 1 do
    let v = s.heap.(i) in
    if v < 0 || v >= s.nvars then
      Runtime_check.failf "R009: heap entry %d out of range" v
    else begin
      if s.heap_pos.(v) <> i then
        Runtime_check.failf
          "R009: heap_pos.(%d) = %d but the variable sits at index %d" v
          s.heap_pos.(v) i;
      if i > 0 && heap_less s v s.heap.((i - 1) / 2) then
        Runtime_check.failf
          "R009: heap property violated at index %d (var %d outranks its \
           parent)"
          i v
    end
  done;
  for v = 0 to s.nvars - 1 do
    let p = s.heap_pos.(v) in
    if p >= 0 && (p >= s.heap_size || s.heap.(p) <> v) then
      Runtime_check.failf "R009: stale heap_pos.(%d) = %d" v p
  done

let focus_decisions s vars =
  List.iter (fun v -> s.focus_flag.(v) <- false) s.focus_vars;
  List.iter
    (fun v ->
      s.focus_flag.(v) <- true;
      if s.assigns.(v) = 0 then heap_insert s v)
    vars;
  s.focus_vars <- vars;
  s.focus_on <- true;
  if s.audit_every > 0 then audit_heap s

let unfocus_decisions s =
  if s.focus_on then begin
    List.iter (fun v -> s.focus_flag.(v) <- false) s.focus_vars;
    s.focus_vars <- [];
    s.focus_on <- false;
    (* Restore every variable dropped from the order heap while it was
       out of focus. *)
    for v = 0 to s.nvars - 1 do
      if s.assigns.(v) = 0 then heap_insert s v
    done;
    if s.audit_every > 0 then audit_heap s
  end

(* -------------------- clause attachment -------------------- *)

let watch s l c = s.watches.(l) <- c :: s.watches.(l)

let attach s c =
  watch s (Literal.negate c.lits.(0)) c;
  watch s (Literal.negate c.lits.(1)) c

(* -------------------- LBD -------------------- *)

(* Number of distinct non-root decision levels among assigned literals.
   Every literal of a learnt clause is assigned when this is called
   (conflict analysis computes it before backjumping; re-scoring happens
   on reason/conflict clauses, whose literals are all assigned). *)
let lbd_of_array s lits =
  s.lbd_stamp <- s.lbd_stamp + 1;
  let stamp = s.lbd_stamp in
  let n = ref 0 in
  Array.iter
    (fun l ->
      let lvl = s.levels.(Literal.var l) in
      if lvl > 0 && s.lbd_mark.(lvl) <> stamp then begin
        s.lbd_mark.(lvl) <- stamp;
        incr n
      end)
    lits;
  max 1 !n

let lbd_of_list s lits =
  s.lbd_stamp <- s.lbd_stamp + 1;
  let stamp = s.lbd_stamp in
  let n = ref 0 in
  List.iter
    (fun l ->
      let lvl = s.levels.(Literal.var l) in
      if lvl > 0 && s.lbd_mark.(lvl) <> stamp then begin
        s.lbd_mark.(lvl) <- stamp;
        incr n
      end)
    lits;
  max 1 !n

let tier_incr s lbd =
  if lbd <= 2 then s.lbd_core <- s.lbd_core + 1
  else if lbd <= 6 then s.lbd_mid <- s.lbd_mid + 1
  else s.lbd_local <- s.lbd_local + 1

let tier_decr s lbd =
  if lbd <= 2 then s.lbd_core <- s.lbd_core - 1
  else if lbd <= 6 then s.lbd_mid <- s.lbd_mid - 1
  else s.lbd_local <- s.lbd_local - 1

(* -------------------- activities -------------------- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_decrease s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    List.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* -------------------- propagation -------------------- *)

exception Conflict of clause

let propagate s =
  try
    while s.qhead < s.trail_size do
      let p = s.trail.(s.qhead) in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      (* Clauses watching ~p: p became true, so ~p became false. *)
      let watching = s.watches.(p) in
      s.watches.(p) <- [];
      let rec process = function
        | [] -> ()
        | c :: rest -> (
            let false_lit = Literal.negate p in
            (* Make sure the false literal is lits.(1). *)
            if c.lits.(0) = false_lit then begin
              c.lits.(0) <- c.lits.(1);
              c.lits.(1) <- false_lit
            end;
            if lit_value s c.lits.(0) = 1 then begin
              (* Clause already satisfied; keep watching. *)
              s.watches.(p) <- c :: s.watches.(p);
              process rest
            end
            else begin
              (* Look for a new literal to watch. *)
              let n = Array.length c.lits in
              let rec find i =
                if i >= n then -1
                else if lit_value s c.lits.(i) <> -1 then i
                else find (i + 1)
              in
              let i = find 2 in
              if i >= 0 then begin
                c.lits.(1) <- c.lits.(i);
                c.lits.(i) <- false_lit;
                watch s (Literal.negate c.lits.(1)) c;
                process rest
              end
              else if lit_value s c.lits.(0) = -1 then begin
                (* Conflict: restore remaining watches and bail out. *)
                s.watches.(p) <- c :: s.watches.(p);
                List.iter (fun c' -> s.watches.(p) <- c' :: s.watches.(p)) rest;
                s.qhead <- s.trail_size;
                raise (Conflict c)
              end
              else begin
                s.watches.(p) <- c :: s.watches.(p);
                (* Unit: propagate lits.(0) — unless the search is focused
                   and the implied variable is outside the focus, above the
                   root. Skipping it freezes the clause for the rest of the
                   call: the variable is never assigned (decisions cannot
                   reach it, and every implication on it is skipped the same
                   way), so the clause cannot be falsified later and no
                   conflict is missed. Root-level implications are always
                   propagated, so nothing permanent is ever lost. This is
                   what keeps a focused query from dragging the whole
                   accumulated variable space of an incremental session
                   through every search pass; exactness is the focus
                   contract ({!focus_decisions}): out-of-focus variables
                   are the caller's to guarantee extendable. *)
                if
                  s.focus_on
                  && s.trail_lim_size > 0
                  && (not s.fence_off)
                  && not (s.focus_flag.(Literal.var c.lits.(0)))
                then process rest
                else begin
                  enqueue s c.lits.(0) (Some c);
                  process rest
                end
              end
            end)
      in
      process watching
    done;
    None
  with Conflict c -> Some c

(* -------------------- clause addition -------------------- *)

let add_clause ?group s lits =
  if decision_level s <> 0 then
    invalid_arg "Solver.add_clause: only at decision level 0";
  if s.ok then begin
    (* Simplify: drop duplicates and false literals, detect tautologies and
       satisfied clauses. *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      let rec check = function
        | a :: (b :: _ as rest) ->
            (a lxor b) = 1 || check rest
        | _ -> false
      in
      check lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> lit_value s l <> -1) lits in
      let satisfied = List.exists (fun l -> lit_value s l = 1) lits in
      if not satisfied then
        match lits with
        | [] ->
            log_proof s (Learn [||]);
            s.ok <- false
        | [ l ] ->
            enqueue s l None;
            if propagate s <> None then begin
              log_proof s (Learn [||]);
              s.ok <- false
            end
        | lits ->
            let c =
              {
                lits = Array.of_list lits;
                learnt = false;
                activity = 0.0;
                lbd = 0;
                removed = false;
              }
            in
            s.clauses <- c :: s.clauses;
            s.num_clauses <- s.num_clauses + 1;
            (match group with
             | None -> ()
             | Some g ->
                 let prev =
                   match Hashtbl.find_opt s.groups g with
                   | None -> []
                   | Some cs -> cs
                 in
                 Hashtbl.replace s.groups g (c :: prev));
            attach s c
    end
  end

(* -------------------- conflict analysis -------------------- *)

(* Is [l]'s variable redundant in the learned clause, i.e. implied by other
   seen literals? Depth-bounded recursive check (clause minimisation).
   Variables marked seen during the check are recorded in [to_clear]. *)
let rec lit_redundant s abstract_levels to_clear l depth =
  if depth > 40 then false
  else
    match s.reasons.(Literal.var l) with
    | None -> false
    | Some c ->
        let ok = ref true in
        Array.iter
          (fun q ->
            let v = Literal.var q in
            if !ok && v <> Literal.var l && s.levels.(v) > 0 then
              if s.seen.(v) then ()
              else if
                (abstract_levels lsr (s.levels.(v) land 31)) land 1 = 1
                && lit_redundant s abstract_levels to_clear q (depth + 1)
              then begin
                s.seen.(v) <- true;
                to_clear := v :: !to_clear
              end
              else ok := false)
          c.lits;
        !ok

let analyze s confl =
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) in
  let index = ref (s.trail_size - 1) in
  let confl = ref (Some confl) in
  let to_clear = ref [] in
  let continue = ref true in
  while !continue do
    (match !confl with
     | None -> assert false
     | Some c ->
         if c.learnt then begin
           cla_bump s c;
           (* Glucose-style re-scoring: a clause seen in conflict analysis
              whose current LBD is better than recorded is promoted. *)
           if c.lbd > 2 then begin
             let l = lbd_of_array s c.lits in
             if l < c.lbd then begin
               tier_decr s c.lbd;
               tier_incr s l;
               c.lbd <- l
             end
           end
         end;
         Array.iter
           (fun q ->
             let v = Literal.var q in
             if (!p < 0 || q <> !p) && (not s.seen.(v)) && s.levels.(v) > 0
             then begin
               s.seen.(v) <- true;
               to_clear := v :: !to_clear;
               var_bump s v;
               if s.levels.(v) >= decision_level s then incr path_count
               else learnt := q :: !learnt
             end)
           c.lits);
    (* Select next literal from the trail. *)
    let rec back i =
      if s.seen.(Literal.var s.trail.(i)) then i else back (i - 1)
    in
    index := back !index;
    let q = s.trail.(!index) in
    p := q;
    s.seen.(Literal.var q) <- false;
    confl := s.reasons.(Literal.var q);
    decr path_count;
    index := !index - 1;
    if !path_count <= 0 then continue := false
  done;
  let uip = Literal.negate !p in
  (* Minimise: drop redundant literals. *)
  let abstract_levels =
    List.fold_left
      (fun acc l -> acc lor (1 lsl (s.levels.(Literal.var l) land 31)))
      0 !learnt
  in
  let minimized =
    List.filter
      (fun l -> not (lit_redundant s abstract_levels to_clear l 0))
      !learnt
  in
  (* Backjump level: highest level among remaining non-UIP literals. *)
  let back_level =
    List.fold_left (fun acc l -> max acc (s.levels.(Literal.var l))) 0 minimized
  in
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  (uip :: minimized, back_level)

(* -------------------- clause database -------------------- *)

let locked s c =
  Array.length c.lits > 0
  &&
  let v = Literal.var c.lits.(0) in
  match s.reasons.(v) with Some r -> r == c | None -> false

let detach s c =
  let remove l =
    s.watches.(l) <- List.filter (fun c' -> not (c' == c)) s.watches.(l)
  in
  remove (Literal.negate c.lits.(0));
  remove (Literal.negate c.lits.(1))

(* LBD-tiered reduction: sort so deletion candidates come first (high
   LBD, then low activity) and delete half the database. Glue clauses
   (LBD <= 2), binary clauses and reasons of current assignments always
   survive. Runs on a conflict schedule that lengthens with every
   reduction, independent of [solve]-call boundaries. *)
let reduce_db s =
  s.reductions <- s.reductions + 1;
  let arr = Array.of_list s.learnts in
  Array.sort
    (fun (a : clause) (b : clause) ->
      if a.lbd <> b.lbd then compare b.lbd a.lbd
      else compare a.activity b.activity)
    arr;
  let limit = Array.length arr / 2 in
  let keep = ref [] in
  Array.iteri
    (fun i c ->
      if
        i < limit && c.lbd > 2
        && Array.length c.lits > 2
        && not (locked s c)
      then begin
        log_proof s (Delete (proof_clause c.lits));
        detach s c;
        c.removed <- true;
        s.num_learnts <- s.num_learnts - 1;
        s.deleted_total <- s.deleted_total + 1;
        tier_decr s c.lbd
      end
      else keep := c :: !keep)
    arr;
  s.learnts <- !keep

(* Physically retract every clause of group [g]. Only at level 0. The
   clauses are detached now and dropped from the clause list at the next
   compaction; a clause acting as the reason for a root-level implication
   loses the reason pointer (the implication itself stays on the trail —
   it remains a consequence of the theory the client retracted from).
   Returns the number of clauses removed. *)
let remove_group ?(proof = true) s g =
  if decision_level s <> 0 then
    invalid_arg "Solver.remove_group: only at decision level 0";
  match Hashtbl.find_opt s.groups g with
  | None -> 0
  | Some cs ->
      Hashtbl.remove s.groups g;
      let n = ref 0 in
      List.iter
        (fun c ->
          if not c.removed then begin
            if locked s c then s.reasons.(Literal.var c.lits.(0)) <- None;
            detach s c;
            c.removed <- true;
            if proof then log_proof s (Delete (proof_clause c.lits));
            s.num_clauses <- s.num_clauses - 1;
            s.removed_total <- s.removed_total + 1;
            s.garbage <- s.garbage + 1;
            incr n
          end)
        cs;
      !n

(* Re-attach with two non-false literals in the watch slots. At a root
   fixpoint every live, unsatisfied clause has at least two non-false
   literals (one non-false would have propagated and satisfied it). *)
let reattach s c =
  let n = Array.length c.lits in
  let pos = ref 0 in
  (try
     for i = 0 to n - 1 do
       if lit_value s c.lits.(i) <> -1 then begin
         let tmp = c.lits.(!pos) in
         c.lits.(!pos) <- c.lits.(i);
         c.lits.(i) <- tmp;
         incr pos;
         if !pos >= 2 then raise Exit
       end
     done
   with Exit -> ());
  attach s c

(* Remove clauses satisfied at level 0 and compact: drop removed-marked
   clauses from the lists and rebuild every watch list from scratch. The
   watch rebuild is what makes retirement GC pay — watch lists stop
   carrying clauses that level-0 units satisfied long ago. Deletions of
   learnt clauses are recorded in the proof; dropping a *problem* clause
   from the checker's view is never required for soundness (keeping it
   only strengthens unit propagation), so problem-clause removals are
   not logged here. *)
let simplify s =
  if decision_level s <> 0 then
    invalid_arg "Solver.simplify: only at decision level 0";
  if s.ok then begin
    (match propagate s with
     | Some _ ->
         log_proof s (Learn [||]);
         s.ok <- false
     | None -> ());
    if s.ok then begin
      let live_lits = ref 0 in
      let satisfied c =
        let n = Array.length c.lits in
        let rec go i = i < n && (lit_value s c.lits.(i) = 1 || go (i + 1)) in
        go 0
      in
      let keep c =
        if c.removed then false
        else if satisfied c then begin
          if locked s c then s.reasons.(Literal.var c.lits.(0)) <- None;
          detach s c;
          c.removed <- true;
          if c.learnt then begin
            log_proof s (Delete (proof_clause c.lits));
            s.num_learnts <- s.num_learnts - 1;
            s.deleted_total <- s.deleted_total + 1;
            tier_decr s c.lbd
          end
          else begin
            s.num_clauses <- s.num_clauses - 1;
            s.removed_total <- s.removed_total + 1
          end;
          false
        end
        else begin
          live_lits := !live_lits + Array.length c.lits;
          true
        end
      in
      s.clauses <- List.filter keep s.clauses;
      s.learnts <- List.filter keep s.learnts;
      s.garbage <- 0;
      Array.fill s.watches 0 (Array.length s.watches) [];
      List.iter (reattach s) s.clauses;
      List.iter (reattach s) s.learnts;
      s.qhead <- s.trail_size;
      s.compactions <- s.compactions + 1;
      s.simp_assigns <- s.trail_size;
      s.simp_next <- s.propagations + !live_lits
    end
  end

(* Auto-GC at solve entry, MiniSat's simplify discipline: only worth the
   O(database) walk when new root facts arrived and enough propagation
   happened to amortise it, or when lazy removals left the clause list
   dominated by garbage. *)
let maybe_simplify s =
  if s.ok && decision_level s = 0 then begin
    let garbage_heavy =
      s.garbage > 100 && s.garbage * 4 > s.num_clauses + s.num_learnts
    in
    if
      garbage_heavy
      || (s.trail_size > s.simp_assigns && s.propagations >= s.simp_next)
    then simplify s
  end

(* -------------------- search -------------------- *)

let luby k =
  (* Luby restart sequence (1,1,2,1,1,2,4,...). *)
  let rec find size seq =
    if size >= k + 1 then (size, seq) else find ((2 * size) + 1) (seq + 1)
  in
  let size, seq = find 1 0 in
  let rec shrink size seq k =
    if size - 1 = k then seq
    else
      let size = (size - 1) / 2 in
      shrink size (seq - 1) (k mod size)
  in
  1 lsl shrink size seq k

(* Under focus, variables popped here that are out of focus are simply
   dropped from the heap; [focus_decisions] / [unfocus_decisions] put
   them back when they become decidable again. *)
let pick_branch_var s =
  let rec go () =
    if s.heap_size = 0 then -1
    else
      let v = heap_pop s in
      if s.assigns.(v) = 0 && ((not s.focus_on) || s.focus_flag.(v)) then v
      else go ()
  in
  go ()

(* MiniSat's analyzeFinal: the assumption [a] was found false during
   [solve ~assumptions]; collect the subset of the assumptions its
   falsification depends on. Walk the implication graph backwards from
   [a]'s falsifying assignment; every *decision* reached is one of the
   failed assumptions (assumptions are always decided below any branch
   decision, so a decision in the chain cannot be a branching pick). *)
let analyze_final s a =
  let v0 = Literal.var a in
  if decision_level s = 0 || s.levels.(v0) = 0 then [ a ]
  else begin
    let failed = ref [ a ] in
    s.seen.(v0) <- true;
    for i = s.trail_size - 1 downto s.trail_lim.(0) do
      let v = Literal.var s.trail.(i) in
      if s.seen.(v) then begin
        (match s.reasons.(v) with
         | None ->
             if v <> v0 then failed := s.trail.(i) :: !failed
         | Some c ->
             Array.iter
               (fun q ->
                 let vq = Literal.var q in
                 if s.levels.(vq) > 0 then s.seen.(vq) <- true)
               c.lits);
        s.seen.(v) <- false
      end
    done;
    s.seen.(v0) <- false;
    !failed
  end

(* -------------------- solver-state sanitizer -------------------- *)

(* R007..R013 invariant audits reported through {!Runtime_check}.
   [audit_light] is the sampled subset — O(trail + heap + nvars) — run
   from the conflict branch of [solve_limited] while the trail is still
   intact (propagation restores every watch before raising [Conflict],
   so the watch invariant holds there too); [audit] is the full
   on-demand pass, adding the O(database) watch-list walk. *)

let counter_snapshot s =
  [|
    s.conflicts;
    s.decisions;
    s.propagations;
    s.restarts;
    s.learned_total;
    s.deleted_total;
    s.removed_total;
    s.reductions;
    s.compactions;
  |]

let counter_names =
  [|
    "conflicts";
    "decisions";
    "propagations";
    "restarts";
    "learned";
    "deleted";
    "removed";
    "reductions";
    "compactions";
  |]

let audit_stats s =
  let now = counter_snapshot s in
  if Array.length s.audit_counters = Array.length now then
    Array.iteri
      (fun i prev ->
        if now.(i) < prev then
          Runtime_check.failf "R012: monotone counter %s regressed %d -> %d"
            counter_names.(i) prev now.(i))
      s.audit_counters;
  s.audit_counters <- now

(* Every trail literal is true; every implication's reason clause is
   actually unit under its trail prefix: it implies the literal at
   lits.(0) with every other literal false, and it has not been
   detached. *)
let audit_trail s =
  for i = 0 to s.trail_size - 1 do
    let l = s.trail.(i) in
    let v = Literal.var l in
    if lit_value s l <> 1 then
      Runtime_check.failf "R008: trail literal %d is not assigned true" l;
    match s.reasons.(v) with
    | None -> ()
    | Some c ->
        if c.removed then
          Runtime_check.failf
            "R008: detached clause is still the reason of literal %d" l;
        if Array.length c.lits = 0 || c.lits.(0) <> l then
          Runtime_check.failf
            "R008: reason clause of literal %d does not have it first" l;
        for j = 1 to Array.length c.lits - 1 do
          if lit_value s c.lits.(j) <> -1 then
            Runtime_check.failf
              "R008: reason clause of literal %d is not unit (literal %d \
               unfalsified)"
              l c.lits.(j)
        done
  done

(* Fence soundness (the PR-7 decision-focus argument, machine-checked):
   during a focused call no out-of-focus variable may be *implied* above
   the root — reason-less assignments are decisions/assumptions, which
   the caller controls (the activation literal is legitimately out of
   focus). *)
let audit_fence s =
  if s.focus_on && s.trail_lim_size > 0 then
    for i = s.trail_lim.(0) to s.trail_size - 1 do
      let v = Literal.var s.trail.(i) in
      match s.reasons.(v) with
      | Some _ when not s.focus_flag.(v) ->
          Runtime_check.failf
            "R010: out-of-focus variable %d implied above the root" v
      | _ -> ()
    done

(* Watch integrity: every live >= 2-literal clause is watched on the
   negations of its first two literals and on nothing else; no detached
   clause lingers on any watch list; at a root fixpoint no watched
   literal is false at the root unless its partner is true (otherwise
   the clause should have propagated or conflicted). *)
let audit_watches s =
  Array.iteri
    (fun l cs ->
      List.iter
        (fun c ->
          if c.removed then
            Runtime_check.failf
              "R011: detached clause still on the watch list of literal %d" l
          else if Array.length c.lits < 2 then
            Runtime_check.failf
              "R007: %d-literal clause on the watch list of literal %d"
              (Array.length c.lits) l
          else if
            l <> Literal.negate c.lits.(0) && l <> Literal.negate c.lits.(1)
          then
            Runtime_check.failf
              "R007: clause watched on literal %d which negates neither \
               watched slot"
              l)
        cs)
    s.watches;
  let at_root_fixpoint =
    s.ok && decision_level s = 0 && s.qhead = s.trail_size
  in
  let check_clause c =
    if not c.removed then begin
      let w0 = Literal.negate c.lits.(0) and w1 = Literal.negate c.lits.(1) in
      if not (List.memq c s.watches.(w0)) then
        Runtime_check.failf "R007: clause not watched on lits.(0) = %d"
          c.lits.(0);
      if not (List.memq c s.watches.(w1)) then
        Runtime_check.failf "R007: clause not watched on lits.(1) = %d"
          c.lits.(1);
      if at_root_fixpoint then begin
        let slot k other =
          if
            lit_value s c.lits.(k) = -1
            && s.levels.(Literal.var c.lits.(k)) = 0
            && lit_value s c.lits.(other) <> 1
          then
            Runtime_check.failf
              "R007: watched literal %d false at root without a true partner"
              c.lits.(k)
        in
        slot 0 1;
        slot 1 0
      end
    end
  in
  List.iter check_clause s.clauses;
  List.iter check_clause s.learnts

(* Live-clause gauges agree with the clause database. *)
let audit_gauges s =
  let live = List.fold_left (fun n c -> if c.removed then n else n + 1) 0 in
  let lc = live s.clauses and ll = live s.learnts in
  if lc <> s.num_clauses then
    Runtime_check.failf "R013: num_clauses = %d but %d live problem clauses"
      s.num_clauses lc;
  if ll <> s.num_learnts then
    Runtime_check.failf "R013: num_learnts = %d but %d live learnt clauses"
      s.num_learnts ll;
  let tiers = s.lbd_core + s.lbd_mid + s.lbd_local in
  if tiers <> s.num_learnts then
    Runtime_check.failf "R013: LBD tier counts sum to %d, num_learnts = %d"
      tiers s.num_learnts

let audit_light s =
  audit_trail s;
  audit_fence s;
  audit_heap s;
  audit_stats s

let audit s =
  audit_light s;
  audit_watches s;
  audit_gauges s

let set_audit s ~every =
  s.audit_every <- (if every <= 0 then 0 else every);
  if s.audit_every > 0 then s.audit_counters <- counter_snapshot s

let audit_sampling s = s.audit_every > 0

type corruption =
  | Drop_watch
  | Scramble_reason
  | Break_heap
  | Break_fence
  | Leak_detached
  | Regress_stats
  | Skew_gauge

let corrupt s = function
  | Drop_watch -> (
      match List.find_opt (fun c -> not c.removed) s.clauses with
      | None -> invalid_arg "Solver.corrupt: no live clause"
      | Some c ->
          let w = Literal.negate c.lits.(0) in
          s.watches.(w) <- List.filter (fun c' -> c' != c) s.watches.(w))
  | Scramble_reason ->
      (* Repoint some trail literal's reason at a clause that does not
         imply it. At rest every root-implied literal's reason has been
         nulled (its clause is root-satisfied, so simplify GCed it and
         unlocked the reason), so decisions and units are fair game too:
         planting a bogus reason on a reason-free literal is the same
         reason/trail inconsistency. *)
      let found = ref false in
      (try
         for i = 0 to s.trail_size - 1 do
           let l = s.trail.(i) in
           let v = Literal.var l in
           match
             List.find_opt
               (fun c ->
                 (not c.removed)
                 && Array.length c.lits >= 2
                 && c.lits.(0) <> l)
               s.clauses
           with
           | Some c' ->
               s.reasons.(v) <- Some c';
               found := true;
               raise Exit
           | None -> ()
         done
       with Exit -> ());
      if not !found then
        invalid_arg "Solver.corrupt: no trail literal to scramble"
  | Break_heap ->
      if s.heap_size < 2 then invalid_arg "Solver.corrupt: heap too small";
      let a = s.heap.(0) in
      s.heap.(0) <- s.heap.(s.heap_size - 1);
      s.heap.(s.heap_size - 1) <- a
  | Break_fence -> s.fence_off <- true
  | Leak_detached -> (
      match List.find_opt (fun c -> not c.removed) s.clauses with
      | None -> invalid_arg "Solver.corrupt: no live clause"
      | Some c -> c.removed <- true)
  | Regress_stats -> s.conflicts <- s.conflicts - 1
  | Skew_gauge -> s.num_clauses <- s.num_clauses + 1

type limited_result = LSat | LUnsat | LUnknown

let solve_limited ?(assumptions = []) ?(limits = Limits.unlimited) s =
  s.failed <- [];
  if not s.ok then LUnsat
  else begin
    maybe_simplify s;
    if not s.ok then LUnsat
    else begin
    (* Budgets as absolute counter values: the hot loop pays two int
       compares, nothing more. A non-positive budget is an immediate
       LUnknown — the degradation ladder relies on that determinism. *)
    let climit =
      match limits.Limits.conflicts with
      | None -> max_int
      | Some m -> if m <= 0 then s.conflicts else s.conflicts + m
    in
    let plimit =
      match limits.Limits.propagations with
      | None -> max_int
      | Some m -> if m <= 0 then s.propagations else s.propagations + m
    in
    let status = ref None in
    (try
       while !status = None do
         if s.conflicts >= climit || s.propagations >= plimit then
           status := Some LUnknown
         else match propagate s with
         | Some confl ->
             s.conflicts <- s.conflicts + 1;
             (* Sampled sanitizer: the trail, reasons and watches are all
                consistent at a conflict (propagation restores every
                watch before bailing out), making this the one cheap
                point where the invariants can be checked mid-search. *)
             if s.audit_every > 0 && s.conflicts mod s.audit_every = 0 then
               audit_light s;
             s.restart_budget <- s.restart_budget - 1;
             if decision_level s = 0 then begin
               log_proof s (Learn [||]);
               s.ok <- false;
               status := Some LUnsat
             end
             else begin
               let learnt, back_level = analyze s confl in
               let lbd = lbd_of_list s learnt in
               log_proof s (Learn (proof_clause (Array.of_list learnt)));
               cancel_until s back_level;
               (match learnt with
                | [] -> assert false
                | [ l ] -> enqueue s l None
                | l :: _ ->
                    (* Watch the UIP and a literal from the backjump level. *)
                    let arr = Array.of_list learnt in
                    let best = ref 1 in
                    for i = 2 to Array.length arr - 1 do
                      if
                        s.levels.(Literal.var arr.(i))
                        > s.levels.(Literal.var arr.(!best))
                      then best := i
                    done;
                    let tmp = arr.(1) in
                    arr.(1) <- arr.(!best);
                    arr.(!best) <- tmp;
                    let c =
                      {
                        lits = arr;
                        learnt = true;
                        activity = 0.0;
                        lbd;
                        removed = false;
                      }
                    in
                    s.learnts <- c :: s.learnts;
                    s.num_learnts <- s.num_learnts + 1;
                    s.learned_total <- s.learned_total + 1;
                    tier_incr s lbd;
                    attach s c;
                    cla_bump s c;
                    enqueue s l (Some c));
               var_decay s;
               cla_decay s
             end
         | None ->
             if s.restart_budget <= 0 then begin
               (* Restart: continue the cross-call Luby sequence. *)
               s.restart_seq <- s.restart_seq + 1;
               s.restarts <- s.restarts + 1;
               s.restart_budget <- restart_base * luby s.restart_seq;
               cancel_until s 0
             end
             else begin
               if s.conflicts >= s.next_reduce && s.num_learnts > 20 then begin
                 reduce_db s;
                 s.next_reduce <-
                   s.conflicts + reduce_first + (reduce_step * s.reductions)
               end;
               (* Assumptions first. *)
               let rec next_assumption = function
                 | [] -> `Done
                 | a :: rest -> (
                     match lit_value s a with
                     | 1 -> next_assumption rest
                     | -1 -> `Conflict a
                     | _ -> `Decide a)
               in
               match next_assumption assumptions with
               | `Conflict a ->
                   s.failed <- analyze_final s a;
                   status := Some LUnsat
               | `Decide a ->
                   new_decision_level s;
                   s.decisions <- s.decisions + 1;
                   enqueue s a None
               | `Done -> (
                   let v = pick_branch_var s in
                   if v < 0 then status := Some LSat
                   else begin
                     new_decision_level s;
                     s.decisions <- s.decisions + 1;
                     enqueue s (Literal.make v s.phase.(v)) None
                   end)
             end
       done
     with e ->
       cancel_until s 0;
       raise e);
    let r = match !status with Some r -> r | None -> assert false in
    (match r with
     | LSat ->
         (* Snapshot the model into the phase array, then clean up. *)
         for v = 0 to s.nvars - 1 do
           if s.assigns.(v) <> 0 then s.phase.(v) <- s.assigns.(v) < 0
         done
     | LUnsat | LUnknown -> ());
    cancel_until s 0;
    r
    end
  end

let solve ?assumptions s =
  match solve_limited ?assumptions s with
  | LSat -> Sat
  | LUnsat -> Unsat
  | LUnknown -> assert false (* no budget given: cannot time out *)

let value s v =
  if s.assigns.(v) <> 0 then s.assigns.(v) > 0 else not s.phase.(v)

let model s = Array.init s.nvars (fun v -> not s.phase.(v))

let failed_assumptions s = s.failed

let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
let num_restarts s = s.restarts
let num_learned s = s.learned_total
let num_clauses s = s.num_clauses
let num_learnts s = s.num_learnts

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned : int;
  deleted : int;
  removed : int;
  reductions : int;
  compactions : int;
  live_clauses : int;
  live_learnts : int;
  lbd_core : int;
  lbd_mid : int;
  lbd_local : int;
}

let stats (s : t) : stats =
  {
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
    restarts = s.restarts;
    learned = s.learned_total;
    deleted = s.deleted_total;
    removed = s.removed_total;
    reductions = s.reductions;
    compactions = s.compactions;
    live_clauses = s.num_clauses;
    live_learnts = s.num_learnts;
    lbd_core = s.lbd_core;
    lbd_mid = s.lbd_mid;
    lbd_local = s.lbd_local;
  }
