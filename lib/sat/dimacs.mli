(** DIMACS CNF reading and writing, for interoperability and debugging. *)

exception Parse_error of Simgen_base.Srcloc.t * string
(** Malformed input with the offending line when known. *)

val parse_string : ?file:string -> string -> int * Literal.t list list
(** Returns (number of variables, clauses). [file] only labels
    {!Parse_error} locations. *)

val parse_file : string -> int * Literal.t list list

val to_string : int -> Literal.t list list -> string
val write_file : string -> int -> Literal.t list list -> unit

val load_into : Solver.t -> string -> unit
(** Parse a DIMACS string and add its variables and clauses to a solver. *)
