(** Independent DRUP proof checking.

    Validates an UNSAT answer without trusting the solver: every learned
    clause must follow from the current formula by {e reverse unit
    propagation} (assuming the clause's negation and propagating units
    must yield a conflict), and the proof must derive the empty clause.
    The checker shares no code with the solver's propagation engine. *)

type verdict =
  | Valid  (** the proof derives the empty clause, every step RUP-checked *)
  | Invalid_step of int  (** 0-based index of the first non-RUP addition *)
  | Incomplete  (** all steps valid but the empty clause never derived *)

val check :
  Literal.t list list -> Solver.proof_event list -> verdict
(** [check formula proof] where [formula] is the original clause set. *)

val check_solver :
  Literal.t list list -> Solver.t -> verdict
(** Convenience: check a solver's recorded proof against the formula. *)

val to_dimacs_proof : Solver.proof_event list -> string
(** DRUP text format (one clause per line, deletions prefixed ["d"]),
    compatible with external checkers such as drat-trim. *)
