(** Independent DRUP proof checking.

    Validates an UNSAT answer without trusting the solver: every learned
    clause must follow from the current formula by {e reverse unit
    propagation} (assuming the clause's negation and propagating units
    must yield a conflict), and the proof must derive the empty clause.
    The checker shares no code with the solver's propagation engine. *)

type verdict =
  | Valid  (** the proof derives the empty clause, every step RUP-checked *)
  | Invalid_step of int  (** 0-based index of the first non-RUP addition *)
  | Incomplete  (** all steps valid but the empty clause never derived *)

val check :
  Literal.t list list -> Solver.proof_event list -> verdict
(** [check formula proof] where [formula] is the original clause set. *)

val rup : int -> Literal.t list list -> Literal.t list -> bool
(** [rup nvars clauses clause]: does [clause] follow from [clauses] by
    reverse unit propagation? The building block of {!check}, exposed for
    the proof-stream lint ([Simgen_check.Proof_lint]), which must re-run
    individual steps against varying clause sets. *)

val check_solver :
  Literal.t list list -> Solver.t -> verdict
(** Convenience: check a solver's recorded proof against the formula. *)

type trim_anomaly =
  | Non_rup_step of int
      (** 0-based index of the forward-pass step that failed RUP *)
  | Underivable_goal
      (** neither the empty clause nor the supplied goal was derivable *)

val trim :
  ?goal:Literal.t list ->
  ?on_anomaly:(trim_anomaly -> unit) ->
  Literal.t list list ->
  Solver.proof_event list ->
  Solver.proof_event list
(** [trim ?goal ?on_anomaly formula proof] drops deleted and unused
    lemmas. A forward pass re-derives each learned clause recording which
    earlier steps its unit propagation touched; a backward pass keeps
    only the steps reachable from the goal — the empty clause when the
    proof derives one, else the RUP derivation of [goal]. The result
    contains only [Learn] events (deletions are dropped: RUP is monotone
    in the clause set, so a proof stays valid without them) and still
    satisfies {!check} whenever the input did. On any anomaly — a non-RUP
    step, no goal derivable — the input proof is returned unchanged, so
    trimming never turns a checkable proof uncheckable; [on_anomaly]
    (default: ignore) is called with the anomaly so callers can surface
    it instead of silently shipping an untrimmed proof. *)

val to_dimacs_proof : Solver.proof_event list -> string
(** DRUP text format (one clause per line, deletions prefixed ["d"]),
    compatible with external checkers such as drat-trim. *)

exception Parse_error of Simgen_base.Srcloc.t * string

val parse_string : ?file:string -> string -> Solver.proof_event list
(** Inverse of {!to_dimacs_proof}: parse DRUP text into an event stream.
    Accepts the drat-trim surface syntax — [c] comment lines, blank
    lines, CRLF endings, clauses spanning lines or sharing one — where a
    leading [d] token turns the next 0-terminated clause into a
    [Delete]. Raises {!Parse_error} (with a line-accurate location) on a
    malformed token, a [d] inside a clause, or a missing terminator. *)

val parse_file : string -> Solver.proof_event list
(** {!parse_string} over a file's contents. *)
