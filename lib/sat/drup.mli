(** Independent DRUP proof checking.

    Validates an UNSAT answer without trusting the solver: every learned
    clause must follow from the current formula by {e reverse unit
    propagation} (assuming the clause's negation and propagating units
    must yield a conflict), and the proof must derive the empty clause.
    The checker shares no code with the solver's propagation engine. *)

type verdict =
  | Valid  (** the proof derives the empty clause, every step RUP-checked *)
  | Invalid_step of int  (** 0-based index of the first non-RUP addition *)
  | Incomplete  (** all steps valid but the empty clause never derived *)

val check :
  Literal.t list list -> Solver.proof_event list -> verdict
(** [check formula proof] where [formula] is the original clause set. *)

val check_solver :
  Literal.t list list -> Solver.t -> verdict
(** Convenience: check a solver's recorded proof against the formula. *)

val trim :
  ?goal:Literal.t list ->
  Literal.t list list ->
  Solver.proof_event list ->
  Solver.proof_event list
(** [trim ?goal formula proof] drops deleted and unused lemmas. A forward
    pass re-derives each learned clause recording which earlier steps its
    unit propagation touched; a backward pass keeps only the steps
    reachable from the goal — the empty clause when the proof derives
    one, else the RUP derivation of [goal]. The result contains only
    [Learn] events (deletions are dropped: RUP is monotone in the clause
    set, so a proof stays valid without them) and still satisfies
    {!check} whenever the input did. On any anomaly — a non-RUP step, no
    goal derivable — the input proof is returned unchanged, so trimming
    never turns a checkable proof uncheckable. *)

val to_dimacs_proof : Solver.proof_event list -> string
(** DRUP text format (one clause per line, deletions prefixed ["d"]),
    compatible with external checkers such as drat-trim. *)
