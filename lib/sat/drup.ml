module Srcloc = Simgen_base.Srcloc

type verdict = Valid | Invalid_step of int | Incomplete

(* A deliberately simple unit propagator over clause lists: value map per
   variable (0 unset / 1 true / -1 false). Quadratic, independent of the
   solver's watched-literal engine. *)

let lit_value values l =
  let v = values.(Literal.var l) in
  if v = 0 then 0 else if Literal.sign l then -v else v

let assign values l =
  values.(Literal.var l) <- (if Literal.sign l then -1 else 1)

(* Returns [true] when propagation reaches a conflict. *)
let propagate_to_conflict values clauses =
  let changed = ref true in
  let conflict = ref false in
  while !changed && not !conflict do
    changed := false;
    List.iter
      (fun clause ->
        if not !conflict then begin
          let unassigned = ref [] in
          let satisfied = ref false in
          List.iter
            (fun l ->
              match lit_value values l with
              | 1 -> satisfied := true
              | 0 -> unassigned := l :: !unassigned
              | _ -> ())
            clause;
          if not !satisfied then
            (* Duplicate literals must not disguise a unit clause. *)
            match List.sort_uniq compare !unassigned with
            | [] -> conflict := true
            | [ unit_lit ] ->
                assign values unit_lit;
                changed := true
            | _ -> ()
        end)
      clauses
  done;
  !conflict

let rup nvars clauses clause =
  let values = Array.make nvars 0 in
  (* Assume the negation of the clause. A literal and its negation in the
     clause make it a tautology: trivially RUP. *)
  let tautology = ref false in
  List.iter
    (fun l ->
      match lit_value values l with
      | 1 -> tautology := true (* negation already assumed for ~l *)
      | _ -> assign values (Literal.negate l))
    clause;
  !tautology || propagate_to_conflict values clauses

let check formula proof =
  let nvars =
    List.fold_left
      (fun acc clause ->
        List.fold_left (fun acc l -> max acc (Literal.var l + 1)) acc clause)
      1 formula
  in
  let nvars =
    List.fold_left
      (fun acc event ->
        let lits =
          match event with Solver.Learn c -> c | Solver.Delete c -> c
        in
        Array.fold_left (fun acc l -> max acc (Literal.var l + 1)) acc lits)
      nvars proof
  in
  let active = ref formula in
  let rec run index = function
    | [] -> Incomplete
    | Solver.Learn lits :: rest ->
        let clause = Array.to_list lits in
        if not (rup nvars !active clause) then Invalid_step index
        else if clause = [] then Valid
        else begin
          active := clause :: !active;
          run (index + 1) rest
        end
    | Solver.Delete lits :: rest ->
        let target = List.sort compare (Array.to_list lits) in
        let removed = ref false in
        active :=
          List.filter
            (fun c ->
              if (not !removed) && List.sort compare c = target then begin
                removed := true;
                false
              end
              else true)
            !active;
        run (index + 1) rest
  in
  run 0 proof

let check_solver formula solver = check formula (Solver.proof_events solver)

(* Proof trimming: a forward pass re-derives every learned clause while
   recording which steps propagated units or closed the conflict (an
   over-approximation of the resolution antecedents), then a backward pass
   marks the steps reachable from the goal — the empty clause if the proof
   derives one, the caller-supplied [goal] clause otherwise. Only marked
   [Learn] events survive; deletions are dropped entirely, which is sound
   because reverse unit propagation is monotone in the clause set. Any
   anomaly (a step that fails RUP, no derivable goal) returns the proof
   unchanged so trimming can never turn a checkable proof uncheckable;
   [on_anomaly] is told which anomaly forced the bail-out. *)
type trim_anomaly = Non_rup_step of int | Underivable_goal

let trim ?goal ?(on_anomaly = fun (_ : trim_anomaly) -> ()) formula proof =
  let nvars =
    let of_lits acc lits =
      List.fold_left (fun acc l -> max acc (Literal.var l + 1)) acc lits
    in
    let n = List.fold_left of_lits 1 formula in
    let n = match goal with None -> n | Some g -> of_lits n g in
    List.fold_left
      (fun acc event ->
        let lits =
          match event with Solver.Learn c -> c | Solver.Delete c -> c
        in
        Array.fold_left (fun acc l -> max acc (Literal.var l + 1)) acc lits)
      n proof
  in
  let events = Array.of_list proof in
  let n = Array.length events in
  let used = Array.make n [] in
  (* Active clauses tagged with the step that learned them (-1 = formula). *)
  let active = ref (List.map (fun c -> (-1, c)) formula) in
  let empty_step = ref (-1) in
  let ok = ref true in
  let rup_tracked clause =
    let values = Array.make nvars 0 in
    let tautology = ref false in
    List.iter
      (fun l ->
        match lit_value values l with
        | 1 -> tautology := true
        | _ -> assign values (Literal.negate l))
      clause;
    if !tautology then Some []
    else begin
      let steps = ref [] in
      let changed = ref true in
      let conflict = ref false in
      while !changed && not !conflict do
        changed := false;
        List.iter
          (fun (step, cl) ->
            if not !conflict then begin
              let unassigned = ref [] in
              let satisfied = ref false in
              List.iter
                (fun l ->
                  match lit_value values l with
                  | 1 -> satisfied := true
                  | 0 -> unassigned := l :: !unassigned
                  | _ -> ())
                cl;
              if not !satisfied then
                match List.sort_uniq compare !unassigned with
                | [] ->
                    conflict := true;
                    if step >= 0 then steps := step :: !steps
                | [ unit_lit ] ->
                    assign values unit_lit;
                    changed := true;
                    if step >= 0 then steps := step :: !steps
                | _ -> ()
            end)
          !active
      done;
      if !conflict then Some !steps else None
    end
  in
  let i = ref 0 in
  let bad = ref (-1) in
  while !ok && !empty_step < 0 && !i < n do
    (match events.(!i) with
    | Solver.Learn lits -> (
        let clause = Array.to_list lits in
        match rup_tracked clause with
        | None ->
            ok := false;
            bad := !i
        | Some steps ->
            used.(!i) <- steps;
            if clause = [] then empty_step := !i
            else active := (!i, clause) :: !active)
    | Solver.Delete lits ->
        let target = List.sort compare (Array.to_list lits) in
        let removed = ref false in
        active :=
          List.filter
            (fun (_, c) ->
              if (not !removed) && List.sort compare c = target then begin
                removed := true;
                false
              end
              else true)
            !active);
    incr i
  done;
  if not !ok then begin
    on_anomaly (Non_rup_step !bad);
    proof
  end
  else begin
    let needed = Array.make n false in
    let seed steps = List.iter (fun s -> needed.(s) <- true) steps in
    let goal_ok =
      if !empty_step >= 0 then begin
        needed.(!empty_step) <- true;
        seed used.(!empty_step);
        true
      end
      else
        match goal with
        | Some g -> (
            match rup_tracked g with
            | Some steps ->
                seed steps;
                true
            | None -> false)
        | None -> false
    in
    if not goal_ok then begin
      on_anomaly Underivable_goal;
      proof
    end
    else begin
      for j = n - 1 downto 0 do
        if needed.(j) then seed used.(j)
      done;
      let out = ref [] in
      for j = n - 1 downto 0 do
        match events.(j) with
        | Solver.Learn _ -> if needed.(j) then out := events.(j) :: !out
        | Solver.Delete _ -> ()
      done;
      !out
    end
  end

exception Parse_error of Srcloc.t * string

let () =
  Printexc.register_printer (function
    | Parse_error (loc, msg) ->
        Some
          (match Srcloc.to_string loc with
          | Some at -> Printf.sprintf "DRUP parse error: %s: %s" at msg
          | None -> Printf.sprintf "DRUP parse error: %s" msg)
    | _ -> None)

let fail_at loc fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (loc, s))) fmt

(* Inverse of {!to_dimacs_proof}, tolerant of the variations drat-trim
   accepts: comment lines ([c ...]), blank lines, CRLF endings, several
   0-terminated clauses on one line, and clauses spanning lines. A [d]
   token starts a deletion and is only legal at a clause boundary. *)
let parse_string ?file text =
  let floc = Srcloc.make ?file () in
  let events = ref [] in
  let current = ref [] in
  let deleting = ref false in
  let in_clause = ref false in
  let last_at = ref floc in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let at = Srcloc.with_line floc (i + 1) in
         let line = String.trim line in
         if line = "" || line.[0] = 'c' then ()
         else begin
           last_at := at;
           String.split_on_char ' ' line
           |> List.filter (fun s -> s <> "")
           |> List.iter (fun tok ->
                  if tok = "d" then
                    if !in_clause then fail_at at "'d' inside a clause"
                    else begin
                      deleting := true;
                      in_clause := true
                    end
                  else
                    match int_of_string_opt tok with
                    | None -> fail_at at "bad token %S" tok
                    | Some 0 ->
                        let lits = Array.of_list (List.rev !current) in
                        let event =
                          if !deleting then Solver.Delete lits
                          else Solver.Learn lits
                        in
                        events := event :: !events;
                        current := [];
                        deleting := false;
                        in_clause := false
                    | Some d ->
                        current := Literal.of_dimacs d :: !current;
                        in_clause := true)
         end);
  if !in_clause then fail_at !last_at "unterminated clause (missing 0)";
  List.rev !events

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string ~file:path s

let to_dimacs_proof events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun event ->
      let prefix, lits =
        match event with
        | Solver.Learn c -> ("", c)
        | Solver.Delete c -> ("d ", c)
      in
      Buffer.add_string buf prefix;
      Array.iter
        (fun l -> Buffer.add_string buf (string_of_int (Literal.to_dimacs l) ^ " "))
        lits;
      Buffer.add_string buf "0\n")
    events;
  Buffer.contents buf
