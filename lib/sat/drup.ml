type verdict = Valid | Invalid_step of int | Incomplete

(* A deliberately simple unit propagator over clause lists: value map per
   variable (0 unset / 1 true / -1 false). Quadratic, independent of the
   solver's watched-literal engine. *)

let lit_value values l =
  let v = values.(Literal.var l) in
  if v = 0 then 0 else if Literal.sign l then -v else v

let assign values l =
  values.(Literal.var l) <- (if Literal.sign l then -1 else 1)

(* Returns [true] when propagation reaches a conflict. *)
let propagate_to_conflict values clauses =
  let changed = ref true in
  let conflict = ref false in
  while !changed && not !conflict do
    changed := false;
    List.iter
      (fun clause ->
        if not !conflict then begin
          let unassigned = ref [] in
          let satisfied = ref false in
          List.iter
            (fun l ->
              match lit_value values l with
              | 1 -> satisfied := true
              | 0 -> unassigned := l :: !unassigned
              | _ -> ())
            clause;
          if not !satisfied then
            (* Duplicate literals must not disguise a unit clause. *)
            match List.sort_uniq compare !unassigned with
            | [] -> conflict := true
            | [ unit_lit ] ->
                assign values unit_lit;
                changed := true
            | _ -> ()
        end)
      clauses
  done;
  !conflict

let rup nvars clauses clause =
  let values = Array.make nvars 0 in
  (* Assume the negation of the clause. A literal and its negation in the
     clause make it a tautology: trivially RUP. *)
  let tautology = ref false in
  List.iter
    (fun l ->
      match lit_value values l with
      | 1 -> tautology := true (* negation already assumed for ~l *)
      | _ -> assign values (Literal.negate l))
    clause;
  !tautology || propagate_to_conflict values clauses

let check formula proof =
  let nvars =
    List.fold_left
      (fun acc clause ->
        List.fold_left (fun acc l -> max acc (Literal.var l + 1)) acc clause)
      1 formula
  in
  let nvars =
    List.fold_left
      (fun acc event ->
        let lits =
          match event with Solver.Learn c -> c | Solver.Delete c -> c
        in
        Array.fold_left (fun acc l -> max acc (Literal.var l + 1)) acc lits)
      nvars proof
  in
  let active = ref formula in
  let rec run index = function
    | [] -> Incomplete
    | Solver.Learn lits :: rest ->
        let clause = Array.to_list lits in
        if not (rup nvars !active clause) then Invalid_step index
        else if clause = [] then Valid
        else begin
          active := clause :: !active;
          run (index + 1) rest
        end
    | Solver.Delete lits :: rest ->
        let target = List.sort compare (Array.to_list lits) in
        let removed = ref false in
        active :=
          List.filter
            (fun c ->
              if (not !removed) && List.sort compare c = target then begin
                removed := true;
                false
              end
              else true)
            !active;
        run (index + 1) rest
  in
  run 0 proof

let check_solver formula solver = check formula (Solver.proof_events solver)

let to_dimacs_proof events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun event ->
      let prefix, lits =
        match event with
        | Solver.Learn c -> ("", c)
        | Solver.Delete c -> ("d ", c)
      in
      Buffer.add_string buf prefix;
      Array.iter
        (fun l -> Buffer.add_string buf (string_of_int (Literal.to_dimacs l) ^ " "))
        lits;
      Buffer.add_string buf "0\n")
    events;
  Buffer.contents buf
