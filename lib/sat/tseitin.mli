(** Tseitin encoding of Boolean networks and miter construction.

    Bridges the network substrate and the SAT solver: every network node
    gets a solver variable, every gate contributes clauses expressing its
    function through its ISOP covers (on-set and off-set), and miters
    encode (dis)equivalence queries between two nodes or two networks. *)

type env
(** Encoding context: a solver plus the node-to-variable maps of the
    networks encoded into it. *)

val create : ?record:bool -> unit -> env
(** [record] (default [false]) keeps a copy of every emitted clause so
    {!clauses} can replay the encoding — the [simgen_check] CNF linter
    audits that stream. Off by default: the hot fresh-solver miter path
    should not pay for a clause log. *)

val solver : env -> Solver.t

val clauses : env -> Literal.t list list
(** Clauses emitted so far, oldest first, exactly as handed to the solver
    (before solver-side normalization). Empty unless the env was created
    with [~record:true]. *)

val encode_network : env -> Simgen_network.Network.t -> Literal.var array
(** Encode all nodes; result maps node id to solver variable. Calling it
    twice on different networks shares nothing (use {!encode_shared_pis} to
    tie inputs together for CEC). *)

val encode_shared_pis :
  env ->
  Simgen_network.Network.t ->
  Simgen_network.Network.t ->
  Literal.var array * Literal.var array
(** Encode two networks over one shared set of PI variables (they must have
    the same number of PIs). *)

val xor_var : env -> Literal.var -> Literal.var -> Literal.var
(** Fresh variable constrained to the XOR of two others. *)

val assert_true : env -> Literal.t -> unit

val node_pair_miter :
  env -> vars:Literal.var array -> Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id -> Literal.t
(** Literal that is satisfiable iff the two (already encoded) nodes can
    differ; solve with it as an assumption. *)

val pi_values :
  env -> Simgen_network.Network.t -> Literal.var array -> bool array
(** After a [Sat] answer, extract the PI assignment (by PI index) from the
    model. *)
