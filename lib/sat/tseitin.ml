module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Cube = Simgen_network.Cube
module Isop = Simgen_network.Isop

type env = { s : Solver.t; mutable recorded : Literal.t list list option }

let create ?(record = false) () =
  { s = Solver.create (); recorded = (if record then Some [] else None) }

let solver env = env.s

let clauses env = match env.recorded with Some cs -> List.rev cs | None -> []

(* All emission funnels through here so a recording env captures the exact
   clause stream handed to the solver (before any solver-side
   normalization) — the stream the CNF linter audits. *)
let emit env clause =
  (match env.recorded with
   | Some cs -> env.recorded <- Some (clause :: cs)
   | None -> ());
  Solver.add_clause env.s clause

(* Clauses for [y <-> f(fanin vars)] from the ISOP covers: every on-set cube
   implies y, every off-set cube implies ~y. The two covers partition the
   input space, so the encoding is complete in both directions. *)
let encode_gate env f fanin_vars y =
  List.iter
    (fun (c : Cube.t) ->
      let clause = ref [ Literal.make y (not c.Cube.out) ] in
      Array.iteri
        (fun i l ->
          match l with
          | Cube.DC -> ()
          | Cube.T -> clause := Literal.neg fanin_vars.(i) :: !clause
          | Cube.F -> clause := Literal.pos fanin_vars.(i) :: !clause)
        c.Cube.lits;
      emit env !clause)
    (Isop.rows f)

let encode_with_pis env net pi_vars =
  let vars = Array.make (N.num_nodes net) (-1) in
  N.iter_nodes net (fun id ->
      match N.kind net id with
      | N.Pi idx -> vars.(id) <- pi_vars.(idx)
      | N.Gate f ->
          let y = Solver.new_var env.s in
          vars.(id) <- y;
          (match TT.is_const f with
           | Some b -> emit env [ Literal.make y (not b) ]
           | None ->
               let fanin_vars =
                 Array.map (fun fi -> vars.(fi)) (N.fanins net id)
               in
               encode_gate env f fanin_vars y));
  vars

let encode_network env net =
  let pi_vars = Array.init (N.num_pis net) (fun _ -> Solver.new_var env.s) in
  encode_with_pis env net pi_vars

let encode_shared_pis env net1 net2 =
  if N.num_pis net1 <> N.num_pis net2 then
    invalid_arg "Tseitin.encode_shared_pis: PI count mismatch";
  let pi_vars = Array.init (N.num_pis net1) (fun _ -> Solver.new_var env.s) in
  (encode_with_pis env net1 pi_vars, encode_with_pis env net2 pi_vars)

let xor_var env a b =
  let y = Solver.new_var env.s in
  (* y <-> a xor b *)
  emit env [ Literal.neg y; Literal.pos a; Literal.pos b ];
  emit env [ Literal.neg y; Literal.neg a; Literal.neg b ];
  emit env [ Literal.pos y; Literal.neg a; Literal.pos b ];
  emit env [ Literal.pos y; Literal.pos a; Literal.neg b ];
  y

let assert_true env l = emit env [ l ]

let node_pair_miter env ~vars a b =
  Literal.pos (xor_var env vars.(a) vars.(b))

let pi_values env net vars =
  let values = Array.make (N.num_pis net) false in
  Array.iter
    (fun id ->
      match N.kind net id with
      | N.Pi idx -> values.(idx) <- Solver.value env.s vars.(id)
      | N.Gate _ -> assert false)
    (N.pis net);
  values
