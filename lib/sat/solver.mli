(** A CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP conflict analysis with recursive clause minimisation, EVSIDS
    branching, phase saving, Luby restarts and activity-based learned-clause
    deletion. This is the verification engine behind SAT sweeping (paper
    §2.2, §6.3): each equivalence query becomes one [solve] call whose
    count and runtime the benchmarks report. *)

type t

type result = Sat | Unsat

val create : unit -> t

val new_var : t -> Literal.var
(** Fresh variable; variables are numbered consecutively from 0. *)

val num_vars : t -> int

val add_clause : t -> Literal.t list -> unit
(** Add a problem clause. Adding the empty clause (or two conflicting unit
    clauses) makes the instance trivially unsatisfiable. Clauses may only
    be added at decision level 0, i.e. between [solve] calls. *)

val solve : ?assumptions:Literal.t list -> t -> result
(** Decide satisfiability under optional assumptions. The solver is
    reusable: further clauses may be added and [solve] called again —
    including after an [Unsat] answer under assumptions, which leaves the
    instance itself intact (the incremental-session pattern: guard a
    temporary constraint behind an activation literal, solve with the
    literal assumed, then retire it with a unit clause). *)

type limited_result = LSat | LUnsat | LUnknown

val solve_limited :
  ?assumptions:Literal.t list ->
  ?max_conflicts:int ->
  ?max_propagations:int ->
  t ->
  limited_result
(** [solve] with per-call budgets. When the search exceeds
    [max_conflicts] conflicts or [max_propagations] propagations
    (counted for this call only) it backtracks to level 0 and answers
    [LUnknown]; the instance stays intact, all clauses learned so far
    are kept, and a later call — with a larger budget or none — resumes
    the work already paid for. A non-positive budget answers [LUnknown]
    immediately. Omitting both budgets never answers [LUnknown]. The
    degradation ladder in [Sweeper] is built on this call. *)

val failed_assumptions : t -> Literal.t list
(** After [solve ~assumptions] returned [Unsat]: the subset of the
    assumptions the refutation actually used (MiniSat's final conflict,
    un-negated), in no particular order. Empty when the instance is
    unsatisfiable regardless of the assumptions — callers use this to tell
    a dead query (its activation literal failed) from a dead instance.
    Reset by the next [solve] call. *)

val value : t -> Literal.var -> bool
(** Model value after a [Sat] answer. Unconstrained variables report their
    saved phase. *)

val model : t -> bool array

(** {2 DRUP proof logging} *)

type proof_event =
  | Learn of Literal.t array  (** clause added by conflict analysis *)
  | Delete of Literal.t array  (** learned clause removed from the database *)

val enable_proof : t -> unit
(** Start recording a DRUP proof (call before adding clauses or solving).
    Every learned clause is a reverse-unit-propagation consequence of the
    formula so far; an UNSAT answer ends with the empty clause. Verify
    with {!Drup.check}. *)

val proof_events : t -> proof_event list
(** Recorded events, oldest first ([] when logging is off). *)

val proof_event_count : t -> int
(** Number of events recorded so far. O(1); use with
    {!proof_events_from} to slice a session's proof stream per query. *)

val proof_events_from : t -> int -> proof_event list
(** [proof_events_from s i] returns the events with oldest-first index
    [>= i], oldest first. Costs O(count - i): remembering the count
    before a query and slicing after it yields that query's certificate
    without copying the whole log. *)

(** {2 Statistics} *)

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
val num_restarts : t -> int
val num_learned : t -> int

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned : int;
}
(** Lifetime counters in one immutable snapshot. *)

val stats : t -> stats
(** Snapshot the counters; subtracting two snapshots prices a single
    [solve] call, which is how the sweeping telemetry reports per-call
    conflict/propagation deltas. *)
