(** A CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP conflict analysis with recursive clause minimisation, EVSIDS
    branching, phase saving, Luby restarts and LBD-tiered learned-clause
    deletion (Audemard–Simon). This is the verification engine behind SAT
    sweeping (paper §2.2, §6.3): each equivalence query becomes one [solve]
    call whose count and runtime the benchmarks report.

    The clause database is managed for long-lived incremental use: learned
    clauses carry their literal block distance and are reduced on a
    conflict schedule that survives [solve]-call boundaries, problem
    clauses can be registered under a group id and physically retracted
    with {!remove_group}, and {!simplify} garbage-collects clauses
    satisfied at level 0 while compacting every watch list. The Luby
    restart sequence likewise continues across calls, so assumption-heavy
    sessions (many short queries on one instance) restart like one long
    search would. *)

type t

type result = Sat | Unsat

val create : unit -> t

val new_var : t -> Literal.var
(** Fresh variable; variables are numbered consecutively from 0. *)

val num_vars : t -> int

val add_clause : ?group:int -> t -> Literal.t list -> unit
(** Add a problem clause. Adding the empty clause (or two conflicting unit
    clauses) makes the instance trivially unsatisfiable. Clauses may only
    be added at decision level 0, i.e. between [solve] calls.

    [?group] registers the stored clause under a client-chosen id so the
    whole group can later be retracted with {!remove_group}. Clauses that
    are not stored — units, tautologies, clauses already satisfied at
    level 0 — are never registered: a unit in particular is irreversible,
    so retractable constraints must be guarded behind an activation
    literal (making them at least binary) in the usual incremental-SAT
    style. *)

val remove_group : ?proof:bool -> t -> int -> int
(** [remove_group s g] physically deletes every clause registered under
    group [g]: the clauses are detached from the watch lists immediately
    and dropped from the clause database at the next compaction. Returns
    the number of clauses removed (0 for an unknown group). Only at
    decision level 0.

    Root-level implications derived from a removed clause stay on the
    trail; removal is only sound when the retracted clauses are
    consequences of (or guarded against) the remaining theory — the
    session discipline of activation literals and conservative-extension
    gate encodings guarantees exactly that. With [~proof:false] the
    deletions are not recorded as {!Delete} events; a proof checker that
    keeps a deleted clause can only get stronger, so suppression is
    always sound and is used for clauses the certificate checker
    reconstructs and retires by other means. *)

val simplify : t -> unit
(** Garbage-collect the clause database at decision level 0: remove every
    clause satisfied by the root-level assignment (recording {!Delete}
    proof events for learnt clauses), drop clauses retracted by
    {!remove_group} from the clause lists, and rebuild — compact — all
    watch lists. Called automatically at [solve] entry on a
    propagation-volume schedule; exposed for clients that want a
    deterministic compaction point. *)

val focus_decisions : t -> Literal.var list -> unit
(** Restrict the search to the given variables for subsequent solves
    (the previous focus, if any, is replaced). Assumptions are still
    decided as usual; branching never picks a variable outside the
    focus, and above the root, propagation does not assign one either —
    a clause that becomes unit on an out-of-focus literal freezes for
    the rest of the call (its implied variable can then never be
    assigned within the call, so the clause can never be falsified and
    no conflict is missed). Root-level implications always propagate.

    A [Sat] answer under focus means the focused variables have a total
    assignment that propagates to a fixpoint without conflict; variables
    the search never reached are left unassigned ({!value} then reports
    their saved phase). This equals full satisfiability exactly when
    every out-of-focus variable is extendable — constrained only by
    clauses that some completion of the focus assignment always
    satisfies, e.g. gate encodings whose fanin cone lies inside the
    focus. That contract is the caller's to uphold; the sweep session's
    conservative-extension cone encodings are the intended client
    (DESIGN.md §13 spells out the argument). [Unsat] answers are exact
    regardless: conflicts only ever involve genuinely falsified
    clauses. *)

val unfocus_decisions : t -> unit
(** Lift the focus: branching considers every variable again. *)

val solve : ?assumptions:Literal.t list -> t -> result
(** Decide satisfiability under optional assumptions. The solver is
    reusable: further clauses may be added and [solve] called again —
    including after an [Unsat] answer under assumptions, which leaves the
    instance itself intact (the incremental-session pattern: guard a
    temporary constraint behind an activation literal, solve with the
    literal assumed, then retire it with a unit clause). *)

(** Per-call search budgets for {!solve_limited}, consolidated in one
    record. [unlimited] bounds nothing; [conflicts n] / [propagations n]
    build single-budget limits. *)
module Limits : sig
  type t = { conflicts : int option; propagations : int option }

  val unlimited : t
  val conflicts : int -> t
  val propagations : int -> t
end

type limited_result = LSat | LUnsat | LUnknown

val solve_limited :
  ?assumptions:Literal.t list -> ?limits:Limits.t -> t -> limited_result
(** [solve] with per-call budgets. When the search exceeds
    [limits.conflicts] conflicts or [limits.propagations] propagations
    (counted for this call only) it backtracks to level 0 and answers
    [LUnknown]; the instance stays intact, all clauses learned so far
    are kept, and a later call — with a larger budget or none — resumes
    the work already paid for. A non-positive budget answers [LUnknown]
    immediately. The default [Limits.unlimited] never answers [LUnknown].
    The degradation ladder in [Sweeper] is built on this call. *)

val failed_assumptions : t -> Literal.t list
(** After [solve ~assumptions] returned [Unsat]: the subset of the
    assumptions the refutation actually used (MiniSat's final conflict,
    un-negated), in no particular order. Empty when the instance is
    unsatisfiable regardless of the assumptions — callers use this to tell
    a dead query (its activation literal failed) from a dead instance.
    Reset by the next [solve] call. *)

val value : t -> Literal.var -> bool
(** Model value after a [Sat] answer. Unconstrained variables report their
    saved phase. *)

val model : t -> bool array

(** {2 DRUP proof logging} *)

type proof_event =
  | Learn of Literal.t array  (** clause added by conflict analysis *)
  | Delete of Literal.t array
      (** clause physically removed from the database: learnt-clause
          reduction ({!simplify} / LBD-tiered reduce) or problem-clause
          retraction ({!remove_group}) *)

val enable_proof : t -> unit
(** Start recording a DRUP proof (call before adding clauses or solving).
    Every learned clause is a reverse-unit-propagation consequence of the
    formula so far; an UNSAT answer ends with the empty clause. Verify
    with {!Drup.check}. *)

val proof_events : t -> proof_event list
(** Recorded events, oldest first ([] when logging is off). *)

val proof_event_count : t -> int
(** Number of events recorded so far. O(1); use with
    {!proof_events_from} to slice a session's proof stream per query. *)

val proof_events_from : t -> int -> proof_event list
(** [proof_events_from s i] returns the events with oldest-first index
    [>= i], oldest first. Costs O(count - i): remembering the count
    before a query and slicing after it yields that query's certificate
    without copying the whole log. *)

(** {2 Statistics} *)

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
val num_restarts : t -> int
val num_learned : t -> int

val num_clauses : t -> int
(** Live (stored, not removed) problem clauses. *)

val num_learnts : t -> int
(** Live learnt clauses. *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned : int;  (** learnt clauses ever created *)
  deleted : int;  (** learnt clauses deleted (reduction + simplify) *)
  removed : int;  (** problem clauses retracted or simplified away *)
  reductions : int;  (** LBD-tiered [reduce_db] passes *)
  compactions : int;  (** watch-list rebuilds ([simplify] passes) *)
  live_clauses : int;  (** gauge: current live problem clauses *)
  live_learnts : int;  (** gauge: current live learnt clauses *)
  lbd_core : int;  (** gauge: live learnts with LBD <= 2 (kept forever) *)
  lbd_mid : int;  (** gauge: live learnts with 2 < LBD <= 6 *)
  lbd_local : int;  (** gauge: live learnts with LBD > 6 (first to go) *)
}
(** Lifetime counters plus clause-database gauges in one immutable
    snapshot. The first nine fields are monotone counters — subtracting
    two snapshots prices a single [solve] call, which is how the sweeping
    telemetry reports per-call deltas. The [live_*] / [lbd_*] fields are
    instantaneous gauges; differencing them is meaningless. *)

val stats : t -> stats
(** Snapshot the counters; subtracting two snapshots prices a single
    [solve] call, which is how the sweeping telemetry reports per-call
    conflict/propagation deltas. *)

(** {2 Solver-state sanitizer}

    Invariant audits over the live solver state, reported as
    {!Simgen_base.Runtime_check.Violation} with stable [R]-codes:

    - [R007] — watch integrity: every live clause with two or more
      literals is watched on the negations of its first two literals and
      on nothing else; at a root fixpoint no watched literal is false at
      the root without a true partner.
    - [R008] — reason/trail consistency: every implication's reason
      clause has the implied literal first, every other literal false,
      and has not been detached.
    - [R009] — decision-heap consistency: [heap]/[heap_pos] form a
      bijection and the max-heap property holds; re-checked after
      {!focus_decisions} / {!unfocus_decisions} when sampling is armed.
    - [R010] — fence soundness: during a focused call no out-of-focus
      variable is implied above the root (decisions and assumptions are
      exempt: they are the caller's).
    - [R011] — no detached clause lingers on a watch list after
      {!remove_group} / clause-database reduction / {!simplify}.
    - [R012] — the nine monotone {!stats} counters never regress.
    - [R013] — the live-clause gauges agree with the clause database.

    [audit] runs everything on demand (O(database)); [set_audit] arms a
    cheap sampled subset — R008/R009/R010/R012, O(trail + heap) — that
    runs every [every]-th conflict inside {!solve_limited}, at the one
    point mid-search where the invariants are all supposed to hold. A
    disarmed solver pays one integer compare per conflict. *)

val audit : t -> unit
(** Full invariant audit; raises [Runtime_check.Violation] on the first
    broken invariant. Call at decision level 0. *)

val set_audit : t -> every:int -> unit
(** Arm ([every > 0]) or disarm ([every <= 0]) the sampled audit. *)

val audit_sampling : t -> bool
(** Whether the sampled audit is armed. *)

(** Deliberate state corruptions for exercising the sanitizer — the
    seeded-corruption matrix in the test suite. Each breaks exactly the
    invariant named by one R-code. Never use outside tests. *)
type corruption =
  | Drop_watch  (** unhook a clause from one watch list (R007) *)
  | Scramble_reason
      (** repoint a trail literal's reason at a clause that does not
          imply it (R008) *)
  | Break_heap  (** swap heap entries without fixing [heap_pos] (R009) *)
  | Break_fence  (** disable the focus propagation fence (R010) *)
  | Leak_detached  (** mark a clause removed but leave it watched (R011) *)
  | Regress_stats  (** decrement a monotone counter (R012) *)
  | Skew_gauge  (** bump a live-clause gauge (R013) *)

val corrupt : t -> corruption -> unit
(** Apply one corruption; raises [Invalid_argument] when the solver has
    no state to corrupt (e.g. no live clause). *)
