module Srcloc = Simgen_base.Srcloc

exception Parse_error of Srcloc.t * string

let () =
  Printexc.register_printer (function
    | Parse_error (loc, msg) ->
        Some
          (match Srcloc.to_string loc with
           | Some at -> Printf.sprintf "DIMACS parse error: %s: %s" at msg
           | None -> Printf.sprintf "DIMACS parse error: %s" msg)
    | _ -> None)

let fail_at loc fmt = Printf.ksprintf (fun s -> raise (Parse_error (loc, s))) fmt

let parse_string ?file text =
  let floc = Srcloc.make ?file () in
  let loc line = Srcloc.with_line floc line in
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let seen_header = ref false in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let at = loc (i + 1) in
         let line = String.trim line in
         if line = "" || line.[0] = 'c' then ()
         else if line.[0] = 'p' then begin
           match
             String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
           with
           | [ "p"; "cnf"; nv; _nc ] ->
               seen_header := true;
               (match int_of_string_opt nv with
                | Some n -> nvars := n
                | None -> fail_at at "bad header")
           | _ -> fail_at at "bad header line %S" line
         end
         else
           String.split_on_char ' ' line
           |> List.filter (fun s -> s <> "")
           |> List.iter (fun tok ->
                  match int_of_string_opt tok with
                  | None -> fail_at at "bad token %S" tok
                  | Some 0 ->
                      clauses := List.rev !current :: !clauses;
                      current := []
                  | Some d ->
                      nvars := max !nvars (abs d);
                      current := Literal.of_dimacs d :: !current));
  if !current <> [] then clauses := List.rev !current :: !clauses;
  if not !seen_header then fail_at floc "missing p cnf header";
  (!nvars, List.rev !clauses)

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string ~file:path s

let to_string nvars clauses =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter
        (fun l -> Buffer.add_string buf (Printf.sprintf "%d " (Literal.to_dimacs l)))
        clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let write_file path nvars clauses =
  let oc = open_out path in
  output_string oc (to_string nvars clauses);
  close_out oc

let load_into solver text =
  let nvars, clauses = parse_string text in
  for _ = Solver.num_vars solver + 1 to nvars do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses
