exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_string text =
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let seen_header = ref false in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = 'c' then ()
         else if line.[0] = 'p' then begin
           match
             String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
           with
           | [ "p"; "cnf"; nv; _nc ] ->
               seen_header := true;
               (match int_of_string_opt nv with
                | Some n -> nvars := n
                | None -> fail "bad header")
           | _ -> fail "bad header line %S" line
         end
         else
           String.split_on_char ' ' line
           |> List.filter (fun s -> s <> "")
           |> List.iter (fun tok ->
                  match int_of_string_opt tok with
                  | None -> fail "bad token %S" tok
                  | Some 0 ->
                      clauses := List.rev !current :: !clauses;
                      current := []
                  | Some d ->
                      nvars := max !nvars (abs d);
                      current := Literal.of_dimacs d :: !current));
  if !current <> [] then clauses := List.rev !current :: !clauses;
  if not !seen_header then fail "missing p cnf header";
  (!nvars, List.rev !clauses)

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s

let to_string nvars clauses =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter
        (fun l -> Buffer.add_string buf (Printf.sprintf "%d " (Literal.to_dimacs l)))
        clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let write_file path nvars clauses =
  let oc = open_out path in
  output_string oc (to_string nvars clauses);
  close_out oc

let load_into solver text =
  let nvars, clauses = parse_string text in
  for _ = Solver.num_vars solver + 1 to nvars do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses
