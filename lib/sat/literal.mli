(** SAT variables and literals.

    A variable is a non-negative [int]; a literal packs a variable and a
    sign as [2 * var + (if negative then 1 else 0)]. *)

type var = int
type t = int

val pos : var -> t
val neg : var -> t
val make : var -> bool -> t
(** [make v sign] is negative when [sign] is [true]. *)

val var : t -> var
val sign : t -> bool
(** [true] for a negative literal. *)

val negate : t -> t
val to_string : t -> string
(** E.g. ["x3"] / ["~x3"]. *)

val to_dimacs : t -> int
(** 1-based signed integer. *)

val of_dimacs : int -> t
