(* Fault-site registry.

   One mutex guards every site record; [active] is the lock-free fast
   path. The per-site RNG is seeded from [seed lxor hash name] so that
   arming two sites with the same seed still gives them independent
   streams, and the same (site, seed) pair always fires on the same
   sequence of probe evaluations. *)

module Rng = Simgen_base.Rng
module Shared = Simgen_base.Shared

exception Injected of string

type site = {
  name : string;
  mutable armed : bool;
  mutable prob : float;
  mutable rng : Rng.t;
  mutable remaining : int; (* firings left; max_int = unlimited *)
  mutable fired : int;
}

let sites =
  [
    "sat-budget";
    "session-corrupt";
    "parse";
    "cache-poison";
    "serve-cache-poison";
    "gen-giveup";
    "worker-crash";
    "worker-stall";
    "conn-drop";
    "disk-full";
    "slow-client";
    "journal-torn-write";
  ]

let mutex = Shared.Mutex.create ~loc:(Shared.here __POS__) "fault.registry.lock"
let active = Shared.Atomic.make ~loc:(Shared.here __POS__) "fault.active" false
let enabled () = Shared.Atomic.get active

let registry : (string, site) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun name ->
      Hashtbl.replace tbl name
        {
          name;
          armed = false;
          prob = 0.0;
          rng = Rng.create 0;
          remaining = 0;
          fired = 0;
        })
    sites;
  tbl

let find name =
  match Hashtbl.find_opt registry name with
  | Some s -> s
  | None -> invalid_arg ("Fault: unknown site " ^ name)

let locked f = Shared.Mutex.with_lock mutex f

let refresh_active () =
  Shared.Atomic.set active
    (Hashtbl.fold (fun _ s acc -> acc || s.armed) registry false)

let arm ?(times = max_int) ?(prob = 1.0) ?(seed = 0) name =
  let s = find name in
  locked (fun () ->
      s.armed <- true;
      s.prob <- prob;
      s.rng <- Rng.create (seed lxor Hashtbl.hash name);
      s.remaining <- times;
      refresh_active ())

let arm_all ?times ?prob ?seed () =
  List.iter (fun name -> arm ?times ?prob ?seed name) sites

let disarm name =
  let s = find name in
  locked (fun () ->
      s.armed <- false;
      refresh_active ())

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ s ->
          s.armed <- false;
          s.fired <- 0)
        registry;
      refresh_active ())

let fire name =
  let s = find name in
  locked (fun () ->
      if (not s.armed) || s.remaining <= 0 then false
      else if Rng.float s.rng 1.0 < s.prob then begin
        s.remaining <- (if s.remaining = max_int then max_int else s.remaining - 1);
        s.fired <- s.fired + 1;
        true
      end
      else false)

let crash name = if enabled () && fire name then raise (Injected name)
let fired name = locked (fun () -> (find name).fired)

let log () =
  locked (fun () ->
      List.filter_map
        (fun name ->
          let s = find name in
          if s.fired > 0 then Some (name, s.fired) else None)
        sites)

(* [SIMGEN_FAULT=site[:prob[:seed]],...] with [all] fanning out. *)
let configure spec =
  let entry e =
    match String.split_on_char ':' (String.trim e) with
    | [] | [ "" ] -> Error "empty fault entry"
    | name :: rest -> (
        let parse () =
          match rest with
          | [] -> Ok (1.0, 0)
          | [ p ] -> (
              match float_of_string_opt p with
              | Some p when p >= 0.0 && p <= 1.0 -> Ok (p, 0)
              | _ -> Error (Printf.sprintf "bad probability %S in %S" p e))
          | [ p; s ] -> (
              match (float_of_string_opt p, int_of_string_opt s) with
              | Some p, Some s when p >= 0.0 && p <= 1.0 -> Ok (p, s)
              | _ -> Error (Printf.sprintf "bad prob/seed in %S" e))
          | _ -> Error (Printf.sprintf "too many fields in %S" e)
        in
        match parse () with
        | Error _ as err -> err
        | Ok (prob, seed) ->
            if name = "all" then begin
              arm_all ~prob ~seed ();
              Ok ()
            end
            else if List.mem name sites then begin
              arm ~prob ~seed name;
              Ok ()
            end
            else Error (Printf.sprintf "unknown fault site %S" name))
  in
  let rec apply = function
    | [] -> Ok ()
    | e :: rest -> ( match entry e with Ok () -> apply rest | Error _ as err -> err)
  in
  apply (String.split_on_char ',' spec)

let () =
  match Sys.getenv_opt "SIMGEN_FAULT" with
  | None | Some "" -> ()
  | Some spec -> (
      match configure spec with
      | Ok () -> ()
      | Error msg -> Printf.eprintf "SIMGEN_FAULT ignored entry: %s\n%!" msg)
