(** Deterministic fault injection.

    A registry of named fault sites planted at the failure-prone seams of
    the stack (SAT budgets, session re-encoding, parsing, the pattern
    cache, guided generation, worker domains). Each site is normally
    inert: the planted probe is a single atomic load ({!enabled}) followed
    by a hash-table miss, so production paths pay nothing measurable. Arming
    a site — programmatically with {!arm} or via the [SIMGEN_FAULT]
    environment variable — makes its probe fire deterministically from a
    per-site RNG, which is how the fault-matrix tests replay the exact
    same failure under three different seeds.

    Sites are identities, not behaviours: firing only reports [true] (or
    raises {!Injected} via {!crash}); the code hosting the probe decides
    what "failing" means there — returning [Unknown], corrupting a
    checksum, stalling a domain. That keeps the registry dependency-free
    and the failure semantics next to the code being failed. *)

exception Injected of string
(** Raised by {!crash} when a site fires. The payload is the site name.
    Hosts that can fail by raising use this; the supervisor in
    [lib/runner] recognises it and counts the attempt as faulted. *)

val sites : string list
(** All registered site names, in ladder order:
    ["sat-budget"]; ["session-corrupt"]; ["parse"]; ["cache-poison"];
    ["serve-cache-poison"]; ["gen-giveup"]; ["worker-crash"];
    ["worker-stall"]; ["conn-drop"]; ["disk-full"]; ["slow-client"];
    ["journal-torn-write"]. ["serve-cache-poison"] corrupts a
    function-cache entry after its checksum was computed
    ({!Simgen_sweep.Fun_cache}) — the next lookup must drop it. The last
    four are service-level sites exercised by the soak harness:
    ["conn-drop"] severs a daemon client connection mid-stream,
    ["disk-full"] fails a cache snapshot write as ENOSPC would,
    ["slow-client"] stalls a response write as a slow reader would, and
    ["journal-torn-write"] truncates a cache-journal append mid-line as a
    crash during [write(2)] would. *)

val arm : ?times:int -> ?prob:float -> ?seed:int -> string -> unit
(** [arm site] arms a site. [prob] (default [1.0]) is the chance each
    probe evaluation fires, drawn from a private RNG derived from [seed]
    (default [0]) and the site name. [times] (default unlimited) caps the
    number of firings; [arm ~times:1] gives the "first trigger only"
    injection the fault matrix uses. Unknown names raise
    [Invalid_argument]. Re-arming replaces the previous configuration. *)

val arm_all : ?times:int -> ?prob:float -> ?seed:int -> unit -> unit
(** Arm every registered site with the same configuration. *)

val disarm : string -> unit
(** Disarm one site. Unknown names raise [Invalid_argument]. *)

val reset : unit -> unit
(** Disarm every site and clear firing counters. Tests call this between
    cases; it does not re-read [SIMGEN_FAULT]. *)

val configure : string -> (unit, string) Stdlib.result
(** Parse and apply a [SIMGEN_FAULT] specification: a comma-separated
    list of [site\[:prob\[:seed\]\]] entries, where [site] may be [all].
    [Error _] describes the first malformed entry or unknown site; any
    entries before it are already applied. The module applies
    [SIMGEN_FAULT] from the environment at load time (a malformed value
    warns on stderr rather than aborting the host process). *)

val fire : string -> bool
(** [fire site] is the probe: [true] when the armed site's RNG says this
    evaluation fails. Always [false] for disarmed sites. Thread-safe;
    call it only through a short-circuit on {!enabled} so disarmed
    production runs skip the mutex. Unknown names raise
    [Invalid_argument] (a misspelt probe is a bug, not a disarmed site). *)

val crash : string -> unit
(** [crash site] raises [Injected site] when [fire site] is true. *)

val enabled : unit -> bool
(** [false] iff no site is armed. Probe sites as
    [if Fault.enabled () && Fault.fire "..." then ...] — one atomic load
    is the only cost on the fault-free path. The flag is a
    [Simgen_base.Shared.Atomic] so cross-domain reads of it are ordered
    (and auditable by the race detector); it used to be a plain
    [bool ref] read by worker domains, which was a latent race. *)

val fired : string -> int
(** How many times a site has fired since the last {!reset}. *)

val log : unit -> (string * int) list
(** [(site, fired)] for every site that has fired, in {!sites} order. *)
