(** Cuts for K-LUT technology mapping.

    A cut of an AIG node is a set of "leaf" nodes such that every path from
    a PI to the node passes through a leaf; a K-feasible cut has at most K
    leaves and can be implemented by one K-input LUT. *)

type t = {
  leaves : int array;  (** sorted AIG node ids *)
  mutable depth : int;  (** mapping depth if this cut is chosen *)
  mutable area_flow : float;  (** heuristic area estimate *)
}

val trivial : int -> t
(** The cut containing only the node itself. *)

val merge : int -> t -> t -> int array option
(** [merge k a b] is the sorted union of the leaf sets if it has at most
    [k] leaves. *)

val dominates : t -> t -> bool
(** [dominates a b] iff [a]'s leaves are a subset of [b]'s: [b] is then
    redundant. *)

val equal_leaves : t -> t -> bool

val compare_quality : t -> t -> int
(** Ordering used by the priority-cut filter: smaller depth first, then
    smaller area flow, then fewer leaves. *)
