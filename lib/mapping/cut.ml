type t = { leaves : int array; mutable depth : int; mutable area_flow : float }

let trivial id = { leaves = [| id |]; depth = 0; area_flow = 0.0 }

(* Merge two sorted arrays, bailing out when the union exceeds [k]. *)
let merge k a b =
  let la = a.leaves and lb = b.leaves in
  let na = Array.length la and nb = Array.length lb in
  let out = Array.make k 0 in
  let rec go i j n =
    if n > k then None
    else if i >= na && j >= nb then Some (Array.sub out 0 n)
    else if n = k then None
    else if i >= na then begin
      out.(n) <- lb.(j);
      go i (j + 1) (n + 1)
    end
    else if j >= nb then begin
      out.(n) <- la.(i);
      go (i + 1) j (n + 1)
    end
    else if la.(i) = lb.(j) then begin
      out.(n) <- la.(i);
      go (i + 1) (j + 1) (n + 1)
    end
    else if la.(i) < lb.(j) then begin
      out.(n) <- la.(i);
      go (i + 1) j (n + 1)
    end
    else begin
      out.(n) <- lb.(j);
      go i (j + 1) (n + 1)
    end
  in
  go 0 0 0

let subset small big =
  let ns = Array.length small and nb = Array.length big in
  let rec go i j =
    if i >= ns then true
    else if j >= nb then false
    else if small.(i) = big.(j) then go (i + 1) (j + 1)
    else if small.(i) > big.(j) then go i (j + 1)
    else false
  in
  ns <= nb && go 0 0

let dominates a b = subset a.leaves b.leaves

let equal_leaves a b = a.leaves = b.leaves

let compare_quality a b =
  match compare a.depth b.depth with
  | 0 -> (
      match compare a.area_flow b.area_flow with
      | 0 -> compare (Array.length a.leaves) (Array.length b.leaves)
      | c -> c)
  | c -> c
