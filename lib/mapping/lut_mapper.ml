module Aig = Simgen_aig.Aig
module N = Simgen_network.Network
module TT = Simgen_network.Truth_table

type stats = { luts : int; depth : int; edges : int }

(* Truth table of [root] expressed over the cut [leaves] (sorted node ids):
   evaluate the cone between the leaves and the root by recursion with
   memoisation. *)
let cut_function aig leaves root =
  let k = Array.length leaves in
  let memo = Hashtbl.create 16 in
  let leaf_index = Hashtbl.create 8 in
  Array.iteri (fun i l -> Hashtbl.replace leaf_index l i) leaves;
  let rec table node =
    match Hashtbl.find_opt memo node with
    | Some t -> t
    | None ->
        let t =
          match Hashtbl.find_opt leaf_index node with
          | Some i -> TT.var i k
          | None ->
              if Aig.is_const aig node then TT.create_const k false
              else begin
                assert (Aig.is_and aig node);
                let of_lit l =
                  let t = table (Aig.node_of_lit l) in
                  if Aig.is_complemented l then TT.not_ t else t
                in
                TT.and_ (of_lit (Aig.fanin0 aig node)) (of_lit (Aig.fanin1 aig node))
              end
        in
        Hashtbl.replace memo node t;
        t
  in
  table root

let map_with_stats ?(k = 6) ?(cut_limit = 8) aig =
  if k < 2 || k > TT.max_vars then invalid_arg "Lut_mapper.map: bad k";
  let n = Aig.num_nodes aig in
  let refcounts = Aig.fanout_counts aig in
  let cuts : Cut.t list array = Array.make n [] in
  let best : Cut.t array = Array.make n (Cut.trivial 0) in
  let best_depth = Array.make n 0 in
  let best_area = Array.make n 0.0 in
  (* PIs and the constant node have only the trivial cut. *)
  let init_leaf id =
    let c = Cut.trivial id in
    cuts.(id) <- [ c ];
    best.(id) <- c
  in
  init_leaf 0;
  Array.iter init_leaf (Aig.pis aig);
  Aig.iter_ands aig (fun id ->
      let f0 = Aig.node_of_lit (Aig.fanin0 aig id)
      and f1 = Aig.node_of_lit (Aig.fanin1 aig id) in
      let merged = ref [] in
      List.iter
        (fun c0 ->
          List.iter
            (fun c1 ->
              match Cut.merge k c0 c1 with
              | None -> ()
              | Some leaves ->
                  let depth =
                    Array.fold_left
                      (fun acc l -> max acc (best_depth.(l) + 1))
                      0 leaves
                  in
                  let area_flow =
                    Array.fold_left
                      (fun acc l ->
                        acc +. (best_area.(l) /. float_of_int (max 1 refcounts.(l))))
                      1.0 leaves
                  in
                  merged :=
                    { Cut.leaves; depth; area_flow } :: !merged)
            cuts.(f1))
        cuts.(f0);
      (* Deduplicate, remove dominated cuts, keep the best few. *)
      let sorted = List.sort Cut.compare_quality !merged in
      let kept =
        List.fold_left
          (fun kept c ->
            if
              List.exists
                (fun c' -> Cut.equal_leaves c' c || Cut.dominates c' c)
                kept
            then kept
            else c :: kept)
          [] sorted
        |> List.rev
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      let kept = take cut_limit kept in
      (match kept with
       | [] -> assert false (* the pairwise trivial-cut merge always fits *)
       | b :: _ ->
           best.(id) <- b;
           best_depth.(id) <- b.Cut.depth;
           best_area.(id) <- b.Cut.area_flow);
      (* The trivial cut enables larger cuts upstream but is never chosen
         for covering (it has no LUT semantics of its own). *)
      cuts.(id) <- kept @ [ Cut.trivial id ]);
  (* Backward cover extraction. *)
  let required = Array.make n false in
  Array.iter
    (fun l ->
      let node = Aig.node_of_lit l in
      if Aig.is_and aig node then required.(node) <- true)
    (Aig.pos aig);
  for id = n - 1 downto 0 do
    if required.(id) && Aig.is_and aig id then
      Array.iter
        (fun leaf ->
          if Aig.is_and aig leaf then required.(leaf) <- true)
        best.(id).Cut.leaves
  done;
  (* Build the LUT network: PIs, then one LUT per required AND node in
     topological order. *)
  let net = N.create ~name:(Aig.name aig) () in
  let node_map = Array.make n (-1) in
  Array.iter (fun id -> node_map.(id) <- N.add_pi net) (Aig.pis aig);
  let lut_count = ref 0 and edge_count = ref 0 in
  Aig.iter_ands aig (fun id ->
      if required.(id) then begin
        let leaves = best.(id).Cut.leaves in
        let f = cut_function aig leaves id in
        let fanins =
          Array.map
            (fun leaf ->
              if node_map.(leaf) >= 0 then node_map.(leaf)
              else begin
                (* Constant leaf (node 0): materialise a constant LUT. *)
                assert (Aig.is_const aig leaf);
                let c = N.add_const net false in
                node_map.(leaf) <- c;
                c
              end)
            leaves
        in
        incr lut_count;
        edge_count := !edge_count + Array.length fanins;
        node_map.(id) <- N.add_gate net f fanins
      end);
  (* POs: complemented literals get an inverter LUT; constant POs get a
     constant LUT. *)
  let not_table = TT.not_ (TT.var 0 1) in
  Array.iteri
    (fun i l ->
      let node = Aig.node_of_lit l in
      let po_name = Aig.po_name aig i in
      let driver =
        if Aig.is_const aig node then N.add_const net (Aig.is_complemented l)
        else if Aig.is_complemented l then begin
          incr lut_count;
          incr edge_count;
          N.add_gate net not_table [| node_map.(node) |]
        end
        else node_map.(node)
      in
      N.add_po ?name:po_name net driver)
    (Aig.pos aig);
  ignore !lut_count;
  let depth = Simgen_network.Level.depth net in
  (* Count every gate (constant LUTs included) so the stats match the
     returned network exactly. *)
  (net, { luts = N.num_gates net; depth; edges = !edge_count })

let map ?k ?cut_limit aig = fst (map_with_stats ?k ?cut_limit aig)
