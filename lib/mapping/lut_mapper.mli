(** Cut-based K-LUT technology mapping — the in-repo equivalent of ABC's
    ["if -K 6"] used to prepare every benchmark in the paper (§6.1).

    Priority-cut enumeration (Mishchenko et al.): each AIG node keeps the
    best few K-feasible cuts ranked depth-first with area-flow as
    tie-break; the cover is extracted backward from the POs and each chosen
    cut becomes one LUT whose truth table is computed from its cone. *)

type stats = {
  luts : int;
  depth : int;
  edges : int;  (** total LUT fanin count *)
}

val map : ?k:int -> ?cut_limit:int -> Simgen_aig.Aig.t -> Simgen_network.Network.t
(** [map ~k aig] returns a LUT network with [max_fanin_arity <= k]
    (default [k = 6], [cut_limit = 8] priority cuts per node) that is
    functionally equivalent to the AIG. *)

val map_with_stats :
  ?k:int -> ?cut_limit:int -> Simgen_aig.Aig.t -> Simgen_network.Network.t * stats
