(** The five pattern-generation strategies evaluated in the paper (§6.2). *)

type t =
  | RevS  (** reverse simulation baseline (Zhang et al.) *)
  | SI_RD  (** simple implication + random decision *)
  | AI_RD  (** advanced implication + random decision *)
  | AI_DC  (** advanced implication + don't-care heuristic *)
  | AI_DC_MFFC  (** advanced implication + DC + MFFC heuristics = SimGen *)

val all : t list

val name : t -> string
(** Short label as used in Table 1 ("RevS", "SI+RD", ...). *)

val of_string : string -> t option

val config : t -> Config.t
