module TT = Simgen_network.Truth_table
module Isop = Simgen_network.Isop
module Cube = Simgen_network.Cube

module Table = Hashtbl.Make (struct
  type t = TT.t

  let equal = TT.equal
  let hash = TT.hash
end)

type t = Cube.t array Table.t

let create () = Table.create 64

let get cache f =
  match Table.find_opt cache f with
  | Some rows -> rows
  | None ->
      let rows = Array.of_list (Isop.rows f) in
      Table.replace cache f rows;
      rows
