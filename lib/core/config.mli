(** Strategy configuration for the pattern generator.

    The implication and decision strategies of Algorithm 1, plus the
    propagation direction that distinguishes SimGen from plain reverse
    simulation. *)

type implication =
  | Simple
      (** Definition 2.2 applied to rows: assign only when exactly one row
          of the node's truth table matches the current values (§4). *)
  | Advanced
      (** Definition 4.1: assign every input/output position that takes the
          same concrete value in all matching rows (§4). *)

type decision =
  | Random_row  (** uniform choice among matching rows *)
  | Dc_weighted  (** roulette wheel over Eq. (1) DC counts (§5) *)
  | Dc_mffc_weighted
      (** roulette wheel over Eq. (4): [alpha * dc_size + beta * mffc_rank]
          (§5). *)

type direction =
  | Backward_only
      (** Reverse-simulation style: a gate is examined only when its output
          value arrives; values never flow towards the POs. *)
  | Bidirectional
      (** SimGen: implications run backward (output to inputs) and forward
          (inputs to output), independently of levels (§2.4). *)

type t = {
  implication : implication;
  decision : decision;
  direction : direction;
  alpha : float;  (** Eq. (4) weight of the DC count. *)
  beta : float;  (** Eq. (4) weight of the (normalised) MFFC rank. *)
}

val default : t
(** AI+DC+MFFC, bidirectional — the configuration the paper calls SimGen. *)

val reverse_simulation : t
(** RevS baseline: backward-only, simple implication, random decisions. *)
