(** Decision: choosing a truth-table row when implication stalls (paper §5).

    Given the candidate gate's matching rows, ranks them by the don't-care
    count (Eq. 1) and the MFFC metric (Eqs. 2–3), combines the two into the
    priority of Eq. 4 and draws a row with a stochastic-acceptance roulette
    wheel. The chosen row's concrete values are then assigned through the
    engine. *)

type t

val create : ?rng:Simgen_base.Rng.t -> Engine.t -> t
(** Builds the MFFC depth cache lazily on first use (only the
    [Dc_mffc_weighted] policy pays for it). *)

val mffc_rank :
  t -> Simgen_network.Network.node_id -> Simgen_network.Cube.t -> float
(** Equation (3) for a row of the given gate: sum over non-DC inputs of the
    fanin's MFFC depth. *)

val row_priority :
  t -> Simgen_network.Network.node_id -> max_rank:float ->
  Simgen_network.Cube.t -> float
(** Equation (4) with the configured alpha/beta; the MFFC rank is
    normalised by [max_rank] so that the DC count dominates
    (alpha >> beta'). *)

val choose_row :
  t -> Simgen_network.Network.node_id -> Simgen_network.Cube.t list ->
  Simgen_network.Cube.t
(** Select one of the candidate's matching rows according to the engine's
    configured decision policy. The list must be non-empty. *)

val decide : t -> Simgen_network.Network.node_id -> (unit, Simgen_network.Network.node_id) result
(** Full decision step on a candidate gate: compute matching rows, choose
    one, assign its values through the engine ([Error g] when no row
    matches, i.e. the decision itself exposes a conflict). Increments the
    decision counter. *)

val num_decisions : t -> int
