type implication = Simple | Advanced

type decision = Random_row | Dc_weighted | Dc_mffc_weighted

type direction = Backward_only | Bidirectional

type t = {
  implication : implication;
  decision : decision;
  direction : direction;
  alpha : float;
  beta : float;
}

let default =
  {
    implication = Advanced;
    decision = Dc_mffc_weighted;
    direction = Bidirectional;
    alpha = 1.0;
    beta = 0.5;
  }

let reverse_simulation =
  {
    implication = Simple;
    decision = Random_row;
    direction = Backward_only;
    alpha = 1.0;
    beta = 0.0;
  }
