module N = Simgen_network.Network
module Cone = Simgen_network.Cone
module Level = Simgen_network.Level
module Rng = Simgen_base.Rng

type report = {
  vector : bool array;
  satisfied : (N.node_id * bool) list;
  conflicts : int;
  implications : int;
  decisions : int;
  useful : bool;
}

(* One target of Algorithm 1's outer loop: assign OUTgold, then alternate
   implication-to-fixpoint and decisions until every assigned cone gate is
   justified, or a conflict rolls everything back to [init]. *)
let process_target engine decision target gold =
  let net = Engine.network engine in
  let assignment = Engine.assignment engine in
  let init = Engine.checkpoint engine in
  match Value.to_bool (Assignment.value assignment target) with
  | Some existing ->
      (* Pinned by a previous target's propagation. *)
      if existing = gold then `Satisfied else `Conflict
  | None ->
      let cone = Cone.fanin_cone net target in
      let mask = Cone.member_mask net cone in
      (* Candidates on which a decision already made no progress carry a
         justifying cube whose non-DC inputs are all assigned; they are
         skipped, which also makes the loop terminate. *)
      let exhausted = Hashtbl.create 8 in
      let is_candidate id =
        (not (N.is_pi net id))
        && (not (Hashtbl.mem exhausted id))
        && Array.exists
             (fun fi -> not (Assignment.is_assigned assignment fi))
             (N.fanins net id)
      in
      Engine.set engine target gold;
      let rec loop () =
        match Engine.propagate engine with
        | Engine.Conflict_at _ ->
            Engine.rollback engine init;
            `Conflict
        | Engine.Fixpoint -> (
            (* Success when no assigned cone gate awaits justification:
               then every assigned value — the target's in particular —
               holds under any completion of the open PIs, so the final
               random completion of the vector cannot break it. *)
            match
              (* Nodes assigned before this target's checkpoint were
                 justified by earlier, already-successful targets; only
                 values added for this goal can need justification. *)
              Assignment.latest_in ~since:init assignment ~mask is_candidate
            with
            | None -> `Satisfied
            | Some candidate -> (
                let before = Engine.checkpoint engine in
                match Decision.decide decision candidate with
                | Error _ ->
                    Engine.rollback engine init;
                    `Conflict
                | Ok () ->
                    if Engine.checkpoint engine = before then
                      Hashtbl.replace exhausted candidate ();
                    loop ()))
      in
      loop ()

let generate_with engine decision ~rng ~levels outgold =
  let net = Engine.network engine in
  let assignment = Engine.assignment engine in
  let implications0 = Engine.num_implications engine in
  let decisions0 = Decision.num_decisions decision in
  (* Propagation is confined to the union of the targets' fanin cones:
     wide enough for cross-target implications (the values of one target
     constraining its class siblings), narrow enough to keep the paper's
     small runtime overhead over reverse simulation. *)
  let class_scope =
    Cone.member_mask net
      (Cone.fanin_cone_many net (List.map fst outgold))
  in
  Engine.set_scope engine (Some class_scope);
  (* Line 2 of Algorithm 1: order targets by decreasing network depth. *)
  let ordered =
    List.sort
      (fun (a, _) (b, _) -> compare (levels.(b), b) (levels.(a), a))
      outgold
  in
  let satisfied = ref [] in
  let conflicts = ref 0 in
  List.iter
    (fun (target, gold) ->
      match process_target engine decision target gold with
      | `Satisfied -> satisfied := (target, gold) :: !satisfied
      | `Conflict -> incr conflicts)
    ordered;
  (* Complete the vector: every still-open PI takes a random value. *)
  let vector = Array.make (N.num_pis net) false in
  Array.iter
    (fun pi ->
      let idx = match N.kind net pi with N.Pi i -> i | N.Gate _ -> assert false in
      vector.(idx) <-
        (match Value.to_bool (Assignment.value assignment pi) with
         | Some b -> b
         | None -> Rng.bool rng))
    (N.pis net);
  let satisfied = List.rev !satisfied in
  let useful =
    List.exists (fun (_, g) -> g) satisfied
    && List.exists (fun (_, g) -> not g) satisfied
  in
  Engine.set_scope engine None;
  Engine.rollback engine 0;
  {
    vector;
    satisfied;
    conflicts = !conflicts;
    implications = Engine.num_implications engine - implications0;
    decisions = Decision.num_decisions decision - decisions0;
    useful;
  }

let generate ?(config = Config.default) ?rng net outgold =
  let rng = match rng with Some r -> r | None -> Rng.create 0x51A9 in
  let engine = Engine.create ~config net in
  let decision = Decision.create ~rng:(Rng.split rng) engine in
  let levels = Level.compute net in
  generate_with engine decision ~rng ~levels outgold
