module Rng = Simgen_base.Rng

type strategy = Alternating | Random_balanced | Level_split

let alternating targets =
  List.mapi (fun i id -> (id, i mod 2 = 1)) (List.sort compare targets)

let random_balanced rng targets =
  let arr = Array.of_list targets in
  Rng.shuffle rng arr;
  Array.to_list (Array.mapi (fun i id -> (id, i mod 2 = 1)) arr)

let level_split levels targets =
  let sorted =
    List.sort (fun a b -> compare (levels.(a), a) (levels.(b), b)) targets
  in
  let n = List.length sorted in
  List.mapi (fun i id -> (id, i >= n / 2)) sorted

let assign ?(strategy = Alternating) ?rng ?levels targets =
  match strategy with
  | Alternating -> alternating targets
  | Random_balanced ->
      let rng = match rng with Some r -> r | None -> Rng.create 0x601D in
      random_balanced rng targets
  | Level_split -> (
      match levels with
      | Some levels -> level_split levels targets
      | None -> invalid_arg "Outgold.assign: Level_split needs levels")
