type t = RevS | SI_RD | AI_RD | AI_DC | AI_DC_MFFC

let all = [ RevS; SI_RD; AI_RD; AI_DC; AI_DC_MFFC ]

let name = function
  | RevS -> "RevS"
  | SI_RD -> "SI+RD"
  | AI_RD -> "AI+RD"
  | AI_DC -> "AI+DC"
  | AI_DC_MFFC -> "AI+DC+MFFC"

let of_string s =
  match String.uppercase_ascii s with
  | "REVS" -> Some RevS
  | "SI+RD" | "SI_RD" | "SIRD" -> Some SI_RD
  | "AI+RD" | "AI_RD" | "AIRD" -> Some AI_RD
  | "AI+DC" | "AI_DC" | "AIDC" -> Some AI_DC
  | "AI+DC+MFFC" | "AI_DC_MFFC" | "SIMGEN" -> Some AI_DC_MFFC
  | _ -> None

let config = function
  | RevS -> Config.reverse_simulation
  | SI_RD ->
      {
        Config.implication = Config.Simple;
        decision = Config.Random_row;
        direction = Config.Bidirectional;
        alpha = 1.0;
        beta = 0.0;
      }
  | AI_RD ->
      {
        Config.implication = Config.Advanced;
        decision = Config.Random_row;
        direction = Config.Bidirectional;
        alpha = 1.0;
        beta = 0.0;
      }
  | AI_DC ->
      {
        Config.implication = Config.Advanced;
        decision = Config.Dc_weighted;
        direction = Config.Bidirectional;
        alpha = 1.0;
        beta = 0.0;
      }
  | AI_DC_MFFC -> Config.default
