(** Ternary node-value assignments with a rollback trail.

    The [nodeVals] of Algorithm 1: a map from node ids to ternary output
    values, plus the assignment trail that (a) implements the
    checkpoint/rollback on conflict (Algorithm 1, lines 4 and 12) and
    (b) answers [latestUpdated] queries (line 15). *)

type t

val create : int -> t
(** [create num_nodes]: everything starts [Unknown]. *)

val value : t -> int -> Value.t
val is_assigned : t -> int -> bool

val assign : t -> int -> bool -> unit
(** @raise Invalid_argument if the node is already assigned. *)

val checkpoint : t -> int
(** Trail mark to roll back to. *)

val rollback : t -> int -> unit
(** Unassign everything recorded after the mark. When
    {!Simgen_base.Runtime_check.enabled}, a mark outside the current trail
    raises {!Simgen_base.Runtime_check.Violation} instead of silently
    over- or under-rolling. *)

val num_assigned : t -> int

val latest_in : ?since:int -> t -> mask:bool array -> (int -> bool) -> int option
(** [latest_in t ~mask p] scans the trail from the most recent assignment
    backwards and returns the first node that is inside [mask] and
    satisfies [p]. [since] (a checkpoint, default 0) bounds the scan:
    entries older than the mark are not considered. *)

val iter_since : t -> int -> (int -> unit) -> unit
(** Iterate over the nodes assigned after a checkpoint, oldest first. *)

val to_array : t -> Value.t array
(** Snapshot of all values (copy). *)

val audit : t -> unit
(** Invariant audit: the trail and the value map must agree (every trail
    entry assigned exactly once, nothing assigned off-trail). No-op unless
    {!Simgen_base.Runtime_check.enabled}; raises
    {!Simgen_base.Runtime_check.Violation} on failure. O(nodes + trail). *)
