module N = Simgen_network.Network
module Cube = Simgen_network.Cube
module Mffc = Simgen_network.Mffc
module Rng = Simgen_base.Rng

type t = {
  engine : Engine.t;
  rng : Rng.t;
  mutable mffc : Mffc.cache option;
  mutable decisions : int;
}

let create ?rng engine =
  let rng = match rng with Some r -> r | None -> Rng.create 0x5157 in
  { engine; rng; mffc = None; decisions = 0 }

let mffc_cache t =
  match t.mffc with
  | Some c -> c
  | None ->
      let c = Mffc.cache (Engine.network t.engine) in
      t.mffc <- Some c;
      c

let mffc_rank t gate (row : Cube.t) =
  let fanins = N.fanins (Engine.network t.engine) gate in
  let cache = mffc_cache t in
  let total = ref 0.0 in
  Array.iteri
    (fun i l ->
      match l with
      | Cube.DC -> ()
      | Cube.T | Cube.F -> total := !total +. Mffc.cached_depth cache fanins.(i))
    row.Cube.lits;
  !total

let row_priority t gate ~max_rank row =
  let cfg = Engine.config t.engine in
  let dc = float_of_int (Cube.dc_size row) in
  let rank = mffc_rank t gate row in
  let normalised = if max_rank > 0.0 then rank /. max_rank else 0.0 in
  (cfg.Config.alpha *. dc) +. (cfg.Config.beta *. normalised)

(* Roulette-wheel selection via stochastic acceptance (Lipowski &
   Lipowska): draw a row uniformly and accept it with probability
   priority / max_priority. *)
let roulette rng priorities rows =
  let max_p = Array.fold_left max 0.0 priorities in
  if max_p <= 0.0 then rows.(Rng.int rng (Array.length rows))
  else
    let rec draw attempts =
      let i = Rng.int rng (Array.length rows) in
      if attempts > 1000 || Rng.float rng 1.0 <= priorities.(i) /. max_p then
        rows.(i)
      else draw (attempts + 1)
    in
    draw 0

let choose_row t gate = function
  | [] -> invalid_arg "Decision.choose_row: no rows"
  | [ row ] -> row
  | rows -> (
      let cfg = Engine.config t.engine in
      let arr = Array.of_list rows in
      match cfg.Config.decision with
      | Config.Random_row -> arr.(Rng.int t.rng (Array.length arr))
      | Config.Dc_weighted ->
          (* Laplace smoothing keeps zero-DC rows selectable: they are the
             only rows that can activate narrow difference regions, and a
             hard zero weight would make some classes unsplittable. *)
          let priorities =
            Array.map (fun r -> 1.0 +. float_of_int (Cube.dc_size r)) arr
          in
          roulette t.rng priorities arr
      | Config.Dc_mffc_weighted ->
          let ranks = Array.map (mffc_rank t gate) arr in
          let max_rank = Array.fold_left max 0.0 ranks in
          let priorities =
            Array.map (fun r -> 1.0 +. row_priority t gate ~max_rank r) arr
          in
          roulette t.rng priorities arr)

let decide t gate =
  t.decisions <- t.decisions + 1;
  match Engine.matching_rows t.engine gate with
  | [] -> Error gate
  | rows ->
      let row = choose_row t gate rows in
      let fanins = N.fanins (Engine.network t.engine) gate in
      (* Assign the row's concrete values; the output is set too when the
         row pins it down and it is still open. *)
      if Assignment.value (Engine.assignment t.engine) gate = Value.Unknown
      then Engine.set t.engine gate row.Cube.out;
      Array.iteri
        (fun i l ->
          match l with
          | Cube.DC -> ()
          | Cube.T -> Engine.set t.engine fanins.(i) true
          | Cube.F -> Engine.set t.engine fanins.(i) false)
        row.Cube.lits;
      Ok ()

let num_decisions t = t.decisions
