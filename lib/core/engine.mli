(** The propagation engine: implication to fixpoint over a network.

    Wraps a network, a row cache and a ternary {!Assignment}. Assigning a
    value seeds a worklist; {!propagate} drains it, examining each touched
    gate against the matching rows of its function and applying simple or
    advanced implication (paper §4) until a fixpoint or a conflict. In
    [Backward_only] mode a gate is examined only when its own output value
    arrives — the reverse-simulation baseline of §1.1. *)

type t

type outcome = Fixpoint | Conflict_at of Simgen_network.Network.node_id

val create :
  ?config:Config.t -> Simgen_network.Network.t -> t

val network : t -> Simgen_network.Network.t
val assignment : t -> Assignment.t
val config : t -> Config.t
val rows_of : t -> Simgen_network.Network.node_id -> Simgen_network.Cube.t array
(** Rows of a gate's function (cached). *)

val matching_rows :
  t -> Simgen_network.Network.node_id -> Simgen_network.Cube.t list
(** Rows of the gate compatible with the current values of its fanins and
    output. *)

val set_scope : t -> bool array option -> unit
(** Restrict propagation to the masked nodes (typically the current
    target's fanin cone, Algorithm 1's [listDfs]); [None] lifts the
    restriction. Values already assigned outside a new scope are still
    read during row matching — only gate (re)examination is confined. *)

val set : t -> Simgen_network.Network.node_id -> bool -> unit
(** Assign a node value and schedule the affected gates. The engine must be
    followed by {!propagate} before the next query. Assigning a node that
    already holds the opposite value records a pending conflict returned by
    the next {!propagate}. Re-assigning the same value is a no-op. *)

val propagate : t -> outcome
(** Run implications to fixpoint. On [Conflict_at g] the caller is expected
    to roll the assignment back to a checkpoint; the engine's worklist is
    cleared. *)

val checkpoint : t -> int
val rollback : t -> int -> unit

val num_implications : t -> int
(** Total values assigned by implication since creation. *)

val num_examinations : t -> int
(** Gate examinations performed (a work measure for runtime accounting). *)
