(** Input vector generation — Algorithm 1 of the paper.

    Given OUTgold values for the target nodes of an equivalence class, the
    generator processes targets in decreasing network depth; for each it
    assigns the OUTgold value, runs implications to fixpoint, and — while
    cone PIs remain open — makes decisions on the latest-updated candidate
    node. A conflict rolls the assignment back to the per-target checkpoint
    and moves on to the next target. Finally all still-unassigned PIs get
    random values so a complete simulation vector is returned. *)

type report = {
  vector : bool array;  (** complete PI assignment, by PI index *)
  satisfied : (Simgen_network.Network.node_id * bool) list;
      (** targets whose OUTgold value was successfully realized *)
  conflicts : int;  (** targets abandoned on a conflict *)
  implications : int;  (** implication-assigned values during this call *)
  decisions : int;  (** decision steps during this call *)
  useful : bool;
      (** paper §3: true iff the satisfied set contains a pair of targets
          with opposite OUTgold values, i.e. simulating the vector can
          split the class *)
}

val generate :
  ?config:Config.t ->
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  (Simgen_network.Network.node_id * bool) list ->
  report
(** [generate net outgold] runs Algorithm 1 for one class. A fresh engine
    is created per call; for repeated calls over the same network use
    {!generate_with}. *)

val generate_with :
  Engine.t ->
  Decision.t ->
  rng:Simgen_base.Rng.t ->
  levels:int array ->
  (Simgen_network.Network.node_id * bool) list ->
  report
(** Re-entrant variant: the engine's assignment is rolled back to empty
    before returning, and row/MFFC caches persist across calls. *)
