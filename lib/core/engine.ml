module N = Simgen_network.Network
module Cube = Simgen_network.Cube

type outcome = Fixpoint | Conflict_at of N.node_id

(* FIFO worklist of gate ids with an in-queue flag to avoid duplicates. *)
module Worklist = struct
  type t = { q : int Queue.t; flags : bool array }

  let create n = { q = Queue.create (); flags = Array.make n false }

  let push t id =
    if not t.flags.(id) then begin
      t.flags.(id) <- true;
      Queue.push id t.q
    end

  let pop t =
    match Queue.pop t.q with
    | id ->
        t.flags.(id) <- false;
        Some id
    | exception Queue.Empty -> None

  let clear t =
    Queue.iter (fun id -> t.flags.(id) <- false) t.q;
    Queue.clear t.q
end

type t = {
  net : N.t;
  cfg : Config.t;
  rows : Rows.t;
  node_rows : Cube.t array option array;  (* per-node cache over [rows] *)
  assignment : Assignment.t;
  queue : Worklist.t;
  mutable scope : bool array option;
  mutable pending_conflict : N.node_id option;
  mutable implications : int;
  mutable examinations : int;
}

let create ?(config = Config.default) net =
  {
    net;
    cfg = config;
    rows = Rows.create ();
    node_rows = Array.make (N.num_nodes net) None;
    assignment = Assignment.create (N.num_nodes net);
    queue = Worklist.create (N.num_nodes net);
    scope = None;
    pending_conflict = None;
    implications = 0;
    examinations = 0;
  }

let network t = t.net
let assignment t = t.assignment
let config t = t.cfg

let rows_of t id =
  match t.node_rows.(id) with
  | Some rows -> rows
  | None ->
      let rows = Rows.get t.rows (N.func t.net id) in
      t.node_rows.(id) <- Some rows;
      rows

let value t id = Assignment.value t.assignment id

let row_matches t fanins out_value (c : Cube.t) =
  Value.compatible out_value (if c.Cube.out then Cube.T else Cube.F)
  &&
  let n = Array.length fanins in
  let rec go i =
    i >= n
    || (Value.compatible (value t fanins.(i)) c.Cube.lits.(i) && go (i + 1))
  in
  go 0

let matching_rows t id =
  let fanins = N.fanins t.net id in
  let out_value = value t id in
  List.filter (row_matches t fanins out_value) (Array.to_list (rows_of t id))

let in_scope t id =
  match t.scope with None -> true | Some mask -> mask.(id)

let set_scope t scope = t.scope <- scope

(* Schedule the gates affected by a new value at [id]. Gates outside the
   current scope (the class's fanin-cone union during Algorithm 1) are not
   examined: the paper's propagation is cone-local, and values outside the
   scope can never need justification.

   Fanouts are scheduled in both directions. In [Backward_only] mode the
   examination of a fanout whose own output is still unassigned is a no-op
   (see [examine]), so this adds no forward implication power to reverse
   simulation -- it only re-checks gates whose output was already required,
   exactly the "conflicting assignment at any internal node" detection of
   the reverse-simulation procedure (paper section 1, step 5). *)
let touch t id =
  if (not (N.is_pi t.net id)) && in_scope t id then Worklist.push t.queue id;
  List.iter
    (fun fo -> if in_scope t fo then Worklist.push t.queue fo)
    (N.fanouts t.net id)

let set t id b =
  match Value.to_bool (value t id) with
  | Some existing ->
      if existing <> b && t.pending_conflict = None then
        t.pending_conflict <- Some id
  | None ->
      Assignment.assign t.assignment id b;
      touch t id

let set_implied t id b =
  t.implications <- t.implications + 1;
  set t id b

(* Examine one gate: filter its rows against current values and apply the
   configured implication strategy. Returns [Some g] on conflict. *)
let examine t g =
  t.examinations <- t.examinations + 1;
  let fanins = N.fanins t.net g in
  let out_value = value t g in
  let rows = rows_of t g in
  (* In backward-only mode implication is triggered by the output value
     alone (reverse simulation never reasons from partial inputs). *)
  if t.cfg.Config.direction = Config.Backward_only && out_value = Value.Unknown
  then None
  else begin
    let matching = ref [] in
    Array.iter
      (fun c -> if row_matches t fanins out_value c then matching := c :: !matching)
      rows;
    match !matching with
    | [] -> Some g
    | [ row ] ->
        (* Exactly one matching row: both strategies assign its concrete
           values to every unassigned position (Def. 2.2 on rows). *)
        if not (Value.is_assigned out_value) then set_implied t g row.Cube.out;
        Array.iteri
          (fun i l ->
            match l with
            | Cube.DC -> ()
            | Cube.T ->
                if not (Assignment.is_assigned t.assignment fanins.(i)) then
                  set_implied t fanins.(i) true
            | Cube.F ->
                if not (Assignment.is_assigned t.assignment fanins.(i)) then
                  set_implied t fanins.(i) false)
          row.Cube.lits;
        None
    | many -> (
        match t.cfg.Config.implication with
        | Config.Simple -> None
        | Config.Advanced ->
            (* Definition 4.1: assign positions whose concrete value agrees
               across all matching rows; any DC or disagreement blocks the
               position. *)
            if not (Value.is_assigned out_value) then begin
              let outs = List.map (fun (c : Cube.t) -> c.Cube.out) many in
              match outs with
              | first :: rest when List.for_all (Bool.equal first) rest ->
                  set_implied t g first
              | _ -> ()
            end;
            Array.iteri
              (fun i _ ->
                if not (Assignment.is_assigned t.assignment fanins.(i)) then begin
                  let lits = List.map (fun (c : Cube.t) -> c.Cube.lits.(i)) many in
                  match lits with
                  | first :: rest
                    when first <> Cube.DC
                         && List.for_all (Cube.lit_equal first) rest ->
                      set_implied t fanins.(i) (first = Cube.T)
                  | _ -> ()
                end)
              fanins;
            None)
  end

let propagate t =
  match t.pending_conflict with
  | Some g ->
      t.pending_conflict <- None;
      Worklist.clear t.queue;
      Conflict_at g
  | None ->
      let rec drain () =
        match Worklist.pop t.queue with
        | None -> Fixpoint
        | Some g -> (
            match examine t g with
            | Some conflict_gate ->
                Worklist.clear t.queue;
                Conflict_at conflict_gate
            | None -> drain ())
      in
      drain ()

let checkpoint t = Assignment.checkpoint t.assignment

let rollback t mark =
  Assignment.rollback t.assignment mark;
  Worklist.clear t.queue;
  t.pending_conflict <- None

let num_implications t = t.implications
let num_examinations t = t.examinations
