module Cube = Simgen_network.Cube

type t = Zero | One | Unknown

let of_bool b = if b then One else Zero

let to_bool = function One -> Some true | Zero -> Some false | Unknown -> None

let is_assigned = function Unknown -> false | Zero | One -> true

let equal (a : t) (b : t) = a = b

let compatible v (l : Cube.lit) =
  match (v, l) with
  | Unknown, _ | _, Cube.DC -> true
  | One, Cube.T | Zero, Cube.F -> true
  | One, Cube.F | Zero, Cube.T -> false

let to_char = function Zero -> '0' | One -> '1' | Unknown -> '-'

let pp fmt v = Format.pp_print_char fmt (to_char v)
