module Vec = Simgen_base.Vec
module Runtime_check = Simgen_base.Runtime_check

type t = { vals : Value.t array; trail : int Vec.t }

let create n = { vals = Array.make n Value.Unknown; trail = Vec.create ~dummy:(-1) () }

let value t id = t.vals.(id)

let is_assigned t id = Value.is_assigned t.vals.(id)

let assign t id b =
  if Value.is_assigned t.vals.(id) then
    invalid_arg "Assignment.assign: already assigned";
  t.vals.(id) <- Value.of_bool b;
  Vec.push t.trail id

let checkpoint t = Vec.length t.trail

let rollback t mark =
  if Runtime_check.enabled () then begin
    (* Trail marks must be monotone: a rollback target in the future means
       the caller mixed up checkpoints from different engine states. *)
    if mark < 0 || mark > Vec.length t.trail then
      Runtime_check.failf
        "R006: Assignment.rollback: mark %d outside trail of length %d" mark
        (Vec.length t.trail)
  end;
  while Vec.length t.trail > mark do
    let id = Vec.pop t.trail in
    t.vals.(id) <- Value.Unknown
  done

let num_assigned t = Vec.length t.trail

let latest_in ?(since = 0) t ~mask p =
  let rec go i =
    if i < since then None
    else
      let id = Vec.get t.trail i in
      if mask.(id) && p id then Some id else go (i - 1)
  in
  go (Vec.length t.trail - 1)

let iter_since t mark f =
  for i = mark to Vec.length t.trail - 1 do
    f (Vec.get t.trail i)
  done

let to_array t = Array.copy t.vals

let audit t =
  if Runtime_check.enabled () then begin
    (* The trail and the value map must agree exactly: every trail entry
       assigned, no duplicates, and nothing assigned off-trail. *)
    let seen = Array.make (Array.length t.vals) false in
    for i = 0 to Vec.length t.trail - 1 do
      let id = Vec.get t.trail i in
      if id < 0 || id >= Array.length t.vals then
        Runtime_check.failf "R006: Assignment.audit: trail entry %d out of range" id;
      if seen.(id) then
        Runtime_check.failf "R006: Assignment.audit: node %d on the trail twice" id;
      seen.(id) <- true;
      if not (Value.is_assigned t.vals.(id)) then
        Runtime_check.failf
          "R006: Assignment.audit: node %d on the trail but Unknown" id
    done;
    Array.iteri
      (fun id on_trail ->
        if (not on_trail) && Value.is_assigned t.vals.(id) then
          Runtime_check.failf
            "R006: Assignment.audit: node %d assigned but not on the trail" id)
      seen
  end
