module Vec = Simgen_base.Vec

type t = { vals : Value.t array; trail : int Vec.t }

let create n = { vals = Array.make n Value.Unknown; trail = Vec.create ~dummy:(-1) () }

let value t id = t.vals.(id)

let is_assigned t id = Value.is_assigned t.vals.(id)

let assign t id b =
  if Value.is_assigned t.vals.(id) then
    invalid_arg "Assignment.assign: already assigned";
  t.vals.(id) <- Value.of_bool b;
  Vec.push t.trail id

let checkpoint t = Vec.length t.trail

let rollback t mark =
  while Vec.length t.trail > mark do
    let id = Vec.pop t.trail in
    t.vals.(id) <- Value.Unknown
  done

let num_assigned t = Vec.length t.trail

let latest_in ?(since = 0) t ~mask p =
  let rec go i =
    if i < since then None
    else
      let id = Vec.get t.trail i in
      if mask.(id) && p id then Some id else go (i - 1)
  in
  go (Vec.length t.trail - 1)

let iter_since t mark f =
  for i = mark to Vec.length t.trail - 1 do
    f (Vec.get t.trail i)
  done

let to_array t = Array.copy t.vals
