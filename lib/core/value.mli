(** Ternary simulation values.

    Propagation assigns 0 and 1; an unassigned node is a don't-care
    (paper Definition 2.1). *)

type t = Zero | One | Unknown

val of_bool : bool -> t
val to_bool : t -> bool option
val is_assigned : t -> bool
val equal : t -> t -> bool

val compatible : t -> Simgen_network.Cube.lit -> bool
(** Whether a value is consistent with a cube literal: an [Unknown] value is
    compatible with everything, and a cube [DC] accepts everything. *)

val to_char : t -> char
(** ['0'], ['1'] or ['-']. *)

val pp : Format.formatter -> t -> unit
