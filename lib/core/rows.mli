(** Per-function row cache.

    SimGen repeatedly consults the "truth table rows" of node functions
    (paper §4). Rows — ISOP cubes of the on-set and off-set — are computed
    once per distinct truth table and shared across all LUTs with that
    function. *)

type t

val create : unit -> t

val get : t -> Simgen_network.Truth_table.t -> Simgen_network.Cube.t array
(** On-set cubes first, then off-set cubes. *)
