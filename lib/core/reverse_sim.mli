(** Reverse simulation (Zhang et al., paper §1.1) as a standalone entry
    point.

    Equivalent to {!Vector_gen.generate} with
    {!Config.reverse_simulation}: backward-only propagation, implication
    restricted to single-choice input assignments, uniformly random row
    decisions, and failure (conflict) without backtracking. Kept separate
    so the baseline used throughout the evaluation reads like the
    procedure the paper describes. *)

val generate :
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  (Simgen_network.Network.node_id * bool) list ->
  Vector_gen.report
