(** OUTgold generation (paper §3, step 1).

    OUTgold values are the desired outputs for the target nodes of an
    equivalence class; an input vector realizing nodes with opposite
    OUTgold values splits the class. The paper's default alternates zeros
    and ones by node id; the alternatives are the extension hooks the paper
    mentions (topology-aware and adaptive strategies). *)

type strategy =
  | Alternating  (** paper default: 0/1 alternating in node-id order *)
  | Random_balanced
      (** random permutation of an equal number of zeros and ones *)
  | Level_split
      (** topology-aware: nodes sorted by level; shallow half gets 0, deep
          half gets 1 *)

val assign :
  ?strategy:strategy ->
  ?rng:Simgen_base.Rng.t ->
  ?levels:int array ->
  Simgen_network.Network.node_id list ->
  (Simgen_network.Network.node_id * bool) list
(** OUTgold for one class. [levels] is required by [Level_split]. The
    result pairs each target with its desired value and always contains an
    equal (+-1) number of zeros and ones. *)
