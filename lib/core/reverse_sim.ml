let generate ?rng net outgold =
  Vector_gen.generate ~config:Config.reverse_simulation ?rng net outgold
