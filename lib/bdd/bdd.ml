module TT = Simgen_network.Truth_table
module N = Simgen_network.Network

type t = int
(* Node references: 0 = terminal false, 1 = terminal true, >= 2 internal. *)

exception Node_limit_exceeded

type manager = {
  nvars : int;
  max_nodes : int;
  mutable var_of : int array;  (* per node *)
  mutable low : int array;
  mutable high : int array;
  mutable next : int;  (* next free node index *)
  unique : (int * int * int, int) Hashtbl.t;  (* (var, low, high) -> node *)
  cache : (int * int * int, int) Hashtbl.t;  (* ite memo *)
}

let terminal_var = max_int

let manager ?(max_nodes = 1_000_000) nvars =
  let cap = 1024 in
  let m =
    {
      nvars;
      max_nodes;
      var_of = Array.make cap terminal_var;
      low = Array.make cap 0;
      high = Array.make cap 0;
      next = 2;
      unique = Hashtbl.create 4096;
      cache = Hashtbl.create 4096;
    }
  in
  m.var_of.(0) <- terminal_var;
  m.var_of.(1) <- terminal_var;
  m

let num_vars m = m.nvars
let num_nodes m = m.next - 2

let zero _ = 0
let one _ = 1

let grow m =
  let n = Array.length m.var_of in
  let extend arr fill =
    let arr' = Array.make (2 * n) fill in
    Array.blit arr 0 arr' 0 n;
    arr'
  in
  m.var_of <- extend m.var_of terminal_var;
  m.low <- extend m.low 0;
  m.high <- extend m.high 0

(* Hash-consed node constructor with the no-redundant-test reduction. *)
let mk m v lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt m.unique (v, lo, hi) with
    | Some node -> node
    | None ->
        if num_nodes m >= m.max_nodes then raise Node_limit_exceeded;
        if m.next >= Array.length m.var_of then grow m;
        let node = m.next in
        m.next <- node + 1;
        m.var_of.(node) <- v;
        m.low.(node) <- lo;
        m.high.(node) <- hi;
        Hashtbl.replace m.unique (v, lo, hi) node;
        node

let var m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.var";
  mk m i 0 1

let top_var m f g h =
  let v node = m.var_of.(node) in
  min (v f) (min (v g) (v h))

let cofactors m node v =
  if m.var_of.(node) = v then (m.low.(node), m.high.(node)) else (node, node)

let rec ite m f g h =
  (* Terminal cases. *)
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt m.cache key with
    | Some r -> r
    | None ->
        let v = top_var m f g h in
        let f0, f1 = cofactors m f v in
        let g0, g1 = cofactors m g v in
        let h0, h1 = cofactors m h v in
        let lo = ite m f0 g0 h0 in
        let hi = ite m f1 g1 h1 in
        let r = mk m v lo hi in
        Hashtbl.replace m.cache key r;
        r

let not_ m f = ite m f 0 1
let and_ m f g = ite m f g 0
let or_ m f g = ite m f 1 g
let xor m f g = ite m f (not_ m g) g

let equal (a : t) (b : t) = a = b
let is_zero _ f = f = 0
let is_one _ f = f = 1

let eval m f assignment =
  if Array.length assignment <> m.nvars then invalid_arg "Bdd.eval";
  let rec go node =
    if node < 2 then node = 1
    else if assignment.(m.var_of.(node)) then go m.high.(node)
    else go m.low.(node)
  in
  go f

let any_sat m f =
  if f = 0 then None
  else begin
    let assignment = Array.make m.nvars false in
    let rec go node =
      if node >= 2 then
        if m.high.(node) <> 0 then begin
          assignment.(m.var_of.(node)) <- true;
          go m.high.(node)
        end
        else go m.low.(node)
    in
    go f;
    Some assignment
  end

let sat_count m f =
  let memo = Hashtbl.create 64 in
  (* count node = minterms over variables [var_of node .. nvars-1],
     normalised afterwards. *)
  let rec count node =
    if node = 0 then 0.0
    else if node = 1 then 1.0
    else
      match Hashtbl.find_opt memo node with
      | Some c -> c
      | None ->
          let v = m.var_of.(node) in
          let weight child =
            let cv =
              if child < 2 then m.nvars else m.var_of.(child)
            in
            count child *. (2.0 ** float_of_int (cv - v - 1))
          in
          let c = weight m.low.(node) +. weight m.high.(node) in
          Hashtbl.replace memo node c;
          c
  in
  if f < 2 then if f = 1 then 2.0 ** float_of_int m.nvars else 0.0
  else count f *. (2.0 ** float_of_int m.var_of.(f))

let size m f =
  let seen = Hashtbl.create 64 in
  let rec go node acc =
    if node < 2 || Hashtbl.mem seen node then acc
    else begin
      Hashtbl.replace seen node ();
      go m.low.(node) (go m.high.(node) (acc + 1))
    end
  in
  go f 0

let of_truth_table m tt vars =
  let n = TT.nvars tt in
  if Array.length vars <> n then invalid_arg "Bdd.of_truth_table";
  (* Shannon expansion over the truth-table variables. *)
  let rec build tt i =
    match TT.is_const tt with
    | Some false -> 0
    | Some true -> 1
    | None ->
        assert (i < n);
        let lo = build (TT.cofactor tt i false) (i + 1) in
        let hi = build (TT.cofactor tt i true) (i + 1) in
        ite m (var m vars.(i)) hi lo
  in
  build tt 0

let build_network m net =
  if N.num_pis net > m.nvars then invalid_arg "Bdd.build_network";
  let bdds = Array.make (N.num_nodes net) 0 in
  N.iter_nodes net (fun id ->
      match N.kind net id with
      | N.Pi idx -> bdds.(id) <- var m idx
      | N.Gate f ->
          let fanins = N.fanins net id in
          (* Express the gate over fresh temporaries? Not needed: compose
             directly by building the table over the fanin BDDs via
             Shannon expansion on the *function*, substituting fanin
             BDDs for its variables. *)
          let rec compose tt i =
            match TT.is_const tt with
            | Some false -> 0
            | Some true -> 1
            | None ->
                let lo = compose (TT.cofactor tt i false) (i + 1) in
                let hi = compose (TT.cofactor tt i true) (i + 1) in
                ite m bdds.(fanins.(i)) hi lo
          in
          bdds.(id) <- compose f 0);
  bdds
