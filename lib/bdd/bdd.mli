(** Reduced Ordered Binary Decision Diagrams.

    The alternative verification engine of classical CEC flows (paper
    §2.2: sweeping "was initially based on BDDs"). A manager owns a
    unique-table of nodes over a fixed variable order plus a computed
    cache for the [ite] operator; equality of functions is pointer
    equality of roots, which makes node-equivalence checks O(1) once the
    BDDs are built — at the price of possible exponential size, which is
    why the manager enforces a node quota. *)

type manager

type t
(** A BDD rooted in a manager. Structural equality coincides with
    functional equality for BDDs of the same manager. *)

exception Node_limit_exceeded
(** Raised by the constructors when the manager's quota is hit — the
    caller should fall back to SAT (see {!Simgen_sweep.Sweeper}). *)

val manager : ?max_nodes:int -> int -> manager
(** [manager nvars] with variables [0 .. nvars-1] ordered by index.
    [max_nodes] (default 1_000_000) bounds the unique table. *)

val num_vars : manager -> int
val num_nodes : manager -> int
(** Live unique-table entries (terminals excluded). *)

val zero : manager -> t
val one : manager -> t
val var : manager -> int -> t

val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t

val equal : t -> t -> bool
(** Functional equality (constant time). *)

val is_zero : manager -> t -> bool
val is_one : manager -> t -> bool

val eval : manager -> t -> bool array -> bool
(** Evaluate under a complete variable assignment. *)

val any_sat : manager -> t -> bool array option
(** A satisfying assignment (variables not on the path default to
    [false]), or [None] for the zero BDD. *)

val sat_count : manager -> t -> float
(** Number of satisfying minterms over all [num_vars] variables. *)

val size : manager -> t -> int
(** Nodes reachable from the root (terminals excluded). *)

val of_truth_table :
  manager -> Simgen_network.Truth_table.t -> int array -> t
(** [of_truth_table m tt vars] builds the function [tt] with input [i]
    mapped to manager variable [vars.(i)]. *)

val build_network :
  manager -> Simgen_network.Network.t -> t array
(** BDD of every node of a network, PIs mapped to variables by PI index
    (requires [num_pis <= num_vars]).
    @raise Node_limit_exceeded when the quota is hit. *)
