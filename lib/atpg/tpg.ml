module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Simulator = Simgen_sim.Simulator
module VG = Simgen_core.Vector_gen
module Config = Simgen_core.Config
module Rng = Simgen_base.Rng
module Sat = Simgen_sat

type outcome = Detected of bool array | Untestable

type stats = {
  total : int;
  by_random : int;
  by_guided : int;
  by_sat : int;
  untestable : int;
  guided_attempts : int;
  sat_calls : int;
}

let generate_guided ?(config = Config.default) ?(attempts = 5) ?rng net fault =
  let rng = match rng with Some r -> r | None -> Rng.create 0xA7B6 in
  let rec try_once k =
    if k >= attempts then None
    else begin
      let report =
        VG.generate ~config ~rng net [ (fault.Fault.node, not fault.Fault.stuck) ]
      in
      if report.VG.satisfied <> [] && Fault.detects net fault report.VG.vector
      then Some report.VG.vector
      else try_once (k + 1)
    end
  in
  try_once 0

(* The faulty copy: the fault site's function becomes the stuck constant.
   Fanins are kept so the node count and PI mapping stay aligned. *)
let faulty_copy net fault =
  let net' = N.create ~name:(N.name net ^ "_faulty") () in
  N.iter_nodes net (fun id ->
      match N.kind net id with
      | N.Pi _ -> ignore (N.add_pi net')
      | N.Gate f ->
          let f =
            if id = fault.Fault.node then
              TT.create_const (Array.length (N.fanins net id)) fault.Fault.stuck
            else f
          in
          ignore (N.add_gate net' f (N.fanins net id)));
  Array.iter (fun po -> N.add_po net' po) (N.pos net);
  net'

let generate_sat net fault =
  let faulty = faulty_copy net fault in
  let env = Sat.Tseitin.create () in
  let vars_good, vars_bad = Sat.Tseitin.encode_shared_pis env net faulty in
  let diff_lits =
    Array.to_list
      (Array.map
         (fun po ->
           Sat.Literal.pos (Sat.Tseitin.xor_var env vars_good.(po) vars_bad.(po)))
         (N.pos net))
  in
  (* At least one PO must differ. *)
  Sat.Solver.add_clause (Sat.Tseitin.solver env) diff_lits;
  match Sat.Solver.solve (Sat.Tseitin.solver env) with
  | Sat.Solver.Unsat -> Untestable
  | Sat.Solver.Sat ->
      let vec = Sat.Tseitin.pi_values env net vars_good in
      assert (Fault.detects net fault vec);
      Detected vec

let campaign ?(random_patterns = 64) ?(guided_attempts = 5)
    ?(config = Config.default) ?(seed = 1) net =
  let rng = Rng.create seed in
  let faults = Fault.all_gate_faults net in
  let total = List.length faults in
  (* Tier 1: word-parallel random patterns. *)
  let rounds = (random_patterns + 63) / 64 in
  let words =
    List.init rounds (fun _ -> Simulator.random_word rng net)
  in
  let detected_random, rest =
    List.partition
      (fun fault ->
        List.exists (fun w -> Fault.detects_word net fault w <> 0L) words)
      faults
  in
  (* Tier 2: guided activation. *)
  let guided_attempts_count = ref 0 in
  let detected_guided, rest =
    List.partition
      (fun fault ->
        match
          generate_guided ~config ~attempts:guided_attempts ~rng net fault
        with
        | Some _ ->
            guided_attempts_count := !guided_attempts_count + 1;
            true
        | None ->
            guided_attempts_count := !guided_attempts_count + guided_attempts;
            false)
      rest
  in
  (* Tier 3: SAT. *)
  let sat_calls = ref 0 in
  let detected_sat, untestable =
    List.partition
      (fun fault ->
        incr sat_calls;
        match generate_sat net fault with
        | Detected _ -> true
        | Untestable -> false)
      rest
  in
  {
    total;
    by_random = List.length detected_random;
    by_guided = List.length detected_guided;
    by_sat = List.length detected_sat;
    untestable = List.length untestable;
    guided_attempts = !guided_attempts_count;
    sat_calls = !sat_calls;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "%d faults: %d by random, %d by guided activation, %d by SAT, %d \
     untestable (%d activation vectors, %d SAT calls)"
    s.total s.by_random s.by_guided s.by_sat s.untestable s.guided_attempts
    s.sat_calls
