(** Single stuck-at faults on LUT outputs.

    The fault model behind the ATPG techniques SimGen borrows (paper
    §2.4): a fault pins one node's output to a constant; a test pattern
    must {e activate} it (drive the node to the opposite value) and
    {e propagate} the discrepancy to a primary output. *)

type t = {
  node : Simgen_network.Network.node_id;
  stuck : bool;  (** the value the defect pins the node to *)
}

val all_gate_faults : Simgen_network.Network.t -> t list
(** Both polarities on every gate output, in node order. *)

val to_string : Simgen_network.Network.t -> t -> string
(** E.g. ["n17/SA0"]. *)

val faulty_eval :
  Simgen_network.Network.t -> t -> bool array -> bool array
(** PO values of the faulty circuit under one input vector. *)

val detects : Simgen_network.Network.t -> t -> bool array -> bool
(** Whether the vector distinguishes faulty from fault-free POs. *)

val detects_word :
  Simgen_network.Network.t -> t -> int64 array -> int64
(** Word-parallel detection: bit [k] set iff vector lane [k] detects the
    fault ([pi_words] as in {!Simgen_sim.Simulator.simulate_word}). *)
