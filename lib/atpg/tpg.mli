(** Test pattern generation.

    Three escalating engines, mirroring how SimGen relates to ATPG
    (paper §2.4):

    + {b random patterns} detect the easy faults;
    + {b guided activation}: the SimGen engine drives the fault site to
      the opposite value (activation); fault simulation checks whether
      the discrepancy reaches a PO (propagation is left to chance, which
      is exactly the backtrack-free trade-off SimGen makes);
    + {b SAT}: a miter between the fault-free and the faulty circuit
      decides testability exactly — the fall-back a backtracking
      D-algorithm would otherwise provide. *)

type outcome =
  | Detected of bool array  (** a test vector (by PI index) *)
  | Untestable  (** SAT-proved: the fault never changes any PO *)

type stats = {
  total : int;
  by_random : int;
  by_guided : int;
  by_sat : int;
  untestable : int;
  guided_attempts : int;  (** activation vectors generated *)
  sat_calls : int;
}

val generate_guided :
  ?config:Simgen_core.Config.t ->
  ?attempts:int ->
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  Fault.t ->
  bool array option
(** Up to [attempts] (default 5) activation vectors via the pattern
    generator; returns the first that fault simulation confirms. *)

val generate_sat :
  Simgen_network.Network.t -> Fault.t -> outcome
(** Exact test generation through a good-vs-faulty miter. *)

val campaign :
  ?random_patterns:int ->
  ?guided_attempts:int ->
  ?config:Simgen_core.Config.t ->
  ?seed:int ->
  Simgen_network.Network.t ->
  stats
(** Full flow over every gate fault: [random_patterns] (default 64)
    random vectors first, then guided activation, then SAT for the
    leftovers. The three tiers' detection counts quantify how far the
    cheap engines carry — the ATPG counterpart of the paper's
    random-then-guided-then-SAT sweeping story. *)

val pp_stats : Format.formatter -> stats -> unit
