module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Simulator = Simgen_sim.Simulator

type t = { node : N.node_id; stuck : bool }

let all_gate_faults net =
  let acc = ref [] in
  N.iter_gates net (fun id ->
      acc := { node = id; stuck = true } :: { node = id; stuck = false } :: !acc);
  List.rev !acc

let to_string net fault =
  let name =
    match N.node_name net fault.node with
    | Some n -> n
    | None -> Printf.sprintf "n%d" fault.node
  in
  Printf.sprintf "%s/SA%d" name (if fault.stuck then 1 else 0)

let faulty_node_values net fault vec =
  let vals = Array.make (N.num_nodes net) false in
  N.iter_nodes net (fun id ->
      let v =
        match N.kind net id with
        | N.Pi idx -> vec.(idx)
        | N.Gate f ->
            let ins = Array.map (fun fi -> vals.(fi)) (N.fanins net id) in
            TT.eval f ins
      in
      vals.(id) <- (if id = fault.node then fault.stuck else v));
  vals

let faulty_eval net fault vec =
  let vals = faulty_node_values net fault vec in
  Array.map (fun id -> vals.(id)) (N.pos net)

let detects net fault vec = N.eval_pos net vec <> faulty_eval net fault vec

(* Word-parallel faulty simulation: evaluate each LUT by Shannon expansion
   over the fanin words, forcing the fault site to its stuck constant. *)
let faulty_simulate_word net fault pi_words =
  let words = Array.make (N.num_nodes net) 0L in
  let eval_lut f fanin_words =
    let rec go f j =
      match TT.is_const f with
      | Some false -> 0L
      | Some true -> -1L
      | None ->
          let w = fanin_words.(j) in
          let hi = go (TT.cofactor f j true) (j - 1)
          and lo = go (TT.cofactor f j false) (j - 1) in
          Int64.logor (Int64.logand w hi)
            (Int64.logand (Int64.lognot w) lo)
    in
    go f (Array.length fanin_words - 1)
  in
  N.iter_nodes net (fun id ->
      let w =
        match N.kind net id with
        | N.Pi idx -> pi_words.(idx)
        | N.Gate f ->
            eval_lut f (Array.map (fun fi -> words.(fi)) (N.fanins net id))
      in
      words.(id) <- (if id = fault.node then (if fault.stuck then -1L else 0L) else w));
  words

let detects_word net fault pi_words =
  let good = Simulator.simulate_word net pi_words in
  let bad = faulty_simulate_word net fault pi_words in
  Array.fold_left
    (fun acc po -> Int64.logor acc (Int64.logxor good.(po) bad.(po)))
    0L (N.pos net)
