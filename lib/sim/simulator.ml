module N = Simgen_network.Network
module TT = Simgen_network.Truth_table

(* Word evaluation of one LUT by Shannon expansion over its fanin words. *)
let eval_lut f fanin_words =
  let rec go f j =
    match TT.is_const f with
    | Some false -> 0L
    | Some true -> -1L
    | None ->
        assert (j >= 0);
        let w = fanin_words.(j) in
        let hi = go (TT.cofactor f j true) (j - 1)
        and lo = go (TT.cofactor f j false) (j - 1) in
        Int64.logor (Int64.logand w hi) (Int64.logand (Int64.lognot w) lo)
  in
  go f (Array.length fanin_words - 1)

let simulate_word net pi_words =
  if Array.length pi_words <> N.num_pis net then
    invalid_arg "Simulator.simulate_word";
  let words = Array.make (N.num_nodes net) 0L in
  N.iter_nodes net (fun id ->
      match N.kind net id with
      | N.Pi idx -> words.(id) <- pi_words.(idx)
      | N.Gate f ->
          let fanin_words =
            Array.map (fun fi -> words.(fi)) (N.fanins net id)
          in
          words.(id) <- eval_lut f fanin_words);
  words

let random_word rng net =
  Array.init (N.num_pis net) (fun _ -> Simgen_base.Rng.int64 rng)

let vector_word vec k words =
  if Array.length vec <> Array.length words then
    invalid_arg "Simulator.vector_word";
  let mask = Int64.shift_left 1L k in
  Array.iteri
    (fun i value ->
      words.(i) <-
        (if value then Int64.logor words.(i) mask
         else Int64.logand words.(i) (Int64.lognot mask)))
    vec

let word_of_vector net vec =
  if Array.length vec <> N.num_pis net then
    invalid_arg "Simulator.word_of_vector";
  Array.map (fun v -> if v then -1L else 0L) vec

let node_values_bit words k =
  Array.map
    (fun w -> Int64.logand (Int64.shift_right_logical w k) 1L = 1L)
    words
