module N = Simgen_network.Network

type t = {
  net : N.t;
  mutable groups : int list list;  (* classes of size >= 2, members sorted *)
  (* node id -> its current class; absent for singletons and PIs. Rebuilt
     on every refinement so [class_of] is a lookup, not a scan — the
     sweeper's worklist consults it once per SAT call. *)
  by_node : (int, int list) Hashtbl.t;
}

let reindex t =
  Hashtbl.reset t.by_node;
  List.iter
    (fun group -> List.iter (fun id -> Hashtbl.replace t.by_node id group) group)
    t.groups

let create net =
  let gates = ref [] in
  N.iter_gates net (fun id -> gates := id :: !gates);
  let members = List.rev !gates in
  let groups = if List.length members >= 2 then [ members ] else [] in
  let t = { net; groups; by_node = Hashtbl.create 256 } in
  reindex t;
  t

let split_group key group =
  (* Partition a class by a per-node key; keep only parts of size >= 2. *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun id ->
      let k = key id in
      Hashtbl.replace tbl k (id :: (Option.value ~default:[] (Hashtbl.find_opt tbl k))))
    group;
  Hashtbl.fold
    (fun _ members acc ->
      match members with
      | [] | [ _ ] -> acc
      | ms -> List.rev ms :: acc)
    tbl []

let refine_with_key t key =
  t.groups <-
    List.concat_map (split_group key) t.groups
    |> List.sort (fun a b ->
           match (a, b) with
           | x :: _, y :: _ -> compare x y
           | _ -> assert false);
  reindex t

let refine_word t words = refine_with_key t (fun id -> words.(id))

let refine_vector t values = refine_with_key t (fun id -> values.(id))

let classes t = t.groups

let num_classes t = List.length t.groups

let cost t =
  List.fold_left (fun acc g -> acc + List.length g - 1) 0 t.groups

let class_of t id =
  Option.value ~default:[] (Hashtbl.find_opt t.by_node id)

let copy t =
  { net = t.net; groups = t.groups; by_node = Hashtbl.copy t.by_node }
