(** Simulation equivalence classes and the cost metric (paper §2.3, §6.1).

    Nodes whose outputs agree on every simulated vector so far share a
    class. Classes only ever split as more vectors arrive (refinement).
    The candidate set is the network's gates (LUTs) — the paper separates
    "LUTs from the same equivalence class". *)

type t

val create : Simgen_network.Network.t -> t
(** One initial class containing all gates (refine immediately with a first
    simulation round). PIs are excluded from classes. *)

val refine_word : t -> int64 array -> unit
(** Split classes using a fresh batch of node simulation words (as produced
    by {!Simulator.simulate_word}). *)

val refine_vector : t -> bool array -> unit
(** Split classes using single-vector node values (by node id). *)

val classes : t -> Simgen_network.Network.node_id list list
(** Current classes of size >= 2, each sorted by node id, in ascending
    order of their smallest member. Singleton classes are dropped: they
    need no further separation. *)

val num_classes : t -> int
(** Number of classes of size >= 2. *)

val cost : t -> int
(** Equation (5): sum over classes of (size - 1) — the worst-case number of
    SAT calls left. *)

val class_of : t -> Simgen_network.Network.node_id -> Simgen_network.Network.node_id list
(** The class containing a node ([] if the node is a singleton/PI).
    Constant-time lookup against an index maintained across refinements. *)

val copy : t -> t
