(** Word-parallel circuit simulation (paper §2.3).

    Simulates 64 input vectors at a time: each node's value is an [int64]
    word whose bit [k] is the node's output under the [k]-th vector of the
    batch. LUT evaluation walks the node's truth table once per word using
    Shannon cofactoring over the fanin words. *)

val simulate_word :
  Simgen_network.Network.t -> int64 array -> int64 array
(** [simulate_word net pi_words] takes one word per PI (by PI index) and
    returns one word per node (by node id). *)

val random_word :
  Simgen_base.Rng.t -> Simgen_network.Network.t -> int64 array
(** Fresh batch of 64 uniformly random input vectors. *)

val vector_word : bool array -> int -> int64 array -> unit
(** [vector_word vec k words] sets bit [k] of each PI word from the single
    input vector [vec] (by PI index). *)

val word_of_vector : Simgen_network.Network.t -> bool array -> int64 array
(** One-vector batch: bit 0 carries the vector, the remaining 63 bits are
    copies (so any bit position can be used). *)

val node_values_bit : int64 array -> int -> bool array
(** Extract the single-vector values at bit [k] from a node-word array. *)
