(* Instrumented shared-state primitives.

   The recording fast path is the whole design: disarmed, every wrapper
   is the raw primitive plus one atomic load of [armed]. Armed, an event
   append touches only the current domain's buffer (registered once via
   DLS) plus one fetch-and-add on the global sequence counter. Sequence
   numbers are drawn *inside* the synchronization window they describe —
   after a lock is acquired, before it is released — so that on any one
   sync object, sequence order agrees with real-time order and the
   offline analyzer can replay the trace in seq order. Atomic operations
   draw their number adjacent to (not atomically with) the operation;
   the tiny reordering window this leaves is documented in DESIGN.md
   §14 as an accepted soundness limit. *)

let armed = Stdlib.Atomic.make false
let arm () = Stdlib.Atomic.set armed true
let disarm () = Stdlib.Atomic.set armed false
let is_armed () = Stdlib.Atomic.get armed
let on () = Stdlib.Atomic.get armed

let here (file, line, _, _) = Srcloc.make ~file ~line ()

type kind = Kmutex | Katomic | Kcell | Ktoken

type obj_info = { oid : int; okind : kind; oname : string; oloc : Srcloc.t }

type op =
  | Acquire
  | Release
  | Atomic_read
  | Atomic_write
  | Atomic_update
  | Read
  | Write
  | Spawn
  | Begin
  | End_
  | Join

type event = { seq : int; domain : int; op : op; obj : int; at : Srcloc.t }
type trace = { objects : obj_info list; events : event list }

(* ------------------------------------------------------------------ *)
(* Registry and per-domain buffers                                     *)
(* ------------------------------------------------------------------ *)

(* Raw primitives only in here: the recorder must not record itself. *)
let reg_mutex = Stdlib.Mutex.create ()
let next_oid = Stdlib.Atomic.make 0
let objects : obj_info list ref = ref [] (* newest first *)
let seq_ctr = Stdlib.Atomic.make 0

let register okind oname oloc =
  let oid = Stdlib.Atomic.fetch_and_add next_oid 1 in
  let info = { oid; okind; oname; oloc } in
  Stdlib.Mutex.lock reg_mutex;
  objects := info :: !objects;
  Stdlib.Mutex.unlock reg_mutex;
  oid

let dummy_event = { seq = 0; domain = 0; op = Read; obj = 0; at = Srcloc.none }

type buf = { dom : int; mutable evs : event array; mutable n : int }

let bufs : buf list ref = ref []

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          dom = (Domain.self () :> int);
          evs = Array.make 1024 dummy_event;
          n = 0;
        }
      in
      Stdlib.Mutex.lock reg_mutex;
      bufs := b :: !bufs;
      Stdlib.Mutex.unlock reg_mutex;
      b)

let record op obj at =
  let b = Domain.DLS.get buf_key in
  if b.n = Array.length b.evs then begin
    let bigger = Array.make (2 * Array.length b.evs) dummy_event in
    Array.blit b.evs 0 bigger 0 b.n;
    b.evs <- bigger
  end;
  let seq = Stdlib.Atomic.fetch_and_add seq_ctr 1 in
  b.evs.(b.n) <- { seq; domain = b.dom; op; obj; at };
  b.n <- b.n + 1

let reset_trace () =
  Stdlib.Mutex.lock reg_mutex;
  List.iter (fun b -> b.n <- 0) !bufs;
  Stdlib.Atomic.set seq_ctr 0;
  Stdlib.Mutex.unlock reg_mutex

let events_recorded () =
  Stdlib.Mutex.lock reg_mutex;
  let n = List.fold_left (fun acc b -> acc + b.n) 0 !bufs in
  Stdlib.Mutex.unlock reg_mutex;
  n

let snapshot () =
  Stdlib.Mutex.lock reg_mutex;
  let objs = List.rev !objects in
  let evs =
    List.concat_map (fun b -> Array.to_list (Array.sub b.evs 0 b.n)) !bufs
  in
  Stdlib.Mutex.unlock reg_mutex;
  {
    objects = objs;
    events = List.sort (fun a b -> compare a.seq b.seq) evs;
  }

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)
(* ------------------------------------------------------------------ *)

module Mutex = struct
  type t = { m : Stdlib.Mutex.t; id : int }

  let create ?(loc = Srcloc.none) name =
    { m = Stdlib.Mutex.create (); id = register Kmutex name loc }

  let lock t =
    Stdlib.Mutex.lock t.m;
    (* Seq drawn while holding: orders after the previous holder's
       release on this mutex. *)
    if on () then record Acquire t.id Srcloc.none

  let unlock t =
    if on () then record Release t.id Srcloc.none;
    Stdlib.Mutex.unlock t.m

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f
end

module Condition = struct
  type t = Stdlib.Condition.t

  let create () = Stdlib.Condition.create ()

  let wait c (m : Mutex.t) =
    if on () then record Release m.Mutex.id Srcloc.none;
    Stdlib.Condition.wait c m.Mutex.m;
    if on () then record Acquire m.Mutex.id Srcloc.none

  let signal = Stdlib.Condition.signal
  let broadcast = Stdlib.Condition.broadcast
end

module Atomic = struct
  type 'a t = { a : 'a Stdlib.Atomic.t; id : int }

  let make ?(loc = Srcloc.none) name v =
    { a = Stdlib.Atomic.make v; id = register Katomic name loc }

  let get t =
    let v = Stdlib.Atomic.get t.a in
    if on () then record Atomic_read t.id Srcloc.none;
    v

  let set t v =
    Stdlib.Atomic.set t.a v;
    if on () then record Atomic_write t.id Srcloc.none

  let exchange t v =
    let r = Stdlib.Atomic.exchange t.a v in
    if on () then record Atomic_update t.id Srcloc.none;
    r

  let compare_and_set t expected desired =
    let r = Stdlib.Atomic.compare_and_set t.a expected desired in
    if on () then record Atomic_update t.id Srcloc.none;
    r

  let fetch_and_add t n =
    let r = Stdlib.Atomic.fetch_and_add t.a n in
    if on () then record Atomic_update t.id Srcloc.none;
    r

  let incr t = ignore (fetch_and_add t 1)
  let decr t = ignore (fetch_and_add t (-1))
  let silent_get t = Stdlib.Atomic.get t.a
  let silent_set t v = Stdlib.Atomic.set t.a v
end

module Cell = struct
  type 'a t = { mutable v : 'a; id : int }

  let make ?(loc = Srcloc.none) name v =
    { v; id = register Kcell name loc }

  let get ?(at = Srcloc.none) t =
    if on () then record Read t.id at;
    t.v

  let set ?(at = Srcloc.none) t v =
    if on () then record Write t.id at;
    t.v <- v

  let update ?(at = Srcloc.none) t f =
    if on () then begin
      record Read t.id at;
      record Write t.id at
    end;
    t.v <- f t.v

  let incr ?at t = update ?at t (fun x -> x + 1)
  let add ?at t n = update ?at t (fun x -> x + n)
end

type 'a domain = { d : 'a Domain.t; tok : int }

let spawn ?(loc = Srcloc.none) f =
  if not (on ()) then { d = Domain.spawn f; tok = -1 }
  else begin
    let tok = register Ktoken "domain" loc in
    (* Spawn is recorded before [Domain.spawn] runs, so the child's
       Begin necessarily draws a later seq. *)
    record Spawn tok loc;
    let d =
      Domain.spawn (fun () ->
          if on () then record Begin tok loc;
          Fun.protect
            ~finally:(fun () -> if on () then record End_ tok loc)
            f)
    in
    { d; tok }
  end

let join h =
  let r = Domain.join h.d in
  if h.tok >= 0 && on () then record Join h.tok Srcloc.none;
  r

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let magic = "simgen-tsan 1"

(* Percent-encoding keeps the format line- and space-delimited no matter
   what ends up in an object name or file path. *)
let enc s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      if c <= ' ' || c = '%' || Char.code c >= 0x7f then
        Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dec s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 >= n then None
      else
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some c -> Buffer.add_char buf (Char.chr (c land 0xff)); go (i + 3)
        | None -> None
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let kind_code = function
  | Kmutex -> "m"
  | Katomic -> "a"
  | Kcell -> "c"
  | Ktoken -> "t"

let kind_of_code = function
  | "m" -> Some Kmutex
  | "a" -> Some Katomic
  | "c" -> Some Kcell
  | "t" -> Some Ktoken
  | _ -> None

let op_code = function
  | Acquire -> "acq"
  | Release -> "rel"
  | Atomic_read -> "ard"
  | Atomic_write -> "awr"
  | Atomic_update -> "aup"
  | Read -> "rd"
  | Write -> "wr"
  | Spawn -> "sp"
  | Begin -> "bg"
  | End_ -> "en"
  | Join -> "jn"

let op_of_code = function
  | "acq" -> Some Acquire
  | "rel" -> Some Release
  | "ard" -> Some Atomic_read
  | "awr" -> Some Atomic_write
  | "aup" -> Some Atomic_update
  | "rd" -> Some Read
  | "wr" -> Some Write
  | "sp" -> Some Spawn
  | "bg" -> Some Begin
  | "en" -> Some End_
  | "jn" -> Some Join
  | _ -> None

let loc_fields (l : Srcloc.t) =
  let file = match l.Srcloc.file with Some f -> enc f | None -> "-" in
  let line = match l.Srcloc.line with Some n -> n | None -> 0 in
  Printf.sprintf "%s %d" file line

let loc_of_fields file line =
  match (file, int_of_string_opt line) with
  | _, None -> None
  | "-", Some 0 -> Some Srcloc.none
  | "-", Some n -> Some (Srcloc.make ~line:n ())
  | f, Some n -> (
      match dec f with
      | None -> None
      | Some f ->
          Some
            (if n = 0 then Srcloc.make ~file:f ()
             else Srcloc.make ~file:f ~line:n ()))

let write_trace trace path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc magic;
  output_char oc '\n';
  List.iter
    (fun o ->
      Printf.fprintf oc "o %d %s %s %s\n" o.oid (kind_code o.okind)
        (enc o.oname) (loc_fields o.oloc))
    trace.objects;
  List.iter
    (fun e ->
      Printf.fprintf oc "e %d %d %s %d %s\n" e.seq e.domain (op_code e.op)
        e.obj (loc_fields e.at))
    trace.events

let parse_trace path =
  let read_lines () =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    go []
  in
  match read_lines () with
  | exception Sys_error msg -> Error msg
  | [] -> Error (path ^ ": empty trace file")
  | header :: rest when String.trim header = magic ->
      let objs = ref [] and evs = ref [] and corrupt = ref [] in
      let bad lineno msg = corrupt := (lineno, msg) :: !corrupt in
      List.iteri
        (fun i line ->
          let lineno = i + 2 in
          let line = String.trim line in
          if line <> "" then
            match
              List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
            with
            | [ "o"; oid; k; name; file; lnum ] -> (
                match
                  ( int_of_string_opt oid,
                    kind_of_code k,
                    dec name,
                    loc_of_fields file lnum )
                with
                | Some oid, Some okind, Some oname, Some oloc ->
                    objs := { oid; okind; oname; oloc } :: !objs
                | _ -> bad lineno "malformed object record")
            | [ "e"; seq; domain; opc; obj; file; lnum ] -> (
                match
                  ( int_of_string_opt seq,
                    int_of_string_opt domain,
                    op_of_code opc,
                    int_of_string_opt obj,
                    loc_of_fields file lnum )
                with
                | Some seq, Some domain, Some op, Some obj, Some at ->
                    evs := { seq; domain; op; obj; at } :: !evs
                | _ -> bad lineno "malformed event record")
            | _ -> bad lineno "unrecognized record")
        rest;
      Ok
        ( {
            objects = List.rev !objs;
            events =
              List.sort (fun a b -> compare a.seq b.seq) (List.rev !evs);
          },
          List.rev !corrupt )
  | _ :: _ -> Error (path ^ ": not a simgen-tsan trace (bad header)")

(* [SIMGEN_TSAN=1] arms recording for the whole process, the same
   environment contract as SIMGEN_CHECK / SIMGEN_FAULT. *)
let () =
  match Sys.getenv_opt "SIMGEN_TSAN" with
  | Some ("1" | "true" | "yes" | "on") -> arm ()
  | Some _ | None -> ()
