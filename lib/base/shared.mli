(** Instrumented shared-state primitives and the concurrency trace.

    Every piece of state shared across Domains in this codebase is meant
    to live behind one of three primitives: {!Mutex} (a lock), {!Atomic}
    (a lock-free scalar) or {!Cell} (a plain mutable slot whose
    discipline — "only touched with such-and-such lock held" — is a
    convention, not a guarantee). This module wraps all three so that,
    when recording is armed, every acquire/release/read/write plus every
    domain {!spawn}/{!join} is logged into a per-domain append-only
    buffer. The merged, globally-sequenced trace feeds the offline
    vector-clock race detector ([Simgen_check.Race_check]), which proves
    or refutes the conventions.

    Disarmed (the default), each operation costs one atomic load on top
    of the raw primitive — the same probe discipline as
    [Simgen_fault.Fault]. Arm with [SIMGEN_TSAN=1] in the environment
    (read at module load), or programmatically with {!arm}.

    Recording discipline: arm before spawning the domains under test and
    snapshot after joining them — {!snapshot} and {!reset_trace} are only
    meaningful on a quiescent trace. A mutex held across the arming
    boundary would log an unmatched release; critical sections in this
    codebase are short-lived, and the analyzer ignores a release on a
    mutex it never saw acquired. *)

val arm : unit -> unit
(** Start recording events. Idempotent. *)

val disarm : unit -> unit
(** Stop recording. Already-buffered events are kept until
    {!reset_trace}. *)

val is_armed : unit -> bool

val here : string * int * int * int -> Srcloc.t
(** [here __POS__] — the declaration site of a shared object, for
    race-report locations. *)

(** {1 Trace model} *)

type kind = Kmutex | Katomic | Kcell | Ktoken

type obj_info = {
  oid : int;
  okind : kind;
  oname : string;  (** stable dotted name, e.g. ["runner.pattern-cache.lock"] *)
  oloc : Srcloc.t;  (** declaration site *)
}

type op =
  | Acquire
  | Release
  | Atomic_read
  | Atomic_write
  | Atomic_update  (** read-modify-write: acquire + release *)
  | Read
  | Write
  | Spawn  (** parent-side, [obj] is a fresh token id *)
  | Begin  (** child's first event, same token *)
  | End_  (** child's last event, same token *)
  | Join  (** parent-side after [Domain.join], same token *)

type event = {
  seq : int;  (** global sequence number, drawn so that per-object sync
                  order matches real time *)
  domain : int;  (** raw [Domain.self] id *)
  op : op;
  obj : int;  (** object id, or token id for spawn/join events *)
  at : Srcloc.t;  (** access site when the caller passed one; the
                      analyzer falls back to the object's [oloc] *)
}

type trace = { objects : obj_info list; events : event list }
(** [events] sorted by [seq]. *)

(** {1 Primitives} *)

module Mutex : sig
  type t

  val create : ?loc:Srcloc.t -> string -> t
  val lock : t -> unit
  val unlock : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Condition : sig
  type t

  val create : unit -> t

  val wait : t -> Mutex.t -> unit
  (** Recorded as a release of the mutex before blocking and an acquire
      after waking, which is exactly the happens-before shape
      [Stdlib.Condition.wait] has. *)

  val signal : t -> unit
  val broadcast : t -> unit
end

module Atomic : sig
  type 'a t

  val make : ?loc:Srcloc.t -> string -> 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit

  val silent_get : 'a t -> 'a
  (** Unrecorded access for async-signal contexts: recording appends to
      the interrupted domain's buffer, which is not reentrant. Signal
      handlers must use the silent pair; everything else should not. *)

  val silent_set : 'a t -> 'a -> unit
end

module Cell : sig
  type 'a t
  (** A plain mutable slot — no synchronization of its own. The point of
      declaring shared plain state as a [Cell] instead of a [mutable]
      record field is that its reads and writes land in the trace, so
      the detector can check the locking convention that is supposed to
      guard it. *)

  val make : ?loc:Srcloc.t -> string -> 'a -> 'a t
  val get : ?at:Srcloc.t -> 'a t -> 'a
  val set : ?at:Srcloc.t -> 'a t -> 'a -> unit
  val update : ?at:Srcloc.t -> 'a t -> ('a -> 'a) -> unit
  val incr : ?at:Srcloc.t -> int t -> unit
  val add : ?at:Srcloc.t -> int t -> int -> unit
end

type 'a domain
(** A spawned domain plus the trace token tying its events to the
    spawn/join points in the parent. *)

val spawn : ?loc:Srcloc.t -> (unit -> 'a) -> 'a domain
val join : 'a domain -> 'a

(** {1 Trace access and persistence} *)

val reset_trace : unit -> unit
(** Drop all buffered events and restart the sequence counter. Only call
    on a quiescent trace (no armed domains running). Registered objects
    are kept — they live inside long-lived data structures. *)

val events_recorded : unit -> int

val snapshot : unit -> trace
(** Merge the per-domain buffers into one seq-ordered trace. Quiescent
    traces only. *)

val write_trace : trace -> string -> unit
(** Line-oriented text format, magic header [simgen-tsan 1]; strings are
    percent-encoded so the format survives any name or path. *)

val parse_trace : string -> (trace * (int * string) list, string) result
(** [Ok (trace, corrupt)] parses every well-formed line and reports each
    corrupt one as [(line_number, message)] — a damaged trace degrades
    to a partial analysis plus located parse diagnostics, never a crash.
    [Error _] only for an unreadable file or a missing/foreign header. *)
