type t = { file : string option; line : int option }

let none = { file = None; line = None }

let in_file file = { file = Some file; line = None }

let make ?file ?line () = { file; line }

let with_line t line = { t with line = Some line }

let is_none t = t.file = None && t.line = None

let to_string t =
  match (t.file, t.line) with
  | None, None -> None
  | Some f, None -> Some f
  | Some f, Some l -> Some (Printf.sprintf "%s:%d" f l)
  | None, Some l -> Some (Printf.sprintf "line %d" l)

let pp fmt t =
  match to_string t with
  | Some s -> Format.pp_print_string fmt s
  | None -> Format.pp_print_string fmt "<unknown>"
