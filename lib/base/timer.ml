let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

type accum = { mutable total : float; mutable count : int }

let accum () = { total = 0.0; count = 0 }

let record a f =
  let r, dt = time f in
  a.total <- a.total +. dt;
  a.count <- a.count + 1;
  r

let elapsed a = a.total
let calls a = a.count

let reset a =
  a.total <- 0.0;
  a.count <- 0
