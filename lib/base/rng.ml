type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = s }

let of_string s =
  (* FNV-1a over the bytes, then feed through the mixer once. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  { state = mix !h }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let bool t = Int64.logand (int64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
