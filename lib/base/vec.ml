type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 8) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- v

let grow t =
  let n = Array.length t.data in
  let data = Array.make (2 * n) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop";
  t.len <- t.len - 1;
  let v = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  v

let top t =
  if t.len = 0 then invalid_arg "Vec.top";
  t.data.(t.len - 1)

let is_empty t = t.len = 0

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let shrink t n =
  if n < 0 || n > t.len then invalid_arg "Vec.shrink";
  Array.fill t.data n (t.len - n) t.dummy;
  t.len <- n

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let to_array t = Array.sub t.data 0 t.len
let to_list t = Array.to_list (to_array t)

let of_array ~dummy arr =
  let len = Array.length arr in
  let data = Array.make (max len 1) dummy in
  Array.blit arr 0 data 0 len;
  { data; len; dummy }
