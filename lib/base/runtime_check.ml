exception Violation of string

let env_enabled () =
  match Sys.getenv_opt "SIMGEN_CHECK" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

(* Read by worker domains on every audited phase; was a plain [bool ref],
   which made the cross-domain read itself a (benign-looking) race. *)
let flag =
  Shared.Atomic.make ~loc:(Shared.here __POS__) "base.runtime-check.flag"
    (env_enabled ())

let enabled () = Shared.Atomic.get flag
let set_enabled b = Shared.Atomic.set flag b

let with_enabled b f =
  let saved = Shared.Atomic.get flag in
  Shared.Atomic.set flag b;
  Fun.protect ~finally:(fun () -> Shared.Atomic.set flag saved) f

let failf fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

(* Audit messages start "R003: ..." (or "F-...:" for injected faults);
   everything up to the first ':' is the stable code the supervisor
   reports in structured failures. *)
let violation_code msg =
  match String.index_opt msg ':' with
  | Some i when i > 0 -> String.sub msg 0 i
  | Some _ | None -> "R000"

let () =
  Printexc.register_printer (function
    | Violation msg -> Some (Printf.sprintf "Runtime_check.Violation(%S)" msg)
    | _ -> None)
