(** The global switch for runtime invariant audits.

    Optimizing passes (sweeping merges, incremental SAT sessions, the
    pattern-generation engine) carry cheap self-checks that are compiled in
    but skipped unless auditing is on. The switch defaults to the
    [SIMGEN_CHECK] environment variable ([1]/[true]/[yes]/[on] enable it)
    and can be overridden programmatically — test suites call
    {!set_enabled} [true] so every run doubles as an invariant audit, and
    call sites may accept a [?check] argument that overrides the global
    default per instance.

    A failed audit raises {!Violation}: the state is corrupt and continuing
    would silently propagate a wrong verdict. *)

exception Violation of string

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the switch forced to a value, restoring it after. *)

val failf : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Violation} with a formatted message. *)

val violation_code : string -> string
(** The stable diagnostic code prefix of a violation message — the text
    before the first [':'] (e.g. ["R004"]), or ["R000"] when the message
    carries no code. Job supervisors use this to report which audit
    tripped without shipping the whole message into structured fields. *)
