(** Deterministic pseudo-random number generator.

    A splittable splitmix64 generator. Every randomized component of the
    library takes an explicit [Rng.t] so that experiments are exactly
    reproducible from a seed; nothing in the library uses the global
    [Stdlib.Random] state. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val of_string : string -> t
(** Generator seeded from a string (FNV-1a hash); used to derive
    per-benchmark seeds from benchmark names. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val bits : t -> int
(** 62 uniformly random non-negative bits (an OCaml [int] on 64-bit). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
