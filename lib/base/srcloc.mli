(** Source locations for parsed circuit and CNF files.

    A location is a (file, line) pair where either side may be unknown:
    readers report the file they were given and the line a construct came
    from, while errors detected after parsing (e.g. during elaboration)
    usually carry only the file. The diagnostics layer ([simgen_check])
    embeds these locations in its structured reports. *)

type t = { file : string option; line : int option }

val none : t
val in_file : string -> t
val make : ?file:string -> ?line:int -> unit -> t
val with_line : t -> int -> t
val is_none : t -> bool

val to_string : t -> string option
(** ["file:line"], ["file"] or ["line N"]; [None] when nothing is known. *)

val pp : Format.formatter -> t -> unit
