(** Wall-clock timing helpers used by the sweeper and the bench harness. *)

val now : unit -> float
(** Monotonic-ish wall clock in seconds ([Unix.gettimeofday] equivalent via
    [Sys.time] is CPU time; we use [Unix] when available — here we rely on
    [Unix.gettimeofday] through the [unix] library). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)

type accum
(** A mutable accumulator of elapsed time and call count. *)

val accum : unit -> accum
val record : accum -> (unit -> 'a) -> 'a
val elapsed : accum -> float
val calls : accum -> int
val reset : accum -> unit
