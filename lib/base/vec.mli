(** Growable arrays.

    OCaml 5.1 predates [Dynarray]; this is the small subset the library
    needs, specialised for dense mutable storage of node attributes and
    worklists. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused capacity; it is never observable through the API. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element. @raise Invalid_argument if empty. *)

val top : 'a t -> 'a
val is_empty : 'a t -> bool
val clear : 'a t -> unit

val shrink : 'a t -> int -> unit
(** [shrink t n] truncates to the first [n] elements. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : dummy:'a -> 'a array -> 'a t
