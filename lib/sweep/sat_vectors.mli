(** SAT-based simulation vector generation — the related-work baseline of
    Lee et al. and Amarù et al. (paper §2.3): ask the SAT solver directly
    for an input vector that realizes the OUTgold split.

    Exact — it finds a splitting vector whenever one exists — but every
    vector costs a SAT call, which is precisely the dependence SimGen is
    designed to remove. The benchmark harness contrasts the two.

    All generation runs through a {!Sat_session}: pass one explicitly
    ([_in] variants) to share cone encodings and learned clauses across
    calls — the sweeper's SAT-guided loop does — or use the [?rng]
    entry points, which wrap a private one-shot session. *)

val generate :
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  (Simgen_network.Network.node_id * bool) list ->
  bool array option
(** [generate net outgold] encodes the union of the targets' fanin cones
    and constrains every target to its OUTgold value; [Some vector] from
    the model (cone-external PIs randomized), [None] if the combination
    is unsatisfiable. *)

val generate_in :
  Sat_session.t ->
  (Simgen_network.Network.node_id * bool) list ->
  bool array option
(** {!generate} against a caller-owned session ({!Sat_session.solve_targets}). *)

val generate_pairwise :
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  (Simgen_network.Network.node_id * bool) list ->
  bool array option
(** Weaker but more often satisfiable variant: only requires some pair of
    targets with opposite OUTgold values to be realized (the paper's
    usefulness criterion), dropping the other targets' constraints one by
    one until satisfiable. *)

val generate_pairwise_in :
  Sat_session.t ->
  (Simgen_network.Network.node_id * bool) list ->
  bool array option
(** {!generate_pairwise} against a caller-owned session. *)
