(** SAT-based simulation vector generation — the related-work baseline of
    Lee et al. and Amarù et al. (paper §2.3): ask the SAT solver directly
    for an input vector that realizes the OUTgold split.

    Exact — it finds a splitting vector whenever one exists — but every
    vector costs a SAT call, which is precisely the dependence SimGen is
    designed to remove. The benchmark harness contrasts the two. *)

val generate :
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  (Simgen_network.Network.node_id * bool) list ->
  bool array option
(** [generate net outgold] encodes the union of the targets' fanin cones
    and constrains every target to its OUTgold value; [Some vector] from
    the model (cone-external PIs randomized), [None] if the combination
    is unsatisfiable. *)

val generate_pairwise :
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  (Simgen_network.Network.node_id * bool) list ->
  bool array option
(** Weaker but more often satisfiable variant: only requires some pair of
    targets with opposite OUTgold values to be realized (the paper's
    usefulness criterion), dropping the other targets' constraints one by
    one until satisfiable. *)
