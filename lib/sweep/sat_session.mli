(** Incremental verification sessions: one persistent solver per sweep.

    A fresh-solver miter ({!Miter.check_pair_fresh}) pays for every query
    from scratch: the cone union is re-encoded and every learned clause is
    thrown away. A session amortises both across the thousands of queries
    a sweep makes against the same network:

    - {b Lazy, substitution-aware encoding.} Each node's CNF (its ISOP
      rows, as in the fresh encoder) is emitted at most once, the first
      time a query's cone reaches it, over the variables of its
      {e substituted} fanins. When a later merge redirects a fanin to its
      representative, the node is re-encoded over the new variables and
      the stale clause group is physically retracted (see GC below).
    - {b Activation-literal miters.} Each pair query adds two guard
      clauses [(~act \/ va \/ vb)] and [(~act \/ ~va \/ ~vb)] — an
      XOR-difference miter live only under the fresh assumption [act],
      posed via [solve ~assumptions:[act]].
    - {b Retirement with physical GC.} After the verdict the unit [~act]
      is asserted at level 0 and the guard clauses are deleted outright
      (they are satisfied by the unit; the unit itself must stay — it is
      what makes learned clauses carrying the positive [act] literal
      sound). Learned clauses that mention [~act] become satisfied at the
      root and are garbage-collected by the solver's own [simplify]
      passes, which also rebuild — compact — the watch lists, so BCP
      stops paying for dead queries. A proven pair additionally ties its
      two variables together so either cone benefits from the other's
      clauses; under a shared substitution the losing node's definition
      group is retracted on the spot (the merge makes it unreachable,
      the tie keeps learned clauses over its variable sound).
    - {b Cone-focused search.} Every query runs under
      {!Simgen_sat.Solver.focus_decisions} on the variables of its two
      substituted cones: branching never leaves the cones, and
      propagation above the root does not assign out-of-focus variables.
      The cone encodings are conservative extensions, so a conflict-free
      total assignment of the focus already extends to a model — a query
      against the accumulated network costs what a fresh cone-union
      solver would pay (DESIGN.md §13 has the soundness argument; [bench
      sat-session] gates the ratio).
    - {b Clause-growth rebuild.} When the solver database nonetheless
      outgrows the live encoding past [gc_ratio] (learned clauses and
      stale variable space no per-clause GC can reclaim), the session
      discards the solver and re-encodes lazily from the current
      substitution. A certifying session records the discontinuity as a
      {!Simgen_check.Certificate.Rebuild} marker.

    The session is deterministic for a fixed query order and [rng], and it
    must see every substitution update: share the sweeper's [subst] array
    (as {!Sweeper} does) rather than a copy. *)

type verdict = Equal | Counterexample of bool array | Unknown

type t

val create :
  ?certify:bool ->
  ?gc:bool ->
  ?gc_ratio:float ->
  ?audit:bool ->
  ?subst:int array ->
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  t
(** A session over [net] with an empty solver. [subst] is the live
    proven-equivalence substitution (identity when absent) — the session
    reads it before every query and path-compresses it like
    {!Miter.check_pair}. [rng] randomizes the PIs outside the encoded
    cones in counterexamples. [certify] (default [false]) turns on DRUP
    logging and per-query certificate recording: every problem clause
    and proof event is sliced per query into
    {!Simgen_check.Certificate.query} records, collected with
    {!take_cert_queries}. [gc] (default [true]) enables physical
    garbage-collection of retired queries and stale encodings; turning
    it off reproduces the append-only PR-2 behaviour (the differential
    tests rely on the verdict stream being semantically identical either
    way). [gc_ratio] (default 3.0) sets the clause-growth factor past
    which the session rebuilds its solver from scratch. [audit] (default
    [false]) arms the sampled solver-state sanitizer
    ({!Simgen_sat.Solver.set_audit}, R007..R013) on the session's solver
    — and on every solver a rebuild creates; it is also armed implicitly
    whenever {!Simgen_base.Runtime_check.enabled} holds, so the full
    test suite sweeps under the sanitizer. *)

val network : t -> Simgen_network.Network.t

val certifying : t -> bool
(** Whether the session was created with [~certify:true]. *)

val cert_query_count : t -> int
(** Query records created since creation (including already-taken ones
    and {!Simgen_check.Certificate.Rebuild} markers). *)

val take_cert_queries : t -> Simgen_check.Certificate.query list
(** Certificate records of the queries since the last take, oldest
    first; the internal buffer is cleared. The guard clauses, the
    retirement unit and the tie clauses are deliberately absent from the
    records — the independent checker reconstructs them from
    [act]/[va]/[vb], which is what makes the certificate meaningful. *)

val check_pair :
  ?max_conflicts:int ->
  t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  verdict
(** One equivalence query, posed as an activation-guarded miter against
    the persistent solver. [Equal] means UNSAT under the activation
    assumption (the pair may be merged by the caller — the session picks
    the change up from [subst] on the next query); [Counterexample]
    carries a full PI vector on which the nodes differ. [max_conflicts]
    budgets the underlying {!Simgen_sat.Solver.solve_limited} call:
    past it the query answers [Unknown] — the miter is still retired,
    nothing is merged, and the caller climbs the degradation ladder
    ({!Sweeper.verify_pair}). Unbudgeted queries never answer
    [Unknown]. *)

val solve_targets :
  t ->
  (Simgen_network.Network.node_id * bool) list ->
  bool array option
(** SAT-based vector generation through the same session: constrain every
    target node to its OUTgold value (as plain assumptions — no activation
    literal needed, assumptions are free) and return a model vector, or
    [None] if the combination is unsatisfiable. Backs {!Sat_vectors}. *)

type stats = {
  queries : int;  (** {!check_pair} queries that reached the solver *)
  proved : int;
  disproved : int;
  unknown : int;  (** budgeted queries that ran out of conflicts *)
  vector_calls : int;  (** {!solve_targets} calls *)
  encoded : int;  (** nodes encoded for the first time *)
  reencoded : int;  (** re-encodings after a fanin representative moved *)
  retired : int;  (** miters killed by asserting the negated activation *)
  live_clauses : int;  (** gauge: live problem clauses in the solver *)
  live_learnts : int;  (** gauge: live learnt clauses in the solver *)
  retired_clauses : int;
      (** clauses physically deleted by session GC: guard clauses at
          retirement plus stale gate encodings at re-encode *)
  rebuilds : int;  (** clause-growth solver rebuilds *)
}

val stats : t -> stats

val solver_stats : t -> Simgen_sat.Solver.stats
(** Counters of the underlying solver; snapshot around a query for its
    conflict/propagation deltas (the runner telemetry does). Counters
    accumulate across clause-growth rebuilds (the discarded solvers'
    counts are folded in), so deltas stay monotone; the gauge fields
    reflect the live solver only. *)
