module N = Simgen_network.Network
module Bdd = Simgen_bdd.Bdd

type verdict = Equal | Counterexample of bool array | Quota

let check_pair ?(max_nodes = 200_000) net a b =
  let m = Bdd.manager ~max_nodes (N.num_pis net) in
  match
    let cone = Simgen_network.Cone.fanin_cone_many net [ a; b ] in
    let bdds = Array.make (N.num_nodes net) (Bdd.zero m) in
    List.iter
      (fun id ->
        match N.kind net id with
        | N.Pi idx -> bdds.(id) <- Bdd.var m idx
        | N.Gate f ->
            let fanin_bdds =
              Array.map (fun fi -> bdds.(fi)) (N.fanins net id)
            in
            (* Compose the gate function over the fanin BDDs by Shannon
               expansion over the function's variables. *)
            let module TT = Simgen_network.Truth_table in
            let rec compose tt i =
              match TT.is_const tt with
              | Some false -> Bdd.zero m
              | Some true -> Bdd.one m
              | None ->
                  let lo = compose (TT.cofactor tt i false) (i + 1) in
                  let hi = compose (TT.cofactor tt i true) (i + 1) in
                  Bdd.ite m fanin_bdds.(i) hi lo
            in
            bdds.(id) <- compose f 0)
      cone;
    (bdds.(a), bdds.(b))
  with
  | fa, fb ->
      if Bdd.equal fa fb then Equal
      else begin
        match Bdd.any_sat m (Bdd.xor m fa fb) with
        | Some cex -> Counterexample cex
        | None -> Equal
      end
  | exception Bdd.Node_limit_exceeded -> Quota

let check_outputs ?(max_nodes = 500_000) net1 net2 =
  if N.num_pis net1 <> N.num_pis net2 || N.num_pos net1 <> N.num_pos net2
  then invalid_arg "Bdd_backend.check_outputs";
  let m = Bdd.manager ~max_nodes (N.num_pis net1) in
  match
    let b1 = Bdd.build_network m net1 in
    let b2 = Bdd.build_network m net2 in
    let pos1 = N.pos net1 and pos2 = N.pos net2 in
    let rec check i =
      if i >= Array.length pos1 then None
      else
        let f1 = b1.(pos1.(i)) and f2 = b2.(pos2.(i)) in
        if Bdd.equal f1 f2 then check (i + 1)
        else
          match Bdd.any_sat m (Bdd.xor m f1 f2) with
          | Some cex -> Some (i, cex)
          | None -> check (i + 1)
    in
    check 0
  with
  | result -> Some result
  | exception Bdd.Node_limit_exceeded -> None

