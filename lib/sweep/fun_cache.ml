(* Cross-request function cache keyed by NPN-canonical cone signatures.

   Soundness does not rest on the store: Equal is only ever served when
   the two cone functions agree pointwise over a shared cut computed
   right now, and every counterexample is validated by direct cone
   evaluation (or read off a differing minterm of an all-PI cut) before
   it leaves. The store contributes pattern blocks, cost accounting and
   advisory proof slices; a poisoned or colliding entry can cost a SAT
   call, never a verdict. *)

module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Npn = Simgen_network.Npn
module Rng = Simgen_base.Rng
module Timer = Simgen_base.Timer
module Fault = Simgen_fault.Fault
module Shared = Simgen_base.Shared

type entry = {
  key_a : TT.t;  (* canonical signature pair, sorted *)
  key_b : TT.t;
  mutable proved : bool;  (* a SAT Equal was filed here (advisory) *)
  mutable cost : int;  (* conflicts spent on the proof *)
  mutable patterns : bool array list;  (* full PI vectors, newest first *)
  mutable proof : int list list option;  (* trimmed DRUP slice *)
  mutable sum : int;  (* FNV-1a over the serialised payload *)
  mutable last_use : int;
  mutable uses : int;
  mutable bytes : int;
}

(* Append-only journal of verdict insertions between checkpoints. The
   record itself is only reachable through the [journal] cell of a cache
   and only touched with the cache mutex held (the same discipline as
   [entry] fields), so plain mutable fields are safe. *)
type journal = {
  jpath : string;
  snapshot_path : string;
  checkpoint_entries : int;  (* appends between automatic checkpoints *)
  checkpoint_seconds : float;  (* wall-clock between automatic checkpoints *)
  mutable oc : out_channel;
  mutable appends_since : int;
  mutable last_checkpoint : float;
}

type t = {
  max_bytes : int;
  max_support : int;
  max_interior : int;
  patterns_per_entry : int;
  table : (string, entry) Hashtbl.t;
  mutex : Shared.Mutex.t;
  (* counters, all guarded by [mutex]; declared as [Shared.Cell]s so the
     race detector can prove that claim. Entry fields stay plain mutable:
     entries are only reachable through [table], which is only touched
     with the mutex held. *)
  bytes : int Shared.Cell.t;
  tick : int Shared.Cell.t;
  consults : int Shared.Cell.t;
  hits : int Shared.Cell.t;
  misses : int Shared.Cell.t;
  unsupported : int Shared.Cell.t;
  local_proofs : int Shared.Cell.t;
  local_cexes : int Shared.Cell.t;
  pattern_hits : int Shared.Cell.t;
  collisions : int Shared.Cell.t;
  inserts : int Shared.Cell.t;
  evictions : int Shared.Cell.t;
  dropped : int Shared.Cell.t;
  journal : journal option Shared.Cell.t;
  journal_appends : int Shared.Cell.t;
  journal_replayed : int Shared.Cell.t;
  journal_corrupt : int Shared.Cell.t;
  checkpoints : int Shared.Cell.t;
}

let create ?(max_bytes = 64 * 1024 * 1024) ?(max_support = 8)
    ?(max_interior = 48) ?(patterns_per_entry = 8) () =
  let loc = Shared.here __POS__ in
  let cell name v = Shared.Cell.make ~loc ("sweep.fun-cache." ^ name) v in
  {
    max_bytes = max max_bytes 4096;
    max_support = min (max max_support 2) 12;
    max_interior = max max_interior 4;
    patterns_per_entry = max patterns_per_entry 1;
    table = Hashtbl.create 1024;
    mutex = Shared.Mutex.create ~loc "sweep.fun-cache.lock";
    bytes = cell "bytes" 0;
    tick = cell "tick" 0;
    consults = cell "consults" 0;
    hits = cell "hits" 0;
    misses = cell "misses" 0;
    unsupported = cell "unsupported" 0;
    local_proofs = cell "local-proofs" 0;
    local_cexes = cell "local-cexes" 0;
    pattern_hits = cell "pattern-hits" 0;
    collisions = cell "collisions" 0;
    inserts = cell "inserts" 0;
    evictions = cell "evictions" 0;
    dropped = cell "dropped" 0;
    journal = cell "journal" None;
    journal_appends = cell "journal-appends" 0;
    journal_replayed = cell "journal-replayed" 0;
    journal_corrupt = cell "journal-corrupt" 0;
    checkpoints = cell "checkpoints" 0;
  }

let locked t f = Shared.Mutex.with_lock t.mutex f

(* ---------------- checksums and serialisation ---------------- *)

(* Same FNV-1a flavour as [Pattern_cache.checksum]: byte-folded with the
   length mixed in at the end. *)
let fnv s =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h lxor String.length s

let bits_of_vec v =
  String.init (Array.length v) (fun i -> if v.(i) then '1' else '0')

let vec_of_bits s = Array.init (String.length s) (fun i -> s.[i] = '1')

(* The checksummed payload: every field that matters, one line, space
   separated. Shared between the in-memory checksum and the snapshot
   format so corruption is caught identically in both places. *)
let payload e =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int (TT.nvars e.key_a));
  Buffer.add_char b ' ';
  Buffer.add_string b (TT.to_string e.key_a);
  Buffer.add_char b ' ';
  Buffer.add_string b (TT.to_string e.key_b);
  Buffer.add_char b ' ';
  Buffer.add_string b (if e.proved then "1" else "0");
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int e.cost);
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int (List.length e.patterns));
  List.iter
    (fun p ->
      Buffer.add_char b ' ';
      Buffer.add_string b (bits_of_vec p))
    e.patterns;
  (match e.proof with
   | None -> Buffer.add_string b " 0"
   | Some clauses ->
       Buffer.add_char b ' ';
       Buffer.add_string b (string_of_int (List.length clauses));
       List.iter
         (fun c ->
           Buffer.add_char b ' ';
           Buffer.add_string b (string_of_int (List.length c));
           List.iter
             (fun l ->
               Buffer.add_char b ' ';
               Buffer.add_string b (string_of_int l))
             c)
         clauses);
  Buffer.contents b

let refresh e =
  let p = payload e in
  e.sum <- fnv p;
  let old = e.bytes in
  e.bytes <- String.length p + 64;
  e.bytes - old

let key_string ka kb = TT.to_string ka ^ "|" ^ TT.to_string kb

(* ---------------- crash-safe snapshot writing ---------------- *)

let magic = "simgen-fun-cache 1"
let journal_magic = "simgen-fun-journal 1"

(* One checksummed line per resident entry. Mutex held. *)
let snapshot_lines t =
  Hashtbl.fold
    (fun _ e acc ->
      let p = payload e in
      Printf.sprintf "%s %d" p (fnv p) :: acc)
    t.table []

let remove_noerr path = try Sys.remove path with Sys_error _ -> ()

(* Tmp file + fsync + atomic rename: a crash mid-write leaves either the
   previous snapshot or the new one, never a truncated hybrid. The
   [disk-full] fault fails the write the way ENOSPC would. *)
let write_snapshot_file ~lines path =
  if Fault.enabled () && Fault.fire "disk-full" then
    Error (path ^ ": no space left on device (injected)")
  else
    let tmp = path ^ ".tmp" in
    match open_out tmp with
    | exception Sys_error msg -> Error msg
    | oc -> (
        match
          output_string oc magic;
          output_char oc '\n';
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            lines;
          flush oc;
          Unix.fsync (Unix.descr_of_out_channel oc)
        with
        | () -> (
            close_out_noerr oc;
            match Unix.rename tmp path with
            | () -> Ok ()
            | exception Unix.Unix_error (e, _, _) ->
                remove_noerr tmp;
                Error (path ^ ": " ^ Unix.error_message e))
        | exception Sys_error msg ->
            close_out_noerr oc;
            remove_noerr tmp;
            Error msg
        | exception Unix.Unix_error (e, _, _) ->
            close_out_noerr oc;
            remove_noerr tmp;
            Error (tmp ^ ": " ^ Unix.error_message e))

(* Snapshot to the journal's snapshot path, then truncate the journal back
   to its header: everything the journal covered is now durable in the
   snapshot. A failed snapshot (disk full) leaves the journal intact — it
   still covers every insertion since the last good snapshot — and the
   next scheduled checkpoint retries. Mutex held. *)
let checkpoint_locked t j =
  j.appends_since <- 0;
  j.last_checkpoint <- Timer.now ();
  match write_snapshot_file ~lines:(snapshot_lines t) j.snapshot_path with
  | Error _ as err -> err
  | Ok () ->
      (match
         close_out_noerr j.oc;
         let oc = open_out j.jpath in
         j.oc <- oc;
         output_string oc journal_magic;
         output_char oc '\n';
         flush oc
       with
      | () -> ()
      | exception Sys_error _ -> ());
      Shared.Cell.incr t.checkpoints;
      Ok ()

(* Append one entry's checksummed payload line to the journal, then
   checkpoint if the size/time schedule says so. Journaling is best-effort
   durability: a write failure degrades crash-safety, never the service.
   The [journal-torn-write] fault leaves a prefix of the line, the way a
   crash between [write(2)] and the next flush would. Mutex held. *)
let journal_entry t e =
  match Shared.Cell.get t.journal with
  | None -> ()
  | Some j ->
      let p = payload e in
      let line = Printf.sprintf "%s %d\n" p (fnv p) in
      (try
         if Fault.enabled () && Fault.fire "journal-torn-write" then
           output_string j.oc (String.sub line 0 (String.length line / 2))
         else output_string j.oc line;
         flush j.oc;
         Shared.Cell.incr t.journal_appends;
         j.appends_since <- j.appends_since + 1
       with Sys_error _ -> ());
      if
        j.appends_since >= j.checkpoint_entries
        || Timer.now () -. j.last_checkpoint >= j.checkpoint_seconds
      then ignore (checkpoint_locked t j)

(* ---------------- eviction ---------------- *)

(* LRU biased by proof cost: recency dominates, but an entry whose proof
   burned many conflicts earns extra ticks of grace, as does one that
   keeps serving. *)
let score e = e.last_use + min (e.cost / 64) 4096 + min (e.uses * 8) 512

let evict_until_fit t =
  while Shared.Cell.get t.bytes > t.max_bytes && Hashtbl.length t.table > 0 do
    let worst =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, best) when score best <= score e -> acc
          | _ -> Some (k, e))
        t.table None
    in
    match worst with
    | None -> ()
    | Some (k, e) ->
        Hashtbl.remove t.table k;
        Shared.Cell.add t.bytes (-e.bytes);
        Shared.Cell.incr t.evictions
  done

(* ---------------- store access (mutex held) ---------------- *)

(* Lookup with checksum validation: an entry whose payload no longer
   matches its recorded FNV-1a sum (bit-rot, a poisoned write, a bad
   snapshot) is dropped on the spot rather than consulted. *)
let find_valid t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e ->
      if fnv (payload e) = e.sum then Some e
      else begin
        Hashtbl.remove t.table key;
        Shared.Cell.add t.bytes (-e.bytes);
        Shared.Cell.incr t.dropped;
        None
      end

(* The poison fault corrupts an entry *after* its checksum was computed,
   modelling a torn write or memory corruption in a long-lived daemon;
   the next lookup must detect and drop it. *)
let maybe_poison e =
  if Fault.enabled () && Fault.fire "serve-cache-poison" then
    match e.patterns with
    | p :: _ when Array.length p > 0 -> p.(0) <- not p.(0)
    | _ -> e.proved <- not e.proved

let touch t e =
  Shared.Cell.incr t.tick;
  e.last_use <- Shared.Cell.get t.tick;
  e.uses <- e.uses + 1

let insert t key e =
  Shared.Cell.incr t.tick;
  e.last_use <- Shared.Cell.get t.tick;
  ignore (refresh e);
  (* journal before the poison probe: the journal line carries what the
     checksum was computed over, so a poisoned resident entry is caught
     on lookup while the durable copy stays valid *)
  journal_entry t e;
  maybe_poison e;
  Hashtbl.replace t.table key e;
  Shared.Cell.add t.bytes e.bytes;
  Shared.Cell.incr t.inserts;
  evict_until_fit t

let update t e f =
  f e;
  Shared.Cell.add t.bytes (refresh e);
  journal_entry t e;
  maybe_poison e;
  evict_until_fit t

(* ---------------- shared-cut cone functions ---------------- *)

module IS = Set.Make (Int)

let rec rep subst i = if subst.(i) = i then i else rep subst subst.(i)

(* Grow a shared cut for {a, b}: starting from the two representatives,
   repeatedly expand the largest frontier gate whose (substitution
   resolved) fanins keep the frontier within [max_support]. Expanded
   gates become interior; expansion stops when nothing fits or the
   interior budget is spent. The cut is exact when only PIs remain on
   the frontier. *)
let shared_cut t ~subst net a b =
  let frontier = ref (IS.add a (IS.singleton b)) in
  let interior = ref IS.empty in
  let steps = ref 0 in
  let fits id =
    match N.kind net id with
    | N.Pi _ -> None
    | N.Gate _ ->
        let fresh =
          Array.fold_left
            (fun acc f ->
              let f = rep subst f in
              if IS.mem f !frontier || IS.mem f !interior then acc
              else IS.add f acc)
            IS.empty (N.fanins net id)
        in
        let size' = IS.cardinal !frontier - 1 + IS.cardinal fresh in
        if size' <= t.max_support then Some fresh else None
  in
  let continue = ref true in
  while !continue && !steps < t.max_interior do
    (* largest-id gate first: ids are topological, so this peels the
       pair's own logic before touching shared fanin structure *)
    let rec pick = function
      | [] -> None
      | id :: rest -> (
          match fits id with Some fresh -> Some (id, fresh) | None -> pick rest)
    in
    match pick (List.rev (IS.elements !frontier)) with
    | None -> continue := false
    | Some (id, fresh) ->
        incr steps;
        frontier := IS.union fresh (IS.remove id !frontier);
        interior := IS.add id !interior
  done;
  let exact = IS.for_all (fun id -> N.is_pi net id) !frontier in
  (IS.elements !frontier (* ascending *), IS.elements !interior, exact)

(* Compose a gate function over the truth tables of its (resolved)
   fanins by Shannon expansion, with constant short-circuiting. *)
let rec compose s f fanin_tts i =
  match TT.is_const f with
  | Some b -> TT.create_const s b
  | None ->
      let hi = compose s (TT.cofactor f i true) fanin_tts (i + 1) in
      let lo = compose s (TT.cofactor f i false) fanin_tts (i + 1) in
      if TT.equal hi lo then hi
      else
        TT.or_
          (TT.and_ fanin_tts.(i) hi)
          (TT.and_ (TT.not_ fanin_tts.(i)) lo)

(* Truth tables of [a] and [b] over the cut variables (frontier nodes in
   ascending id order). Interior gates are evaluated ascending — fanins
   have smaller ids, so every resolved fanin is already a frontier
   variable or a computed interior table. *)
let cut_functions ~subst net frontier interior a b =
  let s = List.length frontier in
  let tts = Hashtbl.create 64 in
  List.iteri (fun i id -> Hashtbl.replace tts id (TT.var i s)) frontier;
  List.iter
    (fun id ->
      let f = N.func net id in
      let fanin_tts =
        Array.map (fun fi -> Hashtbl.find tts (rep subst fi)) (N.fanins net id)
      in
      Hashtbl.replace tts id (compose s f fanin_tts 0))
    interior;
  (Hashtbl.find tts a, Hashtbl.find tts b, s)

(* Scalar cone evaluation used to validate a replayed pattern against
   the live network before serving it. *)
let eval_pair ~subst net a b vec =
  let memo = Hashtbl.create 64 in
  let rec ev id =
    let id = rep subst id in
    match Hashtbl.find_opt memo id with
    | Some v -> v
    | None ->
        let v =
          match N.kind net id with
          | N.Pi k -> vec.(k)
          | N.Gate f -> TT.eval f (Array.map ev (N.fanins net id))
        in
        Hashtbl.replace memo id v;
        v
  in
  (ev a, ev b)

(* A full PI vector realising cut minterm [m]: the (all-PI) frontier
   pins its bits, every other input is randomised. *)
let vector_of_minterm ~rng net frontier m =
  let vec = Array.init (N.num_pis net) (fun _ -> Rng.bool rng) in
  List.iteri
    (fun i id ->
      match N.kind net id with
      | N.Pi k -> vec.(k) <- (m lsr i) land 1 = 1
      | N.Gate _ -> ())
    frontier;
  vec

let first_differing_minterm tt_a tt_b s =
  let rec go m =
    if m >= 1 lsl s then None
    else if TT.get_bit tt_a m <> TT.get_bit tt_b m then Some m
    else go (m + 1)
  in
  go 0

(* ---------------- the public protocol ---------------- *)

type slot = { ka : TT.t; kb : TT.t }

type outcome =
  | Equal
  | Counterexample of bool array
  | Miss of slot
  | Unsupported

type verdict =
  | Proved of { conflicts : int; proof : int list list option }
  | Refuted of bool array

let push_pattern t e vec =
  e.patterns <-
    vec
    :: (if List.length e.patterns >= t.patterns_per_entry then
          List.filteri (fun i _ -> i < t.patterns_per_entry - 1) e.patterns
        else e.patterns)

let fresh_entry ka kb =
  {
    key_a = ka;
    key_b = kb;
    proved = false;
    cost = 0;
    patterns = [];
    proof = None;
    sum = 0;
    last_use = 0;
    uses = 0;
    bytes = 0;
  }

let consult t ?(serve_equal = true) ~rng ~subst net a b =
  let a = rep subst a and b = rep subst b in
  (* cut growth and truth tables run outside the mutex: they read only
     the (per-job) network and this sweeper's substitution *)
  let frontier, interior, exact = shared_cut t ~subst net a b in
  if List.length frontier > t.max_support then
    locked t (fun () ->
        Shared.Cell.incr t.consults;
        Shared.Cell.incr t.unsupported;
        Unsupported)
  else begin
    let tt_a, tt_b, s = cut_functions ~subst net frontier interior a b in
    let ca = Npn.canonical_key tt_a and cb = Npn.canonical_key tt_b in
    let ka, kb = if TT.compare ca cb <= 0 then (ca, cb) else (cb, ca) in
    let slot = { ka; kb } in
    let key = key_string ka kb in
    if TT.equal tt_a tt_b then begin
      (* Sound independently of the store: agreement over the free cut
         variables implies agreement over every PI assignment. *)
      locked t (fun () ->
          Shared.Cell.incr t.consults;
          (match find_valid t key with
           | Some e -> touch t e
           | None ->
               let e = fresh_entry ka kb in
               e.proved <- true;
               insert t key e);
          if serve_equal then begin
            Shared.Cell.incr t.hits;
            Shared.Cell.incr t.local_proofs;
            Equal
          end
          else begin
            (* certification: the SAT route must run so the merge can
               cite a DRUP proof *)
            Shared.Cell.incr t.misses;
            Miss slot
          end)
    end
    else if exact then begin
      (* The cut is the pair's true PI support: a differing minterm is a
         genuine counterexample. *)
      match first_differing_minterm tt_a tt_b s with
      | Some m ->
          let vec = vector_of_minterm ~rng net frontier m in
          locked t (fun () ->
              Shared.Cell.incr t.consults;
              Shared.Cell.incr t.hits;
              Shared.Cell.incr t.local_cexes;
              (match find_valid t key with
               | Some e ->
                   touch t e;
                   update t e (fun e -> push_pattern t e vec)
               | None ->
                   let e = fresh_entry ka kb in
                   e.patterns <- [ Array.copy vec ];
                   insert t key e);
              Counterexample vec)
      | None ->
          (* unequal tables must differ somewhere *)
          assert false
    end
    else begin
      (* Inexact cut and the functions differ over it: the difference
         may be unreachable, so only a validated stored pattern can be
         served; otherwise SAT decides. *)
      let npis = N.num_pis net in
      let stored =
        locked t (fun () ->
            Shared.Cell.incr t.consults;
            match find_valid t key with
            | Some e ->
                touch t e;
                Some (List.filter (fun p -> Array.length p = npis) e.patterns)
            | None -> None)
      in
      let validated =
        match stored with
        | None -> None
        | Some patterns ->
            List.find_opt
              (fun p ->
                let va, vb = eval_pair ~subst net a b p in
                va <> vb)
              patterns
      in
      match validated with
      | Some vec ->
          locked t (fun () ->
              Shared.Cell.incr t.hits;
              Shared.Cell.incr t.pattern_hits);
          Counterexample (Array.copy vec)
      | None ->
          locked t (fun () ->
              if stored <> None then Shared.Cell.incr t.collisions;
              Shared.Cell.incr t.misses);
          Miss slot
    end
  end

let file_verdict t e verdict =
  match verdict with
  | Proved { conflicts; proof } ->
      e.proved <- true;
      e.cost <- max e.cost conflicts;
      (match proof with Some _ -> e.proof <- proof | None -> ())
  | Refuted vec -> push_pattern t e (Array.copy vec)

let record t slot verdict =
  let key = key_string slot.ka slot.kb in
  locked t (fun () ->
      match find_valid t key with
      | Some e ->
          touch t e;
          update t e (fun e -> file_verdict t e verdict)
      | None ->
          let e = fresh_entry slot.ka slot.kb in
          file_verdict t e verdict;
          insert t key e)

type stats = {
  consults : int;
  hits : int;
  misses : int;
  unsupported : int;
  local_proofs : int;
  local_cexes : int;
  pattern_hits : int;
  collisions : int;
  inserts : int;
  evictions : int;
  dropped : int;
  entries : int;
  bytes : int;
  journal_appends : int;
  journal_replayed : int;
  journal_corrupt : int;
  checkpoints : int;
}

let stats t =
  locked t (fun () ->
      {
        consults = Shared.Cell.get t.consults;
        hits = Shared.Cell.get t.hits;
        misses = Shared.Cell.get t.misses;
        unsupported = Shared.Cell.get t.unsupported;
        local_proofs = Shared.Cell.get t.local_proofs;
        local_cexes = Shared.Cell.get t.local_cexes;
        pattern_hits = Shared.Cell.get t.pattern_hits;
        collisions = Shared.Cell.get t.collisions;
        inserts = Shared.Cell.get t.inserts;
        evictions = Shared.Cell.get t.evictions;
        dropped = Shared.Cell.get t.dropped;
        entries = Hashtbl.length t.table;
        bytes = Shared.Cell.get t.bytes;
        journal_appends = Shared.Cell.get t.journal_appends;
        journal_replayed = Shared.Cell.get t.journal_replayed;
        journal_corrupt = Shared.Cell.get t.journal_corrupt;
        checkpoints = Shared.Cell.get t.checkpoints;
      })

(* ---------------- snapshot / restore ---------------- *)

let save t path =
  let lines = locked t (fun () -> snapshot_lines t) in
  write_snapshot_file ~lines path

(* Parse one snapshot line back into an entry. The checksum is the last
   field; it must match the FNV of everything before it. *)
let entry_of_line line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i -> (
      let p = String.sub line 0 i in
      let sum = String.sub line (i + 1) (String.length line - i - 1) in
      match int_of_string_opt sum with
      | Some sum when fnv p = sum -> (
          try
            let fields =
              String.split_on_char ' ' p |> List.filter (fun s -> s <> "")
            in
            match fields with
            | _nvars :: sa :: sb :: proved :: cost :: npat :: rest ->
                let ka = TT.of_string sa and kb = TT.of_string sb in
                let npat = int_of_string npat in
                let rec take n acc = function
                  | rest when n = 0 -> (List.rev acc, rest)
                  | x :: rest -> take (n - 1) (x :: acc) rest
                  | [] -> failwith "short"
                in
                let pats, rest = take npat [] rest in
                let proof, rest =
                  match rest with
                  | nclauses :: rest ->
                      let n = int_of_string nclauses in
                      if n = 0 then (None, rest)
                      else
                        let rec clauses n acc rest =
                          if n = 0 then (List.rev acc, rest)
                          else
                            match rest with
                            | len :: rest ->
                                let lits, rest =
                                  take (int_of_string len) [] rest
                                in
                                clauses (n - 1)
                                  (List.map int_of_string lits :: acc)
                                  rest
                            | [] -> failwith "short"
                        in
                        let cs, rest = clauses n [] rest in
                        (Some cs, rest)
                  | [] -> failwith "short"
                in
                if rest <> [] then None
                else
                  let e = fresh_entry ka kb in
                  e.proved <- proved = "1";
                  e.cost <- int_of_string cost;
                  e.patterns <- List.map vec_of_bits pats;
                  e.proof <- proof;
                  Some e
            | _ -> None
          with _ -> None)
      | _ -> None)

let load t path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let header = try input_line ic with End_of_file -> "" in
        if header <> magic then
          Error (Printf.sprintf "%s: not a fun-cache snapshot" path)
        else begin
          let restored = ref 0 in
          (try
             while true do
               let line = input_line ic in
               if String.trim line <> "" then
                 locked t (fun () ->
                     match entry_of_line line with
                     | Some e ->
                         let key = key_string e.key_a e.key_b in
                         if not (Hashtbl.mem t.table key) then begin
                           insert t key e;
                           incr restored
                         end
                     | None -> Shared.Cell.incr t.dropped)
             done
           with End_of_file -> ());
          Ok !restored
        end)
  with Sys_error msg -> Error msg

(* ---------------- journal: replay, append, checkpoint ---------------- *)

let truncate_noerr path len =
  try Unix.truncate path len with Unix.Unix_error _ -> ()

(* Journal lines are strictly newer than whatever a snapshot restored, so
   a replayed entry replaces a resident one under the same key. Mutex
   held. *)
let replay_insert t e =
  let key = key_string e.key_a e.key_b in
  (match Hashtbl.find_opt t.table key with
   | Some old ->
       Hashtbl.remove t.table key;
       Shared.Cell.add t.bytes (-old.bytes)
   | None -> ());
  insert t key e;
  Shared.Cell.incr t.journal_replayed

let replay_journal t path =
  match open_in path with
  | exception Sys_error _ -> (0, 0) (* no journal: a cold (or clean) start *)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let header = try input_line ic with End_of_file -> "" in
          if header <> journal_magic then begin
            (* corrupt from byte 0 (or an empty torn file): drop the whole
               journal rather than refuse to start *)
            locked t (fun () -> Shared.Cell.incr t.journal_corrupt);
            close_in_noerr ic;
            truncate_noerr path 0;
            (0, 1)
          end
          else begin
            let valid_bytes = ref (String.length header + 1) in
            let replayed = ref 0 and corrupt = ref 0 in
            (try
               while true do
                 let line = input_line ic in
                 match
                   if String.trim line = "" then None else entry_of_line line
                 with
                 | Some e ->
                     locked t (fun () -> replay_insert t e);
                     incr replayed;
                     valid_bytes := !valid_bytes + String.length line + 1
                 | None ->
                     (* A checksum mismatch marks the torn tail: everything
                        from here on is untrusted. Truncate the file back to
                        the last valid line and stop. *)
                     incr corrupt;
                     (try
                        while true do
                          ignore (input_line ic);
                          incr corrupt
                        done
                      with End_of_file -> ());
                     raise End_of_file
               done
             with End_of_file -> ());
            if !corrupt > 0 then begin
              locked t (fun () -> Shared.Cell.add t.journal_corrupt !corrupt);
              close_in_noerr ic;
              truncate_noerr path !valid_bytes
            end;
            (!replayed, !corrupt)
          end)

let journal_enabled t =
  locked t (fun () -> Shared.Cell.get t.journal <> None)

let enable_journal t ~snapshot ~journal:jpath ?(checkpoint_entries = 128)
    ?(checkpoint_seconds = 30.0) () =
  match open_out jpath with
  | exception Sys_error msg -> Error msg
  | oc ->
      output_string oc journal_magic;
      output_char oc '\n';
      flush oc;
      locked t (fun () ->
          let j =
            {
              jpath;
              snapshot_path = snapshot;
              checkpoint_entries = max 1 checkpoint_entries;
              checkpoint_seconds = Float.max 0.1 checkpoint_seconds;
              oc;
              appends_since = 0;
              last_checkpoint = Timer.now ();
            }
          in
          Shared.Cell.set t.journal (Some j);
          (* Initial checkpoint: make everything restored so far (snapshot
             plus replayed journal) durable in one place before appending.
             A failure (e.g. disk full) is tolerated — the journal still
             captures every insertion from here on. *)
          ignore (checkpoint_locked t j);
          Ok ())

let checkpoint t =
  locked t (fun () ->
      match Shared.Cell.get t.journal with
      | None -> Error "no journal enabled"
      | Some j -> checkpoint_locked t j)
