(** BDD-based verification backend.

    The classical alternative to SAT in sweeping flows (paper §2.2):
    build BDDs for the candidate nodes' cones and compare roots —
    equality is constant-time, counter-examples come from a satisfying
    path of the XOR. BDD size can blow up, so every entry point takes a
    node quota and reports [Quota] instead of an answer when it is hit;
    callers then fall back to the SAT backend. *)

type verdict =
  | Equal
  | Counterexample of bool array
  | Quota  (** node limit exceeded: fall back to SAT *)

val check_pair :
  ?max_nodes:int ->
  Simgen_network.Network.t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  verdict
(** Compare two nodes of one network (default quota 200_000 nodes). *)

val check_outputs :
  ?max_nodes:int ->
  Simgen_network.Network.t ->
  Simgen_network.Network.t ->
  (int * bool array) option option
(** Full-output CEC: [Some None] = equivalent, [Some (Some (po, cex))] =
    differ at [po], [None] = quota exceeded. Networks must agree on PI
    and PO counts. *)
