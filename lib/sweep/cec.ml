module N = Simgen_network.Network
module Timer = Simgen_base.Timer

type outcome =
  | Equivalent
  | Not_equivalent of { po : int; vector : bool array }
  | Inconclusive of { pos : int list }

type report = {
  outcome : outcome;
  guided : Sweeper.guided_stats;
  sat : Sweeper.sat_stats;
  po_calls : int;
  final_cost : int;
  cost_history : int list;
  total_time : float;
}

let join net1 net2 =
  if N.num_pis net1 <> N.num_pis net2 then
    invalid_arg "Cec.join: PI count mismatch";
  let joined =
    N.create ~name:(Printf.sprintf "%s|%s" (N.name net1) (N.name net2)) ()
  in
  let pis = Array.init (N.num_pis net1) (fun _ -> N.add_pi joined) in
  let instantiate net =
    let map = Array.make (N.num_nodes net) (-1) in
    N.iter_nodes net (fun id ->
        match N.kind net id with
        | N.Pi idx -> map.(id) <- pis.(idx)
        | N.Gate f ->
            let fanins = Array.map (fun fi -> map.(fi)) (N.fanins net id) in
            map.(id) <- N.add_gate joined f fanins);
    Array.map (fun id -> map.(id)) (N.pos net)
  in
  let pos1 = instantiate net1 in
  let pos2 = instantiate net2 in
  Array.iter (fun id -> N.add_po joined id) pos1;
  Array.iter (fun id -> N.add_po joined id) pos2;
  (joined, pos1, pos2)

let check (opts : Sweep_options.t) net1 net2 =
  if N.num_pos net1 <> N.num_pos net2 then
    invalid_arg "Cec.check: PO count mismatch";
  let t0 = Timer.now () in
  let joined, pos1, pos2 = join net1 net2 in
  let sweeper = Sweeper.create opts joined in
  for _ = 1 to opts.Sweep_options.random_rounds do
    Sweeper.random_round sweeper
  done;
  let guided = Sweeper.run_guided opts sweeper in
  let sat = Sweeper.sat_sweep opts sweeper in
  (* PO pairs: proven substitutions make most of these trivial, and the
     sweeper's substitution array shrinks the remaining miters to the
     unproven parts of the cones. Proven PO merges are recorded back into
     the substitution so they keep simplifying the later PO miters. On the
     incremental route the PO miters go through the sweeper's session, so
     they reuse the cone encodings and learned clauses of the sweep. *)
  let po_calls = ref 0 in
  let rec check_pos i unknowns =
    if i >= Array.length pos1 then
      match unknowns with
      | [] -> Equivalent
      | pos -> Inconclusive { pos = List.rev pos }
    else begin
      let a = Sweeper.representative sweeper pos1.(i)
      and b = Sweeper.representative sweeper pos2.(i) in
      if a = b then check_pos (i + 1) unknowns
      else begin
        incr po_calls;
        match fst (Sweeper.verify_pair opts sweeper a b) with
        | Miter.Equal ->
            (* Through [Sweeper.merge] so a certifying run logs the PO
               merge against the proof that just established it. *)
            Sweeper.merge sweeper a b;
            check_pos (i + 1) unknowns
        | Miter.Counterexample vector ->
            (* Feed the witness back like any other counter-example so the
               partial result (classes, cost history) stays consistent. *)
            Sweeper.apply_vector sweeper vector;
            Not_equivalent { po = i; vector }
        | Miter.Unknown ->
            (* Quarantined by the ladder: no verdict for this PO pair, but
               a definite counter-example on a later PO still wins, so
               keep going. *)
            check_pos (i + 1) (i :: unknowns)
      end
    end
  in
  let outcome = check_pos 0 [] in
  {
    outcome;
    guided;
    sat;
    po_calls = !po_calls;
    final_cost = Sweeper.cost sweeper;
    cost_history = Sweeper.cost_history sweeper;
    total_time = Timer.now () -. t0;
  }
