(** Combinational equivalence checking of two networks (paper §2.2).

    The two networks are joined over shared PIs into one network; random
    plus guided simulation partitions the internal equivalence classes, SAT
    sweeping proves internal equivalences, and finally each PO pair is
    miter-checked (with the proven substitutions shrinking the PO miters).
*)

type outcome =
  | Equivalent
  | Not_equivalent of { po : int; vector : bool array }
      (** index of the first differing PO pair and a distinguishing input *)
  | Inconclusive of { pos : int list }
      (** every decided PO pair proved equal, but these PO indices were
          quarantined by the degradation ladder ({!Sweeper.verify_pair}):
          no verdict, rather than a wrong one. Only reachable with a
          conflict budget set (or under injected faults). *)

type report = {
  outcome : outcome;
  guided : Sweeper.guided_stats;
  sat : Sweeper.sat_stats;
  po_calls : int;  (** extra SAT calls for the PO miters *)
  final_cost : int;  (** Eq. (5) cost after the whole flow *)
  cost_history : int list;
      (** cost after every refinement event, oldest first — includes the
          PO-phase counter-example, which is fed back before returning *)
  total_time : float;
}

val check :
  Sweep_options.t ->
  Simgen_network.Network.t ->
  Simgen_network.Network.t ->
  report
(** The full CEC flow under one options record ({!Sweep_options.default}
    is the paper's §6.1 setup). Requires equal PI and PO counts. With
    [incremental] set (the default) the PO miters run through the same
    {!Sat_session} as the sweep, reusing its cone encodings and learned
    clauses. *)

val join :
  Simgen_network.Network.t ->
  Simgen_network.Network.t ->
  Simgen_network.Network.t * int array * int array
(** The joined network over shared PIs plus the PO node ids of each source
    network within it. Exposed for tests and examples. *)
