(** The SAT-sweeping workflow of the paper's Figure 2.

    A sweeper owns a LUT network and its equivalence classes and advances
    them through three phases:

    - {b random simulation}: batches of 64 random vectors refine the
      classes ({!random_round});
    - {b guided simulation}: per iteration, one equivalence class is handed
      to the pattern generator (SimGen or reverse simulation); a useful
      vector is simulated and refines the classes ({!guided_round});
    - {b SAT sweeping}: remaining candidate pairs go to the solver; UNSAT
      merges the pair (substitution shrinks later miters), SAT yields a
      counter-example vector that is fed back into simulation
      ({!sat_sweep}).

    All phases keep per-phase statistics; the evaluation section's tables
    and figures are read directly off these counters. *)

type t

type guided_stats = {
  iterations : int;  (** guided iterations executed *)
  vectors : int;  (** useful vectors simulated *)
  skipped : int;  (** classes skipped (no useful vector) *)
  gen_conflicts : int;  (** per-target conflicts inside the generator *)
  implications : int;
  decisions : int;
  gen_sat_calls : int;
      (** solver calls spent {e generating} vectors — zero for SimGen and
          reverse simulation, one per class for the SAT-vector baseline *)
  guided_time : float;  (** wall time spent generating + simulating *)
}

type sat_stats = {
  calls : int;
  proved : int;  (** UNSAT answers: merged pairs *)
  disproved : int;  (** SAT answers: counter-examples applied *)
  conflicts : int;  (** solver conflicts attributed to sweeping calls *)
  propagations : int;  (** solver propagations attributed to sweeping calls *)
  restarts : int;  (** solver restarts attributed to sweeping calls *)
  deleted : int;
      (** clauses physically deleted during sweeping calls: learnt-clause
          reductions plus problem-clause retractions (session GC) *)
  sat_time : float;  (** wall time inside the solver path *)
}

val empty_guided : guided_stats
val empty_sat : sat_stats
(** All-zero stats (e.g. for jobs that failed before sweeping). *)

type degrade_stats = {
  unknowns : int;  (** queries that ran out of a conflict budget *)
  escalations : int;  (** budget-escalation retries (4x per step) *)
  fresh_fallbacks : int;  (** queries retried on a fresh solver *)
  bdd_fallbacks : int;  (** queries retried on the BDD backend *)
  session_rebuilds : int;
      (** sessions torn down after a [Runtime_check.Violation] and rebuilt
          from the substitution *)
  quarantined : (int * int) list;
      (** representative pairs every rung gave up on, newest first — never
          merged, excluded from further candidate picking *)
}
(** What the degradation ladder ({!verify_pair}) had to do. All zero /
    empty on a fault-free, unbudgeted run. *)

val empty_degrade : degrade_stats

val create : ?check:bool -> Sweep_options.t -> Simgen_network.Network.t -> t
(** A fresh sweeper with one initial class holding all gates and no
    simulation history, configured by the options record: [seed] feeds
    the RNG, [outgold] picks the OUTgold generation strategy for guided
    rounds, [certify] records a whole-sweep certificate (the session
    logs per-query clausal proofs, every merge is logged with a
    reference to the query that proved it, and {!certificate} assembles
    the result for {!Simgen_check.Certificate.check}), and [session_gc]
    controls physical clause garbage-collection inside the incremental
    session. [check] (default {!Simgen_base.Runtime_check.enabled},
    i.e. the [SIMGEN_CHECK] environment variable) turns on invariant
    audits at every refinement and merge boundary: eq-class partition
    well-formedness and substitution monotonicity
    ({!Simgen_check.Audit}). Audits raise
    {!Simgen_base.Runtime_check.Violation} on corruption. *)

val certifying : t -> bool
(** Whether the sweeper records a whole-sweep certificate. *)

val session : t -> Sat_session.t
(** The sweeper's {e current} incremental verification session. It shares
    the sweeper's substitution array and RNG, so miters posed through it
    (the CEC PO phase does this) see — and their merges extend — the
    proven equivalences of the sweep. A [Runtime_check.Violation] inside
    a {!verify_pair} query replaces the session with a fresh one, so do
    not cache the returned handle across queries. *)

val network : t -> Simgen_network.Network.t
val classes : t -> Simgen_sim.Eq_classes.t
val cost : t -> int
(** Equation (5) over the current classes. *)

val random_round : t -> unit
(** Simulate one batch of 64 random vectors and refine. *)

val apply_vector : t -> bool array -> unit
(** Simulate one specific vector (e.g. a counter-example) and refine. *)

val apply_vectors : t -> bool array list -> unit
(** Simulate a list of vectors packed into 64-lane words ([n] vectors cost
    [ceil (n/64)] word-parallel passes) and refine once per chunk. Used to
    replay patterns cached from earlier related runs. *)

val guided_round :
  t -> Simgen_core.Strategy.t -> guided_stats
(** One guided iteration: walk the classes from the largest down, generate
    a vector for the first class yielding a useful one, simulate it.
    Returns the accumulated guided statistics (also stored in the
    sweeper). *)

val run_guided : Sweep_options.t -> t -> guided_stats
(** [guided_iterations] rounds of {!guided_round} with strategy and stop
    predicate taken from the options record; returns cumulative stats.
    [should_stop] is polled between rounds (cooperative
    budget/cancellation check): when it returns [true] the remaining
    rounds are abandoned and the stats accumulated so far are
    returned. *)

val guided_round_config : t -> Simgen_core.Config.t -> guided_stats
(** Like {!guided_round} with an explicit configuration instead of a named
    strategy — the entry point for ablation studies over the raw knobs
    (alpha/beta of Eq. 4, implication and direction switches). *)

val sat_guided_round : t -> guided_stats
(** One batched iteration of the SAT-based vector-generation baseline
    (paper §2.3, Lee et al. / Amarù et al.): one solver call per visited
    class instead of reverse propagation. Exact but SAT-dependent — the
    comparison point that motivates SimGen. *)

val run_sat_guided : Sweep_options.t -> t -> guided_stats
(** [guided_iterations] rounds of {!sat_guided_round} with the stop
    predicate taken from the options record; same early-stop contract as
    {!run_guided}. *)

val apply_one_distance : t -> bool array -> unit
(** Simulate a counter-example together with its 63 one-bit-flip
    neighbours (Mishchenko et al.'s 1-distance vectors, paper §2.3) and
    refine. *)

val guided_stats : t -> guided_stats
val cost_history : t -> int list
(** Cost recorded after every refinement event (random, guided or
    counter-example), oldest first. *)

val sat_sweep : Sweep_options.t -> t -> sat_stats
(** Prove or disprove every remaining candidate pair. Counter-examples are
    fed back into the simulator (Figure 2's feedback arrow) — expanded to
    their 1-distance neighbourhood when [one_distance] is set; proven
    pairs are merged via substitution. Stops early after [max_sat_calls]
    solver calls, or as soon as [should_stop] (polled before each call)
    returns [true] — either way the stats cover the partial sweep.
    [on_cex] observes every counter-example found (e.g. to seed a shared
    pattern cache). Candidate pairs come off a worklist of classes, so a
    class is only revisited after a merge or a split changes it.

    Queries route through the sweeper's {!Sat_session} by default
    ([incremental = true]); [incremental = false] restores a fresh solver
    per pair. [certify] validates a DRUP proof for every UNSAT answer
    (raising [Failure] if one fails to check) — on the session route the
    proofs are recorded per query and the whole sweep is additionally
    checkable after the fact via {!certificate}. The returned stats
    include the solver conflict/propagation/restart/deletion deltas
    attributable to this sweep. Verdicts — and therefore the final merge
    partition — are identical across all routes. *)

val sat_stats : t -> sat_stats

val verify_pair :
  Sweep_options.t ->
  t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  Sat_session.verdict * Simgen_sat.Solver.stats
(** One candidate query through the degradation ladder. The pair is
    resolved to representatives first; then, on the default incremental
    route: a session query at [max_conflicts]; on [Unknown], the same
    query at 4x the budget, [escalations] times (the session keeps its
    learned clauses, so each retry resumes paid-for work); then a fresh
    solver at the next budget; then {!Bdd_backend.check_pair} under
    [bdd_fallback_nodes]; and finally quarantine — the pair is recorded
    in {!degrade_stats}, excluded from future candidate picking, and the
    verdict is [Unknown]. Nothing is ever merged on [Unknown].
    [incremental = false] starts at the fresh-solver rung. Under
    [certify] the ladder still climbs, with two changes: the fresh rung
    runs the one-shot certified miter (its proof joins the certificate),
    and the BDD rung is replaced by quarantine — a BDD verdict carries
    no clausal proof. A [Runtime_check.Violation] mid-query tears the
    session down, rebuilds it over the (consistent) substitution and
    retries once; a second Violation propagates. Returns the verdict and
    the solver-counter deltas across every rung tried. With
    [max_conflicts = None] (the default) budgets are unlimited and the
    ladder is only ever climbed under injected faults. *)

val degrade_stats : t -> degrade_stats
(** Ladder telemetry accumulated so far (sweep and PO phases alike). *)

val representative : t -> Simgen_network.Network.node_id -> Simgen_network.Network.node_id
(** Current proven-equivalence representative of a node (itself if none). *)

val merge : t -> Simgen_network.Network.node_id -> Simgen_network.Network.node_id -> unit
(** Record a {e proven} merge: resolve both nodes to representatives,
    redirect the larger id to the smaller, and — under certification —
    log the merge citing the proof of the immediately preceding
    [Equal] verdict from {!verify_pair}. All merge sites (the sweep
    itself, the CEC PO phase) must go through this so the certificate's
    merge log is complete; writing {!substitution} directly leaves an
    unlogged merge the checker will reject. *)

val certificate : t -> Simgen_check.Certificate.t
(** Assemble the whole-sweep certificate recorded so far: every proof
    query in order (session slices, fresh one-shot proofs, session
    rebuild markers) plus the merge log. Validate it with
    {!Simgen_check.Certificate.check}. Meaningful only for a sweeper
    created with [~certify:true] (otherwise queries and merges are
    empty). *)

val substitution : t -> int array
(** The live proven-equivalence substitution array ([subst.(n)] points
    towards [n]'s representative). Shared with the sweeper — callers may
    pass it to {!Miter.check_pair} so follow-up miters (e.g. the CEC PO
    phase) reuse and extend the proven merges; do not write anything that
    is not a proven equivalence. *)

val max_class_failures : int
(** Consecutive generation failures after which a class is skipped. *)

val gen_failure_counts : t -> (int * int) list
(** Per-class generation-failure counters as [(class key, failures)]
    pairs sorted by key, where the key is the class's smallest member.
    A class is skipped by guided rounds once its count reaches
    {!max_class_failures}; a split changes the key of every part that
    loses the smallest member, giving those parts a fresh counter. *)

val merged_network : t -> Simgen_network.Network.t
(** The simplification sweeping exists for: rebuild the network with every
    proven-equivalent node replaced by its representative, then drop the
    logic that became unreachable. Functionally equivalent to the input by
    construction (every merge was an UNSAT proof); run after
    {!sat_sweep}. *)
