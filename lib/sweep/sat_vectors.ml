module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Cube = Simgen_network.Cube
module Isop = Simgen_network.Isop
module Sat = Simgen_sat
module Rng = Simgen_base.Rng

(* Encode the union of the targets' cones into a fresh solver (same clause
   shape as Miter). Returns solver and node-to-variable map. *)
let encode net roots =
  let solver = Sat.Solver.create () in
  let vars = Array.make (N.num_nodes net) (-1) in
  let var_of id =
    if vars.(id) < 0 then vars.(id) <- Sat.Solver.new_var solver;
    vars.(id)
  in
  let cone = Simgen_network.Cone.fanin_cone_many net roots in
  List.iter
    (fun id ->
      match N.kind net id with
      | N.Pi _ -> ignore (var_of id)
      | N.Gate f -> (
          let y = var_of id in
          match TT.is_const f with
          | Some b -> Sat.Solver.add_clause solver [ Sat.Literal.make y (not b) ]
          | None ->
              let fanins = N.fanins net id in
              List.iter
                (fun (c : Cube.t) ->
                  let clause = ref [ Sat.Literal.make y (not c.Cube.out) ] in
                  Array.iteri
                    (fun i l ->
                      match l with
                      | Cube.DC -> ()
                      | Cube.T ->
                          clause :=
                            Sat.Literal.neg (var_of fanins.(i)) :: !clause
                      | Cube.F ->
                          clause :=
                            Sat.Literal.pos (var_of fanins.(i)) :: !clause)
                    c.Cube.lits;
                  Sat.Solver.add_clause solver !clause)
                (Isop.rows f)))
    cone;
  (solver, vars)

let extract ?rng net vars solver =
  let rng = match rng with Some r -> r | None -> Rng.create 0x5A7 in
  let vec = Array.make (N.num_pis net) false in
  Array.iter
    (fun pi ->
      let idx = match N.kind net pi with N.Pi i -> i | N.Gate _ -> assert false in
      vec.(idx) <-
        (if vars.(pi) >= 0 then Sat.Solver.value solver vars.(pi)
         else Rng.bool rng))
    (N.pis net);
  vec

let generate ?rng net outgold =
  match outgold with
  | [] -> None
  | _ ->
      let roots = List.map fst outgold in
      let solver, vars = encode net roots in
      let assumptions =
        List.map
          (fun (id, gold) -> Sat.Literal.make vars.(id) (not gold))
          outgold
      in
      (match Sat.Solver.solve ~assumptions solver with
       | Sat.Solver.Sat -> Some (extract ?rng net vars solver)
       | Sat.Solver.Unsat -> None)

let generate_pairwise ?rng net outgold =
  match generate ?rng net outgold with
  | Some vec -> Some vec
  | None -> (
      (* Keep one 1-target and one 0-target, try every such pair. *)
      let ones = List.filter (fun (_, g) -> g) outgold in
      let zeros = List.filter (fun (_, g) -> not g) outgold in
      let rec pairs = function
        | [] -> None
        | one :: rest -> (
            let rec inner = function
              | [] -> pairs rest
              | zero :: more -> (
                  match generate ?rng net [ one; zero ] with
                  | Some vec -> Some vec
                  | None -> inner more)
            in
            inner zeros)
      in
      pairs ones)
