(* SAT-based vector generation, routed through an incremental session:
   the targets' cones are encoded once into the session's solver and the
   OUTgold values become plain assumptions, so repeated generation calls
   against the same network (the SAT-guided baseline loop) share cone
   encodings and learned clauses. The [?rng]-taking entry points wrap a
   private one-shot session for standalone use. *)

let generate_in session outgold = Sat_session.solve_targets session outgold

let generate ?rng net outgold =
  generate_in (Sat_session.create ?rng net) outgold

let generate_pairwise_in session outgold =
  match generate_in session outgold with
  | Some vec -> Some vec
  | None -> (
      (* Keep one 1-target and one 0-target, try every such pair. *)
      let ones = List.filter (fun (_, g) -> g) outgold in
      let zeros = List.filter (fun (_, g) -> not g) outgold in
      let rec pairs = function
        | [] -> None
        | one :: rest -> (
            let rec inner = function
              | [] -> pairs rest
              | zero :: more -> (
                  match generate_in session [ one; zero ] with
                  | Some vec -> Some vec
                  | None -> inner more)
            in
            inner zeros)
      in
      pairs ones)

let generate_pairwise ?rng net outgold =
  generate_pairwise_in (Sat_session.create ?rng net) outgold
