module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Cube = Simgen_network.Cube
module Isop = Simgen_network.Isop
module Sat = Simgen_sat
module Rng = Simgen_base.Rng

type verdict = Sat_session.verdict =
  | Equal
  | Counterexample of bool array
  | Unknown

let resolve subst id =
  match subst with
  | None -> id
  | Some s ->
      let rec follow id = if s.(id) = id then id else follow s.(id) in
      let root = follow id in
      (* Path compression. *)
      let rec compress id =
        if s.(id) <> root then begin
          let next = s.(id) in
          s.(id) <- root;
          compress next
        end
      in
      compress id;
      root

(* Encode the fanin cone of [roots] (after substitution) into a fresh
   solver; returns the solver, the node-to-variable map (-1 for nodes
   outside the cone), and a recorder of the emitted clauses (used by the
   certified mode; empty unless [record] is set). *)
let encode_cones ?subst ?(record = false) net roots =
  let solver = Sat.Solver.create () in
  (* Proof logging must be armed before the first clause: trivially-unsat
     additions already contribute proof steps. *)
  if record then Sat.Solver.enable_proof solver;
  let recorded = ref [] in
  let add_clause solver c =
    if record then recorded := c :: !recorded;
    Sat.Solver.add_clause solver c
  in
  let vars = Array.make (N.num_nodes net) (-1) in
  let var_of id =
    if vars.(id) < 0 then vars.(id) <- Sat.Solver.new_var solver;
    vars.(id)
  in
  (* Explicit-stack DFS over substituted fanins. *)
  let visited = Array.make (N.num_nodes net) false in
  let order = ref [] in
  let stack = ref (List.map (resolve subst) roots) in
  let rec walk () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if not visited.(id) then begin
          visited.(id) <- true;
          order := id :: !order;
          if not (N.is_pi net id) then
            Array.iter
              (fun fi -> stack := resolve subst fi :: !stack)
              (N.fanins net id)
        end;
        walk ()
  in
  walk ();
  (* Clause generation per gate, from its ISOP rows. *)
  let encode_gate id =
    let f = N.func net id in
    let y = var_of id in
    match TT.is_const f with
    | Some b -> add_clause solver [ Sat.Literal.make y (not b) ]
    | None ->
        let fanins = Array.map (resolve subst) (N.fanins net id) in
        List.iter
          (fun (c : Cube.t) ->
            let clause = ref [ Sat.Literal.make y (not c.Cube.out) ] in
            Array.iteri
              (fun i l ->
                match l with
                | Cube.DC -> ()
                | Cube.T ->
                    clause := Sat.Literal.neg (var_of fanins.(i)) :: !clause
                | Cube.F ->
                    clause := Sat.Literal.pos (var_of fanins.(i)) :: !clause)
              c.Cube.lits;
            add_clause solver !clause)
          (Isop.rows f)
  in
  List.iter
    (fun id -> if not (N.is_pi net id) then encode_gate id)
    !order;
  (* Touch PI vars so the model covers them. *)
  List.iter (fun id -> if N.is_pi net id then ignore (var_of id)) !order;
  (solver, vars, recorded)

let extract_vector ?rng net vars solver =
  let rng = match rng with Some r -> r | None -> Rng.create 0xCE8 in
  let vec = Array.make (N.num_pis net) false in
  Array.iter
    (fun id ->
      let idx = match N.kind net id with N.Pi i -> i | N.Gate _ -> assert false in
      vec.(idx) <-
        (if vars.(id) >= 0 then Sat.Solver.value solver vars.(id)
         else Rng.bool rng))
    (N.pis net);
  vec

(* The fresh-solver reference implementation: one solver per query, cone
   union re-encoded every time. Kept as the baseline the incremental
   session is differentially tested and benchmarked against, and as the
   ladder's certified fallback when a budgeted session query gives up.
   Returns the verdict, whether the certificate (or counterexample)
   validated, the solver's counters for this query, and — under [certify],
   for a validated Equal — the standalone record for the whole-sweep
   certificate ({!Simgen_check.Certificate}). *)
let zero_stats =
  {
    Sat.Solver.conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learned = 0;
    deleted = 0;
    removed = 0;
    reductions = 0;
    compactions = 0;
    live_clauses = 0;
    live_learnts = 0;
    lbd_core = 0;
    lbd_mid = 0;
    lbd_local = 0;
  }

let check_pair_general ?subst ?rng ?max_conflicts ?(certify = false) net a b =
  let ra = resolve subst a and rb = resolve subst b in
  if ra = rb then (Equal, true, zero_stats, None)
  else begin
    let solver, vars, recorded =
      encode_cones ?subst ~record:certify net [ ra; rb ]
    in
    (* XOR output must be 1. *)
    let va = vars.(ra) and vb = vars.(rb) in
    let y = Sat.Solver.new_var solver in
    let add c =
      if certify then recorded := c :: !recorded;
      Sat.Solver.add_clause solver c
    in
    add Sat.Literal.[ neg y; pos va; pos vb ];
    add Sat.Literal.[ neg y; neg va; neg vb ];
    add Sat.Literal.[ pos y; neg va; pos vb ];
    add Sat.Literal.[ pos y; pos va; neg vb ];
    add [ Sat.Literal.pos y ];
    let limits =
      match max_conflicts with
      | None -> Sat.Solver.Limits.unlimited
      | Some n -> Sat.Solver.Limits.conflicts n
    in
    let result = Sat.Solver.solve_limited ~limits solver in
    let stats = Sat.Solver.stats solver in
    match result with
    | Sat.Solver.LUnsat ->
        if not certify then (Equal, true, stats, None)
        else begin
          (* Trim before checking: drop the lemmas the empty-clause
             derivation never uses, then validate what is left. The
             trimmed proof is what goes into the certificate record. *)
          let formula = List.rev !recorded in
          let proof =
            Sat.Drup.trim formula (Sat.Solver.proof_events solver)
          in
          let valid = Sat.Drup.check formula proof = Sat.Drup.Valid in
          let cert =
            if valid then
              Some
                (Simgen_check.Certificate.Fresh
                   { a = ra; b = rb; clauses = formula; events = proof })
            else None
          in
          (Equal, valid, stats, cert)
        end
    | Sat.Solver.LSat ->
        let vec = extract_vector ?rng net vars solver in
        let vals = N.eval net vec in
        (Counterexample vec, vals.(ra) <> vals.(rb), stats, None)
    | Sat.Solver.LUnknown -> (Unknown, true, stats, None)
  end

let check_pair_fresh ?subst ?rng net a b =
  let verdict, _, stats, _ = check_pair_general ?subst ?rng net a b in
  (verdict, stats)

let check_pair_limited ?subst ?rng ~max_conflicts net a b =
  let verdict, _, stats, _ =
    check_pair_general ?subst ?rng ~max_conflicts net a b
  in
  (verdict, stats)

let check_pair ?subst ?rng net a b =
  Sat_session.check_pair (Sat_session.create ?subst ?rng net) a b

let check_pair_certified ?subst ?rng net a b =
  let verdict, valid, _, _ =
    check_pair_general ?subst ?rng ~certify:true net a b
  in
  (verdict, valid)

let check_pair_fresh_certified ?subst ?rng ?max_conflicts net a b =
  let verdict, valid, stats, cert =
    check_pair_general ?subst ?rng ?max_conflicts ~certify:true net a b
  in
  (verdict, valid, stats, cert)

let check_po_pair ?rng net1 net2 i =
  if N.num_pis net1 <> N.num_pis net2 then
    invalid_arg "Miter.check_po_pair: PI mismatch";
  (* Join the two networks over shared PIs, then reduce to check_pair. *)
  let joined = N.create ~name:"miter" () in
  let pis = Array.init (N.num_pis net1) (fun _ -> N.add_pi joined) in
  let instantiate net =
    let map = Array.make (N.num_nodes net) (-1) in
    N.iter_nodes net (fun id ->
        match N.kind net id with
        | N.Pi idx -> map.(id) <- pis.(idx)
        | N.Gate f ->
            let fanins = Array.map (fun fi -> map.(fi)) (N.fanins net id) in
            map.(id) <- N.add_gate joined f fanins);
    Array.map (fun id -> map.(id)) (N.pos net)
  in
  let pos1 = instantiate net1 and pos2 = instantiate net2 in
  check_pair ?rng joined pos1.(i) pos2.(i)
