module N = Simgen_network.Network
module Level = Simgen_network.Level
module Eq = Simgen_sim.Eq_classes
module Simulator = Simgen_sim.Simulator
module Core = Simgen_core
module Solver = Simgen_sat.Solver
module Rng = Simgen_base.Rng
module Timer = Simgen_base.Timer
module Runtime_check = Simgen_base.Runtime_check
module Fault = Simgen_fault.Fault

type guided_stats = {
  iterations : int;
  vectors : int;
  skipped : int;
  gen_conflicts : int;
  implications : int;
  decisions : int;
  gen_sat_calls : int;  (* SAT-based vector generation only *)
  guided_time : float;
}

type sat_stats = {
  calls : int;
  proved : int;
  disproved : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  deleted : int;
  sat_time : float;
}

let empty_guided =
  {
    iterations = 0;
    vectors = 0;
    skipped = 0;
    gen_conflicts = 0;
    implications = 0;
    decisions = 0;
    gen_sat_calls = 0;
    guided_time = 0.0;
  }

let empty_sat =
  {
    calls = 0;
    proved = 0;
    disproved = 0;
    conflicts = 0;
    propagations = 0;
    restarts = 0;
    deleted = 0;
    sat_time = 0.0;
  }

type degrade_stats = {
  unknowns : int;
  escalations : int;
  fresh_fallbacks : int;
  bdd_fallbacks : int;
  session_rebuilds : int;
  quarantined : (int * int) list;
}

let empty_degrade =
  {
    unknowns = 0;
    escalations = 0;
    fresh_fallbacks = 0;
    bdd_fallbacks = 0;
    session_rebuilds = 0;
    quarantined = [];
  }

module Certificate = Simgen_check.Certificate

type t = {
  net : N.t;
  rng : Rng.t;
  check : bool;  (* run invariant audits at refinement/merge boundaries *)
  certify : bool;  (* record a whole-sweep certificate *)
  gc : bool;  (* session clause garbage-collection (Sweep_options.session_gc) *)
  audit : bool;  (* sampled solver-state sanitizer (Sweep_options.solver_audit) *)
  (* Whole-sweep certificate state: query records flushed out of the
     session (and appended by the certified fresh rung), the merge log
     (repr, node, proof_ref) in merge order — both newest first — and
     the index of the query that proved the most recent Equal verdict. *)
  mutable cert_queries : Certificate.query list;
  mutable cert_count : int;
  mutable merges : (int * int * int) list;
  mutable last_proof : int;
  eq : Eq.t;
  levels : int array;
  outgold : Core.Outgold.strategy;
  subst : int array;  (* proven-equivalence representative *)
  mutable session : Sat_session.t;
      (* the per-sweep incremental solver; shares [subst] and [rng].
         Mutable: a Violation mid-query tears the session down and a
         fresh one is rebuilt over the same (consistent) substitution. *)
  mutable history : int list;  (* costs, newest first *)
  (* Pairs (lo, hi) of representatives every ladder rung gave up on:
     skipped by candidate picking until a merge changes one side's
     representative. *)
  quarantine : (int * int, unit) Hashtbl.t;
  mutable d_stats : degrade_stats;
  (* Classes that repeatedly failed to yield a useful vector, keyed by
     their smallest member: generation is skipped for them until the
     class splits (changing its key). Mirrors how production sweepers
     stop hammering unsplittable classes. *)
  gen_failures : (int, int) Hashtbl.t;
  mutable g_stats : guided_stats;
  mutable s_stats : sat_stats;
  (* One engine/decision pair per configuration, created on demand so row
     and MFFC caches persist across guided rounds. *)
  engines : (Core.Config.t, Core.Engine.t * Core.Decision.t) Hashtbl.t;
}

let create ?check (opts : Sweep_options.t) net =
  let rng = Rng.create opts.Sweep_options.seed in
  let subst = Array.init (N.num_nodes net) Fun.id in
  let check =
    match check with Some b -> b | None -> Runtime_check.enabled ()
  in
  let certify = opts.Sweep_options.certify in
  let gc = opts.Sweep_options.session_gc in
  let audit = opts.Sweep_options.solver_audit in
  {
    net;
    rng;
    check;
    certify;
    gc;
    audit;
    cert_queries = [];
    cert_count = 0;
    merges = [];
    last_proof = -1;
    eq = Eq.create net;
    levels = Level.compute net;
    outgold = opts.Sweep_options.outgold;
    subst;
    session = Sat_session.create ~certify ~gc ~audit ~subst ~rng net;
    history = [];
    quarantine = Hashtbl.create 8;
    d_stats = empty_degrade;
    gen_failures = Hashtbl.create 64;
    g_stats = empty_guided;
    s_stats = empty_sat;
    engines = Hashtbl.create 7;
  }

let session t = t.session
let certifying t = t.certify

(* Pull the session's per-query records into the sweeper-level stream.
   Called after every session query so [cert_count - 1] always indexes
   the record of the query that just ran. *)
let flush_cert_queries t =
  if Sat_session.certifying t.session then
    List.iter
      (fun q ->
        t.cert_queries <- q :: t.cert_queries;
        t.cert_count <- t.cert_count + 1)
      (Sat_session.take_cert_queries t.session)

let network t = t.net
let classes t = t.eq
let cost t = Eq.cost t.eq

(* Invariant audits at refinement and merge boundaries. Forcing the flag
   on makes an explicit [~check:true] work even when SIMGEN_CHECK is
   unset; forcing it off makes [~check:false] cheap no matter the
   environment. *)
let audit t =
  if t.check then
    Runtime_check.with_enabled true (fun () ->
        Simgen_check.Audit.eq_partition t.eq t.net;
        Simgen_check.Audit.substitution t.subst)

let record_cost t =
  t.history <- cost t :: t.history;
  audit t

let cost_history t = List.rev t.history

let random_round t =
  let words = Simulator.random_word t.rng t.net in
  let node_words = Simulator.simulate_word t.net words in
  Eq.refine_word t.eq node_words;
  record_cost t

let apply_vector t vec =
  let words = Simulator.word_of_vector t.net vec in
  let node_words = Simulator.simulate_word t.net words in
  Eq.refine_word t.eq node_words;
  record_cost t

(* Pack a list of vectors into 64-lane words so [n] vectors cost
   [ceil (n/64)] simulation passes instead of [n]. Unused lanes replay the
   chunk's first vector so they cannot split anything. *)
let apply_vectors t vecs =
  let npis = N.num_pis t.net in
  let rec chunks = function
    | [] -> ()
    | first :: _ as vecs ->
        let words = Array.make npis 0L in
        let rec fill lane = function
          | rest when lane >= 64 -> rest
          | [] ->
              Simulator.vector_word first lane words;
              fill (lane + 1) []
          | vec :: rest ->
              Simulator.vector_word vec lane words;
              fill (lane + 1) rest
        in
        let rest = fill 0 vecs in
        let node_words = Simulator.simulate_word t.net words in
        Eq.refine_word t.eq node_words;
        record_cost t;
        chunks rest
  in
  chunks vecs

let engine_for t config =
  match Hashtbl.find_opt t.engines config with
  | Some pair -> pair
  | None ->
      let engine = Core.Engine.create ~config t.net in
      let decision = Core.Decision.create ~rng:(Rng.split t.rng) engine in
      let pair = (engine, decision) in
      Hashtbl.replace t.engines config pair;
      pair

let sum_guided a d =
  {
    iterations = a.iterations + d.iterations;
    vectors = a.vectors + d.vectors;
    skipped = a.skipped + d.skipped;
    gen_conflicts = a.gen_conflicts + d.gen_conflicts;
    implications = a.implications + d.implications;
    decisions = a.decisions + d.decisions;
    gen_sat_calls = a.gen_sat_calls + d.gen_sat_calls;
    guided_time = a.guided_time +. d.guided_time;
  }

let add_guided t d = t.g_stats <- sum_guided t.g_stats d

let class_outgold t cls =
  Core.Outgold.assign ~strategy:t.outgold ~rng:t.rng ~levels:t.levels cls

let max_class_failures = 5

let class_key = function [] -> -1 | id :: _ -> id

let given_up t cls =
  match Hashtbl.find_opt t.gen_failures (class_key cls) with
  | Some n -> n >= max_class_failures
  | None -> false

let note_failure t cls =
  let key = class_key cls in
  let n = Option.value ~default:0 (Hashtbl.find_opt t.gen_failures key) in
  Hashtbl.replace t.gen_failures key (n + 1)

(* One guided iteration builds one word-sized batch of patterns: classes
   are visited largest-first, each is handed to the pattern generator, and
   every useful vector (one realizing opposite OUTgold values on at least
   a pair of targets) claims a bit lane of the 64-bit simulation word.
   Classes whose generation fails are skipped, as per §3. The batch is
   simulated in one word-parallel pass, mirroring the word-based
   simulation rounds of ABC-style sweeping. *)
let batch_lanes = 64

let guided_round_config t config =
  let engine, decision = engine_for t config in
  let t0 = Timer.now () in
  let ordered =
    List.sort
      (fun a b -> compare (List.length b) (List.length a))
      (Eq.classes t.eq)
  in
  let skipped = ref 0 in
  let conflicts = ref 0 and implications = ref 0 and decisions_n = ref 0 in
  let vectors = ref [] in
  let nvec = ref 0 in
  let rec fill = function
    | [] -> ()
    | _ when !nvec >= batch_lanes -> ()
    | cls :: rest when given_up t cls ->
        incr skipped;
        fill rest
    | cls :: rest ->
        let outgold = class_outgold t cls in
        let report =
          Core.Vector_gen.generate_with engine decision ~rng:t.rng
            ~levels:t.levels outgold
        in
        conflicts := !conflicts + report.Core.Vector_gen.conflicts;
        implications := !implications + report.Core.Vector_gen.implications;
        decisions_n := !decisions_n + report.Core.Vector_gen.decisions;
        (* The gen-giveup fault discards a useful vector: the class takes a
           generation failure exactly as if the generator came up empty,
           and the SAT sweep resolves it later. *)
        let useful =
          report.Core.Vector_gen.useful
          && not (Fault.enabled () && Fault.fire "gen-giveup")
        in
        if useful then begin
          vectors := report.Core.Vector_gen.vector :: !vectors;
          incr nvec
        end
        else begin
          note_failure t cls;
          incr skipped
        end;
        fill rest
  in
  fill ordered;
  (match !vectors with
   | [] -> ()
   | vecs ->
       let words = Array.make (N.num_pis t.net) 0L in
       List.iteri (fun lane vec -> Simulator.vector_word vec lane words) vecs;
       (* Unused lanes replay lane 0 so they cannot split anything. *)
       (match vecs with
        | first :: _ ->
            for lane = List.length vecs to batch_lanes - 1 do
              Simulator.vector_word first lane words
            done
        | [] -> ());
       let node_words = Simulator.simulate_word t.net words in
       Eq.refine_word t.eq node_words;
       record_cost t);
  let d =
    {
      iterations = 1;
      vectors = !nvec;
      skipped = !skipped;
      gen_conflicts = !conflicts;
      implications = !implications;
      decisions = !decisions_n;
      gen_sat_calls = 0;
      guided_time = Timer.now () -. t0;
    }
  in
  add_guided t d;
  d

let guided_round t strategy =
  guided_round_config t (Core.Strategy.config strategy)

(* Shared driver of both guided loops: [iterations] rounds of [round],
   abandoned early when [should_stop] answers [true] between rounds. *)
let run_rounds ~should_stop ~iterations round =
  let acc = ref empty_guided in
  (try
     for _ = 1 to iterations do
       if should_stop () then raise Exit;
       acc := sum_guided !acc (round ())
     done
   with Exit -> ());
  !acc

(* The SAT-based vector generation baseline (Lee et al. / Amaru et al.,
   paper section 2.3): identical batching to [guided_round_config], but the
   vectors come from SAT models over the class cones. *)
let sat_guided_round t =
  let t0 = Timer.now () in
  let ordered =
    List.sort
      (fun a b -> compare (List.length b) (List.length a))
      (Eq.classes t.eq)
  in
  let skipped = ref 0 and calls = ref 0 in
  let vectors = ref [] and nvec = ref 0 in
  let rec fill = function
    | [] -> ()
    | _ when !nvec >= batch_lanes -> ()
    | cls :: rest when given_up t cls ->
        incr skipped;
        fill rest
    | cls :: rest ->
        let outgold = class_outgold t cls in
        incr calls;
        (match Sat_vectors.generate_pairwise_in t.session outgold with
         | Some vec ->
             vectors := vec :: !vectors;
             incr nvec
         | None ->
             note_failure t cls;
             incr skipped);
        fill rest
  in
  fill ordered;
  (match !vectors with
   | [] -> ()
   | first :: _ as vecs ->
       let words = Array.make (N.num_pis t.net) 0L in
       List.iteri (fun lane vec -> Simulator.vector_word vec lane words) vecs;
       for lane = List.length vecs to batch_lanes - 1 do
         Simulator.vector_word first lane words
       done;
       let node_words = Simulator.simulate_word t.net words in
       Eq.refine_word t.eq node_words;
       record_cost t);
  let d =
    {
      empty_guided with
      iterations = 1;
      vectors = !nvec;
      skipped = !skipped;
      gen_sat_calls = !calls;
      guided_time = Timer.now () -. t0;
    }
  in
  add_guided t d;
  d

let run_sat_guided (opts : Sweep_options.t) t =
  run_rounds ~should_stop:opts.Sweep_options.should_stop
    ~iterations:opts.Sweep_options.guided_iterations (fun () ->
      sat_guided_round t)

(* One-distance refinement (Mishchenko et al., paper section 2.3): flip one
   bit of a counter-example per simulation lane. *)
let apply_one_distance t vec =
  let npis = N.num_pis t.net in
  let words = Array.make npis 0L in
  Simulator.vector_word vec 0 words;
  for lane = 1 to batch_lanes - 1 do
    let flipped = Array.copy vec in
    let bit = (lane - 1) mod npis in
    flipped.(bit) <- not flipped.(bit);
    Simulator.vector_word flipped lane words
  done;
  let node_words = Simulator.simulate_word t.net words in
  Eq.refine_word t.eq node_words;
  record_cost t

let run_guided (opts : Sweep_options.t) t =
  let config = Core.Strategy.config opts.Sweep_options.strategy in
  run_rounds ~should_stop:opts.Sweep_options.should_stop
    ~iterations:opts.Sweep_options.guided_iterations (fun () ->
      guided_round_config t config)

let guided_stats t = t.g_stats

let representative t id =
  let rec follow id = if t.subst.(id) = id then id else follow t.subst.(id) in
  follow id

(* ------------------- the degradation ladder ------------------- *)

let degrade_stats t = t.d_stats

let pair_key a b = (min a b, max a b)
let is_quarantined t a b = Hashtbl.mem t.quarantine (pair_key a b)

let quarantine_pair t a b =
  let key = pair_key a b in
  if not (Hashtbl.mem t.quarantine key) then begin
    Hashtbl.replace t.quarantine key ();
    t.d_stats <- { t.d_stats with quarantined = key :: t.d_stats.quarantined }
  end

let zero_solver_stats =
  {
    Solver.conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learned = 0;
    deleted = 0;
    removed = 0;
    reductions = 0;
    compactions = 0;
    live_clauses = 0;
    live_learnts = 0;
    lbd_core = 0;
    lbd_mid = 0;
    lbd_local = 0;
  }

(* Counter arithmetic over {!Solver.stats} snapshots: the nine monotone
   counters difference/sum meaningfully; the gauge fields are carried
   from [a] so a before/after delta reports the latest database shape. *)
let stats_sub (a : Solver.stats) (b : Solver.stats) =
  {
    Solver.conflicts = a.Solver.conflicts - b.Solver.conflicts;
    decisions = a.Solver.decisions - b.Solver.decisions;
    propagations = a.Solver.propagations - b.Solver.propagations;
    restarts = a.Solver.restarts - b.Solver.restarts;
    learned = a.Solver.learned - b.Solver.learned;
    deleted = a.Solver.deleted - b.Solver.deleted;
    removed = a.Solver.removed - b.Solver.removed;
    reductions = a.Solver.reductions - b.Solver.reductions;
    compactions = a.Solver.compactions - b.Solver.compactions;
    live_clauses = a.Solver.live_clauses;
    live_learnts = a.Solver.live_learnts;
    lbd_core = a.Solver.lbd_core;
    lbd_mid = a.Solver.lbd_mid;
    lbd_local = a.Solver.lbd_local;
  }

let stats_add (a : Solver.stats) (b : Solver.stats) =
  {
    Solver.conflicts = a.Solver.conflicts + b.Solver.conflicts;
    decisions = a.Solver.decisions + b.Solver.decisions;
    propagations = a.Solver.propagations + b.Solver.propagations;
    restarts = a.Solver.restarts + b.Solver.restarts;
    learned = a.Solver.learned + b.Solver.learned;
    deleted = a.Solver.deleted + b.Solver.deleted;
    removed = a.Solver.removed + b.Solver.removed;
    reductions = a.Solver.reductions + b.Solver.reductions;
    compactions = a.Solver.compactions + b.Solver.compactions;
    live_clauses = b.Solver.live_clauses;
    live_learnts = b.Solver.live_learnts;
    lbd_core = b.Solver.lbd_core;
    lbd_mid = b.Solver.lbd_mid;
    lbd_local = b.Solver.lbd_local;
  }

let rebuild_session t =
  (* Salvage the completed query records before the old session (and its
     un-taken buffer) is dropped, then mark the discontinuity: the new
     session restarts the solver's variable space, so the checker must
     restart its replay engine too. *)
  flush_cert_queries t;
  if t.certify then begin
    t.cert_queries <- Certificate.Rebuild :: t.cert_queries;
    t.cert_count <- t.cert_count + 1
  end;
  t.session <-
    Sat_session.create ~certify:t.certify ~gc:t.gc ~audit:t.audit
      ~subst:t.subst ~rng:t.rng t.net;
  t.d_stats <-
    { t.d_stats with session_rebuilds = t.d_stats.session_rebuilds + 1 }

(* One session query with Violation recovery: a corrupted session (a
   tripped audit, an injected corruption) is torn down and rebuilt from
   the substitution — the last consistent state, since only proven merges
   ever enter it — and the query retried once. A second Violation is
   genuine corruption outside the session and propagates. Solver-counter
   deltas accumulate into [acc] even when the query dies mid-way. *)
let session_query ?max_conflicts t a b acc =
  let attempt () =
    let before = Sat_session.solver_stats t.session in
    Fun.protect
      ~finally:(fun () ->
        acc := stats_add !acc (stats_sub (Sat_session.solver_stats t.session) before))
      (fun () -> Sat_session.check_pair ?max_conflicts t.session a b)
  in
  let verdict =
    try attempt ()
    with Runtime_check.Violation _ ->
      rebuild_session t;
      attempt ()
  in
  (* Flush after every query so [cert_count - 1] is this query's record;
     an [Equal] leaves that index in [last_proof] for {!merge} to cite. *)
  flush_cert_queries t;
  (match verdict with
   | Sat_session.Equal -> if t.certify then t.last_proof <- t.cert_count - 1
   | Sat_session.Counterexample _ | Sat_session.Unknown -> ());
  verdict

(* Trimmed DRUP slice of the most recent Equal proof: learned clauses
   only, capped so cache entries stay small. Advisory — a cut-level
   proof is context-dependent; see {!Fun_cache}'s trust boundary. *)
let proof_slice t =
  match t.cert_queries with
  | [] | Certificate.Rebuild :: _ | Certificate.Session { equal = false; _ } :: _
    ->
      None
  | (Certificate.Session { events; equal = true; _ }
    | Certificate.Fresh { events; _ })
    :: _ ->
      let clauses =
        List.filter_map
          (function
            | Solver.Learn c -> Some (Array.to_list c)
            | Solver.Delete _ -> None)
          events
      in
      let total = List.fold_left (fun n c -> n + List.length c) 0 clauses in
      if clauses = [] || total > 2048 then None else Some clauses

(* Verify one candidate pair, degrading instead of hanging or dying:
     session query at the base conflict budget
     -> same query at 4x the budget, [escalations] times
        (the solver keeps its learned clauses between rungs, so each
        retry resumes the work already paid for)
     -> fresh solver at the next budget (a session poisoned by its own
        clause database cannot poison this rung)
     -> BDD comparison under [bdd_fallback_nodes]
     -> quarantine: the pair is recorded, excluded from future picking,
        and the verdict is [Unknown] — never a wrong merge.
   With [max_conflicts = None] the budgets are unlimited, so only an
   injected fault (or a Violation) can push the ladder past its first
   rung. *)
let verify_pair (opts : Sweep_options.t) t a b =
  let a = representative t a and b = representative t b in
  let acc = ref zero_solver_stats in
  if a = b then (Sat_session.Equal, !acc)
  else begin
    let certify = t.certify || opts.Sweep_options.certify in
    (* Consult the function cache before any SAT work. Equal answers are
       proven locally over a shared cut (and withheld under certification,
       where the merge must cite a DRUP proof); counterexamples are
       validated full-PI vectors. A Miss leaves a slot the SAT verdict is
       recorded into below. *)
    let cache_slot = ref None in
    let served =
      match opts.Sweep_options.fun_cache with
      | None -> None
      | Some fc -> (
          match
            Fun_cache.consult fc ~serve_equal:(not certify) ~rng:t.rng
              ~subst:t.subst t.net a b
          with
          | Fun_cache.Equal -> Some Sat_session.Equal
          | Fun_cache.Counterexample vec -> Some (Sat_session.Counterexample vec)
          | Fun_cache.Miss slot ->
              cache_slot := Some (fc, slot);
              None
          | Fun_cache.Unsupported -> None)
    in
    match served with
    | Some v -> (v, !acc)
    | None ->
    let base = opts.Sweep_options.max_conflicts in
    let budget rung =
      match base with None -> None | Some b -> Some (b * (1 lsl (2 * rung)))
    in
    let note_unknown () =
      t.d_stats <- { t.d_stats with unknowns = t.d_stats.unknowns + 1 }
    in
    let bdd_rung () =
      t.d_stats <-
        { t.d_stats with bdd_fallbacks = t.d_stats.bdd_fallbacks + 1 };
      match
        Bdd_backend.check_pair
          ~max_nodes:opts.Sweep_options.bdd_fallback_nodes t.net a b
      with
      | Bdd_backend.Equal -> Sat_session.Equal
      | Bdd_backend.Counterexample vec -> Sat_session.Counterexample vec
      | Bdd_backend.Quota ->
          quarantine_pair t a b;
          Sat_session.Unknown
    in
    let fresh_query ~rung () =
      let verdict, st =
        match budget rung with
        | Some max_conflicts ->
            Miter.check_pair_limited ~subst:t.subst ~rng:t.rng ~max_conflicts
              t.net a b
        | None -> Miter.check_pair_fresh ~subst:t.subst ~rng:t.rng t.net a b
      in
      acc := stats_add !acc st;
      match verdict with
      | Sat_session.Unknown ->
          note_unknown ();
          bdd_rung ()
      | (Sat_session.Equal | Sat_session.Counterexample _) as v -> v
    in
    let fresh_certified_query ~rung () =
      let verdict, valid, st, cert =
        Miter.check_pair_fresh_certified ?max_conflicts:(budget rung)
          ~subst:t.subst ~rng:t.rng t.net a b
      in
      acc := stats_add !acc st;
      if not valid then
        failwith "Sweeper.verify_pair: certificate failed to validate";
      (match cert with
       | Some q ->
           t.cert_queries <- q :: t.cert_queries;
           t.cert_count <- t.cert_count + 1;
           t.last_proof <- t.cert_count - 1
       | None -> ());
      match verdict with
      | Sat_session.Unknown ->
          note_unknown ();
          (* No BDD rung under certification: a BDD verdict carries no
             clausal proof, so the pair is quarantined instead of merged
             on an uncertifiable answer. *)
          quarantine_pair t a b;
          Sat_session.Unknown
      | (Sat_session.Equal | Sat_session.Counterexample _) as v -> v
    in
    let fresh_rung () =
      t.d_stats <-
        { t.d_stats with fresh_fallbacks = t.d_stats.fresh_fallbacks + 1 };
      let rung = opts.Sweep_options.escalations + 1 in
      if t.certify then fresh_certified_query ~rung ()
      else fresh_query ~rung ()
    in
    let rec climb rung =
      match session_query ?max_conflicts:(budget rung) t a b acc with
      | Sat_session.Unknown ->
          note_unknown ();
          if rung < opts.Sweep_options.escalations then begin
            t.d_stats <-
              { t.d_stats with escalations = t.d_stats.escalations + 1 };
            climb (rung + 1)
          end
          else fresh_rung ()
      | (Sat_session.Equal | Sat_session.Counterexample _) as v -> v
    in
    let verdict =
      if certify && not (opts.Sweep_options.incremental
                         && Sat_session.certifying t.session)
      then
        (* Certified but no recording session available (fresh route
           requested, or the sweeper was created without [~certify]):
           every query runs on the one-shot certified miter. *)
        fresh_certified_query ~rung:0 ()
      else if not opts.Sweep_options.incremental then
        (* No session to escalate: the fresh solver is the first rung. *)
        fresh_query ~rung:0 ()
      else climb 0
    in
    (* Populate the cache on every SAT verdict, attaching the trimmed
       proof slice when one was recorded. *)
    (match !cache_slot with
     | None -> ()
     | Some (fc, slot) -> (
         match verdict with
         | Sat_session.Equal ->
             let proof = if certify then proof_slice t else None in
             Fun_cache.record fc slot
               (Fun_cache.Proved { conflicts = (!acc).Solver.conflicts; proof })
         | Sat_session.Counterexample vec ->
             Fun_cache.record fc slot (Fun_cache.Refuted vec)
         | Sat_session.Unknown -> ()));
    (verdict, !acc)
  end

(* Record a proven merge: resolve both sides to their representatives,
   redirect the larger id to the smaller, and — under certification —
   log [(repr, node, proof_ref)] where [proof_ref] indexes the query
   record that proved exactly this resolved pair ({!verify_pair} leaves
   it in [last_proof]). A merge recorded with no proof on file ([-1])
   is rejected by the certificate checker, which is the point. *)
let merge t a b =
  let a = representative t a and b = representative t b in
  (if a <> b then begin
     let lo = min a b and hi = max a b in
     t.subst.(hi) <- lo;
     if t.certify then t.merges <- (lo, hi, t.last_proof) :: t.merges
   end);
  t.last_proof <- -1

(* Assemble the whole-sweep certificate from the recorded streams; the
   independent checker is {!Simgen_check.Certificate.check}. *)
let certificate t =
  flush_cert_queries t;
  {
    Certificate.num_nodes = N.num_nodes t.net;
    queries = Array.of_list (List.rev t.cert_queries);
    merges =
      List.rev_map
        (fun (repr, node, proof) -> { Certificate.repr; node; proof })
        t.merges;
  }

(* SAT sweeping: resolve every remaining candidate pair.

   Classes are processed through a worklist instead of rescanning the full
   class list after every SAT call (which is O(classes^2) on large nets).
   A class key (its smallest member) that was once verified resolved stays
   resolved: refinement only ever splits classes, so any later class under
   the same key is a subset of the verified member set, and representatives
   only merge, so a single-representative set never regains a second
   representative. Each class is therefore revisited only after it changes;
   classes created under new keys by counter-example refinements are
   collected by a rescan when the worklist drains. *)
let sat_sweep (opts : Sweep_options.t) t =
  let max_calls = opts.Sweep_options.max_sat_calls in
  let one_distance = opts.Sweep_options.one_distance in
  let should_stop = opts.Sweep_options.should_stop in
  let on_cex = opts.Sweep_options.on_cex in
  let calls = ref 0 and proved = ref 0 and disproved = ref 0 in
  let conflicts = ref 0 and propagations = ref 0 and restarts = ref 0 in
  let deleted = ref 0 in
  let t0 = Timer.now () in
  (* One candidate query through {!verify_pair}: the configured route
     (incremental session by default, fresh solver or certified DRUP
     otherwise) wrapped in the degradation ladder. Solver-counter deltas
     accumulate on every route. *)
  let check a b =
    let verdict, st = verify_pair opts t a b in
    conflicts := !conflicts + st.Solver.conflicts;
    propagations := !propagations + st.Solver.propagations;
    restarts := !restarts + st.Solver.restarts;
    deleted := !deleted + st.Solver.deleted + st.Solver.removed;
    verdict
  in
  let budget_left () =
    (match max_calls with None -> true | Some m -> !calls < m)
    && not (should_stop ())
  in
  let resolved = Hashtbl.create 64 in
  let queued = Hashtbl.create 64 in
  let pending = Queue.create () in
  let enqueue cls =
    match cls with
    | [] -> ()
    | member :: _ ->
        if not (Hashtbl.mem resolved member || Hashtbl.mem queued member)
        then begin
          Hashtbl.replace queued member ();
          Queue.add member pending
        end
  in
  List.iter enqueue (Eq.classes t.eq);
  let rec loop () =
    if budget_left () then
      match Queue.take_opt pending with
      | None ->
          (* Drain-time rescan: counter-example refinements can split
             classes into parts keyed by members this worklist has never
             seen. *)
          let dirty =
            List.filter
              (fun cls -> not (Hashtbl.mem resolved (class_key cls)))
              (Eq.classes t.eq)
          in
          if dirty <> [] then begin
            List.iter enqueue dirty;
            loop ()
          end
      | Some member ->
          Hashtbl.remove queued member;
          (* The queued key may be stale: work on the *current* class of
             that member; parts split away since the push are picked up by
             the drain-time rescan. *)
          let cls = Eq.class_of t.eq member in
          let reps = List.sort_uniq compare (List.map (representative t) cls) in
          (* First representative pair not already quarantined; a class
             whose every pair is quarantined counts as resolved — nothing
             in the ladder is left to try until a merge moves one side. *)
          let rec pick = function
            | a :: rest -> (
                match
                  List.find_opt (fun b -> not (is_quarantined t a b)) rest
                with
                | Some b -> Some (a, b)
                | None -> pick rest)
            | [] -> None
          in
          (match (reps, pick reps) with
           | _ :: _ :: _, Some (a, b) ->
               incr calls;
               (match check a b with
                | Miter.Equal ->
                    incr proved;
                    (* Merge into the smaller id so representatives are
                       stable; the class stays on the worklist until a
                       single representative remains. *)
                    merge t a b;
                    audit t;
                    enqueue cls
                | Miter.Counterexample vec ->
                    incr disproved;
                    (match on_cex with Some f -> f vec | None -> ());
                    if one_distance then apply_one_distance t vec
                    else apply_vector t vec;
                    (* Continue with the split-off classes of both nodes;
                       the counter-example separated them, so these are
                       distinct (possibly singleton) classes now. *)
                    enqueue (Eq.class_of t.eq a);
                    enqueue (Eq.class_of t.eq b)
                | Miter.Unknown ->
                    (* Every rung gave up: the pair is quarantined (by
                       verify_pair), never merged. Revisit the class for
                       its other pairs. *)
                    enqueue cls)
           | _ ->
               (* Single representative (or singleton), or every pair
                  quarantined: resolved for good. *)
               (match cls with
                | k :: _ -> Hashtbl.replace resolved k ()
                | [] -> Hashtbl.replace resolved member ()));
          loop ()
  in
  loop ();
  let d =
    {
      calls = !calls;
      proved = !proved;
      disproved = !disproved;
      conflicts = !conflicts;
      propagations = !propagations;
      restarts = !restarts;
      deleted = !deleted;
      sat_time = Timer.now () -. t0;
    }
  in
  t.s_stats <-
    {
      calls = t.s_stats.calls + d.calls;
      proved = t.s_stats.proved + d.proved;
      disproved = t.s_stats.disproved + d.disproved;
      conflicts = t.s_stats.conflicts + d.conflicts;
      propagations = t.s_stats.propagations + d.propagations;
      restarts = t.s_stats.restarts + d.restarts;
      deleted = t.s_stats.deleted + d.deleted;
      sat_time = t.s_stats.sat_time +. d.sat_time;
    };
  d

let sat_stats t = t.s_stats

let substitution t = t.subst

let gen_failure_counts t =
  List.sort compare
    (Hashtbl.fold (fun key n acc -> (key, n) :: acc) t.gen_failures [])

(* Rebuild the network with proven-equivalent nodes merged: each gate is
   re-created over the representatives of its fanins; non-representative
   gates are skipped entirely (their fanouts now point at the
   representative). A final copy drops logic no PO reaches. *)
let merged_network t =
  let net' = N.create ~name:(N.name t.net ^ "_swept") () in
  let map = Array.make (N.num_nodes t.net) (-1) in
  N.iter_nodes t.net (fun id ->
      match N.kind t.net id with
      | N.Pi _ -> map.(id) <- N.add_pi net'
      | N.Gate f ->
          let rep = representative t id in
          if rep = id then
            let fanins =
              Array.map
                (fun fi -> map.(representative t fi))
                (N.fanins t.net id)
            in
            map.(id) <- N.add_gate ?name:(N.node_name t.net id) net' f fanins);
  Array.iter
    (fun po -> N.add_po net' map.(representative t po))
    (N.pos t.net);
  (* Drop unreachable gates by round-tripping through a reachability copy. *)
  let reachable =
    Simgen_network.Cone.member_mask net'
      (Simgen_network.Cone.fanin_cone_many net'
         (Array.to_list (N.pos net')))
  in
  let net'' = N.create ~name:(N.name net') () in
  let map2 = Array.make (N.num_nodes net') (-1) in
  N.iter_nodes net' (fun id ->
      match N.kind net' id with
      | N.Pi _ -> map2.(id) <- N.add_pi net''
      | N.Gate f ->
          if reachable.(id) then
            map2.(id) <-
              N.add_gate ?name:(N.node_name net' id) net'' f
                (Array.map (fun fi -> map2.(fi)) (N.fanins net' id)));
  Array.iter (fun po -> N.add_po net'' map2.(po)) (N.pos net');
  net'' 
