type t = {
  seed : int;
  strategy : Simgen_core.Strategy.t;
  outgold : Simgen_core.Outgold.strategy;
  random_rounds : int;
  guided_iterations : int;
  max_sat_calls : int option;
  max_conflicts : int option;
  escalations : int;
  bdd_fallback_nodes : int;
  one_distance : bool;
  incremental : bool;
  session_gc : bool;
  certify : bool;
  solver_audit : bool;
  should_stop : unit -> bool;
  on_cex : (bool array -> unit) option;
  fun_cache : Fun_cache.t option;
}

let default =
  {
    seed = 1;
    strategy = Simgen_core.Strategy.AI_DC_MFFC;
    outgold = Simgen_core.Outgold.Alternating;
    random_rounds = 1;
    guided_iterations = 20;
    max_sat_calls = None;
    max_conflicts = None;
    escalations = 3;
    bdd_fallback_nodes = 10_000;
    one_distance = false;
    incremental = true;
    session_gc = true;
    certify = false;
    solver_audit = false;
    should_stop = (fun () -> false);
    on_cex = None;
    fun_cache = None;
  }
