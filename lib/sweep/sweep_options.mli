(** One record for every knob of the sweeping flow.

    {!Sweeper.sat_sweep}, the guided loops and {!Cec.check} used to grow
    optional arguments independently ([?should_stop], [?on_cex], [?seed],
    certify flags, …); this record collapses them so call sites name only
    what they change:

    {[
      let opts = { Sweep_options.default with seed = 7; certify = true } in
      let sw = Sweeper.create opts net in
      ...
    ]}

    This record is the only spelling: every sweeping entry point takes a
    [Sweep_options.t] (the PR-2 optional-argument wrappers are gone). *)

type t = {
  seed : int;  (** master seed for the sweeper's RNG *)
  strategy : Simgen_core.Strategy.t;  (** guided-generation strategy *)
  outgold : Simgen_core.Outgold.strategy;
      (** OUTgold assignment for guided rounds *)
  random_rounds : int;  (** 64-vector random batches before guiding *)
  guided_iterations : int;
  max_sat_calls : int option;  (** sweep call cap ([None] = unlimited) *)
  max_conflicts : int option;
      (** base per-query conflict budget ([None] = unlimited — queries
          never answer [Unknown] on their own). The first rung of the
          degradation ladder; see {!Sweeper.verify_pair}. *)
  escalations : int;
      (** how many times an [Unknown] query's budget is re-tried at 4x
          the previous budget before falling back to a fresh solver *)
  bdd_fallback_nodes : int;
      (** BDD node quota for the last ladder rung; past it the pair is
          quarantined *)
  one_distance : bool;
      (** expand counter-examples to their 1-distance neighbourhood *)
  incremental : bool;
      (** route miters through the per-sweep {!Sat_session} (default);
          [false] restores a fresh solver per pair — the baseline the
          [bench sat-session] experiment measures against *)
  session_gc : bool;
      (** physically garbage-collect retired queries and stale gate
          encodings inside the session (default). [false] reproduces the
          append-only PR-2 clause database — verdicts and merge
          partitions are identical either way (the differential tests
          assert it), only speed and memory differ *)
  certify : bool;
      (** check a DRUP proof for every UNSAT verdict and record the
          whole-sweep certificate ({!Sweeper.certificate}). Composes
          with [incremental]: the session route logs per-query proof
          slices, so certification no longer forces the fresh-solver
          route *)
  solver_audit : bool;
      (** arm the sampled solver-state sanitizer
          ({!Simgen_sat.Solver.set_audit}, R007..R013) on every session
          solver the sweep creates. Observes only — verdicts and merge
          partitions are unchanged; a tripped invariant raises
          [Runtime_check.Violation] through the session recovery path.
          Also armed implicitly when [SIMGEN_CHECK] is on *)
  should_stop : unit -> bool;
      (** cooperative cancellation, polled between units of work *)
  on_cex : (bool array -> unit) option;
      (** observer for every counter-example found *)
  fun_cache : Fun_cache.t option;
      (** cross-request NPN function cache consulted by
          {!Sweeper.verify_pair} before any SAT query and populated on
          every SAT verdict (the serving layer's shared asset). [None]
          (the default) disables consultation entirely. *)
}

val default : t
(** The paper's §6.1 setup: seed 1, AI+DC+MFFC, alternating OUTgold, one
    random round, 20 guided iterations, incremental sessions, no
    certification, no cap, never stops; unlimited conflict budget with 3
    escalation steps and a 10k-node BDD fallback should a budget be
    set. *)
