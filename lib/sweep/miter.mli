(** Node-pair miters: one SAT call per candidate equivalence.

    Encodes only the union of the two nodes' fanin cones (with optional
    substitution of already-proven equivalences, which is what makes
    sweeping progressively cheaper) and asks the solver for an input
    assignment on which the nodes differ. *)

type verdict =
  | Equal  (** UNSAT: the nodes are functionally equivalent *)
  | Counterexample of bool array
      (** SAT: a complete PI vector (by PI index) distinguishing them *)

val check_pair :
  ?subst:int array ->
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  verdict
(** [check_pair net a b]. [subst.(n)] redirects node [n] to its proven
    representative (identity by default); path compression is applied.
    PIs outside the encoded cones take random values (from [rng]) in the
    counterexample so it can be simulated network-wide. *)

val check_pair_certified :
  ?subst:int array ->
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  verdict * bool
(** Like {!check_pair}, with the answer independently validated: an
    [Equal] verdict carries a DRUP proof checked by {!Simgen_sat.Drup}
    (the boolean reports the check), a [Counterexample] is validated by
    simulation. Certified sweeping costs roughly the solver time again. *)

val check_po_pair :
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  Simgen_network.Network.t ->
  int ->
  verdict
(** Miter between PO [i] of two networks sharing PI semantics (equal PI
    counts required). *)
