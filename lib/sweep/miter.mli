(** Node-pair miters: one SAT query per candidate equivalence.

    Encodes only the union of the two nodes' fanin cones (with optional
    substitution of already-proven equivalences, which is what makes
    sweeping progressively cheaper) and asks the solver for an input
    assignment on which the nodes differ.

    Choosing an entry point:
    - {!check_pair} — the default for one-shot callers. A thin wrapper
      over a single-query {!Sat_session}; identical verdicts to the
      session-based sweeping path. For {e many} queries against one
      network, create a {!Sat_session} directly (or use
      {!Sweeper.sat_sweep}) so learned clauses survive between them.
    - {!check_pair_fresh} — the fresh-solver reference implementation:
      one solver per query, nothing shared. Use it as the differential
      baseline (tests, [bench sat-session]) or when the per-query solver
      statistics it returns are wanted.
    - {!check_pair_certified} — fresh-solver route with a DRUP proof
      checked for every UNSAT answer. Since the session grew its own
      per-query certificates ({!Sat_session.take_cert_queries}), this is
      no longer the only certified route — it remains the standalone
      one-shot variant and the ladder's certified fallback
      ({!check_pair_fresh_certified}).
    - {!check_po_pair} — convenience miter between PO [i] of two
      networks; joins them over shared PIs first. *)

type verdict = Sat_session.verdict =
  | Equal  (** UNSAT: the nodes are functionally equivalent *)
  | Counterexample of bool array
      (** SAT: a complete PI vector (by PI index) distinguishing them *)
  | Unknown
      (** a conflict budget ran out first; only {!check_pair_limited}
          (and budgeted session queries) produce this *)

val check_pair :
  ?subst:int array ->
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  verdict
(** [check_pair net a b]. [subst.(n)] redirects node [n] to its proven
    representative (identity by default); path compression is applied.
    PIs outside the encoded cones take random values (from [rng]) in the
    counterexample so it can be simulated network-wide. *)

val check_pair_fresh :
  ?subst:int array ->
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  verdict * Simgen_sat.Solver.stats
(** Like {!check_pair} but on a dedicated fresh solver, whose counters for
    this single query are returned alongside the verdict. *)

val check_pair_limited :
  ?subst:int array ->
  ?rng:Simgen_base.Rng.t ->
  max_conflicts:int ->
  Simgen_network.Network.t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  verdict * Simgen_sat.Solver.stats
(** {!check_pair_fresh} under a conflict budget: answers [Unknown] when
    the budget runs out. This is the "fresh solver" rung of the
    degradation ladder — a session query that went [Unknown] may be
    poisoned by its own accumulated clause database, so the ladder
    retries the pair on a clean solver before giving up on SAT. *)

val check_pair_certified :
  ?subst:int array ->
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  verdict * bool
(** Like {!check_pair_fresh}, with the answer independently validated: an
    [Equal] verdict carries a DRUP proof checked by {!Simgen_sat.Drup}
    (the boolean reports the check), a [Counterexample] is validated by
    simulation. Certified sweeping costs roughly the solver time again. *)

val check_pair_fresh_certified :
  ?subst:int array ->
  ?rng:Simgen_base.Rng.t ->
  ?max_conflicts:int ->
  Simgen_network.Network.t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  verdict * bool * Simgen_sat.Solver.stats * Simgen_check.Certificate.query option
(** {!check_pair_certified} with a conflict budget and, for a validated
    [Equal], the trimmed standalone proof packaged as a
    {!Simgen_check.Certificate.Fresh} record — the fresh rung of the
    degradation ladder under a certifying sweep appends it to the
    whole-sweep certificate. *)

val check_po_pair :
  ?rng:Simgen_base.Rng.t ->
  Simgen_network.Network.t ->
  Simgen_network.Network.t ->
  int ->
  verdict
(** Miter between PO [i] of two networks sharing PI semantics (equal PI
    counts required). *)
