(** Counter-example minimization.

    SAT models fix every cone PI, but usually only a few bits matter.
    Greedily resetting bits toward a reference vector yields a minimal
    distinguishing vector — smaller counter-examples tend to split more
    equivalence classes when replayed through simulation, and they make
    debugging reports readable. *)

val distinguishing :
  ?reference:bool array ->
  Simgen_network.Network.t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  bool array ->
  bool array
(** [distinguishing net a b cex] greedily moves bits of [cex] to the
    [reference] (default all-false) while nodes [a] and [b] still differ
    under simulation. The result is locally minimal: flipping any single
    remaining difference back would lose the distinction. Requires [cex]
    to distinguish [a] and [b]. *)

val essential_bits :
  ?reference:bool array ->
  Simgen_network.Network.t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  bool array ->
  int list
(** PI indices (ascending) where the minimized vector still differs from
    the reference — the activation kernel of the counter-example. *)
