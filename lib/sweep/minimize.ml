module N = Simgen_network.Network

let distinguishes net a b vec =
  let vals = N.eval net vec in
  vals.(a) <> vals.(b)

let distinguishing ?reference net a b cex =
  if not (distinguishes net a b cex) then
    invalid_arg "Minimize.distinguishing: not a counter-example";
  let n = Array.length cex in
  let reference =
    match reference with Some r -> r | None -> Array.make n false
  in
  if Array.length reference <> n then invalid_arg "Minimize.distinguishing";
  let vec = Array.copy cex in
  (* One greedy pass is enough for local minimality with respect to single
     bits, but bits freed early can enable later ones, so iterate to a
     fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if vec.(i) <> reference.(i) then begin
        vec.(i) <- reference.(i);
        if distinguishes net a b vec then changed := true
        else vec.(i) <- not reference.(i)
      end
    done
  done;
  vec

let essential_bits ?reference net a b cex =
  let n = Array.length cex in
  let reference_arr =
    match reference with Some r -> r | None -> Array.make n false
  in
  let minimized = distinguishing ?reference net a b cex in
  List.filter
    (fun i -> minimized.(i) <> reference_arr.(i))
    (List.init n Fun.id)
