(** Cross-request function cache keyed by NPN-canonical cone signatures.

    The per-batch pattern cache ({!Simgen_runner.Pattern_cache}) shares
    raw counter-example vectors between jobs with the same PI count; this
    cache generalises it into a semantic, cross-request asset for the
    serving layer ([lib/serve]): entries are keyed by the NPN-canonical
    truth tables ({!Simgen_network.Npn}) of the two cone functions of a
    candidate pair, computed over a small shared cut, and hold proved
    equivalences, distinguishing pattern blocks, and trimmed DRUP proof
    slices.

    {b Trust boundary — a hit can never change a verdict.} NPN keys
    collide: two inequivalent pairs can canonicalise to the same
    signature pair (e.g. [(x, x)] and [(x, not x)] — both sides of each
    pair share one canonical form). The cache therefore never serves a
    verdict on key equality alone; every answer is re-established
    locally, in ways that are sound by construction:

    - {b Equal} is served only when the two cone functions, computed
      over the {e same} cut, are pointwise equal — agreement over the
      free cut variables implies agreement over every reachable input
      assignment, independently of anything stored.
    - {b Counterexample} is served either from a differing minterm of an
      exact (all-PI) cut, or by replaying a stored pattern block entry
      that is first {e validated} by direct cone evaluation on the live
      network. A stored vector that fails validation is ignored.
    - Anything else is a {b miss}: the caller runs the SAT ladder and
      {!record}s the verdict, so colliding-but-inequivalent pairs are
      always separated by SAT, never by the cache.

    Proved-equal facts from SAT are stored {e advisory-only} (statistics,
    warm-start cost accounting, and their trimmed proof slices for
    auditing); they are deliberately never served as verdicts because a
    cut-level SAT proof can depend on the reachability of the specific
    network it was posed in.

    Entries carry an FNV-1a checksum validated on every lookup; a
    corrupted entry (e.g. via the [serve-cache-poison] fault site) is
    dropped — counted in [dropped] — rather than served. Eviction is
    LRU biased by proof cost under a byte bound. The store is
    mutex-protected and safe to share across runner Domains. *)

type t

val create :
  ?max_bytes:int ->
  ?max_support:int ->
  ?max_interior:int ->
  ?patterns_per_entry:int ->
  unit ->
  t
(** [max_bytes] bounds the resident size estimate (default 64 MiB);
    [max_support] the shared-cut width, i.e. the arity of the cached
    functions (default 8, capped at 12); [max_interior] the number of
    gate expansions spent growing a cut (default 48);
    [patterns_per_entry] the distinguishing vectors kept per entry
    (default 8). *)

type slot
(** A prepared cache position for one consulted pair: carries the
    canonical signature pair so {!record} can file the SAT verdict
    without recomputing the cut. *)

type outcome =
  | Equal  (** proven locally: both cones equal over the shared cut *)
  | Counterexample of bool array
      (** a validated full-PI distinguishing vector *)
  | Miss of slot  (** no sound answer; run SAT, then {!record} *)
  | Unsupported
      (** the pair's shared cut exceeds [max_support]; not cacheable *)

val consult :
  t ->
  ?serve_equal:bool ->
  rng:Simgen_base.Rng.t ->
  subst:int array ->
  Simgen_network.Network.t ->
  Simgen_network.Network.node_id ->
  Simgen_network.Network.node_id ->
  outcome
(** Consult the cache for one candidate pair (resolved through [subst]
    like every miter). [serve_equal:false] (used under certification,
    where every merge must cite a DRUP proof) makes a locally-proven
    [Equal] come back as a [Miss] so the SAT route still runs and
    records a proof; counterexamples are still served — a disproof
    carries no certificate obligation. [rng] fills the PIs outside an
    exact cut when materialising a counterexample. *)

type verdict =
  | Proved of { conflicts : int; proof : int list list option }
      (** SAT said Equal; [proof] is a trimmed DRUP slice (learned
          clauses only), advisory *)
  | Refuted of bool array  (** SAT counterexample: a full PI vector *)

val record : t -> slot -> verdict -> unit
(** File a SAT verdict into the slot a {!Miss} returned. *)

type stats = {
  consults : int;
  hits : int;  (** consults answered without SAT *)
  misses : int;
  unsupported : int;
  local_proofs : int;  (** Equal answers proven over the shared cut *)
  local_cexes : int;  (** counterexamples from exact-cut minterms *)
  pattern_hits : int;  (** counterexamples replayed from stored blocks *)
  collisions : int;
      (** lookups that found an entry under the key but could not serve
          anything from it — NPN signature collisions resolved by SAT *)
  inserts : int;
  evictions : int;
  dropped : int;  (** entries discarded on checksum mismatch *)
  entries : int;
  bytes : int;  (** resident size estimate *)
  journal_appends : int;  (** insertions appended to the live journal *)
  journal_replayed : int;  (** entries restored by {!replay_journal} *)
  journal_corrupt : int;
      (** journal lines discarded as a torn/corrupt tail *)
  checkpoints : int;  (** snapshot+truncate cycles completed *)
}

val stats : t -> stats

val save : t -> string -> (unit, string) result
(** Snapshot every entry to [path] (text, one checksummed line per
    entry). The write is crash-safe: the snapshot is built in
    [path ^ ".tmp"], fsynced, then atomically renamed over [path], so a
    crash mid-save leaves the previous snapshot intact. *)

val load : t -> string -> (int, string) result
(** Restore entries from a snapshot into the cache, skipping (and
    counting in [dropped]) every line whose checksum does not match.
    Returns the number of entries restored. A missing file is an
    [Error]. *)

val replay_journal : t -> string -> int * int
(** [replay_journal t path] restores verdict insertions from an
    append-only journal written by a previous process (call it after
    {!load}, before {!enable_journal}). Returns
    [(replayed, corrupt)]: journal entries are newer than the snapshot,
    so a valid line {e replaces} any resident entry under its key; the
    first line whose checksum fails marks the torn tail — it and
    everything after it are discarded, counted in [corrupt], and the
    file is physically truncated back to the last valid line. A missing
    file is a clean start, [(0, 0)]. Replay never refuses to start. *)

val enable_journal :
  t ->
  snapshot:string ->
  journal:string ->
  ?checkpoint_entries:int ->
  ?checkpoint_seconds:float ->
  unit ->
  (unit, string) result
(** Switch the cache into journaled persistence: every subsequent
    insertion is appended (checksummed, flushed) to [journal], and a
    checkpoint — atomic snapshot to [snapshot], then journal truncation
    — runs whenever [checkpoint_entries] appends (default 128) or
    [checkpoint_seconds] (default 30.) have accumulated, and on
    {!checkpoint}. After a [SIGKILL], at most the unsynced tail of the
    journal is lost; {!load} + {!replay_journal} recover the rest. An
    initial checkpoint makes everything already resident durable;
    its failure (e.g. disk full) is tolerated — the journal still
    captures insertions from then on. *)

val checkpoint : t -> (unit, string) result
(** Force a checkpoint now (snapshot + journal truncation). [Error] if
    no journal is enabled or the snapshot write failed (in which case
    the journal keeps accumulating — nothing is lost). *)

val journal_enabled : t -> bool
