module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Cube = Simgen_network.Cube
module Isop = Simgen_network.Isop
module Sat = Simgen_sat
module Rng = Simgen_base.Rng
module Runtime_check = Simgen_base.Runtime_check
module Fault = Simgen_fault.Fault

type verdict = Equal | Counterexample of bool array | Unknown

type stats = {
  queries : int;
  proved : int;
  disproved : int;
  unknown : int;
  vector_calls : int;
  encoded : int;
  reencoded : int;
  retired : int;
  live_clauses : int;
  live_learnts : int;
  retired_clauses : int;
  rebuilds : int;
}

(* Shared sentinel meaning "no gate clauses emitted for this node yet".
   Physical equality distinguishes it from a genuinely empty fanin array
   only in principle — gates always have fanins, so structural comparison
   is enough. *)
let no_fanins : int array = [||]

module Certificate = Simgen_check.Certificate

type t = {
  net : N.t;
  mutable solver : Sat.Solver.t;
  subst : int array option;
  rng : Rng.t;
  certify : bool;
  audit : bool;  (* sampled solver-state audits (R007..R013) armed *)
  gc : bool;
  gc_ratio : float;
  mutable pending_clauses : Sat.Literal.t list list;
      (* problem clauses (cone encodings) added since the last recorded
         query, newest first; guard/retirement/tie clauses are excluded —
         the certificate checker reconstructs those itself *)
  mutable cert_queries : Certificate.query list;  (* newest first, untaken *)
  mutable cert_count : int;  (* queries recorded over the session's life *)
  mutable proof_mark : int;  (* solver proof events already sliced *)
  vars : int array;  (* node -> current solver variable, -1 if unencoded *)
  enc_fanins : int array array;
      (* node -> variables of its substituted fanins when its clauses were
         emitted; the staleness check compares against the current ones *)
  visit : int array;  (* DFS stamp per node (avoids a per-query array) *)
  mutable stamp : int;
  mutable clauses_live : int;
      (* stored problem clauses belonging to the current (non-stale)
         encoding — the denominator of the clause-growth rebuild trigger *)
  mutable base_stats : Sat.Solver.stats;
      (* counters of solvers discarded by [rebuild]; [solver_stats] adds
         the live solver's on top so deltas stay monotone across rebuilds *)
  mutable queries : int;
  mutable proved : int;
  mutable disproved : int;
  mutable unknown : int;
  mutable vector_calls : int;
  mutable encoded : int;
  mutable reencoded : int;
  mutable retired : int;
  mutable retired_clauses : int;  (* clauses physically deleted by GC *)
  mutable rebuilds : int;
}

let zero_solver_stats : Sat.Solver.stats =
  {
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learned = 0;
    deleted = 0;
    removed = 0;
    reductions = 0;
    compactions = 0;
    live_clauses = 0;
    live_learnts = 0;
    lbd_core = 0;
    lbd_mid = 0;
    lbd_local = 0;
  }

(* Sum the monotone counters; the gauges come from [b] (the live
   solver) — summing gauges across dead solvers would be meaningless. *)
let add_counters (a : Sat.Solver.stats) (b : Sat.Solver.stats) :
    Sat.Solver.stats =
  {
    conflicts = a.conflicts + b.conflicts;
    decisions = a.decisions + b.decisions;
    propagations = a.propagations + b.propagations;
    restarts = a.restarts + b.restarts;
    learned = a.learned + b.learned;
    deleted = a.deleted + b.deleted;
    removed = a.removed + b.removed;
    reductions = a.reductions + b.reductions;
    compactions = a.compactions + b.compactions;
    live_clauses = b.live_clauses;
    live_learnts = b.live_learnts;
    lbd_core = b.lbd_core;
    lbd_mid = b.lbd_mid;
    lbd_local = b.lbd_local;
  }

(* The clause-growth rebuild trigger only fires past this database size:
   below it the whole database fits in cache and a rebuild costs more
   than it saves. *)
let gc_min_live = 2000

(* Sampled solver-state audit interval: cheap enough for benches, dense
   enough that a corrupted invariant cannot survive a query unnoticed. *)
let audit_every = 16

let create ?(certify = false) ?(gc = true) ?(gc_ratio = 3.0) ?(audit = false)
    ?subst ?rng net =
  let n = N.num_nodes net in
  let audit = audit || Runtime_check.enabled () in
  let solver = Sat.Solver.create () in
  if certify then Sat.Solver.enable_proof solver;
  if audit then Sat.Solver.set_audit solver ~every:audit_every;
  {
    net;
    solver;
    audit;
    subst;
    rng = (match rng with Some r -> r | None -> Rng.create 0xCE8);
    certify;
    gc;
    gc_ratio;
    pending_clauses = [];
    cert_queries = [];
    cert_count = 0;
    proof_mark = 0;
    vars = Array.make n (-1);
    enc_fanins = Array.make n no_fanins;
    visit = Array.make n 0;
    stamp = 0;
    clauses_live = 0;
    base_stats = zero_solver_stats;
    queries = 0;
    proved = 0;
    disproved = 0;
    unknown = 0;
    vector_calls = 0;
    encoded = 0;
    reencoded = 0;
    retired = 0;
    retired_clauses = 0;
    rebuilds = 0;
  }

let network t = t.net
let certifying t = t.certify
let cert_query_count t = t.cert_count

let take_cert_queries t =
  let qs = List.rev t.cert_queries in
  t.cert_queries <- [];
  qs

(* Problem clauses flow through here so a certifying session can record
   them; the guard/retirement/tie clauses in [check_pair] bypass it on
   purpose (the checker derives those from the query record). The stored
   clause count delta keeps [clauses_live] exact even when the solver's
   preprocessing drops a clause (unit, tautology, already satisfied). *)
let add_problem_clause ?group t clause =
  if t.certify then t.pending_clauses <- clause :: t.pending_clauses;
  let before = Sat.Solver.num_clauses t.solver in
  Sat.Solver.add_clause ?group t.solver clause;
  t.clauses_live <- t.clauses_live + (Sat.Solver.num_clauses t.solver - before)

let resolve t id =
  match t.subst with
  | None -> id
  | Some s ->
      let rec follow id = if s.(id) = id then id else follow s.(id) in
      let root = follow id in
      (* Path compression. *)
      let rec compress id =
        if s.(id) <> root then begin
          let next = s.(id) in
          s.(id) <- root;
          compress next
        end
      in
      compress id;
      root

(* One gate definition as ISOP-row clauses over the given fanin variables
   (same clause shape as the fresh-solver Miter encoder). The clauses are
   grouped under the node's output variable so a later re-encode can
   physically retract them. *)
let emit_gate t id fanin_vars =
  let f = N.func t.net id in
  let y = t.vars.(id) in
  match TT.is_const f with
  | Some b -> add_problem_clause ~group:y t [ Sat.Literal.make y (not b) ]
  | None ->
      List.iter
        (fun (c : Cube.t) ->
          let clause = ref [ Sat.Literal.make y (not c.Cube.out) ] in
          Array.iteri
            (fun i l ->
              match l with
              | Cube.DC -> ()
              | Cube.T -> clause := Sat.Literal.neg fanin_vars.(i) :: !clause
              | Cube.F -> clause := Sat.Literal.pos fanin_vars.(i) :: !clause)
            c.Cube.lits;
          add_problem_clause ~group:y t !clause)
        (Isop.rows f)

(* Give every node of the (substituted) fanin cones of [roots] a live,
   up-to-date encoding. A node is (re-)encoded when it has no variable
   yet, or when the variables of its substituted fanins changed since its
   clauses were emitted — a merge redirected a fanin to its
   representative, or the fanin itself was re-encoded. Under GC the stale
   definition is physically retracted (its clause group is removed and
   the watch lists stop carrying it); without GC it stays behind — either
   way it remains a sound consequence of the network plus the proven
   merges, so learned clauses over the old variables remain valid. The
   explicit stack keeps deep cones off the OCaml call stack.

   Returns the variables of every cone node visited — the decision focus
   for the query about to run: the cone encodings are conservative
   extensions, so once those variables reach a conflict-free fixpoint the
   rest of the accumulated network is satisfiable by construction and the
   solver need not assign it. *)
let encode_roots t roots =
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let cone = ref [] in
  let stack = Stack.create () in
  List.iter (fun r -> Stack.push (r, false) stack) roots;
  while not (Stack.is_empty stack) do
    let id, children_done = Stack.pop stack in
    if children_done then begin
      (* Post-order: the substituted fanins are final; refresh if stale. *)
      let fanins = Array.map (resolve t) (N.fanins t.net id) in
      let fvars = Array.map (fun f -> t.vars.(f)) fanins in
      if t.vars.(id) < 0 || t.enc_fanins.(id) <> fvars then begin
        if t.vars.(id) < 0 then t.encoded <- t.encoded + 1
        else begin
          t.reencoded <- t.reencoded + 1;
          if t.gc then begin
            (* Physically retract the stale definition. The deletions are
               kept out of the proof stream: the certificate checker
               treats recorded problem clauses as immutable, and keeping
               a deleted clause only strengthens its propagation. *)
            let n =
              Sat.Solver.remove_group ~proof:false t.solver t.vars.(id)
            in
            t.clauses_live <- t.clauses_live - n;
            t.retired_clauses <- t.retired_clauses + n
          end
        end;
        t.vars.(id) <- Sat.Solver.new_var t.solver;
        t.enc_fanins.(id) <- fvars;
        emit_gate t id fvars
      end;
      cone := t.vars.(id) :: !cone
    end
    else if t.visit.(id) < stamp then begin
      t.visit.(id) <- stamp;
      if N.is_pi t.net id then begin
        if t.vars.(id) < 0 then begin
          t.vars.(id) <- Sat.Solver.new_var t.solver;
          t.encoded <- t.encoded + 1
        end;
        cone := t.vars.(id) :: !cone
      end
      else begin
        Stack.push (id, true) stack;
        Array.iter
          (fun fi -> Stack.push (resolve t fi, false) stack)
          (N.fanins t.net id)
      end
    end
  done;
  (* R004: right after encode_roots, every visited gate must be encoded
     over the variables of its currently-substituted fanins — the lazy
     re-encode-on-merge contract. Stale encodings are legal *between*
     calls (a merge happened since), never after one. *)
  if Runtime_check.enabled () then
    Array.iteri
      (fun id v ->
        if v = stamp && not (N.is_pi t.net id) then begin
          if t.vars.(id) < 0 then
            Runtime_check.failf
              "R004: node %d visited by encode_roots but left unencoded" id;
          let fvars =
            Array.map (fun f -> t.vars.(resolve t f)) (N.fanins t.net id)
          in
          if t.enc_fanins.(id) <> fvars then
            Runtime_check.failf
              "R004: node %d encoding stale immediately after encode_roots \
               (a fanin representative moved without a re-encode)"
              id
        end)
      t.visit;
  !cone

(* Read a full PI vector off the model; PIs the session never encoded are
   outside every queried cone and take random values so the vector can be
   simulated network-wide. *)
let extract t =
  let vec = Array.make (N.num_pis t.net) false in
  Array.iter
    (fun id ->
      let idx =
        match N.kind t.net id with N.Pi i -> i | N.Gate _ -> assert false
      in
      vec.(idx) <-
        (if t.vars.(id) >= 0 then Sat.Solver.value t.solver t.vars.(id)
         else Rng.bool t.rng))
    (N.pis t.net);
  vec

(* Throw the accumulated solver away and start over on the same shared
   substitution: the next queries re-encode only the cones they touch,
   over the current representatives. Triggered when the clause database
   outgrows the live encoding past [gc_ratio] — the growth is then
   dominated by learned clauses and stale variable space that no
   per-clause GC can reclaim. A certifying session records the
   discontinuity so the checker resets its clause database too. *)
let rebuild t =
  if t.certify then begin
    t.cert_queries <- Certificate.Rebuild :: t.cert_queries;
    t.cert_count <- t.cert_count + 1
  end;
  t.base_stats <- add_counters t.base_stats (Sat.Solver.stats t.solver);
  let solver = Sat.Solver.create () in
  if t.certify then Sat.Solver.enable_proof solver;
  if t.audit then Sat.Solver.set_audit solver ~every:audit_every;
  t.solver <- solver;
  Array.fill t.vars 0 (Array.length t.vars) (-1);
  Array.fill t.enc_fanins 0 (Array.length t.enc_fanins) no_fanins;
  t.pending_clauses <- [];
  t.proof_mark <- 0;
  t.clauses_live <- 0;
  t.rebuilds <- t.rebuilds + 1

let check_pair ?max_conflicts t a b =
  (* R002/R003: the shared substitution must stay monotone and in range —
     the sweeper only ever merges upward ids into lower ones. *)
  (match t.subst with
   | Some s -> Simgen_check.Audit.substitution s
   | None -> ());
  let a = resolve t a and b = resolve t b in
  if a = b then Equal
  else begin
    t.queries <- t.queries + 1;
    if Fault.enabled () && Fault.fire "session-corrupt" then begin
      (* Scramble one encoding record so the session would trust stale
         clauses, then fail exactly the way the R004 audit does — the
         sweeper's recovery path must not depend on audits being on. *)
      if t.vars.(a) >= 0 then t.enc_fanins.(a) <- no_fanins;
      Runtime_check.failf
        "F-session-corrupt: injected re-encode corruption at node %d" a
    end;
    let cone = encode_roots t [ a; b ] in
    let solver = t.solver in
    (* Branch only inside the two cones: the rest of the accumulated
       network is definitional and need not be assigned, which is what
       keeps a shared-database query as cheap as a fresh-solver one. *)
    Sat.Solver.focus_decisions solver cone;
    let va = t.vars.(a) and vb = t.vars.(b) in
    let act = Sat.Solver.new_var solver in
    let nact = Sat.Literal.neg act in
    (* The XOR-difference miter, guarded by the activation literal: under
       the assumption [act] the two nodes must disagree. The guards are
       grouped under [act] so retirement can delete them physically. *)
    Sat.Solver.add_clause ~group:act solver
      [ nact; Sat.Literal.pos va; Sat.Literal.pos vb ];
    Sat.Solver.add_clause ~group:act solver
      [ nact; Sat.Literal.neg va; Sat.Literal.neg vb ];
    (* The sat-budget fault zeroes the budget for this one call: the
       Unknown comes out of the real limit machinery, not a shortcut. *)
    let max_conflicts =
      if Fault.enabled () && Fault.fire "sat-budget" then Some 0 else max_conflicts
    in
    let limits =
      match max_conflicts with
      | None -> Sat.Solver.Limits.unlimited
      | Some n -> Sat.Solver.Limits.conflicts n
    in
    let verdict =
      match
        Sat.Solver.solve_limited ~limits
          ~assumptions:[ Sat.Literal.pos act ] solver
      with
      | Sat.Solver.LUnsat ->
          (* The refutation must hang off the activation literal: the cone
             encodings alone are satisfiable by construction, so an
             unconditional Unsat means the encoding is broken. *)
          assert (Sat.Solver.failed_assumptions solver <> []);
          t.proved <- t.proved + 1;
          Equal
      | Sat.Solver.LSat ->
          t.disproved <- t.disproved + 1;
          Counterexample (extract t)
      | Sat.Solver.LUnknown ->
          t.unknown <- t.unknown + 1;
          Unknown
    in
    (* Retire the miter either way — the verdict is final. The unit
       satisfies the guard clauses and silences every learned clause that
       mentions [act]; under GC the guards are then deleted outright (the
       unit stays — learned clauses carrying the positive [act] literal
       are only sound under it). *)
    Sat.Solver.add_clause solver [ nact ];
    t.retired <- t.retired + 1;
    if t.gc then
      t.retired_clauses <-
        t.retired_clauses + Sat.Solver.remove_group ~proof:false solver act;
    (match verdict with
     | Equal ->
         (* Proven equivalent: tie the variables so cones through either
            node share each other's learned clauses from now on. *)
         Sat.Solver.add_clause solver
           [ Sat.Literal.neg va; Sat.Literal.pos vb ];
         Sat.Solver.add_clause solver
           [ Sat.Literal.pos va; Sat.Literal.neg vb ];
         (* Under a shared substitution the caller merges the higher
            node into the lower one (the R002 monotone-substitution
            contract), so the loser's gate definition is dead: no future
            cone resolves to it. Retract it — the tie keeps every
            learned clause over its variable sound, and without the
            definition a search pass no longer cascades assignments into
            the retired variable space (on stacked suites each class
            would otherwise drag one dead cone per level through every
            propagation). Clearing the encoding record keeps the session
            honest even if a caller declines the merge: the next visit
            re-encodes from scratch instead of trusting clauses that are
            no longer there. Without a substitution there is no merge
            and the pair may be queried again, so the definitions stay. *)
         if t.gc && t.subst <> None then begin
           let loser = max a b in
           if not (N.is_pi t.net loser) then begin
             let n =
               Sat.Solver.remove_group ~proof:false solver t.vars.(loser)
             in
             t.clauses_live <- t.clauses_live - n;
             t.retired_clauses <- t.retired_clauses + n;
             t.vars.(loser) <- -1;
             t.enc_fanins.(loser) <- no_fanins
           end
         end
     | Counterexample _ | Unknown -> ());
    (* Under certification, cut the proof-event stream here: everything
       since the previous cut (vector-query learns included — later
       queries may reuse them) plus the problem clauses pending become
       this query's certificate record. The cut happens before the R005
       probe below: the probe's solve entry may garbage-collect learned
       clauses that only the *next* slice may delete — the checker adds
       this query's retirement unit after its goal check, and only then
       are clauses satisfied by it disposable. *)
    if t.certify then begin
      let events = Sat.Solver.proof_events_from solver t.proof_mark in
      t.proof_mark <- Sat.Solver.proof_event_count solver;
      let clauses = List.rev t.pending_clauses in
      t.pending_clauses <- [];
      t.cert_queries <-
        Certificate.Session
          { a; b; act; va; vb; equal = (verdict = Equal); clauses; events }
        :: t.cert_queries;
      t.cert_count <- t.cert_count + 1
    end;
    (* R005: retirement must actually kill the miter — assuming the
       activation literal again must now be a unit conflict. *)
    if Runtime_check.enabled () then begin
      match Sat.Solver.solve ~assumptions:[ Sat.Literal.pos act ] solver with
      | Sat.Solver.Unsat -> ()
      | Sat.Solver.Sat ->
          Runtime_check.failf
            "R005: retired activation literal x%d is still satisfiable" act
    end;
    (* Clause-growth trigger: when the database dwarfs the live encoding
       despite per-clause GC, re-encode from scratch. *)
    if t.gc then begin
      let live =
        Sat.Solver.num_clauses t.solver + Sat.Solver.num_learnts t.solver
      in
      if
        live > gc_min_live
        && float_of_int live
           > t.gc_ratio *. float_of_int (max 1 t.clauses_live)
      then rebuild t
    end;
    verdict
  end

let solve_targets t outgold =
  match outgold with
  | [] -> None
  | _ ->
      t.vector_calls <- t.vector_calls + 1;
      let targets =
        List.map (fun (id, gold) -> (resolve t id, gold)) outgold
      in
      let cone = encode_roots t (List.map fst targets) in
      Sat.Solver.focus_decisions t.solver cone;
      let assumptions =
        List.map
          (fun (id, gold) -> Sat.Literal.make t.vars.(id) (not gold))
          targets
      in
      (match Sat.Solver.solve ~assumptions t.solver with
       | Sat.Solver.Sat -> Some (extract t)
       | Sat.Solver.Unsat -> None)

let stats t =
  let st = Sat.Solver.stats t.solver in
  {
    queries = t.queries;
    proved = t.proved;
    disproved = t.disproved;
    unknown = t.unknown;
    vector_calls = t.vector_calls;
    encoded = t.encoded;
    reencoded = t.reencoded;
    retired = t.retired;
    live_clauses = st.Sat.Solver.live_clauses;
    live_learnts = st.Sat.Solver.live_learnts;
    retired_clauses = t.retired_clauses;
    rebuilds = t.rebuilds;
  }

let solver_stats t = add_counters t.base_stats (Sat.Solver.stats t.solver)
