module Literal = Simgen_sat.Literal
module Solver = Simgen_sat.Solver
module Drup = Simgen_sat.Drup

type query =
  | Session of {
      a : int;
      b : int;
      act : int;
      va : int;
      vb : int;
      equal : bool;
      clauses : Literal.t list list;
      events : Solver.proof_event list;
    }
  | Fresh of {
      a : int;
      b : int;
      clauses : Literal.t list list;
      events : Solver.proof_event list;
    }
  | Rebuild

type merge = { repr : int; node : int; proof : int }
type t = { num_nodes : int; queries : query array; merges : merge list }

type report = {
  valid : bool;
  queries : int;
  proved : int;
  merges : int;
  steps : int;
  steps_checked : int;
  steps_trimmed : int;
  diags : Diagnostic.t list;
}

(* An incremental RUP engine, independent of the solver: a persistent
   clause database with literal-occurrence propagation, a persistent
   root-level trail (unit consequences survive across queries, which is
   what makes replaying a whole session affordable), and temporary
   assumption trails per derivation that are fully undone. Propagation
   scans each clause containing a newly falsified literal — no watched
   literals, no per-clause counters — so enabling and disabling clauses
   (deletions, per-slice backward trimming) is a flag flip with no
   invariants to repair. *)
module Engine = struct
  type cl = {
    lits : Literal.t array;
    mutable enabled : bool;
    mutable verified : bool;
    mutable needed : bool;
    mutable slice_mark : int;
        (* event index when learned in the slice being replayed, -1
           outside it; doubles as the "learned this slice" flag *)
    mutable del_mark : bool;  (* deleted within the slice being replayed *)
  }

  type t = {
    mutable values : int array;  (* var -> 0 unset / 1 true / -1 false *)
    mutable seen : bool array;  (* var occurs in some added clause *)
    mutable occ : cl list array;  (* 2*var + sign -> clauses with that literal *)
    mutable trail : Literal.t array;
    mutable trail_len : int;
    mutable root_len : int;  (* persistent prefix of the trail *)
    mutable root_conflict : bool;
    learned : (Literal.t list, cl list ref) Hashtbl.t;  (* deletion lookup *)
  }

  let create () =
    {
      values = Array.make 64 0;
      seen = Array.make 64 false;
      occ = Array.make 128 [];
      trail = Array.make 64 (Literal.pos 0);
      trail_len = 0;
      root_len = 0;
      root_conflict = false;
      learned = Hashtbl.create 64;
    }

  let ensure_var t v =
    let n = Array.length t.values in
    if v >= n then begin
      let n' = max (v + 1) (2 * n) in
      let values = Array.make n' 0 in
      Array.blit t.values 0 values 0 n;
      t.values <- values;
      let seen = Array.make n' false in
      Array.blit t.seen 0 seen 0 n;
      t.seen <- seen;
      let occ = Array.make (2 * n') [] in
      Array.blit t.occ 0 occ 0 (2 * n);
      t.occ <- occ
    end

  let occurs t v = v >= 0 && v < Array.length t.seen && t.seen.(v)
  let lit_index l = (2 * Literal.var l) + if Literal.sign l then 1 else 0

  let lit_value t l =
    let v = t.values.(Literal.var l) in
    if v = 0 then 0 else if Literal.sign l then -v else v

  let push t l =
    if t.trail_len >= Array.length t.trail then begin
      let trail = Array.make (2 * Array.length t.trail) t.trail.(0) in
      Array.blit t.trail 0 trail 0 t.trail_len;
      t.trail <- trail
    end;
    t.trail.(t.trail_len) <- l;
    t.trail_len <- t.trail_len + 1;
    t.values.(Literal.var l) <- (if Literal.sign l then -1 else 1)

  let undo_to t mark =
    for i = mark to t.trail_len - 1 do
      t.values.(Literal.var t.trail.(i)) <- 0
    done;
    t.trail_len <- mark

  (* Propagate trail entries from position [from] to fixpoint. Every
     clause that produces a unit or the conflict is reported through
     [on_used] — an over-approximation of the resolution antecedents,
     which is what the per-slice trimmer marks as needed. *)
  let propagate t ~on_used from =
    let conflict = ref false in
    let head = ref from in
    while (not !conflict) && !head < t.trail_len do
      let l = t.trail.(!head) in
      incr head;
      let falsified = lit_index (Literal.negate l) in
      List.iter
        (fun c ->
          if (not !conflict) && c.enabled then begin
            let satisfied = ref false in
            let unassigned = ref [] in
            Array.iter
              (fun x ->
                match lit_value t x with
                | 1 -> satisfied := true
                | 0 -> unassigned := x :: !unassigned
                | _ -> ())
              c.lits;
            if not !satisfied then
              match List.sort_uniq compare !unassigned with
              | [] ->
                  on_used c;
                  conflict := true
              | [ u ] ->
                  on_used c;
                  push t u
              | _ -> ()
          end)
        t.occ.(falsified)
    done;
    !conflict

  (* Examine a clause under the root assignment: root-unit clauses
     propagate permanently, a root-falsified clause marks the whole
     database conflicting (everything becomes trivially derivable, which
     is logically correct — and unreachable for certificates recorded
     from a real sweep, whose instances are satisfiable). *)
  let attach t c =
    if c.enabled && not t.root_conflict then begin
      let satisfied = ref false in
      let unassigned = ref [] in
      Array.iter
        (fun x ->
          match lit_value t x with
          | 1 -> satisfied := true
          | 0 -> unassigned := x :: !unassigned
          | _ -> ())
        c.lits;
      if not !satisfied then
        match List.sort_uniq compare !unassigned with
        | [] -> t.root_conflict <- true
        | [ u ] ->
            push t u;
            if propagate t ~on_used:ignore (t.trail_len - 1) then
              t.root_conflict <- true;
            t.root_len <- t.trail_len
        | _ -> ()
    end

  let canon lits = List.sort compare lits

  let add ?(learned = false) ?(verified = true) ?(slice_mark = -1) t lits_list
      =
    let lits = Array.of_list lits_list in
    let c =
      { lits; enabled = true; verified; needed = false; slice_mark;
        del_mark = false }
    in
    Array.iter
      (fun l ->
        let v = Literal.var l in
        ensure_var t v;
        t.seen.(v) <- true;
        let i = lit_index l in
        t.occ.(i) <- c :: t.occ.(i))
      lits;
    if learned then begin
      let key = canon lits_list in
      match Hashtbl.find_opt t.learned key with
      | Some r -> r := c :: !r
      | None -> Hashtbl.add t.learned key (ref [ c ])
    end;
    attach t c;
    c

  let disable c = c.enabled <- false

  let enable t c =
    if not c.enabled then begin
      c.enabled <- true;
      attach t c
    end

  let find_learned t lits =
    let key = canon (Array.to_list lits) in
    match Hashtbl.find_opt t.learned key with
    | None -> None
    | Some r -> List.find_opt (fun c -> c.enabled) !r

  (* Reverse unit propagation of [lits]: assume the negation of every
     literal and propagate to a conflict. Root-satisfied targets and
     tautologies are trivially entailed. The temporary assignments are
     undone either way. *)
  let rup ?(on_used = ignore) t lits =
    if t.root_conflict then true
    else begin
      let mark = t.trail_len in
      let satisfied = ref false in
      List.iter
        (fun l ->
          ensure_var t (Literal.var l);
          match lit_value t l with
          | 1 -> satisfied := true
          | -1 -> ()
          | _ -> push t (Literal.negate l))
        lits;
      let result = !satisfied || propagate t ~on_used mark in
      undo_to t mark;
      result
    end
end

let check (t : t) =
  let diags = ref [] in
  let fail ?loc code fmt =
    Format.kasprintf
      (fun message ->
        diags := Diagnostic.error ?loc code "%s" message :: !diags)
      fmt
  in
  let nq = Array.length t.queries in
  let proved = Array.make nq false in
  (* pair proven by query qi, as (min, max); (-1, -1) when none *)
  let pair = Array.make nq (-1, -1) in
  let steps = ref 0 in
  let checked = ref 0 in
  let trimmed = ref 0 in
  let eng = ref (Engine.create ()) in
  let mark_needed (c : Engine.cl) = if c.slice_mark >= 0 then c.needed <- true in
  Array.iteri
    (fun qi query ->
      let loc = Diagnostic.Named (Printf.sprintf "query %d" qi) in
      match query with
      | Rebuild -> eng := Engine.create ()
      | Fresh { a; b; clauses; events } ->
          let n = List.length events in
          steps := !steps + n;
          (* Proof-stream lint before RUP re-verification: a fresh query
             carries its complete formula, so the semantic deletion
             checks (D001/D002/D006) apply. *)
          List.iter
            (fun d -> diags := d :: !diags)
            (Proof_lint.run ~formula:clauses events);
          let trimmed_proof =
            Drup.trim
              ~on_anomaly:(fun a ->
                diags := Proof_lint.trim_anomaly a :: !diags)
              clauses events
          in
          let tn = List.length trimmed_proof in
          checked := !checked + tn;
          trimmed := !trimmed + (n - tn);
          (match Drup.check clauses trimmed_proof with
          | Drup.Valid ->
              proved.(qi) <- true;
              pair.(qi) <- (min a b, max a b)
          | Drup.Invalid_step s ->
              fail ~loc "X001" "fresh proof step %d fails RUP" s
          | Drup.Incomplete ->
              fail ~loc "X002"
                "fresh proof for pair (%d, %d) never derives the empty clause"
                a b)
      | Session { a; b; act; va; vb; equal; clauses; events } -> (
          (* Structural lint only: a session slice legitimately deletes
             clauses learned in earlier slices, so the formula-aware
             deletion checks would be false positives here. *)
          List.iter
            (fun d -> diags := d :: !diags)
            (Proof_lint.run events);
          let eng = !eng in
          List.iter (fun c -> ignore (Engine.add eng c)) clauses;
          if
            act < 0 || va < 0 || vb < 0 || act = va || act = vb
            || Engine.occurs eng act
          then
            fail ~loc "X003"
              "activation variable x%d is not fresh (pair %d, %d)" act a b
          else begin
            let nact = Literal.neg act in
            (* The guard clauses are reconstructed, never read from the
               certificate: under the assumption [act] the pair must
               disagree, so deriving [not act] proves it never can. *)
            ignore (Engine.add eng [ nact; Literal.pos va; Literal.pos vb ]);
            ignore (Engine.add eng [ nact; Literal.neg va; Literal.neg vb ]);
            let ev = Array.of_list events in
            let n = Array.length ev in
            steps := !steps + n;
            let recs = Array.make n None in
            let deleted = Array.make n None in
            let slice_ok = ref true in
            (* Forward: units (and the empty clause) are verified eagerly
               and root-propagated; longer lemmas are installed
               optimistically and verified by the backward pass, which
               skips the ones nothing ever used. *)
            for j = 0 to n - 1 do
              match ev.(j) with
              | Solver.Learn lits ->
                  let ll = Array.to_list lits in
                  if Array.length lits <= 1 then begin
                    incr checked;
                    if not (Engine.rup eng ~on_used:mark_needed ll) then begin
                      fail ~loc "X001" "proof step %d fails RUP" j;
                      slice_ok := false
                    end;
                    ignore (Engine.add eng ~learned:true ll)
                  end
                  else
                    recs.(j) <-
                      Some
                        (Engine.add eng ~learned:true ~verified:false
                           ~slice_mark:j ll)
              | Solver.Delete lits -> (
                  match Engine.find_learned eng lits with
                  | Some c ->
                      Engine.disable c;
                      if c.Engine.slice_mark >= 0 then
                        c.Engine.del_mark <- true;
                      deleted.(j) <- Some c
                  | None -> () (* unknown deletion: sound no-op *))
            done;
            (* Obligation: [not act] must follow — the miter under [act]
               is unsatisfiable. *)
            let goal_ok =
              if not equal then true
              else if Engine.rup eng ~on_used:mark_needed [ nact ] then true
              else begin
                fail ~loc "X002"
                  "pair (%d, %d): [not x%d] is not derivable — the Equal \
                   verdict is unsupported"
                  a b act;
                false
              end
            in
            (* Lemmas surviving the slice may serve later queries: they
               are always needed. *)
            Array.iter
              (function
                | Some (c : Engine.cl) -> if c.enabled then c.needed <- true
                | None -> ())
              recs;
            (* Backward: undo the slice while verifying exactly the
               needed lemmas at their own position (their antecedents get
               marked needed in turn and verified as the walk reaches
               them). Unneeded deleted lemmas are the trim. *)
            for j = n - 1 downto 0 do
              (match deleted.(j) with
              | Some c -> Engine.enable eng c
              | None -> ());
              match recs.(j) with
              | Some c ->
                  Engine.disable c;
                  if c.needed then begin
                    incr checked;
                    if
                      not
                        (Engine.rup eng ~on_used:mark_needed
                           (Array.to_list c.lits))
                    then begin
                      fail ~loc "X001" "proof step %d fails RUP" j;
                      slice_ok := false
                    end;
                    c.verified <- true
                  end
                  else incr trimmed
              | None -> ()
            done;
            (* Restore the slice-end state: needed-and-not-deleted lemmas
               come back, everything else stays out, and deletions of
               older lemmas are re-applied. *)
            Array.iter
              (function
                | Some (c : Engine.cl) ->
                    if c.Engine.slice_mark < 0 then Engine.disable c
                | None -> ())
              deleted;
            Array.iter
              (function
                | Some (c : Engine.cl) ->
                    if c.needed && not c.del_mark then Engine.enable eng c;
                    c.slice_mark <- -1;
                    c.del_mark <- false
                | None -> ())
              recs;
            (* Retire the query exactly as the session does. [act] is
               fresh, so the unit is satisfiability-preserving whatever
               the verdict; the ties are sound only once the obligation
               checked out. *)
            ignore (Engine.add eng [ nact ]);
            if !slice_ok && goal_ok && equal then begin
              ignore (Engine.add eng [ Literal.neg va; Literal.pos vb ]);
              ignore (Engine.add eng [ Literal.pos va; Literal.neg vb ]);
              proved.(qi) <- true;
              pair.(qi) <- (min a b, max a b)
            end
          end))
    t.queries;
  (* Merge log: every merge must cite a query that proved exactly that
     pair, move strictly downward, and touch each node at most once; the
     final substitution must be acyclic. *)
  let subst = Array.init t.num_nodes (fun i -> i) in
  let nmerges = ref 0 in
  List.iter
    (fun { repr; node; proof } ->
      incr nmerges;
      let mloc = Diagnostic.Node node in
      if
        repr < 0 || repr >= t.num_nodes || node < 0 || node >= t.num_nodes
      then
        fail ~loc:mloc "X008" "merge (%d <- %d) out of range (%d nodes)" repr
          node t.num_nodes
      else begin
        if repr >= node then
          fail ~loc:mloc "X005"
            "merge (%d <- %d) is not monotone: representative must be the \
             strictly smaller id"
            repr node;
        if subst.(node) <> node then
          fail ~loc:mloc "X007" "node %d merged twice" node;
        if proof < 0 || proof >= nq || not proved.(proof) then
          fail ~loc:mloc "X004" "merge (%d <- %d) cites no valid proof" repr
            node
        else if pair.(proof) <> (min repr node, max repr node) then
          fail ~loc:mloc "X004"
            "merge (%d <- %d) cites query %d, which proved a different pair"
            repr node proof;
        if repr >= 0 && repr < t.num_nodes && node >= 0 && node < t.num_nodes
        then subst.(node) <- repr
      end)
    t.merges;
  (try
     Array.iteri
       (fun i _ ->
         let steps = ref 0 in
         let j = ref i in
         while subst.(!j) <> !j do
           incr steps;
           if !steps > t.num_nodes then begin
             fail ~loc:(Diagnostic.Node i) "X006"
               "substitution cycle reachable from node %d" i;
             raise Exit
           end;
           j := subst.(!j)
         done)
       subst
   with Exit -> ());
  let diags = Diagnostic.sort !diags in
  {
    (* Warnings (a D009 trim anomaly) don't invalidate: they always
       accompany the error that caused them when one exists. *)
    valid =
      (not
         (List.exists (fun d -> d.Diagnostic.severity = Diagnostic.Error) diags));
    queries = nq;
    proved = Array.fold_left (fun acc p -> if p then acc + 1 else acc) 0 proved;
    merges = !nmerges;
    steps = !steps;
    steps_checked = !checked;
    steps_trimmed = !trimmed;
    diags;
  }

(* JSONL rendering: hand-rolled like the runner's telemetry (the repo
   deliberately carries no JSON dependency). Literals use the DIMACS
   convention so external tooling can consume the proofs directly. *)
let to_jsonl (t : t) report =
  let buf = Buffer.create 4096 in
  let add_lits lits =
    Buffer.add_char buf '[';
    List.iteri
      (fun i l ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int (Literal.to_dimacs l)))
      lits;
    Buffer.add_char buf ']'
  in
  let add_clauses clauses =
    Buffer.add_char buf '[';
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char buf ',';
        add_lits c)
      clauses;
    Buffer.add_char buf ']'
  in
  let add_events events =
    Buffer.add_char buf '[';
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char buf ',';
        let tag, lits =
          match e with
          | Solver.Learn c -> ("l", c)
          | Solver.Delete c -> ("d", c)
        in
        Buffer.add_string buf (Printf.sprintf {|{"%s":|} tag);
        add_lits (Array.to_list lits);
        Buffer.add_char buf '}')
      events;
    Buffer.add_char buf ']'
  in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"type":"certificate","schema_version":%d,"nodes":%d,"queries":%d,"merges":%d}|}
       Diagnostic.schema_version t.num_nodes (Array.length t.queries)
       (List.length t.merges));
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i q ->
      (match q with
      | Rebuild ->
          Buffer.add_string buf
            (Printf.sprintf {|{"type":"query","index":%d,"kind":"rebuild"}|} i)
      | Session { a; b; act; va; vb; equal; clauses; events } ->
          Buffer.add_string buf
            (Printf.sprintf
               {|{"type":"query","index":%d,"kind":"session","a":%d,"b":%d,"act":%d,"va":%d,"vb":%d,"equal":%b,"clauses":|}
               i a b act va vb equal);
          add_clauses clauses;
          Buffer.add_string buf {|,"events":|};
          add_events events;
          Buffer.add_char buf '}'
      | Fresh { a; b; clauses; events } ->
          Buffer.add_string buf
            (Printf.sprintf
               {|{"type":"query","index":%d,"kind":"fresh","a":%d,"b":%d,"clauses":|}
               i a b);
          add_clauses clauses;
          Buffer.add_string buf {|,"events":|};
          add_events events;
          Buffer.add_char buf '}');
      Buffer.add_char buf '\n')
    t.queries;
  List.iter
    (fun { repr; node; proof } ->
      Buffer.add_string buf
        (Printf.sprintf {|{"type":"merge","repr":%d,"node":%d,"proof":%d}|}
           repr node proof);
      Buffer.add_char buf '\n')
    t.merges;
  (match report with
  | None -> ()
  | Some r ->
      Buffer.add_string buf
        (Printf.sprintf
           {|{"type":"report","valid":%b,"queries":%d,"proved":%d,"merges":%d,"steps":%d,"steps_checked":%d,"steps_trimmed":%d,"errors":%d}|}
           r.valid r.queries r.proved r.merges r.steps r.steps_checked
           r.steps_trimmed
           (let e, _, _ = Diagnostic.counts r.diags in
            e));
      Buffer.add_char buf '\n');
  Buffer.contents buf
