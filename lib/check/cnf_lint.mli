(** Static lints over CNF clause streams (codes [C001]..[C008]).

    Audits both parsed DIMACS files and the live Tseitin encoding (via
    {!Simgen_sat.Tseitin.create} with [~record:true]). Out-of-range
    variables are errors; degenerate clauses (empty, tautological,
    duplicated, subsumed) are warnings or infos — solvers tolerate
    them, but they mean the encoder is wasting work or, for the empty
    clause and complementary units ([C008]), that the instance is
    trivially unsatisfiable before any search. [C007] flags a clause
    strictly subsumed by another (exact duplicates stay [C005]). *)

val run : ?source:string -> nvars:int -> Simgen_sat.Literal.t list list -> Diagnostic.t list
(** [nvars] is the declared variable count (variables are
    [0 .. nvars - 1]); [source] labels the diagnostics (file name or
    encoding description). *)
