module Srcloc = Simgen_base.Srcloc
module Blif = Simgen_network.Blif
module Bench_format = Simgen_network.Bench_format
module Aiger = Simgen_aig.Aiger
module Dimacs = Simgen_sat.Dimacs
module Drup = Simgen_sat.Drup
module Tseitin = Simgen_sat.Tseitin
module Solver = Simgen_sat.Solver
module D = Diagnostic

let network ?name:_ net = Net_lint.run net

let aig a = Aig_lint.run a

let cnf ?source ~nvars clauses = Cnf_lint.run ?source ~nvars clauses

let semantic ?seed ?budget ?bdd_nodes ?rounds net =
  Sem_lint.run ?seed ?budget ?bdd_nodes ?rounds net

let tseitin_encoding net =
  let env = Tseitin.create ~record:true () in
  let _vars = Tseitin.encode_network env net in
  Cnf_lint.run
    ~source:(Printf.sprintf "tseitin(%s)" (Simgen_network.Network.name net))
    ~nvars:(Solver.num_vars (Tseitin.solver env))
    (Tseitin.clauses env)

let parse_error loc msg =
  [ D.error ~loc:(D.Src loc) "P001" "parse error: %s" msg ]

let file path =
  let ext =
    match String.rindex_opt path '.' with
    | Some i -> String.lowercase_ascii (String.sub path i (String.length path - i))
    | None -> ""
  in
  try
    match ext with
    | ".blif" -> Net_lint.run (Blif.parse_file path)
    | ".bench" -> Net_lint.run (Bench_format.parse_file path)
    | ".aag" -> Aig_lint.run (Aiger.parse_file path)
    | ".cnf" | ".dimacs" ->
        let nvars, clauses = Dimacs.parse_file path in
        Cnf_lint.run ~source:path ~nvars clauses
    | ".drup" -> Proof_lint.run (Drup.parse_file path)
    | _ ->
        [ D.error
            ~loc:(D.Src (Srcloc.in_file path))
            "P002" "unknown file kind %S (expected .blif, .bench, .aag, .cnf, \
                    .dimacs or .drup)"
            ext ]
  with
  | Blif.Parse_error (loc, msg)
  | Bench_format.Parse_error (loc, msg)
  | Aiger.Parse_error (loc, msg)
  | Dimacs.Parse_error (loc, msg)
  | Drup.Parse_error (loc, msg) ->
      parse_error loc msg
  | Sys_error msg ->
      [ D.error ~loc:(D.Src (Srcloc.in_file path)) "P002" "%s" msg ]
