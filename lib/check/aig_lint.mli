(** Static lints over AIGs (codes [A001]..[A006]).

    The strashing constructors ({!Simgen_aig.Aig.and_}) guarantee
    canonical form by construction: operands ordered, constants folded,
    structurally identical nodes shared. These lints re-check the
    guarantee — catching graphs built through [Aig.Unsafe], imported
    from AIGER files written by other tools, or corrupted by a rewrite
    pass. Ill-formed references ([A004], [A006]) are errors; canonicity
    violations ([A001]..[A003]) are warnings or infos since evaluation
    still works, just without the sharing the rest of the pipeline
    assumes. *)

val run : Simgen_aig.Aig.t -> Diagnostic.t list
