(** Lint front end: dispatch by artifact kind, parse errors as
    diagnostics.

    This is what the [simgen_cli lint] subcommand and the batch runner's
    pre-flight validation call. Files are routed by extension; a parse
    failure becomes a single [P001] error diagnostic carrying the
    file/line location instead of an exception, so linting a directory of
    mixed-quality inputs never aborts halfway. *)

val network : ?name:string -> Simgen_network.Network.t -> Diagnostic.t list
(** {!Net_lint.run}; [name] is prepended to no locations but reserved for
    callers that label output themselves. *)

val aig : Simgen_aig.Aig.t -> Diagnostic.t list

val cnf : ?source:string -> nvars:int -> Simgen_sat.Literal.t list list -> Diagnostic.t list

val semantic :
  ?seed:int ->
  ?budget:int ->
  ?bdd_nodes:int ->
  ?rounds:int ->
  Simgen_network.Network.t ->
  Diagnostic.t list
(** {!Sem_lint.run}: the SAT/BDD-proved semantic tier ([S001]..[S008]).
    Orders of magnitude costlier than the structural lints — opt-in via
    [simgen_cli lint --semantic], never part of runner pre-flight. *)

val tseitin_encoding : Simgen_network.Network.t -> Diagnostic.t list
(** Encode the network into a fresh recording {!Simgen_sat.Tseitin.env}
    and lint the emitted clause stream — an end-to-end audit of the
    encoder itself. *)

val file : string -> Diagnostic.t list
(** Route by extension: [.blif] and [.bench] parse to a network and run
    the network lints; [.aag] parses to an AIG and runs the AIG lints;
    [.cnf] / [.dimacs] parse to clauses and run the CNF lints. Parse
    errors yield a [P001] error diagnostic; an unknown extension or an
    unreadable file yields [P002]. *)
