(** Static analysis over DRUP proof-event streams.

    Lints a {!Simgen_sat.Solver.proof_event} stream — a solver's live
    recording, a certificate's per-query slice, or a parsed [.drup] file
    — for structural defects the RUP checker ({!Simgen_sat.Drup.check})
    does not look for. Diagnostics carry stable [D]-codes (DESIGN.md
    keeps the table); locations are [Clause] event indices (0-based).

    Two regimes:

    - {e structural} (no [~formula]): checks needing nothing beyond the
      stream — [D003] learn after the empty clause (error), [D004]
      tautological step (warning), [D005] duplicate-literal step
      (warning), [D008] Unsat claimed without the empty clause derived
      (error, only with [~expect_unsat:true]). Deletions are never
      flagged structurally: a session slice legitimately deletes clauses
      learned in earlier slices, and drat-trim files legitimately delete
      input clauses.

    - {e semantic} ([~formula] given): full multiset accounting of
      clause availability adds [D001] delete of a never-added clause
      (error), [D002] delete of an already-deleted clause (error) and
      [D006] delete-then-use — a step whose RUP derivation fails against
      the active clauses but succeeds with the deleted ones restored
      (error). *)

val run :
  ?formula:Simgen_sat.Literal.t list list ->
  ?expect_unsat:bool ->
  Simgen_sat.Solver.proof_event list ->
  Diagnostic.t list
(** Lint a stream; see the regime table above. Returns [[]] on a clean
    stream. *)

val lint_group_removal :
  expected:Simgen_sat.Literal.t list list ->
  Simgen_sat.Solver.proof_event list ->
  Diagnostic.t list
(** [D007]: the [Delete] events of a {!Simgen_sat.Solver.remove_group}
    slice must match the group's recorded membership as a multiset —
    [expected] lists the clauses as stored by the solver (sorted,
    root-false literals already dropped at add time). A delete outside
    the membership and a member never deleted are each one [D007]
    error. [Learn] events in the slice are ignored. *)

val trim_anomaly : Simgen_sat.Drup.trim_anomaly -> Diagnostic.t
(** [D009] (warning): a {!Simgen_sat.Drup.trim} bail-out — the proof was
    returned untrimmed because a forward-pass step failed RUP or the
    goal was underivable. *)
