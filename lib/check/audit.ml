module Runtime_check = Simgen_base.Runtime_check
module N = Simgen_network.Network
module Eq_classes = Simgen_sim.Eq_classes
module D = Diagnostic

let eq_partition classes net =
  if Runtime_check.enabled () then begin
    let seen = Hashtbl.create 256 in
    let groups = Eq_classes.classes classes in
    List.iter
      (fun group ->
        (match group with
         | [] | [ _ ] ->
             Runtime_check.failf
               "R001: eq-class of size %d (must be >= 2)" (List.length group)
         | _ -> ());
        let rec check_sorted = function
          | a :: (b :: _ as rest) ->
              if a >= b then
                Runtime_check.failf
                  "R001: eq-class not strictly sorted (%d before %d)" a b;
              check_sorted rest
          | _ -> ()
        in
        check_sorted group;
        List.iter
          (fun id ->
            if id < 0 || id >= N.num_nodes net then
              Runtime_check.failf "R001: eq-class member %d out of range" id;
            if N.is_pi net id then
              Runtime_check.failf "R001: eq-class contains PI %d" id;
            if Hashtbl.mem seen id then
              Runtime_check.failf
                "R001: node %d appears in two eq-classes (not a partition)"
                id;
            Hashtbl.add seen id ();
            (* The by-node index must name exactly this class. *)
            if Eq_classes.class_of classes id != group then
              Runtime_check.failf
                "R001: class_of %d disagrees with the class list" id)
          group)
      groups;
    let n = List.length groups in
    if Eq_classes.num_classes classes <> n then
      Runtime_check.failf "R001: num_classes %d but %d classes listed"
        (Eq_classes.num_classes classes) n
  end

let substitution ?nodes subst =
  if Runtime_check.enabled () then begin
    let n = match nodes with Some n -> n | None -> Array.length subst in
    Array.iteri
      (fun id target ->
        if target < 0 || target >= n then
          Runtime_check.failf
            "R002: substitution of node %d targets %d, out of range" id target;
        if target > id then
          Runtime_check.failf
            "R003: substitution not monotone: node %d points up to %d \
             (cycles possible)"
            id target)
      subst
  end

let check_exn ~what diags =
  match List.find_opt (fun d -> d.D.severity = D.Error) diags with
  | Some d -> Runtime_check.failf "%s: %s" what (D.to_string d)
  | None -> ()
