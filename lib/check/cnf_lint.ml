module Literal = Simgen_sat.Literal
module D = Diagnostic

let run ?source ~nvars clauses =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let loc i =
    match source with
    | Some s -> D.Named (Printf.sprintf "%s, clause %d" s i)
    | None -> D.Clause i
  in
  let referenced = Array.make (max nvars 0) false in
  (* Clause identity for C005: sorted, deduplicated literal list. *)
  let canon = Hashtbl.create 1024 in
  (* C007 candidates: literal -> (clause index, canonical form) of every
     clause containing it. A subsumer shares each of its own literals
     with the subsumed clause, so scanning one occurrence list of the
     examined clause covers all candidates. *)
  let occ : (Literal.t, (int * Literal.t list) list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  (* C008: polarity of every unit clause seen so far. *)
  let units = Hashtbl.create 64 in
  List.iteri
    (fun i clause ->
      if clause = [] then
        add (D.warn ~loc:(loc i) "C002" "empty clause (instance is unsat)");
      let vars_pos = Hashtbl.create 8 and vars_neg = Hashtbl.create 8 in
      let lits_seen = Hashtbl.create 8 in
      List.iter
        (fun l ->
          let v = Literal.var l in
          if v < 0 || v >= nvars then
            add
              (D.error ~loc:(loc i) "C001"
                 "variable %d out of range (%d declared)" v nvars)
          else referenced.(v) <- true;
          if Hashtbl.mem lits_seen l then
            add
              (D.info ~loc:(loc i) "C004" "duplicate literal %s"
                 (Literal.to_string l))
          else Hashtbl.add lits_seen l ();
          if Literal.sign l then Hashtbl.replace vars_neg v ()
          else Hashtbl.replace vars_pos v ())
        clause;
      Hashtbl.iter
        (fun v () ->
          if Hashtbl.mem vars_neg v then
            add
              (D.warn ~loc:(loc i) "C003"
                 "tautological clause (x%d and ~x%d)" v v))
        vars_pos;
      let key = List.sort_uniq compare clause in
      (match Hashtbl.find_opt canon key with
       | Some first ->
           add
             (D.info ~loc:(loc i) "C005" "duplicate of clause %d" first)
       | None ->
           Hashtbl.add canon key i;
           (* C007: a strict subset among the clauses sharing any literal
              of this one subsumes it — this clause can never constrain
              the solver beyond what the subsumer already does. Exact
              duplicates are C005's business. *)
           let subset a b =
             (* both sorted ascending *)
             let rec go a b =
               match (a, b) with
               | [], _ -> true
               | _, [] -> false
               | x :: a', y :: b' ->
                   if x = y then go a' b'
                   else if compare x y > 0 then go a b'
                   else false
             in
             go a b
           in
           (* Best-effort bound: the candidate set is the union of the
              occurrence lists of this clause's literals, which can grow
              quadratic on streams with a hot literal; past the cap the
              remaining candidates are skipped (a lint, not a prover). *)
           let budget = ref 512 in
           let subsumer =
             List.fold_left
               (fun found l ->
                 match found with
                 | Some _ -> found
                 | None -> (
                     match Hashtbl.find_opt occ l with
                     | None -> None
                     | Some cands ->
                         List.find_opt
                           (fun (_, k) ->
                             decr budget;
                             !budget >= 0 && k <> key && subset k key)
                           !cands))
               None key
           in
           (match subsumer with
            | Some (j, _) ->
                add
                  (D.info ~loc:(loc i) "C007" "subsumed by clause %d" j)
            | None -> ());
           List.iter
             (fun l ->
               match Hashtbl.find_opt occ l with
               | Some r -> r := (i, key) :: !r
               | None -> Hashtbl.add occ l (ref [ (i, key) ]))
             key);
      (* C008: a pair of complementary unit clauses makes the instance
         unsatisfiable by unit propagation alone — almost always an
         encoding bug rather than intent. *)
      match key with
      | [ l ] ->
          let v = Literal.var l in
          (match Hashtbl.find_opt units v with
           | Some (sign, j) when sign <> Literal.sign l ->
               add
                 (D.warn ~loc:(loc i) "C008"
                    "unit clause contradicts unit clause %d (x%d both \
                     polarities)"
                    j v)
           | Some _ -> ()
           | None -> Hashtbl.add units v (Literal.sign l, i))
      | _ -> ())
    clauses;
  Array.iteri
    (fun v used ->
      if not used then
        let loc =
          match source with
          | Some s -> D.Named s
          | None -> D.Nowhere
        in
        add
          (D.info ~loc "C006" "variable %d declared but never referenced" v))
    referenced;
  List.rev !diags
