module Literal = Simgen_sat.Literal
module D = Diagnostic

let run ?source ~nvars clauses =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let loc i =
    match source with
    | Some s -> D.Named (Printf.sprintf "%s, clause %d" s i)
    | None -> D.Clause i
  in
  let referenced = Array.make (max nvars 0) false in
  (* Clause identity for C005: sorted, deduplicated literal list. *)
  let canon = Hashtbl.create 1024 in
  List.iteri
    (fun i clause ->
      if clause = [] then
        add (D.warn ~loc:(loc i) "C002" "empty clause (instance is unsat)");
      let vars_pos = Hashtbl.create 8 and vars_neg = Hashtbl.create 8 in
      let lits_seen = Hashtbl.create 8 in
      List.iter
        (fun l ->
          let v = Literal.var l in
          if v < 0 || v >= nvars then
            add
              (D.error ~loc:(loc i) "C001"
                 "variable %d out of range (%d declared)" v nvars)
          else referenced.(v) <- true;
          if Hashtbl.mem lits_seen l then
            add
              (D.info ~loc:(loc i) "C004" "duplicate literal %s"
                 (Literal.to_string l))
          else Hashtbl.add lits_seen l ();
          if Literal.sign l then Hashtbl.replace vars_neg v ()
          else Hashtbl.replace vars_pos v ())
        clause;
      Hashtbl.iter
        (fun v () ->
          if Hashtbl.mem vars_neg v then
            add
              (D.warn ~loc:(loc i) "C003"
                 "tautological clause (x%d and ~x%d)" v v))
        vars_pos;
      let key = List.sort_uniq compare clause in
      (match Hashtbl.find_opt canon key with
       | Some first ->
           add
             (D.info ~loc:(loc i) "C005" "duplicate of clause %d" first)
       | None -> Hashtbl.add canon key i))
    clauses;
  Array.iteri
    (fun v used ->
      if not used then
        let loc =
          match source with
          | Some s -> D.Named s
          | None -> D.Nowhere
        in
        add
          (D.info ~loc "C006" "variable %d declared but never referenced" v))
    referenced;
  List.rev !diags
