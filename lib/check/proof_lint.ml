module Sat = Simgen_sat
module Literal = Sat.Literal
module Solver = Sat.Solver
module Drup = Sat.Drup

(* Static analysis over DRUP proof-event streams (D001..D009). Two
   regimes, chosen by whether the original formula is known:

   - structural (no formula): only checks that need nothing beyond the
     stream itself — learn-after-empty, tautological and duplicate-
     literal steps, Unsat-claimed-without-empty-clause. Deletions are
     never flagged structurally: an incremental session's proof slice
     legitimately deletes clauses learned in *earlier* slices, and a
     drat-trim-style file legitimately deletes input clauses, so an
     unknown delete is not evidence of anything.

   - semantic (with [~formula]): full multiset accounting of clause
     availability (formula + learns - deletes) enables the deletion
     checks — delete of a never-added clause, delete of an exhausted
     clause, and delete-then-use (a later step whose RUP derivation
     fails against the active set but succeeds once the deleted clauses
     are restored: exactly the corruption that breaks a trim forward
     pass).

   The split is what keeps the lint zero-false-positive over genuine
   solver streams while still catching every seeded corruption. *)

let canon lits = List.sort compare (Array.to_list lits)

let event_lits = function Solver.Learn c -> c | Solver.Delete c -> c

(* Tautology / duplicate detection over a sorted literal list: literals
   are ints with [2v] / [2v+1] encodings, so duplicates and negation
   pairs are adjacent after sorting. *)
let rec scan_sorted = function
  | a :: (b :: _ as rest) ->
      if a = b then `Duplicate
      else if a lxor b = 1 then `Tautology
      else scan_sorted rest
  | _ -> `Clean

let structural ?(expect_unsat = false) events =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let empty_at = ref (-1) in
  List.iteri
    (fun idx ev ->
      (match scan_sorted (canon (event_lits ev)) with
      | `Duplicate ->
          add
            (Diagnostic.warn ~loc:(Diagnostic.Clause idx) "D005"
               "duplicate literal in proof step %d" idx)
      | `Tautology ->
          add
            (Diagnostic.warn ~loc:(Diagnostic.Clause idx) "D004"
               "tautological proof step %d" idx)
      | `Clean -> ());
      match ev with
      | Solver.Learn lits ->
          if !empty_at >= 0 then
            add
              (Diagnostic.error ~loc:(Diagnostic.Clause idx) "D003"
                 "learn at step %d after the empty clause (step %d)" idx
                 !empty_at)
          else if Array.length lits = 0 then empty_at := idx
      | Solver.Delete _ -> ())
    events;
  if expect_unsat && !empty_at < 0 then
    add
      (Diagnostic.error "D008"
         "Unsat claimed but the proof never derives the empty clause");
  List.rev !diags

let semantic formula events =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let nvars =
    let of_list acc lits =
      List.fold_left (fun acc l -> max acc (Literal.var l + 1)) acc lits
    in
    let n = List.fold_left of_list 1 formula in
    List.fold_left
      (fun acc ev -> of_list acc (Array.to_list (event_lits ev)))
      n events
  in
  (* Multiset of available copies per canonical clause, plus the set of
     clauses ever available (to tell D001 from D002). *)
  let avail = Hashtbl.create 64 in
  let seen = Hashtbl.create 64 in
  let get k = Option.value (Hashtbl.find_opt avail k) ~default:0 in
  let put k n = if n = 0 then Hashtbl.remove avail k else Hashtbl.replace avail k n in
  List.iter
    (fun c ->
      let k = List.sort compare c in
      Hashtbl.replace seen k ();
      put k (get k + 1))
    formula;
  (* Active / graveyard clause lists for the RUP-based delete-then-use
     check, newest first. *)
  let active = ref (List.map (List.sort compare) formula) in
  let graveyard = ref [] in
  let empty_seen = ref false in
  List.iteri
    (fun idx ev ->
      match ev with
      | Solver.Learn lits ->
          if not !empty_seen then begin
            let clause = canon lits in
            if not (Drup.rup nvars !active clause) then
              if
                !graveyard <> []
                && Drup.rup nvars (List.rev_append !graveyard !active) clause
              then
                add
                  (Diagnostic.error ~loc:(Diagnostic.Clause idx) "D006"
                     "step %d only derivable from previously deleted \
                      clauses (delete-then-use)"
                     idx);
            (* A step that fails RUP even with the graveyard restored is
               the DRUP checker's verdict (Invalid_step), not a stream-
               structure defect: no D code. *)
            if clause = [] then empty_seen := true
            else begin
              Hashtbl.replace seen clause ();
              put clause (get clause + 1);
              active := clause :: !active
            end
          end
      | Solver.Delete lits ->
          let clause = canon lits in
          let n = get clause in
          if n = 0 then
            if Hashtbl.mem seen clause then
              add
                (Diagnostic.error ~loc:(Diagnostic.Clause idx) "D002"
                   "step %d deletes a clause already deleted" idx)
            else
              add
                (Diagnostic.error ~loc:(Diagnostic.Clause idx) "D001"
                   "step %d deletes a clause that was never added" idx)
          else begin
            put clause (n - 1);
            let removed = ref false in
            active :=
              List.filter
                (fun c ->
                  if (not !removed) && c = clause then begin
                    removed := true;
                    false
                  end
                  else true)
                !active;
            graveyard := clause :: !graveyard
          end)
    events;
  List.rev !diags

let run ?formula ?expect_unsat events =
  let s = structural ?expect_unsat events in
  match formula with
  | None -> s
  | Some formula -> Diagnostic.sort (s @ semantic formula events)

let lint_group_removal ~expected events =
  let diags = ref [] in
  let tbl = Hashtbl.create 16 in
  let get k = Option.value (Hashtbl.find_opt tbl k) ~default:0 in
  List.iter
    (fun c ->
      let k = List.sort compare c in
      Hashtbl.replace tbl k (get k + 1))
    expected;
  List.iteri
    (fun idx ev ->
      match ev with
      | Solver.Learn _ -> ()
      | Solver.Delete lits ->
          let k = canon lits in
          let n = get k in
          if n = 0 then
            diags :=
              Diagnostic.error ~loc:(Diagnostic.Clause idx) "D007"
                "group removal deleted a clause outside the group's \
                 recorded membership (step %d)"
                idx
              :: !diags
          else if n = 1 then Hashtbl.remove tbl k
          else Hashtbl.replace tbl k (n - 1))
    events;
  Hashtbl.iter
    (fun _ n ->
      for _ = 1 to n do
        diags :=
          Diagnostic.error "D007"
            "group member never deleted by the group removal"
          :: !diags
      done)
    tbl;
  List.rev !diags

let trim_anomaly = function
  | Drup.Non_rup_step i ->
      Diagnostic.warn ~loc:(Diagnostic.Clause i) "D009"
        "trim anomaly: step %d fails RUP in the forward pass; proof left \
         untrimmed"
        i
  | Drup.Underivable_goal ->
      Diagnostic.warn "D009"
        "trim anomaly: goal underivable from the proof; proof left untrimmed"
