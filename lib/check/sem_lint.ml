module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Cube = Simgen_network.Cube
module Isop = Simgen_network.Isop
module Sat = Simgen_sat
module Bdd = Simgen_bdd.Bdd
module Rng = Simgen_base.Rng
module Simulator = Simgen_sim.Simulator
module D = Diagnostic

(* ------------------------- proof plumbing ------------------------- *)

(* One fresh recording solver per query: every clause is kept so an
   UNSAT answer can be re-checked by reverse unit propagation before it
   becomes a finding. The lint never trusts the solver's word alone. *)
type ctx = {
  solver : Sat.Solver.t;
  vars : int array;  (* node id -> CNF var, -1 outside the encoding *)
  recorded : Sat.Literal.t list list ref;
}

let fresh_ctx net =
  let solver = Sat.Solver.create () in
  Sat.Solver.enable_proof solver;
  { solver; vars = Array.make (N.num_nodes net) (-1); recorded = ref [] }

let addc ctx c =
  ctx.recorded := c :: !(ctx.recorded);
  Sat.Solver.add_clause ctx.solver c

let var_of ctx id =
  if ctx.vars.(id) < 0 then ctx.vars.(id) <- Sat.Solver.new_var ctx.solver;
  ctx.vars.(id)

(* Clauses of [y <-> tt(inputs)] from the ISOP rows, same shape as the
   sweep miters use. *)
let encode_tt ctx y tt inputs =
  match TT.is_const tt with
  | Some b -> addc ctx [ Sat.Literal.make y (not b) ]
  | None ->
      List.iter
        (fun (c : Cube.t) ->
          let clause = ref [ Sat.Literal.make y (not c.Cube.out) ] in
          Array.iteri
            (fun i l ->
              match l with
              | Cube.DC -> ()
              | Cube.T -> clause := Sat.Literal.neg inputs.(i) :: !clause
              | Cube.F -> clause := Sat.Literal.pos inputs.(i) :: !clause)
            c.Cube.lits;
          addc ctx !clause)
        (Isop.rows tt)

(* Encode the fanin cones of [roots] into [ctx] (explicit-stack DFS, ids
   are topological by construction). *)
let encode_cones ctx net roots =
  let visited = Array.make (N.num_nodes net) false in
  let order = ref [] in
  let stack = ref roots in
  let rec walk () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if not visited.(id) then begin
          visited.(id) <- true;
          order := id :: !order;
          if not (N.is_pi net id) then
            Array.iter (fun fi -> stack := fi :: !stack) (N.fanins net id)
        end;
        walk ()
  in
  walk ();
  List.iter
    (fun id ->
      if N.is_pi net id then ignore (var_of ctx id)
      else
        encode_tt ctx (var_of ctx id) (N.func net id)
          (Array.map (var_of ctx) (N.fanins net id)))
    !order

type outcome = Proved of string | Refuted | Gave_up

(* Decide a query posed as "these clauses are unsatisfiable". An UNSAT
   answer only counts once its DRUP proof re-checks; the witness string
   records the trimmed, verified proof size. *)
let decide ~budget ctx =
  match
    Sat.Solver.solve_limited
      ~limits:(Sat.Solver.Limits.conflicts budget)
      ctx.solver
  with
  | Sat.Solver.LSat -> Refuted
  | Sat.Solver.LUnknown -> Gave_up
  | Sat.Solver.LUnsat -> (
      let formula = List.rev !(ctx.recorded) in
      let proof = Sat.Drup.trim formula (Sat.Solver.proof_events ctx.solver) in
      match Sat.Drup.check formula proof with
      | Sat.Drup.Valid ->
          Proved (Printf.sprintf "drup %d steps, checked" (List.length proof))
      | Sat.Drup.Invalid_step _ | Sat.Drup.Incomplete -> Gave_up)

(* XOR-difference clauses: y <-> (a <> b). *)
let encode_xor ctx y a b =
  addc ctx Sat.Literal.[ neg y; pos a; pos b ];
  addc ctx Sat.Literal.[ neg y; neg a; neg b ];
  addc ctx Sat.Literal.[ pos y; neg a; pos b ];
  addc ctx Sat.Literal.[ pos y; pos a; neg b ]

(* --------------------- simulation signatures ---------------------- *)

(* Word-evaluate a truth table over fanin words (Shannon expansion,
   skipping don't-care inputs). *)
let tt_word tt fanins =
  let rec go tt v =
    if v < 0 then match TT.is_const tt with Some true -> -1L | _ -> 0L
    else if not (TT.depends_on tt v) then go tt (v - 1)
    else
      let w = fanins.(v) in
      Int64.logor
        (Int64.logand w (go (TT.cofactor tt v true) (v - 1)))
        (Int64.logand (Int64.lognot w) (go (TT.cofactor tt v false) (v - 1)))
  in
  go tt (TT.nvars tt - 1)

(* ------------------------------ run ------------------------------- *)

let run ?(seed = 1) ?(budget = 2000) ?(bdd_nodes = 50_000) ?(rounds = 4) net
    =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let unknown ~loc what =
    add
      (D.info ~loc "S008" "unknown: %s (budget %d conflicts exhausted)" what
         budget)
  in
  let nn = N.num_nodes net in
  let rng = Rng.create seed in
  (* Signatures: [rounds] node-word arrays from random 64-vector
     batches. *)
  let node_words =
    Array.init (max 1 rounds) (fun _ ->
        Simulator.simulate_word net (Simulator.random_word rng net))
  in
  let rounds = Array.length node_words in
  let signature id = Array.init rounds (fun r -> node_words.(r).(id)) in
  let sig_const b id =
    let w = if b then -1L else 0L in
    Array.for_all (fun nw -> nw.(id) = w) node_words
  in
  (* The BDD engine, built lazily and at most once, under its node
     quota; [None] when the network blows the quota. *)
  let bdds =
    lazy
      (try
         let m = Bdd.manager ~max_nodes:bdd_nodes (max 1 (N.num_pis net)) in
         Some (m, Bdd.build_network m net)
       with Bdd.Node_limit_exceeded -> None)
  in
  let bdd_equal a b complement =
    match Lazy.force bdds with
    | None -> None
    | Some (m, roots) ->
        let rb = if complement then Bdd.not_ m roots.(b) else roots.(b) in
        Some (Bdd.equal roots.(a) rb)
  in
  let bdd_const id =
    match Lazy.force bdds with
    | None -> None
    | Some (m, roots) ->
        if Bdd.is_zero m roots.(id) then Some false
        else if Bdd.is_one m roots.(id) then Some true
        else None
  in

  (* S001: constant-signature gates whose local function is not constant.
     Prove by asserting the opposite value over the cone. *)
  N.iter_gates net (fun id ->
      if TT.is_const (N.func net id) = None then
        let candidate b = sig_const b id in
        let prove b =
          let loc = D.Node id in
          let ctx = fresh_ctx net in
          encode_cones ctx net [ id ];
          (* UNSAT of [node = not b] proves the node is always [b]. *)
          addc ctx [ Sat.Literal.make ctx.vars.(id) b ];
          match decide ~budget ctx with
          | Proved w ->
              add
                (D.warn ~loc "S001" "gate is provably constant %b (%s)" b w)
          | Refuted -> ()
          | Gave_up -> (
              match bdd_const id with
              | Some b' when b' = b ->
                  add
                    (D.warn ~loc "S001"
                       "gate is provably constant %b (bdd, budget %d \
                        exhausted)"
                       b budget)
              | Some _ -> ()
              | None -> unknown ~loc (Printf.sprintf "gate %d constant?" id))
        in
        if candidate true then prove true
        else if candidate false then prove false);

  (* S002: a fanin the gate's function provably never depends on, over
     the care set of reachable fanin combinations. Candidates: the local
     cofactors differ as truth tables but never on a simulated batch. *)
  N.iter_gates net (fun id ->
      let tt = N.func net id in
      let fanins = N.fanins net id in
      if Array.length fanins >= 2 then
        Array.iteri
          (fun i _ ->
            if TT.depends_on tt i then begin
              let c0 = TT.cofactor tt i false
              and c1 = TT.cofactor tt i true in
              let sim_differs =
                Array.exists
                  (fun nw ->
                    let fws = Array.map (fun f -> nw.(f)) fanins in
                    tt_word c0 fws <> tt_word c1 fws)
                  node_words
              in
              if not sim_differs then begin
                let loc = D.Node id in
                let ctx = fresh_ctx net in
                encode_cones ctx net (Array.to_list fanins);
                let inputs = Array.map (var_of ctx) fanins in
                let y0 = Sat.Solver.new_var ctx.solver in
                let y1 = Sat.Solver.new_var ctx.solver in
                encode_tt ctx y0 c0 inputs;
                encode_tt ctx y1 c1 inputs;
                let d = Sat.Solver.new_var ctx.solver in
                encode_xor ctx d y0 y1;
                addc ctx [ Sat.Literal.pos d ];
                match decide ~budget ctx with
                | Proved w ->
                    add
                      (D.warn ~loc "S002"
                         "fanin %d (node %d) is semantically redundant: \
                          cofactors coincide on the care set (%s)"
                         i fanins.(i) w)
                | Refuted -> ()
                | Gave_up ->
                    unknown ~loc
                      (Printf.sprintf "gate %d fanin %d redundant?" id i)
              end
            end)
          fanins);

  (* Shared prover for node equivalence / complement claims. *)
  let prove_pair ~loc ~code ~severity ~describe a b complement =
    let ctx = fresh_ctx net in
    encode_cones ctx net [ a; b ];
    let va = ctx.vars.(a) and vb = ctx.vars.(b) in
    (if complement then begin
       (* UNSAT of [a = b] proves a == not b. *)
       addc ctx Sat.Literal.[ neg va; pos vb ];
       addc ctx Sat.Literal.[ pos va; neg vb ]
     end
     else begin
       let d = Sat.Solver.new_var ctx.solver in
       encode_xor ctx d va vb;
       addc ctx [ Sat.Literal.pos d ]
     end);
    let report w =
      let mk = if severity = D.Warning then D.warn else D.info in
      add (mk ~loc code "%s (%s)" (describe ()) w)
    in
    match decide ~budget ctx with
    | Proved w -> report w
    | Refuted -> ()
    | Gave_up -> (
        match bdd_equal a b complement with
        | Some true -> report (Printf.sprintf "bdd, budget %d exhausted" budget)
        | Some false -> ()
        | None -> unknown ~loc (describe () ^ "?"))
  in

  (* S003/S004: bucket nodes by signature up to complement; each later
     bucket member is checked against the bucket's first. Constant
     signatures are S001's business. *)
  let buckets = Hashtbl.create 256 in
  N.iter_nodes net (fun id ->
      if not (sig_const true id || sig_const false id) then begin
        let s = signature id in
        let sc = Array.map Int64.lognot s in
        let key_of a = Array.to_list a in
        let ks = key_of s and kc = key_of sc in
        let key, negated = if compare ks kc <= 0 then (ks, false) else (kc, true) in
        match Hashtbl.find_opt buckets key with
        | None -> Hashtbl.add buckets key (id, negated)
        | Some (rep, rep_neg) ->
            if not (N.is_pi net id) then
              let complement = negated <> rep_neg in
              let code = if complement then "S004" else "S003" in
              let severity = if complement then D.Info else D.Warning in
              prove_pair ~loc:(D.Node id) ~code ~severity
                ~describe:(fun () ->
                  Printf.sprintf "gate %d is provably %s node %d" id
                    (if complement then "the complement of" else
                       "equivalent to")
                    rep)
                rep id complement
      end);

  (* S005/S006: PO pairs with matching (or complementary) driver
     signatures; each PO is paired with the smallest matching one. *)
  let pos = N.pos net in
  let claimed = Array.make (Array.length pos) false in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if j > i && not claimed.(j) then begin
            let sa = signature a and sb = signature b in
            let equal_sig = sa = sb in
            let comp_sig = sa = Array.map Int64.lognot sb in
            if equal_sig || comp_sig then begin
              claimed.(j) <- true;
              if a = b then
                add
                  (D.warn ~loc:(D.Named (Printf.sprintf "po %d" j)) "S005"
                     "PO %d and PO %d are the same node (%d)" i j a)
              else
                let complement = comp_sig && not equal_sig in
                let code = if complement then "S006" else "S005" in
                let severity = if complement then D.Info else D.Warning in
                prove_pair
                  ~loc:(D.Named (Printf.sprintf "po %d" j))
                  ~code ~severity
                  ~describe:(fun () ->
                    Printf.sprintf "PO %d is provably %s PO %d" j
                      (if complement then "the complement of" else "equal to")
                      i)
                  a b complement
            end
          end)
        pos)
    pos;

  (* S007: gates whose flip no PO can observe. Candidates survive a
     simulated flip of every batch; the proof is a two-copy miter where
     only the transitive fanout is duplicated and the copy sees the
     negated gate. *)
  let po_set = Array.make nn false in
  Array.iter (fun p -> po_set.(p) <- true) pos;
  (* Transitive fanout, by ascending id (topological). *)
  let tfo_of g =
    let mark = Array.make nn false in
    mark.(g) <- true;
    for id = g + 1 to nn - 1 do
      if (not (N.is_pi net id)) && Array.exists (fun f -> mark.(f)) (N.fanins net id)
      then mark.(id) <- true
    done;
    mark.(g) <- false;
    mark
  in
  N.iter_gates net (fun g ->
      if not po_set.(g) then begin
        let tfo = tfo_of g in
        let reaches_po = Array.exists (fun p -> tfo.(p) || p = g) pos in
        (* Gates that reach no PO at all are structurally dangling —
           Net_lint territory, not a semantic finding. *)
        if reaches_po then begin
          let sim_observable =
            Array.exists
              (fun nw ->
                let flipped = Array.copy nw in
                flipped.(g) <- Int64.lognot nw.(g);
                for id = g + 1 to nn - 1 do
                  if tfo.(id) then
                    flipped.(id) <-
                      tt_word (N.func net id)
                        (Array.map (fun f -> flipped.(f)) (N.fanins net id))
                done;
                Array.exists (fun p -> flipped.(p) <> nw.(p)) pos)
              node_words
          in
          if not sim_observable then begin
            let loc = D.Node g in
            let ctx = fresh_ctx net in
            encode_cones ctx net (Array.to_list pos);
            if ctx.vars.(g) < 0 then
              (* In no PO cone after encoding: dangling, skip. *)
              ()
            else begin
              (* Copy B of the TFO over [g]'s negation. *)
              let vars_b = Array.make nn (-1) in
              vars_b.(g) <- Sat.Solver.new_var ctx.solver;
              addc ctx Sat.Literal.[ pos vars_b.(g); pos ctx.vars.(g) ];
              addc ctx Sat.Literal.[ neg vars_b.(g); neg ctx.vars.(g) ];
              let var_b id = if vars_b.(id) >= 0 then vars_b.(id) else ctx.vars.(id) in
              for id = g + 1 to nn - 1 do
                if tfo.(id) && ctx.vars.(id) >= 0 then begin
                  vars_b.(id) <- Sat.Solver.new_var ctx.solver;
                  encode_tt ctx vars_b.(id) (N.func net id)
                    (Array.map var_b (N.fanins net id))
                end
              done;
              (* Some affected PO must differ. *)
              let diff =
                Array.to_list pos
                |> List.filter (fun p -> vars_b.(p) >= 0)
                |> List.map (fun p ->
                       let x = Sat.Solver.new_var ctx.solver in
                       encode_xor ctx x ctx.vars.(p) vars_b.(p);
                       Sat.Literal.pos x)
              in
              match diff with
              | [] -> () (* flip reaches no PO variable: dangling *)
              | _ -> (
                  addc ctx diff;
                  match decide ~budget ctx with
                  | Proved w ->
                      add
                        (D.warn ~loc "S007"
                           "gate is dead logic: flipping it is provably \
                            unobservable at every PO (%s)"
                           w)
                  | Refuted -> ()
                  | Gave_up ->
                      unknown ~loc (Printf.sprintf "gate %d dead?" g))
            end
          end
        end
      end);
  List.rev !diags
