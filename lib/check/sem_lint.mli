(** Semantic lints: findings {e proved} by the CDCL solver or the BDD
    engine, not pattern-matched (codes [S001]..[S008]).

    Where {!Net_lint} checks structure (shapes that are wrong by
    inspection), this tier decides semantic properties of the logic
    itself. Candidates are harvested cheaply by word-parallel random
    simulation — a node whose signature is ever non-constant cannot be
    constant, two nodes with different signatures cannot be equivalent —
    and every surviving candidate is settled by an UNSAT proof:

    - [S001] gate provably constant over the reachable input space
      (its local function is not constant; the cone forces it),
    - [S002] semantically redundant fanin: the gate's positive and
      negative cofactors on that input coincide under the care set of
      reachable fanin-value combinations,
    - [S003] gate provably equivalent to an existing node (warning) and
      [S004] to its complement (info),
    - [S005] two POs provably equal (warning) and [S006] provably
      complementary (info),
    - [S007] dead logic: flipping the gate is unobservable at every PO
      (the gate lies entirely inside its observability don't-cares),
    - [S008] (info) a query exceeded its conflict budget and both
      engines passed — reported as {e unknown}, never as a finding, and
      never affecting {!Diagnostic.exit_code}.

    Every [S001]..[S007] diagnostic carries its witness in the message:
    the size of the independently re-checked DRUP proof
    ({!Simgen_sat.Drup.check} over the recorded query), or the BDD
    comparison that settled it when the solver's budget ran out first.
    Candidates the proof attempt {e refutes} (the solver finds a
    distinguishing assignment) are silently dropped — the lint never
    reports a property it could not prove, so false positives require a
    false UNSAT answer to survive the DRUP check. *)

val run :
  ?seed:int ->
  ?budget:int ->
  ?bdd_nodes:int ->
  ?rounds:int ->
  Simgen_network.Network.t ->
  Diagnostic.t list
(** [run net] returns the semantic diagnostics, in discovery order
    (callers sort via {!Diagnostic.sort}). [seed] (default 1) drives the
    simulation prefilter; [budget] (default 2000) is the per-query
    conflict cap — no single SAT call may exceed it; [bdd_nodes]
    (default 50_000) bounds the fallback BDD manager (past it, unknowns
    stay unknown); [rounds] (default 4) is the number of 64-vector
    random simulation batches used to harvest candidates. *)
