module Sh = Simgen_base.Shared
module Srcloc = Simgen_base.Srcloc
module D = Diagnostic

(* The trace's sequence numbers were drawn inside each synchronization
   window (after lock, before unlock; adjacent to each atomic op), so
   replaying events in seq order is consistent with the happens-before
   order being computed: one forward pass suffices, no reordering
   search. *)

type access = {
  adom : int;  (* dense domain index *)
  clock : int;  (* accessor's own VC component at access time *)
  aloc : Srcloc.t;
  alocks : int list;  (* mutex oids held *)
}

type mstate = {
  mutable mvc : int array option;  (* clock of the last release *)
  mutable owner : int option;  (* dense index of current holder *)
  mutable ever : bool;  (* acquired at least once in-trace *)
}

type astate = { mutable avc : int array option }
type tstate = { mutable spawn_vc : int array option; mutable end_vc : int array option }

type cstate = {
  mutable writes : access list;  (* last write per domain *)
  mutable reads : access list;  (* last read per domain *)
  mutable reported : int;
  mutable suppressed : int;
}

type dstate = { vc : int array; mutable held : int list (* mutex oids *) }

let max_reports_per_cell = 4

let join_into dst src =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

let analyze (trace : Sh.trace) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let objs : (int, Sh.obj_info) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (o : Sh.obj_info) -> Hashtbl.replace objs o.Sh.oid o)
    trace.Sh.objects;
  (* Dense domain indexing: one pre-pass over the events. *)
  let dom_idx : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Sh.event) ->
      if not (Hashtbl.mem dom_idx e.Sh.domain) then
        Hashtbl.add dom_idx e.Sh.domain (Hashtbl.length dom_idx))
    trace.Sh.events;
  let ndoms = max 1 (Hashtbl.length dom_idx) in
  let doms =
    Array.init ndoms (fun i ->
        let vc = Array.make ndoms 0 in
        vc.(i) <- 1;
        { vc; held = [] })
  in
  let mutexes : (int, mstate) Hashtbl.t = Hashtbl.create 16 in
  let atomics : (int, astate) Hashtbl.t = Hashtbl.create 16 in
  let tokens : (int, tstate) Hashtbl.t = Hashtbl.create 16 in
  let cells : (int, cstate) Hashtbl.t = Hashtbl.create 16 in
  let get tbl oid mk =
    match Hashtbl.find_opt tbl oid with
    | Some s -> s
    | None ->
        let s = mk () in
        Hashtbl.add tbl oid s;
        s
  in
  let mutex oid = get mutexes oid (fun () -> { mvc = None; owner = None; ever = false }) in
  let atomic oid = get atomics oid (fun () -> { avc = None }) in
  let token oid = get tokens oid (fun () -> { spawn_vc = None; end_vc = None }) in
  let cell oid =
    get cells oid (fun () ->
        { writes = []; reads = []; reported = 0; suppressed = 0 })
  in
  let unknown_objs = ref 0 in
  let oname oid =
    match Hashtbl.find_opt objs oid with
    | Some o -> o.Sh.oname
    | None -> Printf.sprintf "#%d" oid
  in
  let loc_of at oid =
    if not (Srcloc.is_none at) then D.Src at
    else
      match Hashtbl.find_opt objs oid with
      | Some o when not (Srcloc.is_none o.Sh.oloc) -> D.Src o.Sh.oloc
      | Some o -> D.Named o.Sh.oname
      | None -> D.Nowhere
  in
  let loc_str at oid =
    match Srcloc.to_string at with
    | Some s -> s
    | None -> (
        match Hashtbl.find_opt objs oid with
        | Some o -> (
            match Srcloc.to_string o.Sh.oloc with
            | Some s -> s ^ " (declaration)"
            | None -> "<unknown>")
        | None -> "<unknown>")
  in
  let locks_str = function
    | [] -> "no locks"
    | ls -> "locks {" ^ String.concat ", " (List.map oname ls) ^ "}"
  in
  (* A confirmed happens-before race, classified by the two locksets. *)
  let report_race ~oid ~what cs (prior : access) (cur : access) =
    if cs.reported >= max_reports_per_cell then cs.suppressed <- cs.suppressed + 1
    else begin
      cs.reported <- cs.reported + 1;
      let common = List.filter (fun l -> List.mem l cur.alocks) prior.alocks in
      let name = oname oid in
      let pair =
        Printf.sprintf "%s at %s [%s] vs at %s [%s]" what
          (loc_str prior.aloc oid) (locks_str prior.alocks)
          (loc_str cur.aloc oid) (locks_str cur.alocks)
      in
      let loc = loc_of cur.aloc oid in
      match (common, prior.alocks, cur.alocks) with
      | _ :: _, _, _ ->
          add
            (D.warn ~loc "T003"
               "possible race on cell '%s' despite common lock %s — likely \
                unmodeled ordering: %s"
               name (oname (List.hd common)) pair)
      | [], [], [] ->
          let code = match what with "write/write" -> "T001" | _ -> "T002" in
          add (D.error ~loc code "data race on cell '%s': %s" name pair)
      | [], guard :: _, [] | [], [], guard :: _ ->
          add
            (D.error ~loc "T003"
               "data race on cell '%s' with inconsistent lock discipline \
                (guard %s held on one side only): %s"
               name (oname guard) pair)
      | [], _ :: _, _ :: _ ->
          add
            (D.error ~loc "T003"
               "data race on cell '%s' with disjoint locksets: %s" name pair)
    end
  in
  let check_against ~oid ~what cs ds prior_list (cur : access) =
    List.iter
      (fun (prior : access) ->
        if prior.adom <> cur.adom && prior.clock > ds.vc.(prior.adom) then
          report_race ~oid ~what cs prior cur)
      prior_list
  in
  let replace_access lst (a : access) =
    a :: List.filter (fun (p : access) -> p.adom <> a.adom) lst
  in
  let step (e : Sh.event) =
    let d =
      match Hashtbl.find_opt dom_idx e.Sh.domain with
      | Some i -> i
      | None -> 0 (* unreachable: dom_idx covers every event *)
    in
    let ds = doms.(d) in
    let oid = e.Sh.obj in
    if not (Hashtbl.mem objs oid) then incr unknown_objs
    else
      match e.Sh.op with
      | Sh.Acquire ->
          let ms = mutex oid in
          (match ms.owner with
          | Some h when h = d ->
              add
                (D.error ~loc:(loc_of e.Sh.at oid) "T005"
                   "mutex '%s' re-acquired by its current holder \
                    (self-deadlock on a non-recursive lock)"
                   (oname oid))
          | Some _ | None -> ());
          (match ms.mvc with Some v -> join_into ds.vc v | None -> ());
          ms.owner <- Some d;
          ms.ever <- true;
          ds.held <- oid :: ds.held
      | Sh.Release -> (
          let ms = mutex oid in
          match ms.owner with
          | Some h when h = d ->
              ms.mvc <- Some (Array.copy ds.vc);
              ds.vc.(d) <- ds.vc.(d) + 1;
              ms.owner <- None;
              let rec drop = function
                | [] -> []
                | x :: rest -> if x = oid then rest else x :: drop rest
              in
              ds.held <- drop ds.held
          | Some _ ->
              add
                (D.error ~loc:(loc_of e.Sh.at oid) "T004"
                   "mutex '%s' released by a domain that does not hold it"
                   (oname oid))
          | None ->
              if ms.ever then
                add
                  (D.error ~loc:(loc_of e.Sh.at oid) "T004"
                     "mutex '%s' released while not held" (oname oid)))
      | Sh.Atomic_read -> (
          let st = atomic oid in
          match st.avc with Some v -> join_into ds.vc v | None -> ())
      | Sh.Atomic_write ->
          let st = atomic oid in
          let v =
            match st.avc with
            | Some v -> join_into v ds.vc; v
            | None -> Array.copy ds.vc
          in
          st.avc <- Some v;
          ds.vc.(d) <- ds.vc.(d) + 1
      | Sh.Atomic_update ->
          let st = atomic oid in
          (match st.avc with Some v -> join_into ds.vc v | None -> ());
          st.avc <- Some (Array.copy ds.vc);
          ds.vc.(d) <- ds.vc.(d) + 1
      | Sh.Read ->
          let cs = cell oid in
          let cur =
            { adom = d; clock = ds.vc.(d); aloc = e.Sh.at; alocks = ds.held }
          in
          check_against ~oid ~what:"write/read" cs ds cs.writes cur;
          cs.reads <- replace_access cs.reads cur
      | Sh.Write ->
          let cs = cell oid in
          let cur =
            { adom = d; clock = ds.vc.(d); aloc = e.Sh.at; alocks = ds.held }
          in
          check_against ~oid ~what:"write/write" cs ds cs.writes cur;
          check_against ~oid ~what:"read/write" cs ds cs.reads cur;
          cs.writes <- replace_access cs.writes cur
      | Sh.Spawn ->
          let ts = token oid in
          ts.spawn_vc <- Some (Array.copy ds.vc);
          ds.vc.(d) <- ds.vc.(d) + 1
      | Sh.Begin -> (
          let ts = token oid in
          match ts.spawn_vc with
          | Some v -> join_into ds.vc v
          | None ->
              add
                (D.warn ~loc:(loc_of e.Sh.at oid) "T007"
                   "domain begin without a recorded spawn (token '%s'): \
                    ordering with the parent is unknown"
                   (oname oid)))
      | Sh.End_ ->
          let ts = token oid in
          ts.end_vc <- Some (Array.copy ds.vc);
          ds.vc.(d) <- ds.vc.(d) + 1
      | Sh.Join -> (
          let ts = token oid in
          match ts.end_vc with
          | Some v -> join_into ds.vc v
          | None ->
              add
                (D.warn ~loc:(loc_of e.Sh.at oid) "T007"
                   "join without a recorded domain end (token '%s'): \
                    ordering with the child is unknown"
                   (oname oid)))
  in
  List.iter step trace.Sh.events;
  Hashtbl.iter
    (fun oid (ms : mstate) ->
      match ms.owner with
      | Some _ ->
          add
            (D.warn ~loc:(loc_of Srcloc.none oid) "T006"
               "mutex '%s' still held at end of trace" (oname oid))
      | None -> ())
    mutexes;
  Hashtbl.iter
    (fun oid (cs : cstate) ->
      if cs.suppressed > 0 then
        add
          (D.info ~loc:(loc_of Srcloc.none oid) "T008"
             "%d further race report(s) on cell '%s' suppressed (cap %d)"
             cs.suppressed (oname oid) max_reports_per_cell))
    cells;
  if !unknown_objs > 0 then
    add
      (D.info "T008" "%d event(s) referenced objects missing from the trace \
                      header and were skipped"
         !unknown_objs);
  D.sort (List.rev !diags)

let file path =
  match Sh.parse_trace path with
  | Error msg -> Error msg
  | Ok (trace, corrupt) ->
      let parse_diags =
        List.map
          (fun (line, msg) ->
            D.warn
              ~loc:(D.Src (Srcloc.make ~file:path ~line ()))
              "P001" "corrupt trace line: %s" msg)
          corrupt
      in
      Ok (D.sort (parse_diags @ analyze trace))

let exit_code diags =
  if
    List.exists
      (fun (d : D.t) ->
        match d.D.severity with
        | D.Error | D.Warning -> true
        | D.Info -> false)
      diags
  then 1
  else 0
