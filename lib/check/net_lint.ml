module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Mffc = Simgen_network.Mffc
module D = Diagnostic

(* Recompute levels from scratch, trusting nothing cached: the whole point
   of N010 is to cross-check Network's own cache. Only sound when the
   network passed the structural checks (fanins in range and backward). *)
let fresh_levels net =
  let n = N.num_nodes net in
  let levels = Array.make n 0 in
  for id = 0 to n - 1 do
    match N.kind net id with
    | N.Pi _ -> ()
    | N.Gate _ ->
        Array.iter
          (fun fi -> if levels.(fi) + 1 > levels.(id) then levels.(id) <- levels.(fi) + 1)
          (N.fanins net id)
  done;
  levels

(* Cycle detection by iterative coloured DFS over fanin edges. The IR
   invariant (fanins strictly below the node) makes cycles impossible, so
   any cycle implies a forward edge — but the converse is false, and the
   two deserve distinct codes: N001 is "your network loops", N003 is "your
   ids are out of order". Out-of-range fanins are not followed. *)
let find_cycles net =
  let n = N.num_nodes net in
  let color = Array.make n 0 in
  (* 0 white, 1 gray, 2 black *)
  let diags = ref [] in
  let rec visit id =
    if color.(id) = 0 then begin
      color.(id) <- 1;
      (match N.kind net id with
       | N.Pi _ -> ()
       | N.Gate _ ->
           Array.iter
             (fun fi ->
               if fi >= 0 && fi < n then
                 if color.(fi) = 1 then
                   diags :=
                     D.error ~loc:(D.Node id) "N001"
                       "combinational cycle through fanin %d" fi
                     :: !diags
                 else visit fi)
             (N.fanins net id));
      color.(id) <- 2
    end
  in
  for id = 0 to n - 1 do
    visit id
  done;
  List.rev !diags

let structural net =
  let n = N.num_nodes net in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  N.iter_nodes net (fun id ->
      match N.kind net id with
      | N.Pi _ -> ()
      | N.Gate f ->
          let fanins = N.fanins net id in
          let arity = Array.length fanins in
          if TT.nvars f <> arity then
            add
              (D.error ~loc:(D.Node id) "N002"
                 "gate arity %d disagrees with truth-table width %d" arity
                 (TT.nvars f));
          Array.iter
            (fun fi ->
              if fi < 0 || fi >= n then
                add
                  (D.error ~loc:(D.Node id) "N003" "fanin %d out of range" fi)
              else if fi >= id then
                add
                  (D.error ~loc:(D.Node id) "N003"
                     "fanin %d is not below the node (forward reference)" fi))
            fanins;
          (* Duplicate fanins: legal, but usually a generator bug. *)
          let seen = Hashtbl.create (max 4 arity) in
          Array.iter
            (fun fi ->
              if Hashtbl.mem seen fi then
                add
                  (D.info ~loc:(D.Node id) "N013" "duplicate fanin %d" fi)
              else Hashtbl.add seen fi ())
            fanins);
  Array.iteri
    (fun i po ->
      if po < 0 || po >= n then
        add
          (D.error ~loc:(D.Named (Printf.sprintf "po %d" i)) "N005"
             "primary output references node %d, out of range" po))
    (N.pos net);
  List.rev !diags

let functional net =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  N.iter_nodes net (fun id ->
      match N.kind net id with
      | N.Pi _ -> ()
      | N.Gate f ->
          let arity = Array.length (N.fanins net id) in
          if TT.nvars f <> arity then ()
          else begin
            match TT.is_const f with
            | Some b ->
                if arity > 0 then
                  add
                    (D.info ~loc:(D.Node id) "N008"
                       "constant-%b gate with %d fanins (foldable)" b arity)
            | None ->
                if arity = 1 && TT.equal f (TT.var 0 1) then
                  add
                    (D.info ~loc:(D.Node id) "N009"
                       "identity buffer (pass-through gate)")
                else
                  for i = 0 to arity - 1 do
                    if not (TT.depends_on f i) then
                      add
                        (D.info ~loc:(D.Node id) "N012"
                           "function ignores fanin %d" i)
                  done
          end);
  List.rev !diags

let names net =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let check_dup what tbl name loc =
    match name with
    | None -> ()
    | Some name ->
        if Hashtbl.mem tbl name then
          add (D.warn ~loc "N006" "duplicate %s name %S" what name)
        else Hashtbl.add tbl name ()
  in
  let node_names = Hashtbl.create 64 in
  N.iter_nodes net (fun id ->
      check_dup "node" node_names (N.node_name net id) (D.Node id));
  let po_names = Hashtbl.create 16 in
  Array.iteri
    (fun i _ ->
      check_dup "primary output" po_names (N.po_name net i)
        (D.Named (Printf.sprintf "po %d" i)))
    (N.pos net);
  List.rev !diags

let reachability net =
  let n = N.num_nodes net in
  let reach = Array.make n false in
  let stack = ref [] in
  Array.iter
    (fun po -> if po >= 0 && po < n then stack := po :: !stack)
    (N.pos net);
  let rec mark () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if not reach.(id) then begin
          reach.(id) <- true;
          (match N.kind net id with
           | N.Pi _ -> ()
           | N.Gate _ ->
               Array.iter
                 (fun fi -> if fi >= 0 && fi < n then stack := fi :: !stack)
                 (N.fanins net id))
        end;
        mark ()
  in
  mark ();
  let diags = ref [] in
  N.iter_gates net (fun id ->
      if not reach.(id) then
        diags :=
          D.info ~loc:(D.Node id) "N004"
            "gate unreachable from any primary output"
          :: !diags);
  List.rev !diags

let stale_levels net =
  match N.cached_levels net with
  | None -> []
  | Some cache ->
      let fresh = fresh_levels net in
      if Array.length cache <> Array.length fresh then
        [ D.error "N010"
            "level cache has %d entries for %d nodes (stale after mutation)"
            (Array.length cache) (Array.length fresh) ]
      else begin
        let bad = ref [] in
        Array.iteri
          (fun id l ->
            if l <> fresh.(id) && List.length !bad < 5 then
              bad :=
                D.error ~loc:(D.Node id) "N010"
                  "cached level %d but recomputed %d (stale level cache)" l
                  fresh.(id)
                :: !bad)
          cache;
        List.rev !bad
      end

let mffc_containment ~max_roots net =
  let gates = ref [] in
  N.iter_gates net (fun id -> gates := id :: !gates);
  let gates = Array.of_list (List.rev !gates) in
  let ng = Array.length gates in
  let stride = if ng <= max_roots then 1 else (ng + max_roots - 1) / max_roots in
  let is_po = Array.make (N.num_nodes net) false in
  Array.iter (fun po -> is_po.(po) <- true) (N.pos net);
  let diags = ref [] in
  let i = ref 0 in
  while !i < ng && List.length !diags < 10 do
    let root = gates.(!i) in
    let members = Mffc.compute net root in
    let member_set = Hashtbl.create 16 in
    List.iter (fun m -> Hashtbl.add member_set m ()) members;
    List.iter
      (fun m ->
        if m <> root then begin
          (* Interior MFFC nodes feed only the cone: an outside fanout or a
             PO tap means the node is shared, so it cannot be in the MFFC. *)
          if is_po.(m) then
            diags :=
              D.error ~loc:(D.Node m) "N011"
                "MFFC of node %d contains primary output %d" root m
              :: !diags;
          List.iter
            (fun fo ->
              if not (Hashtbl.mem member_set fo) then
                diags :=
                  D.error ~loc:(D.Node m) "N011"
                    "MFFC of node %d leaks: member %d has fanout %d outside \
                     the cone"
                    root m fo
                  :: !diags)
            (N.fanouts net m)
        end)
      members;
    i := !i + stride
  done;
  List.rev !diags

let run ?(max_mffc_roots = 512) net =
  let structural_diags = structural net in
  let cycle_diags = find_cycles net in
  let base =
    structural_diags @ cycle_diags @ names net @ functional net
    @ reachability net
  in
  let has_structural_error =
    List.exists (fun d -> d.D.severity = D.Error) (structural_diags @ cycle_diags)
  in
  (* Level recomputation and MFFC traversal assume a well-formed DAG; on a
     corrupted one they would loop or crash rather than diagnose. *)
  if has_structural_error then base
  else base @ stale_levels net @ mffc_containment ~max_roots:max_mffc_roots net
