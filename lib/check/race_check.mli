(** Offline happens-before race detection over a [Shared] trace.

    FastTrack-style vector-clock analysis: the trace's global sequence
    numbers give a replay order consistent with per-object
    synchronization order, so one forward pass maintains a vector clock
    per domain, per mutex, per atomic and per spawn token, and checks
    every plain {!Simgen_base.Shared.Cell} access against the last
    accesses of every other domain. Locksets are tracked alongside the
    clocks — not to decide whether a pair races (happens-before decides
    that) but to classify a confirmed race: no lock on either side, one
    side guarded ("inconsistent discipline", the guard is named), or a
    common lock held on both sides (theoretically impossible under
    correct modeling, reported as a warning — "likely unmodeled
    ordering", the lockset fallback for noisy sites).

    Diagnostic codes (table in DESIGN.md §14):
    - [T001] error — write/write race on a cell, no lock on either side
    - [T002] error — read/write race on a cell, no lock on either side
    - [T003] error — data race with inconsistent lock discipline (one
      side held a lock the other did not); warning when both sides
      shared a lock (lockset fallback)
    - [T004] error — mutex released by a domain that does not hold it
      (releases of a mutex never seen acquired are ignored: pre-arm
      balance)
    - [T005] error — mutex re-acquired by its current holder
      (self-deadlock on a non-recursive lock)
    - [T006] warning — mutex still held at end of trace
    - [T007] warning — spawn/join protocol violation (Begin without
      Spawn, Join without End)
    - [T008] info — analysis notes: events on unknown objects skipped,
      per-cell reports capped
    - [P001] warning — corrupt trace line (only from {!file}) *)

val analyze : Simgen_base.Shared.trace -> Diagnostic.t list
(** Diagnostics in {!Diagnostic.sort} order. Empty means race-clean. *)

val file : string -> (Diagnostic.t list, string) result
(** Parse a trace file and analyze it. Corrupt lines become located
    [P001] warnings merged with the analysis result; [Error] only for an
    unreadable file or a bad header. *)

val exit_code : Diagnostic.t list -> int
(** Race-check shell convention: 0 = clean (or info-only), 1 = any
    warning or error finding. (Usage errors exit 2 at the CLI layer.) *)
