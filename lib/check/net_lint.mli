(** Static lints over Boolean networks (codes [N001]..[N013]).

    Structural errors (cycles, bad fanin references, arity mismatches,
    dangling POs) make a network unusable by the simulator and encoder;
    warnings and infos flag suspicious-but-legal shapes (duplicate names,
    foldable gates, unreachable logic). The full code table lives in
    DESIGN.md. Lints that need a sound topological order (stale level
    cache, MFFC containment) are skipped when structural errors are
    present — a cyclic network has no levels to validate. *)

val run : ?max_mffc_roots:int -> Simgen_network.Network.t -> Diagnostic.t list
(** [max_mffc_roots] caps the MFFC containment audit (default 512 sampled
    gate roots) to keep the lint linear-ish on big networks. *)
