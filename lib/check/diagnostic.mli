(** Structured diagnostics for the static-analysis and audit layer.

    Every finding the [simgen_check] analyzers produce is a {!t}: a stable
    code (the contract with tests, CI greps and the docs table in
    DESIGN.md), a severity, a location and a human message. Renderers
    cover the two consumers: a colour-free single-line form for terminals
    and a JSONL form for machine pipelines (one object per line, same
    shape as the runner's telemetry events). *)

type severity = Error | Warning | Info

type location =
  | Node of int  (** node id in a network or AIG *)
  | Clause of int  (** 0-based clause index in a CNF *)
  | Named of string  (** symbolic name (PO, signal) *)
  | Src of Simgen_base.Srcloc.t  (** file/line of a parsed source *)
  | Nowhere

type t = {
  code : string;  (** stable, e.g. ["N001"]; see DESIGN.md for the table *)
  severity : severity;
  loc : location;
  message : string;
}

val error : ?loc:location -> string -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [error ~loc code fmt ...] — and likewise {!warn} and {!info}. *)

val warn : ?loc:location -> string -> ('a, Format.formatter, unit, t) format4 -> 'a
val info : ?loc:location -> string -> ('a, Format.formatter, unit, t) format4 -> 'a

val severity_rank : severity -> int
(** [Info] = 0, [Warning] = 1, [Error] = 2. *)

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val max_severity : t list -> severity option
(** [None] on an empty list. *)

val counts : t list -> int * int * int
(** (errors, warnings, infos). *)

val exit_code : t list -> int
(** Shell convention for the [lint] subcommand: 0 = clean or info only,
    1 = warnings, 2 = errors. *)

val sort : t list -> t list
(** Stable order for output: severity (errors first), then code, then
    original order. *)

val to_string : t -> string
(** One line: [code severity location: message]. *)

val pp : Format.formatter -> t -> unit

val schema_version : int
(** Version of the JSONL shape emitted by {!to_json}; bumped on any
    field change so telemetry consumers can detect format drift. A
    golden-file test pins the rendered form. *)

val to_json : t -> string
(** One JSON object (no trailing newline):
    [{"schema_version":...,"code":...,"severity":...,"loc":{...},"message":...}]. *)

val render : ?json:bool -> Format.formatter -> t list -> unit
(** All diagnostics in {!sort} order, one per line. *)
