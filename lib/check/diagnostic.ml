module Srcloc = Simgen_base.Srcloc

type severity = Error | Warning | Info

type location =
  | Node of int
  | Clause of int
  | Named of string
  | Src of Srcloc.t
  | Nowhere

type t = {
  code : string;
  severity : severity;
  loc : location;
  message : string;
}

let make severity ?(loc = Nowhere) code fmt =
  Format.kasprintf (fun message -> { code; severity; loc; message }) fmt

let error ?loc code fmt = make Error ?loc code fmt
let warn ?loc code fmt = make Warning ?loc code fmt
let info ?loc code fmt = make Info ?loc code fmt

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let max_severity = function
  | [] -> None
  | ds ->
      Some
        (List.fold_left
           (fun acc d ->
             if severity_rank d.severity > severity_rank acc then d.severity
             else acc)
           Info ds)

let counts ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let exit_code ds =
  match max_severity ds with
  | Some Error -> 2
  | Some Warning -> 1
  | Some Info | None -> 0

let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_rank b.severity) (severity_rank a.severity) in
      if c <> 0 then c else compare a.code b.code)
    ds

let loc_to_string = function
  | Node id -> Printf.sprintf "node %d" id
  | Clause i -> Printf.sprintf "clause %d" i
  | Named n -> n
  | Src l -> Option.value ~default:"" (Srcloc.to_string l)
  | Nowhere -> ""

let to_string d =
  let loc = loc_to_string d.loc in
  if loc = "" then
    Printf.sprintf "%s %s: %s" d.code (severity_name d.severity) d.message
  else
    Printf.sprintf "%s %s %s: %s" d.code (severity_name d.severity) loc
      d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)

(* Minimal JSON string escaping: the messages are ASCII printf output, but
   node names from parsed files can contain anything. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let loc_to_json = function
  | Node id -> Printf.sprintf {|{"node":%d}|} id
  | Clause i -> Printf.sprintf {|{"clause":%d}|} i
  | Named n -> Printf.sprintf {|{"name":"%s"}|} (json_escape n)
  | Src l -> (
      match (l.Srcloc.file, l.Srcloc.line) with
      | Some f, Some n ->
          Printf.sprintf {|{"file":"%s","line":%d}|} (json_escape f) n
      | Some f, None -> Printf.sprintf {|{"file":"%s"}|} (json_escape f)
      | None, Some n -> Printf.sprintf {|{"line":%d}|} n
      | None, None -> "{}")
  | Nowhere -> "{}"

(* Bumped whenever the JSONL shape changes; downstream telemetry
   consumers key on it. Guarded by the golden-file test in
   test/test_check.ml — update both together. *)
let schema_version = 1

let to_json d =
  Printf.sprintf
    {|{"schema_version":%d,"code":"%s","severity":"%s","loc":%s,"message":"%s"}|}
    schema_version (json_escape d.code) (severity_name d.severity)
    (loc_to_json d.loc) (json_escape d.message)

let render ?(json = false) fmt ds =
  List.iter
    (fun d ->
      if json then Format.fprintf fmt "%s@." (to_json d)
      else Format.fprintf fmt "%a@." pp d)
    (sort ds)
