(** Runtime invariant audits (codes [R001]..[R003]).

    Unlike the static lints, these run inside the sweeping pipeline —
    gated behind {!Simgen_base.Runtime_check.enabled} (the [SIMGEN_CHECK]
    environment variable or an explicit [?check] argument) — and raise
    {!Simgen_base.Runtime_check.Violation} instead of returning
    diagnostics: a violated invariant means in-memory state is corrupt and
    continuing would produce wrong equivalence verdicts, not just noisy
    output. Further audit codes live next to the state they check
    ([R004]..[R006] in [Simgen_sweep.Sat_session] and
    [Simgen_core.Assignment]). *)

val eq_partition :
  Simgen_sim.Eq_classes.t -> Simgen_network.Network.t -> unit
(** [R001]: classes sorted, size >= 2, pairwise disjoint, gates only, and
    the [class_of] index agrees with the class list. No-op when checking
    is disabled. *)

val substitution : ?nodes:int -> int array -> unit
(** [R002]/[R003]: a sweeping substitution must be monotone —
    [subst.(n) <= n] for all [n], with in-range targets — which also rules
    out cycles. [nodes] defaults to the array length. No-op when checking
    is disabled. *)

val check_exn : what:string -> Diagnostic.t list -> unit
(** Raise {!Simgen_base.Runtime_check.Violation} when the list contains an
    error-severity diagnostic (regardless of the enabled flag — callers
    decide whether to run the lint at all). *)
