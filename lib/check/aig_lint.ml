module Aig = Simgen_aig.Aig
module D = Diagnostic

let run aig =
  let n = Aig.num_nodes aig in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let in_range l = l >= 0 && Aig.node_of_lit l < n in
  (* (fanin0, fanin1) -> first node id, for duplicate detection. The AIG's
     own strash table is bypassed by Unsafe/importers, so rebuild one. *)
  let seen = Hashtbl.create (2 * n) in
  Aig.iter_ands aig (fun id ->
      let a = Aig.fanin0 aig id and b = Aig.fanin1 aig id in
      let structural_ok = ref true in
      List.iter
        (fun l ->
          if not (in_range l) then begin
            structural_ok := false;
            add
              (D.error ~loc:(D.Node id) "A004" "fanin literal %d out of range"
                 l)
          end
          else if Aig.node_of_lit l >= id then begin
            structural_ok := false;
            add
              (D.error ~loc:(D.Node id) "A004"
                 "fanin literal %d references node %d, not below the node" l
                 (Aig.node_of_lit l))
          end)
        [ a; b ];
      if !structural_ok then begin
        if a > b then
          add
            (D.warn ~loc:(D.Node id) "A001"
               "operands out of canonical order (%d > %d)" a b);
        if a = Aig.false_ || a = Aig.true_ || b = Aig.false_ || b = Aig.true_
        then
          add
            (D.info ~loc:(D.Node id) "A003"
               "AND with a constant operand (foldable)")
        else if a = b then
          add (D.info ~loc:(D.Node id) "A003" "AND of a literal with itself")
        else if a = Aig.not_ b then
          add
            (D.info ~loc:(D.Node id) "A003"
               "AND of a literal with its complement (constant false)");
        let key = if a <= b then (a, b) else (b, a) in
        match Hashtbl.find_opt seen key with
        | Some first ->
            add
              (D.warn ~loc:(D.Node id) "A002"
                 "structurally identical to node %d (strashing violation)"
                 first)
        | None -> Hashtbl.add seen key id
      end);
  Array.iteri
    (fun i l ->
      if not (in_range l) then
        add
          (D.error ~loc:(D.Named (Printf.sprintf "po %d" i)) "A006"
             "primary output literal %d out of range" l))
    (Aig.pos aig);
  (* Unreachable ANDs: dead weight the generators never produce; cleanup
     removes them. *)
  let reach = Array.make n false in
  let stack = ref [] in
  Array.iter
    (fun l -> if in_range l then stack := Aig.node_of_lit l :: !stack)
    (Aig.pos aig);
  let rec mark () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if (not reach.(id)) && Aig.is_and aig id then begin
          reach.(id) <- true;
          let push l = if in_range l then stack := Aig.node_of_lit l :: !stack in
          push (Aig.fanin0 aig id);
          push (Aig.fanin1 aig id)
        end;
        mark ()
  in
  mark ();
  Aig.iter_ands aig (fun id ->
      if not reach.(id) then
        add
          (D.info ~loc:(D.Node id) "A005"
             "AND unreachable from any primary output"));
  List.rev !diags
