(** Whole-sweep certificates and their independent checker.

    A certified sweep records, next to the merged network, everything an
    auditor needs to re-establish each merge without trusting the sweeper
    or its solver: the CNF problem clauses streamed into the per-sweep
    SAT session, the DRUP proof events of every pair query, and the merge
    log [(repr, node, proof_ref)]. {!check} replays the whole object —
    it re-derives every learned clause by reverse unit propagation with a
    propagation engine that shares no code with the solver, reconstructs
    the activation-literal guard clauses itself (verifying the activation
    variable is fresh, which is what makes retiring a query by a negated
    unit and tying proven-equal variables sound), re-proves each query's
    [not act] obligation, trims unused lemmas per query, and finally
    confirms the substitution the merge log builds is monotone (each
    representative strictly below the node it absorbs), acyclic, and that
    every merge cites a query that proved exactly that pair equal.

    Trust boundary: the checker validates the propositional layer and
    the merge log; the binding between network nodes and CNF variables
    (that [clauses] really encode the cones of [a] and [b]) is taken
    from the recorder, exactly as {!Simgen_sat.Drup.check} trusts its
    [formula] argument. See DESIGN.md §11. *)

type query =
  | Session of {
      a : int;  (** first node of the queried pair (resolved) *)
      b : int;  (** second node of the queried pair (resolved) *)
      act : int;  (** activation variable guarding the XOR miter *)
      va : int;  (** CNF variable of [a]'s cone output *)
      vb : int;  (** CNF variable of [b]'s cone output *)
      equal : bool;  (** solver answered Equal: obligation [not act] *)
      clauses : Simgen_sat.Literal.t list list;
          (** problem clauses added to the session since the previous
              query (cone encodings), oldest first. Guard clauses, the
              retirement unit and the tie clauses are {e excluded}: the
              checker reconstructs them from [act]/[va]/[vb]. *)
      events : Simgen_sat.Solver.proof_event list;
          (** DRUP events of this query's solve, oldest first *)
    }
  | Fresh of {
      a : int;
      b : int;
      clauses : Simgen_sat.Literal.t list list;
          (** complete standalone formula, own variable space *)
      events : Simgen_sat.Solver.proof_event list;
          (** proof; the obligation is the empty clause *)
    }
  | Rebuild
      (** the session was torn down and rebuilt (fault recovery): variable
          numbering restarts, so the checker resets its clause database *)

type merge = {
  repr : int;  (** surviving representative (the smaller id) *)
  node : int;  (** node redirected onto [repr] *)
  proof : int;  (** index into the query array, [-1] = unproven *)
}

type t = {
  num_nodes : int;
  queries : query array;  (** in session order *)
  merges : merge list;  (** in the order the sweep performed them *)
}

type report = {
  valid : bool;
  queries : int;  (** query records examined (including rebuilds) *)
  proved : int;  (** queries whose equal-obligation checked out *)
  merges : int;
  steps : int;  (** proof events examined *)
  steps_checked : int;  (** RUP derivations actually re-run *)
  steps_trimmed : int;  (** lemmas skipped as deleted-and-unused *)
  diags : Diagnostic.t list;
      (** X-codes plus proof-lint D-codes over every proof slice;
          [valid] iff none has error severity *)
}

val check : t -> report
(** Replay and validate the whole certificate. Never raises; all
    failures surface as error-severity X-code diagnostics:
    X001 learned clause fails reverse unit propagation,
    X002 a query's proof obligation is not derivable,
    X003 activation variable not fresh (or clashes with [va]/[vb]),
    X004 merge cites no valid proof of exactly that pair,
    X005 merge not monotone ([repr >= node]),
    X006 substitution cycle after replaying the merge log,
    X007 node merged twice,
    X008 malformed certificate (ids out of range). *)

val to_jsonl : t -> report option -> string
(** Render the certificate (and optionally its check report) as JSONL:
    one [meta] line, one line per query (literals in DIMACS convention),
    one line per merge, and a trailing [report] line when given. *)
