(** PLA-style two-level circuits: random sum-of-products with shared
    product terms — the MCNC benchmark topologies (apex*, ex1010, pdc,
    spla, table*, misex*, k2, seq, cps, e64, des, i10 stand-ins).

    Shared products across outputs create natural internal equivalence
    candidates, which is what sweeping feeds on. *)

type spec = {
  inputs : int;
  outputs : int;
  products : int;  (** size of the shared product-term pool *)
  literals : int;  (** average literals per product *)
  terms_per_output : int;  (** products OR-ed into each output *)
}

val generate : Simgen_base.Rng.t -> spec -> Simgen_aig.Aig.t
