(** Arithmetic circuit generators (AIG builders).

    Word operands are literal arrays, least-significant bit first. These
    provide the arithmetic-dominated benchmark topologies (alu4, dalu,
    square, sin, log2, cordic, ...) of the synthetic suite. *)

type lit = Simgen_aig.Aig.lit
type aig = Simgen_aig.Aig.t

val ripple_adder : aig -> lit array -> lit array -> cin:lit -> lit array * lit
(** Sum bits and carry out; operands must have equal width. *)

val carry_lookahead_adder :
  aig -> lit array -> lit array -> cin:lit -> lit array * lit
(** Same function as {!ripple_adder}, different (flatter) structure —
    useful to create equivalent-but-distinct adder pairs. *)

val subtractor : aig -> lit array -> lit array -> lit array * lit
(** [a - b]; second component is the borrow-free flag (carry out). *)

val multiplier : aig -> lit array -> lit array -> lit array
(** Array multiplier; result width is the sum of operand widths. *)

val square : aig -> lit array -> lit array
(** [multiplier a a] — the EPFL "square" workload shape. *)

val alu : aig -> op:lit array -> lit array -> lit array -> lit array
(** A small ALU: 2 op-select bits choose among add, subtract, AND, XOR. *)

val shift_add_cascade : aig -> rounds:int -> lit array -> lit array
(** CORDIC-style cascade: each round conditionally adds an
    arithmetically-shifted copy of the running value, steered by the
    round's control bit (taken from the value's low bits). Models the
    sin/cordic benchmark topology. *)

val log_approx : aig -> lit array -> lit array
(** Priority-encoder + table-interpolation structure approximating a
    base-2 logarithm's topology (leading-one detection feeding an adder). *)
