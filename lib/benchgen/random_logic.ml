module Aig = Simgen_aig.Aig
module Rng = Simgen_base.Rng

type spec = {
  inputs : int;
  outputs : int;
  layers : int;
  layer_width : int;
  locality : int;
}

let generate rng spec =
  let g = Aig.create ~name:"random_logic" () in
  let pis = Array.init spec.inputs (fun _ -> Aig.add_pi g) in
  let layers = ref [ pis ] in
  let operand () =
    let depth = min (List.length !layers) (max 1 spec.locality) in
    let layer = List.nth !layers (Rng.int rng depth) in
    let l = Rng.choose rng layer in
    if Rng.bool rng then Aig.not_ l else l
  in
  for _ = 1 to spec.layers do
    let layer =
      Array.init spec.layer_width (fun _ ->
          match Rng.int rng 5 with
          | 0 -> Aig.and_ g (operand ()) (operand ())
          | 1 -> Aig.or_ g (operand ()) (operand ())
          | 2 -> Aig.xor g (operand ()) (operand ())
          | 3 -> Aig.mux g (operand ()) (operand ()) (operand ())
          | _ ->
              (* AOI-style: a & b | c — common in control logic. *)
              Aig.or_ g (Aig.and_ g (operand ()) (operand ())) (operand ()))
    in
    layers := layer :: !layers
  done;
  for _ = 1 to spec.outputs do
    Aig.add_po g (operand ())
  done;
  g
