(** Redundancy injection: make generated circuits carry the two kinds of
    candidate equivalences SAT sweeping meets in practice.

    - {b True equivalences}: a PO cone rebuilt with different association
      is functionally identical to the original; after LUT mapping the two
      copies are distinct LUT structures the solver must prove equal
      (UNSAT, merge).
    - {b Near-miss pairs}: a copy XOR-ed with a {e rare cube} (the AND of
      [rare_bits] input literals) agrees with the original on all but a
      [2^-rare_bits] fraction of the input space. Random simulation almost
      never separates such a pair — the paper's motivating scenario — while
      guided pattern generation can activate the cube deliberately, and
      otherwise the SAT solver must disprove it (SAT, counter-example).

    Both copies stay alive behind a selector input, so the mapped network
    retains them as separate LUTs. *)

val duplicate_variants :
  Simgen_base.Rng.t -> Simgen_aig.Aig.t -> Simgen_aig.Aig.t
(** Exact-duplicate variant of every PO cone (true equivalences only). *)

val inject :
  ?exact_fraction:float ->
  ?rare_bits:int ->
  ?internal_pairs:int ->
  Simgen_base.Rng.t ->
  Simgen_aig.Aig.t ->
  Simgen_aig.Aig.t
(** Full injection: every PO gets a re-associated duplicate; a
    [1 - exact_fraction] share of them (default 0.5) additionally gets a
    rare-cube XOR, turning the pair into a near-miss. Rare cubes draw
    their [rare_bits] (default 10) literals from PIs {e and internal
    signals}, so activating them takes multi-level justification. On top
    of the PO pairs, [internal_pairs] (default [max 10 (ands/6)]) sampled
    internal nodes get a near-miss partner behind fresh POs. One selector PI is added. *)
