module Aig = Simgen_aig.Aig
module Rng = Simgen_base.Rng

type spec = {
  inputs : int;
  outputs : int;
  products : int;
  literals : int;
  terms_per_output : int;
}

let generate rng spec =
  let g = Aig.create ~name:"pla" () in
  let pis = Array.init spec.inputs (fun _ -> Aig.add_pi g) in
  let product () =
    let nlits = max 1 (spec.literals - 1 + Rng.int rng 3) in
    let chosen = Array.copy pis in
    Rng.shuffle rng chosen;
    let lits =
      List.init (min nlits spec.inputs) (fun i ->
          if Rng.bool rng then chosen.(i) else Aig.not_ chosen.(i))
    in
    Aig.and_list g lits
  in
  let pool = Array.init spec.products (fun _ -> product ()) in
  for _ = 1 to spec.outputs do
    let terms =
      List.init spec.terms_per_output (fun _ -> Rng.choose rng pool)
    in
    Aig.add_po g (Aig.or_list g terms)
  done;
  g
