module Aig = Simgen_aig.Aig
module Rng = Simgen_base.Rng

type lit = Aig.lit
type aig = Aig.t

let decoder g sel =
  let n = Array.length sel in
  Array.init (1 lsl n) (fun code ->
      let lits =
        List.init n (fun b ->
            if (code lsr b) land 1 = 1 then sel.(b) else Aig.not_ sel.(b))
      in
      Aig.and_list g lits)

let priority_encoder g inputs =
  let n = Array.length inputs in
  (* win.(i): input i asserted and no lower-indexed input asserted. *)
  let blocked = ref Aig.false_ in
  let win =
    Array.map
      (fun x ->
        let w = Aig.and_ g x (Aig.not_ !blocked) in
        blocked := Aig.or_ g !blocked x;
        w)
      inputs
  in
  let bits =
    max 1 (int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.0)))
  in
  let index =
    Array.init bits (fun b ->
        let terms = ref [] in
        Array.iteri
          (fun i w -> if (i lsr b) land 1 = 1 then terms := w :: !terms)
          win;
        Aig.or_list g !terms)
  in
  (index, !blocked)

let majority g inputs =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "majority";
  (* Population count by summing bits through ripple adders. *)
  let width =
    1 + int_of_float (ceil (log (float_of_int (n + 1)) /. log 2.0))
  in
  let zero = Array.make width Aig.false_ in
  let count =
    Array.fold_left
      (fun acc x ->
        let operand = Array.make width Aig.false_ in
        operand.(0) <- x;
        fst (Arith.ripple_adder g acc operand ~cin:Aig.false_))
      zero inputs
  in
  (* count > n/2  <=>  count >= n/2 + 1: compare against a constant. *)
  let threshold = (n / 2) + 1 in
  (* greater-or-equal comparison with constant, MSB first. *)
  let rec ge i =
    if i < 0 then Aig.true_
    else
      let t = (threshold lsr i) land 1 = 1 in
      if t then Aig.and_ g count.(i) (ge (i - 1))
      else Aig.or_ g count.(i) (ge (i - 1))
  in
  ge (width - 1)

let round_robin_arbiter g ~req ~pointer =
  let n = Array.length req in
  let ptr_onehot = decoder g pointer in
  if Array.length ptr_onehot < n then
    invalid_arg "round_robin_arbiter: pointer too narrow";
  (* Grant the first request at or after the pointer, wrapping around. *)
  Array.init n (fun i ->
      let terms = ref [] in
      for s = 0 to n - 1 do
        (* pointer = s and i is the first asserted request in s, s+1, ... *)
        let rec no_earlier k =
          if k = (i - s + n) mod n then Aig.true_
          else
            Aig.and_ g
              (Aig.not_ req.((s + k) mod n))
              (no_earlier (k + 1))
        in
        terms := Aig.and_list g [ ptr_onehot.(s); req.(i); no_earlier 0 ] :: !terms
      done;
      Aig.or_list g !terms)

let control_mix g rng ~inputs ~outputs =
  let pool = ref (Array.to_list inputs) in
  let pool_arr () = Array.of_list !pool in
  let pick () = Rng.choose rng (pool_arr ()) in
  let add l = pool := l :: !pool in
  (* A few stages of mixed control structure. *)
  let stages = 3 + Rng.int rng 3 in
  for _ = 1 to stages do
    match Rng.int rng 4 with
    | 0 ->
        let sel = Array.init (2 + Rng.int rng 2) (fun _ -> pick ()) in
        Array.iter add (decoder g sel)
    | 1 ->
        let ins = Array.init (4 + Rng.int rng 6) (fun _ -> pick ()) in
        let index, valid = priority_encoder g ins in
        Array.iter add index;
        add valid
    | 2 ->
        let a = Array.init 4 (fun _ -> pick ()) in
        let b = Array.init 4 (fun _ -> pick ()) in
        let eq =
          Aig.and_list g
            (Array.to_list (Array.map2 (fun x y -> Aig.not_ (Aig.xor g x y)) a b))
        in
        add eq;
        let sums, carry = Arith.ripple_adder g a b ~cin:(pick ()) in
        Array.iter add sums;
        add carry
    | _ ->
        let sel = pick () in
        let w = 3 + Rng.int rng 4 in
        let a = Array.init w (fun _ -> pick ()) in
        let b = Array.init w (fun _ -> pick ()) in
        Array.iter add (Array.map2 (fun x y -> Aig.mux g sel x y) a b)
  done;
  let arr = pool_arr () in
  Array.init outputs (fun _ ->
      (* Combine random pool members so every output depends on the mix. *)
      let a = Rng.choose rng arr and b = Rng.choose rng arr in
      let c = Rng.choose rng arr in
      Aig.or_ g (Aig.and_ g a b) (Aig.and_ g (Aig.not_ a) c))
