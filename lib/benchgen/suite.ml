module Aig = Simgen_aig.Aig
module Rng = Simgen_base.Rng

type family = Mcnc_pla | Arithmetic | Epfl_control | Itc99

type entry = { name : string; family : family; stack_copies : int option }

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let pla_spec inputs outputs products literals terms_per_output =
  { Pla.inputs; outputs; products; literals; terms_per_output }

let build_pla name spec rng =
  let g = Pla.generate rng spec in
  let g = Redundancy.inject ~exact_fraction:0.25 rng g in
  let g = Aig.cleanup g in
  ignore name;
  g

let build_alu ~width rng =
  let g = Aig.create () in
  let op = Array.init 2 (fun _ -> Aig.add_pi g) in
  let a = Array.init width (fun _ -> Aig.add_pi g) in
  let b = Array.init width (fun _ -> Aig.add_pi g) in
  let out = Arith.alu g ~op a b in
  Array.iter (fun l -> Aig.add_po g l) out;
  Redundancy.inject ~exact_fraction:0.25 rng g |> Aig.cleanup

let build_square ~width rng =
  let g = Aig.create () in
  let a = Array.init width (fun _ -> Aig.add_pi g) in
  Array.iter (fun l -> Aig.add_po g l) (Arith.square g a);
  Redundancy.inject ~exact_fraction:0.25 rng g |> Aig.cleanup

let build_cascade ~width ~rounds rng =
  let g = Aig.create () in
  let a = Array.init width (fun _ -> Aig.add_pi g) in
  Array.iter (fun l -> Aig.add_po g l) (Arith.shift_add_cascade g ~rounds a);
  Redundancy.inject ~exact_fraction:0.25 rng g |> Aig.cleanup

let build_log ~width rng =
  let g = Aig.create () in
  let a = Array.init width (fun _ -> Aig.add_pi g) in
  Array.iter (fun l -> Aig.add_po g l) (Arith.log_approx g a);
  (* Widen with a second stage so the circuit is not trivially shallow. *)
  Redundancy.inject ~exact_fraction:0.25 rng g |> Aig.cleanup

let build_voter ~voters rng =
  let g = Aig.create () in
  let xs = Array.init voters (fun _ -> Aig.add_pi g) in
  Aig.add_po g (Control.majority g xs);
  (* A few sub-majorities keep more than one PO alive. *)
  let third = voters / 3 in
  Aig.add_po g (Control.majority g (Array.sub xs 0 (2 * third)));
  Aig.add_po g (Control.majority g (Array.sub xs third (2 * third)));
  Redundancy.inject ~exact_fraction:0.25 rng g |> Aig.cleanup

let build_decoder ~bits rng =
  let g = Aig.create () in
  let sel = Array.init bits (fun _ -> Aig.add_pi g) in
  let en = Aig.add_pi g in
  Array.iter
    (fun l -> Aig.add_po g (Aig.and_ g en l))
    (Control.decoder g sel);
  Redundancy.inject ~exact_fraction:0.25 rng g |> Aig.cleanup

let build_priority ~width rng =
  let g = Aig.create () in
  let xs = Array.init width (fun _ -> Aig.add_pi g) in
  let index, valid = Control.priority_encoder g xs in
  Array.iter (fun l -> Aig.add_po g l) index;
  Aig.add_po g valid;
  Redundancy.inject ~exact_fraction:0.25 rng g |> Aig.cleanup

let build_arbiter ~requests ~ptr_bits rng =
  let g = Aig.create () in
  let req = Array.init requests (fun _ -> Aig.add_pi g) in
  let pointer = Array.init ptr_bits (fun _ -> Aig.add_pi g) in
  Array.iter
    (fun l -> Aig.add_po g l)
    (Control.round_robin_arbiter g ~req ~pointer);
  Redundancy.inject ~exact_fraction:0.25 rng g |> Aig.cleanup

let build_control_mix ~inputs ~outputs rng =
  let g = Aig.create () in
  let xs = Array.init inputs (fun _ -> Aig.add_pi g) in
  Array.iter
    (fun l -> Aig.add_po g l)
    (Control.control_mix g rng ~inputs:xs ~outputs);
  Redundancy.inject ~exact_fraction:0.25 rng g |> Aig.cleanup

let build_itc ~inputs ~outputs ~layers ~layer_width rng =
  let spec =
    { Random_logic.inputs; outputs; layers; layer_width; locality = 3 }
  in
  let g = Random_logic.generate rng spec in
  Redundancy.inject ~exact_fraction:0.25 rng g |> Aig.cleanup

(* ------------------------------------------------------------------ *)
(* The 42 entries (Table 2 order)                                      *)
(* ------------------------------------------------------------------ *)

let builders : (string * family * int option * (Rng.t -> Aig.t)) list =
  [
    ("alu4", Arithmetic, Some 15, build_alu ~width:16);
    ("apex1", Mcnc_pla, None, fun rng -> build_pla "apex1" (pla_spec 14 16 60 4 6) rng);
    ("apex2", Mcnc_pla, None, fun rng -> build_pla "apex2" (pla_spec 16 12 80 5 8) rng);
    ("apex3", Mcnc_pla, None, fun rng -> build_pla "apex3" (pla_spec 14 18 70 4 6) rng);
    ("apex4", Mcnc_pla, None, fun rng -> build_pla "apex4" (pla_spec 12 24 140 4 10) rng);
    ("apex5", Mcnc_pla, None, fun rng -> build_pla "apex5" (pla_spec 12 10 40 4 5) rng);
    ("cordic", Arithmetic, None, build_cascade ~width:8 ~rounds:4);
    ("cps", Mcnc_pla, None, fun rng -> build_pla "cps" (pla_spec 14 14 55 4 6) rng);
    ("dalu", Arithmetic, None, build_alu ~width:10);
    ("des", Mcnc_pla, None, fun rng -> build_pla "des" (pla_spec 18 20 70 5 5) rng);
    ("e64", Mcnc_pla, None, fun rng -> build_pla "e64" (pla_spec 16 10 40 5 5) rng);
    ("ex1010", Mcnc_pla, None, fun rng -> build_pla "ex1010" (pla_spec 10 28 200 4 14) rng);
    ("ex5p", Mcnc_pla, None, fun rng -> build_pla "ex5p" (pla_spec 8 20 70 3 8) rng);
    ("i10", Mcnc_pla, None, fun rng -> build_pla "i10" (pla_spec 16 14 60 4 6) rng);
    ("k2", Mcnc_pla, None, fun rng -> build_pla "k2" (pla_spec 14 12 45 4 5) rng);
    ("misex3", Mcnc_pla, None, fun rng -> build_pla "misex3" (pla_spec 14 14 75 4 7) rng);
    ("misex3c", Mcnc_pla, None, fun rng -> build_pla "misex3c" (pla_spec 14 14 40 4 4) rng);
    ("pdc", Mcnc_pla, None, fun rng -> build_pla "pdc" (pla_spec 16 24 180 4 12) rng);
    ("seq", Mcnc_pla, None, fun rng -> build_pla "seq" (pla_spec 16 16 90 4 8) rng);
    ("spla", Mcnc_pla, None, fun rng -> build_pla "spla" (pla_spec 16 23 160 4 11) rng);
    ("table3", Mcnc_pla, None, fun rng -> build_pla "table3" (pla_spec 14 14 60 4 7) rng);
    ("table5", Mcnc_pla, None, fun rng -> build_pla "table5" (pla_spec 14 14 55 4 7) rng);
    ("sin", Arithmetic, None, build_cascade ~width:10 ~rounds:6);
    ("square", Arithmetic, Some 7, build_square ~width:8);
    ("arbiter", Epfl_control, Some 15, build_arbiter ~requests:8 ~ptr_bits:3);
    ("dec", Epfl_control, None, build_decoder ~bits:5);
    ("m_ctrl", Epfl_control, None, build_control_mix ~inputs:24 ~outputs:24);
    ("priority", Epfl_control, None, build_priority ~width:20);
    ("voter", Epfl_control, None, build_voter ~voters:15);
    ("log2", Arithmetic, None, build_log ~width:24);
    ("b14_C", Itc99, None, build_itc ~inputs:24 ~outputs:16 ~layers:7 ~layer_width:30);
    ("b14_C2", Itc99, None, build_itc ~inputs:24 ~outputs:16 ~layers:7 ~layer_width:32);
    ("b15_C", Itc99, None, build_itc ~inputs:30 ~outputs:20 ~layers:9 ~layer_width:48);
    ("b15_C2", Itc99, Some 8, build_itc ~inputs:30 ~outputs:20 ~layers:9 ~layer_width:50);
    ("b17_C", Itc99, Some 5, build_itc ~inputs:36 ~outputs:24 ~layers:11 ~layer_width:64);
    ("b17_C2", Itc99, Some 5, build_itc ~inputs:36 ~outputs:24 ~layers:11 ~layer_width:66);
    ("b20_C", Itc99, None, build_itc ~inputs:28 ~outputs:18 ~layers:8 ~layer_width:40);
    ("b20_C2", Itc99, Some 8, build_itc ~inputs:28 ~outputs:18 ~layers:8 ~layer_width:42);
    ("b21_C", Itc99, None, build_itc ~inputs:28 ~outputs:18 ~layers:8 ~layer_width:44);
    ("b21_C2", Itc99, Some 8, build_itc ~inputs:28 ~outputs:18 ~layers:8 ~layer_width:46);
    ("b22_C", Itc99, Some 6, build_itc ~inputs:32 ~outputs:20 ~layers:9 ~layer_width:52);
    ("b22_C2", Itc99, None, build_itc ~inputs:32 ~outputs:20 ~layers:9 ~layer_width:54);
  ]

let entries =
  List.map
    (fun (name, family, stack_copies, _) -> { name; family; stack_copies })
    builders

let names = List.map (fun e -> e.name) entries

let find name = List.find_opt (fun e -> e.name = name) entries

let aig name =
  match List.find_opt (fun (n, _, _, _) -> n = name) builders with
  | None -> raise Not_found
  | Some (_, _, _, build) ->
      let rng = Rng.of_string name in
      let g = build rng in
      (* Rename for traceability. *)
      let g' = Aig.cleanup g in
      ignore g';
      g

let lut_network ?(k = 6) name =
  let net = Simgen_mapping.Lut_mapper.map ~k (aig name) in
  Simgen_network.Network.set_name net name;
  net

let stacked_lut_network ?(k = 6) name =
  let copies =
    match find name with
    | Some { stack_copies = Some c; _ } -> c
    | Some _ | None -> 2
  in
  let net = lut_network ?k:(Some k) name in
  let stacked = Simgen_network.Stack_networks.stack net copies in
  stacked
