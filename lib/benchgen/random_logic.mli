(** Layered random logic: the ITC'99 b14–b22 combinational-core stand-ins.

    Builds a DAG of random AND/OR/XOR/MUX structure in layers; each layer
    draws operands from the previous few layers, giving the wide,
    moderately deep, control-heavy shape of the unrolled ITC circuits. *)

type spec = {
  inputs : int;
  outputs : int;
  layers : int;
  layer_width : int;
  locality : int;  (** how many previous layers operands come from *)
}

val generate : Simgen_base.Rng.t -> spec -> Simgen_aig.Aig.t
