module Aig = Simgen_aig.Aig
module Rewrite = Simgen_aig.Rewrite
module Rng = Simgen_base.Rng

(* Instantiate [src] inside [dst], driving its PIs from [pi_lits]; returns
   the PO literals and the node map (dst literal of every src node). *)
let instantiate dst src pi_lits =
  let map = Array.make (Aig.num_nodes src) Aig.false_ in
  Array.iter (fun id -> map.(id) <- pi_lits.(Aig.pi_index src id)) (Aig.pis src);
  let map_lit l =
    let m = map.(Aig.node_of_lit l) in
    if Aig.is_complemented l then Aig.not_ m else m
  in
  Aig.iter_ands src (fun id ->
      map.(id) <- Aig.and_ dst (map_lit (Aig.fanin0 src id)) (map_lit (Aig.fanin1 src id)));
  (Array.map map_lit (Aig.pos src), map)

(* A conjunction that is rarely true under uniform random inputs: [bits]
   PI literals pin the probability at <= 2^-bits, and a few internal
   signals are conjoined on top so that activating the cube needs the
   multi-level justification reasoning SimGen borrows from ATPG. *)
let rare_cube dst rng ~pis ~internal bits =
  let pi_part =
    let chosen = Array.copy pis in
    Rng.shuffle rng chosen;
    List.init
      (min bits (Array.length chosen))
      (fun i -> if Rng.bool rng then chosen.(i) else Aig.not_ chosen.(i))
  in
  let internal_part =
    let chosen = Array.copy internal in
    Rng.shuffle rng chosen;
    List.init
      (min 3 (Array.length chosen))
      (fun i -> if Rng.bool rng then chosen.(i) else Aig.not_ chosen.(i))
  in
  Aig.and_list dst (pi_part @ internal_part)

let internal_signals rng map src ~count =
  let ands = ref [] in
  Aig.iter_ands src (fun id -> ands := map.(id) :: !ands);
  match !ands with
  | [] -> [||]
  | all ->
      let arr = Array.of_list all in
      Rng.shuffle rng arr;
      Array.sub arr 0 (min count (Array.length arr))

let build ~mutate ~extra rng aig =
  let variant = Rewrite.shuffle_rebuild rng aig in
  let dst = Aig.create ~name:(Aig.name aig ^ "_red") () in
  let pis = Array.init (Aig.num_pis aig) (fun _ -> Aig.add_pi dst) in
  let sel = Aig.add_pi dst in
  let pos1, map1 = instantiate dst aig pis in
  let pos2, map2 = instantiate dst variant pis in
  Array.iteri
    (fun i l1 ->
      let l2 = mutate dst pis map2 variant i pos2.(i) in
      Aig.add_po ?name:(Aig.po_name aig i) dst (Aig.mux dst sel l1 l2))
    pos1;
  extra dst pis map1 aig sel;
  dst

let duplicate_variants rng aig =
  build
    ~mutate:(fun _dst _pis _map _src _i l -> l)
    ~extra:(fun _dst _pis _map _src _sel -> ())
    rng aig

let inject ?(exact_fraction = 0.5) ?(rare_bits = 10) ?internal_pairs rng aig =
  let internal_pairs =
    match internal_pairs with
    | Some n -> n
    | None -> max 10 (Aig.num_ands aig / 6)
  in
  let mutate dst pis map2 variant _i l =
    if Rng.float rng 1.0 < exact_fraction then l
    else
      let internal = internal_signals rng map2 variant ~count:8 in
      Aig.xor dst l (rare_cube dst rng ~pis ~internal rare_bits)
  in
  (* Also plant near-miss pairs at internal points: for a sampled internal
     node n, both n and n XOR rare stay alive behind a fresh PO mux. The
     pair agrees on almost every random vector, so it survives random
     simulation as an equivalence-class member that only guided patterns
     (or a SAT counter-example) can separate. *)
  let extra dst pis map1 src sel =
    let picks = internal_signals rng map1 src ~count:internal_pairs in
    Array.iter
      (fun n ->
        let internal = internal_signals rng map1 src ~count:8 in
        let partner = Aig.xor dst n (rare_cube dst rng ~pis ~internal rare_bits) in
        Aig.add_po dst (Aig.mux dst sel n partner))
      picks
  in
  build ~mutate ~extra rng aig
