module Aig = Simgen_aig.Aig

type lit = Aig.lit
type aig = Aig.t

let full_adder g a b c =
  let axb = Aig.xor g a b in
  let sum = Aig.xor g axb c in
  let carry = Aig.or_ g (Aig.and_ g a b) (Aig.and_ g axb c) in
  (sum, carry)

let ripple_adder g a b ~cin =
  if Array.length a <> Array.length b then invalid_arg "ripple_adder";
  let n = Array.length a in
  let sums = Array.make n Aig.false_ in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let s, c = full_adder g a.(i) b.(i) !carry in
    sums.(i) <- s;
    carry := c
  done;
  (sums, !carry)

let carry_lookahead_adder g a b ~cin =
  if Array.length a <> Array.length b then invalid_arg "carry_lookahead_adder";
  let n = Array.length a in
  let p = Array.init n (fun i -> Aig.xor g a.(i) b.(i)) in
  let gen = Array.init n (fun i -> Aig.and_ g a.(i) b.(i)) in
  (* c.(i+1) = gen.(i) | p.(i) & c.(i), flattened per bit. *)
  let carries = Array.make (n + 1) cin in
  for i = 0 to n - 1 do
    (* Flattened expansion: c_{i+1} = g_i | p_i g_{i-1} | ... | p_i..p_0 cin *)
    let terms = ref [ gen.(i) ] in
    let prefix = ref p.(i) in
    for j = i - 1 downto 0 do
      terms := Aig.and_ g !prefix gen.(j) :: !terms;
      prefix := Aig.and_ g !prefix p.(j)
    done;
    terms := Aig.and_ g !prefix cin :: !terms;
    carries.(i + 1) <- Aig.or_list g !terms
  done;
  let sums = Array.init n (fun i -> Aig.xor g p.(i) carries.(i)) in
  (sums, carries.(n))

let subtractor g a b =
  let nb = Array.map (Aig.not_) b in
  ripple_adder g a nb ~cin:Aig.true_

let multiplier g a b =
  let na = Array.length a and nb = Array.length b in
  let width = na + nb in
  let acc = ref (Array.make width Aig.false_) in
  for j = 0 to nb - 1 do
    (* Partial product a * b_j shifted by j. *)
    let pp =
      Array.init width (fun k ->
          if k >= j && k - j < na then Aig.and_ g a.(k - j) b.(j)
          else Aig.false_)
    in
    let sums, _ = ripple_adder g !acc pp ~cin:Aig.false_ in
    acc := sums
  done;
  !acc

let square g a = multiplier g a a

let mux_word g sel a b = Array.map2 (fun x y -> Aig.mux g sel x y) a b

let alu g ~op a b =
  if Array.length op < 2 then invalid_arg "alu: need 2 op bits";
  let add, _ = ripple_adder g a b ~cin:Aig.false_ in
  let sub, _ = subtractor g a b in
  let land_ = Array.map2 (Aig.and_ g) a b in
  let xor_word = Array.map2 (Aig.xor g) a b in
  let lo = mux_word g op.(0) sub add in
  let hi = mux_word g op.(0) xor_word land_ in
  mux_word g op.(1) hi lo

let arithmetic_shift _g amount word =
  Array.init (Array.length word) (fun i ->
      if i + amount < Array.length word then word.(i + amount)
      else word.(Array.length word - 1))

let shift_add_cascade g ~rounds x =
  let n = Array.length x in
  if n = 0 then invalid_arg "shift_add_cascade";
  let value = ref x in
  for r = 1 to rounds do
    let shifted = arithmetic_shift g (1 + (r mod max 1 (n / 2))) !value in
    let added, _ = ripple_adder g !value shifted ~cin:Aig.false_ in
    let subbed, _ = subtractor g !value shifted in
    let steer = !value.(r mod n) in
    value := mux_word g steer added subbed
  done;
  !value

let log_approx g x =
  let n = Array.length x in
  (* Leading-one detector: found.(i) = x.(i) & ~(x.(i+1) | ... ). *)
  let any_above = Array.make n Aig.false_ in
  for i = n - 2 downto 0 do
    any_above.(i) <- Aig.or_ g any_above.(i + 1) x.(i + 1)
  done;
  let leading = Array.init n (fun i -> Aig.and_ g x.(i) (Aig.not_ any_above.(i))) in
  (* Binary encoding of the leading-one position. *)
  let bits = max 1 (int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.0))) in
  let encoded =
    Array.init bits (fun b ->
        let terms = ref [] in
        Array.iteri
          (fun i l -> if (i lsr b) land 1 = 1 then terms := l :: !terms)
          leading;
        Aig.or_list g !terms)
  in
  (* Fractional interpolation: add the masked mantissa to the exponent. *)
  let mantissa =
    Array.init bits (fun b -> if b < n then Aig.and_ g x.(b) (Aig.not_ leading.(b)) else Aig.false_)
  in
  let sum, carry = ripple_adder g encoded mantissa ~cin:Aig.false_ in
  Array.append sum [| carry |]
