(** The 42-circuit synthetic benchmark suite.

    One named entry per benchmark of the paper's Table 2 (VTR/MCNC, EPFL
    and ITC'99 names). Every circuit is generated deterministically from
    its name, passed through {!Redundancy.duplicate_variants} so it carries
    internal equivalences, and LUT-mapped with K = 6 — mirroring the
    paper's §6.1 preparation (`if -K 6`).

    These are stand-ins, not the original netlists (see DESIGN.md §4): the
    experiments measure equivalence-class separation and SAT effort, which
    depend on topology mix and internal redundancy, both of which the
    generators reproduce. *)

type family = Mcnc_pla | Arithmetic | Epfl_control | Itc99

type entry = {
  name : string;
  family : family;
  stack_copies : int option;
      (** Some k for the benchmarks the paper's §6.4 stacks with
          [&putontop] (the parenthesised counts of Table 2's lower half). *)
}

val entries : entry list
(** All 42 entries, in Table 2 order. *)

val names : string list

val find : string -> entry option

val aig : string -> Simgen_aig.Aig.t
(** The benchmark's AIG (with injected redundancy), deterministic per
    name. @raise Not_found for unknown names. *)

val lut_network : ?k:int -> string -> Simgen_network.Network.t
(** The LUT-mapped benchmark (default K = 6) — the form the sweeping
    experiments consume. *)

val stacked_lut_network : ?k:int -> string -> Simgen_network.Network.t
(** The §6.4 variant: the benchmark's LUT network stacked [stack_copies]
    times (falls back to 2 copies when the entry has none). *)
