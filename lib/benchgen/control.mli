(** Control-logic generators: decoders, priority logic, arbitration,
    majority voting — the control-dominated benchmark topologies (dec,
    priority, arbiter, voter, mem_ctrl). *)

type lit = Simgen_aig.Aig.lit
type aig = Simgen_aig.Aig.t

val decoder : aig -> lit array -> lit array
(** [decoder g sel] yields [2^n] one-hot outputs for [n] select bits. *)

val priority_encoder : aig -> lit array -> lit array * lit
(** Binary index of the highest-priority (lowest-index) asserted input,
    plus a valid flag. *)

val majority : aig -> lit array -> lit
(** True when more than half of the inputs are asserted (population count
    through an adder tree and a comparator) — the "voter" shape. *)

val round_robin_arbiter : aig -> req:lit array -> pointer:lit array -> lit array
(** One grant among the requests, rotating priority given by the pointer
    bits (pointer width must decode to at least the request count). *)

val control_mix :
  aig -> Simgen_base.Rng.t -> inputs:lit array -> outputs:int -> lit array
(** Memory-controller-style blob: random cascade of decoders, comparators
    and mux trees over the inputs (deterministic given the RNG). *)
