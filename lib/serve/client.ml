type reply = (string * Protocol.json) list

let call ~socket ?on_event req =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("socket: " ^ Unix.error_message e)
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          try
            Unix.connect fd (Unix.ADDR_UNIX socket);
            let ic = Unix.in_channel_of_descr fd in
            let oc = Unix.out_channel_of_descr fd in
            output_string oc (Protocol.request_to_line ~id:1 req);
            output_char oc '\n';
            flush oc;
            let rec loop () =
              match input_line ic with
              | exception End_of_file -> Error "connection closed before result"
              | line -> (
                  match Protocol.frame_of_line line with
                  | Error msg -> Error ("bad frame: " ^ msg)
                  | Ok (_, Protocol.Event e) ->
                      (match on_event with Some f -> f e | None -> ());
                      loop ()
                  | Ok (_, Protocol.Result fields) -> Ok fields
                  | Ok (_, Protocol.Failed msg) -> Error msg)
            in
            loop ()
          with
          | Unix.Unix_error (e, fn, _) ->
              Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
          | Sys_error msg -> Error msg)
