(* Hardened daemon client: every blocking step — connect, each line read
   — sits behind a [Unix.select] timeout, so a hung or wedged daemon
   surfaces as [Timeout] instead of blocking the caller forever. An
   [Overloaded] answer is retried with jittered exponential backoff
   (the supervisor's [Retry_policy]), sleeping at least the daemon's
   [retry_after] hint; a fresh connection per attempt, since the daemon
   answers overload before reading further pipelined requests. *)

module Rng = Simgen_base.Rng
module Retry_policy = Simgen_runner.Retry_policy

type reply = (string * Protocol.json) list

type error =
  | Timeout of string  (* which phase timed out: "connect" or "read" *)
  | Overloaded of { retry_after : float }
  | Dropped of string
  | Remote of string

let error_to_string = function
  | Timeout phase -> Printf.sprintf "timeout waiting for daemon (%s)" phase
  | Overloaded { retry_after } ->
      Printf.sprintf "daemon overloaded (retry after %.2fs)" retry_after
  | Dropped msg -> "connection dropped: " ^ msg
  | Remote msg -> msg

let default_connect_timeout = 5.0

(* Generous by design: a legitimate job can run minutes; the timeout is
   per protocol line, and job progress events reset it, so only a daemon
   that has gone silent trips it. *)
let default_read_timeout = 120.0

(* Connect with a deadline: non-blocking connect, then select on
   writability and check SO_ERROR like any portable async connect. *)
let connect_with_timeout fd addr timeout =
  Unix.set_nonblock fd;
  let finish () =
    Unix.clear_nonblock fd;
    match Unix.getsockopt_error fd with
    | None -> Ok ()
    | Some e -> Error (Dropped ("connect: " ^ Unix.error_message e))
  in
  match Unix.connect fd addr with
  | () ->
      Unix.clear_nonblock fd;
      Ok ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
    -> (
      match Unix.select [] [ fd ] [] timeout with
      | [], [], [] -> Error (Timeout "connect")
      | _ -> finish ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> Error (Timeout "connect"))
  | exception Unix.Unix_error (e, _, _) ->
      Error (Dropped ("connect: " ^ Unix.error_message e))

(* A buffered line reader over the raw fd; [input_line] on an
   [in_channel] would block with no way to bound the wait. *)
type reader = { fd : Unix.file_descr; buf : Buffer.t; mutable eof : bool }

let take_line r =
  let data = Buffer.contents r.buf in
  match String.index_opt data '\n' with
  | Some i ->
      let line = String.sub data 0 i in
      Buffer.clear r.buf;
      Buffer.add_substring r.buf data (i + 1) (String.length data - i - 1);
      Some line
  | None -> None

let read_line ~timeout r =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match take_line r with
    | Some line -> Ok (Some line)
    | None ->
        if r.eof then Ok None
        else begin
          match Unix.select [ r.fd ] [] [] timeout with
          | [], _, _ -> Error (Timeout "read")
          | _ -> (
              match Unix.read r.fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                  r.eof <- true;
                  go ()
              | n ->
                  Buffer.add_subbytes r.buf chunk 0 n;
                  go ()
              | exception
                  Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                  r.eof <- true;
                  go ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        end
  in
  go ()

let write_all fd s =
  let data = Bytes.of_string s in
  let n = Bytes.length data in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd data !off (n - !off)
  done

let call_once ~socket ~connect_timeout ~read_timeout ?on_event req =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Dropped ("socket: " ^ Unix.error_message e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match connect_with_timeout fd (Unix.ADDR_UNIX socket) connect_timeout with
          | Error _ as err -> err
          | Ok () -> (
              try
                write_all fd (Protocol.request_to_line ~id:1 req ^ "\n");
                let r = { fd; buf = Buffer.create 256; eof = false } in
                let rec loop () =
                  match read_line ~timeout:read_timeout r with
                  | Error _ as err -> err
                  | Ok None -> Error (Dropped "connection closed before result")
                  | Ok (Some line) -> (
                      match Protocol.frame_of_line line with
                      | Error msg -> Error (Dropped ("bad frame: " ^ msg))
                      | Ok (_, Protocol.Event e) ->
                          (match on_event with Some f -> f e | None -> ());
                          loop ()
                      | Ok (_, Protocol.Result fields) -> Ok fields
                      | Ok (_, Protocol.Failed msg) -> Error (Remote msg)
                      | Ok (_, Protocol.Overloaded { retry_after }) ->
                          Error (Overloaded { retry_after }))
                in
                loop ()
              with
              | Unix.Unix_error (e, fn, _) ->
                  Error
                    (Dropped (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
              | Sys_error msg -> Error (Dropped msg)))

let call ~socket ?(connect_timeout = default_connect_timeout)
    ?(read_timeout = default_read_timeout) ?(retry = Retry_policy.default)
    ?(retry_seed = 0) ?on_event req =
  let rng = Rng.create retry_seed in
  let rec attempt n =
    let res = call_once ~socket ~connect_timeout ~read_timeout ?on_event req in
    match res with
    | Error (Overloaded { retry_after })
      when n < retry.Retry_policy.max_attempts ->
        (* Honour the daemon's hint as a floor under the jittered
           backoff, so a fleet of shed clients doesn't return in sync. *)
        Unix.sleepf
          (Float.max retry_after (Retry_policy.delay retry rng ~attempt:n));
        attempt (n + 1)
    | Ok _ | Error (Overloaded _ | Timeout _ | Dropped _ | Remote _) -> res
  in
  attempt 1
