(* Versioned JSONL protocol: hand-rolled JSON reader/writer plus the
   request/frame vocabulary. The writer matches the conventions of
   [Events.to_json] (string escapes, %.6f floats) so daemon telemetry
   frames embed runner events verbatim. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* ---------------- printer ---------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.6f" f)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf name;
          Buffer.add_string buf "\":";
          write buf x)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* ---------------- parser ---------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "short unicode escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad unicode escape"
                   in
                   (* The repo only emits control-range escapes; decode
                      the latin subset and pass anything else through as
                      '?' rather than building a UTF-8 encoder. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else Buffer.add_char buf '?'
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            (match s.[!pos] with
             | 'u' -> pos := !pos + 5
             | _ -> advance ());
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "empty input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (name, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Bad msg -> Error msg

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let int_member name j =
  match member name j with
  | Some (Int i) -> Some i
  | Some (Null | Bool _ | Float _ | String _ | List _ | Obj _) | None -> None

let string_member name j =
  match member name j with
  | Some (String s) -> Some s
  | Some (Null | Bool _ | Int _ | Float _ | List _ | Obj _) | None -> None

(* ---------------- requests and frames ---------------- *)

let version = 1

type request =
  | Ping
  | Stats
  | Shutdown
  | Lint of { target : string }
  | Job of { cmd : string; args : string; deadline_ms : int option }

let job_cmds = [ "sweep"; "cec"; "certify" ]

let request_to_line ~id req =
  let base = [ ("v", Int version); ("id", Int id) ] in
  let fields =
    match req with
    | Ping -> base @ [ ("cmd", String "ping") ]
    | Stats -> base @ [ ("cmd", String "stats") ]
    | Shutdown -> base @ [ ("cmd", String "shutdown") ]
    | Lint { target } ->
        base @ [ ("cmd", String "lint"); ("target", String target) ]
    | Job { cmd; args; deadline_ms } ->
        base
        @ [ ("cmd", String cmd); ("args", String args) ]
        @ (match deadline_ms with
           | Some ms -> [ ("deadline_ms", Int ms) ]
           | None -> [])
  in
  to_string (Obj fields)

let request_of_line line =
  match parse line with
  | Error msg -> Error ("bad json: " ^ msg)
  | Ok j -> (
      match (int_member "v" j, int_member "id" j, string_member "cmd" j) with
      | Some v, _, _ when v <> version ->
          Error (Printf.sprintf "unsupported protocol version %d" v)
      | Some _, Some id, Some cmd -> (
          match cmd with
          | "ping" -> Ok (id, Ping)
          | "stats" -> Ok (id, Stats)
          | "shutdown" -> Ok (id, Shutdown)
          | "lint" -> (
              match string_member "target" j with
              | Some target -> Ok (id, Lint { target })
              | None -> Error "lint: missing target")
          | cmd when List.mem cmd job_cmds -> (
              match string_member "args" j with
              | Some args ->
                  let deadline_ms = int_member "deadline_ms" j in
                  (match deadline_ms with
                   | Some ms when ms <= 0 ->
                       Error (cmd ^ ": deadline_ms must be positive")
                   | _ -> Ok (id, Job { cmd; args; deadline_ms }))
              | None -> Error (cmd ^ ": missing args"))
          | cmd -> Error ("unknown cmd " ^ cmd))
      | _ -> Error "request needs v, id and cmd fields")

type frame =
  | Event of json
  | Result of (string * json) list
  | Failed of string
  | Overloaded of { retry_after : float }

let frame_to_line ~id frame =
  let fields =
    match frame with
    | Event e -> [ ("id", Int id); ("type", String "event"); ("event", e) ]
    | Result fs -> ("id", Int id) :: ("type", String "result") :: fs
    | Failed msg ->
        [ ("id", Int id); ("type", String "error"); ("message", String msg) ]
    | Overloaded { retry_after } ->
        [
          ("id", Int id);
          ("type", String "overloaded");
          ("retry_after", Float retry_after);
        ]
  in
  to_string (Obj fields)

let frame_of_line line =
  match parse line with
  | Error msg -> Error ("bad json: " ^ msg)
  | Ok j -> (
      match (int_member "id" j, string_member "type" j) with
      | Some id, Some "event" -> (
          match member "event" j with
          | Some e -> Ok (id, Event e)
          | None -> Error "event frame without event")
      | Some id, Some "result" -> (
          match j with
          | Obj fields ->
              Ok
                ( id,
                  Result
                    (List.filter
                       (fun (name, _) -> name <> "id" && name <> "type")
                       fields) )
          | Null | Bool _ | Int _ | Float _ | String _ | List _ ->
              Error "malformed result frame")
      | Some id, Some "error" -> (
          match string_member "message" j with
          | Some msg -> Ok (id, Failed msg)
          | None -> Error "error frame without message")
      | Some id, Some "overloaded" ->
          let retry_after =
            match member "retry_after" j with
            | Some (Float f) -> f
            | Some (Int i) -> float_of_int i
            | Some (Null | Bool _ | String _ | List _ | Obj _) | None -> 0.1
          in
          Ok (id, Overloaded { retry_after })
      | _ -> Error "frame needs id and type fields")
