module Timer = Simgen_base.Timer
module Shared = Simgen_base.Shared
module Events = Simgen_runner.Events
module Exec = Simgen_runner.Exec
module Job = Simgen_runner.Job
module Budget = Simgen_runner.Budget
module Manifest = Simgen_runner.Manifest
module Pattern_cache = Simgen_runner.Pattern_cache
module Fun_cache = Simgen_sweep.Fun_cache
module Sweeper = Simgen_sweep.Sweeper
module Lint = Simgen_check.Lint
module Diagnostic = Simgen_check.Diagnostic
module Fault = Simgen_fault.Fault

type t = {
  workers : int;
  max_queue : int;  (* admission bound on queued (not in-flight) jobs *)
  fun_cache : Fun_cache.t option;
  pattern_cache : Pattern_cache.t option;
  cache_save : string option;
  telemetry : Events.sink;
  started : float;
  stop : bool Shared.Atomic.t;  (* drain flag: refuse new work *)
  cancel : bool Shared.Atomic.t;  (* cooperative cancellation for in-flight jobs *)
  requests : int Shared.Atomic.t;
  jobs_ok : int Shared.Atomic.t;
  jobs_err : int Shared.Atomic.t;
  queue_depth : int Shared.Atomic.t;  (* mirror of Queue.length for stats *)
  shed : int Shared.Atomic.t;  (* jobs refused at admission (Overloaded) *)
  deadline_expired : int Shared.Atomic.t;
      (* jobs whose deadline passed: shed before dispatch or cut short *)
}

let create ?workers ?(max_queue = 64) ?fun_cache ?pattern_cache ?cache_save
    ?(telemetry = Events.null) () =
  let workers =
    match workers with
    | Some w -> max 1 w
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  {
    workers;
    max_queue = max 1 max_queue;
    fun_cache;
    pattern_cache;
    cache_save;
    telemetry;
    started = Timer.now ();
    stop = Shared.Atomic.make ~loc:(Shared.here __POS__) "serve.stop" false;
    cancel = Shared.Atomic.make ~loc:(Shared.here __POS__) "serve.cancel" false;
    requests =
      Shared.Atomic.make ~loc:(Shared.here __POS__) "serve.stats.requests" 0;
    jobs_ok =
      Shared.Atomic.make ~loc:(Shared.here __POS__) "serve.stats.jobs-ok" 0;
    jobs_err =
      Shared.Atomic.make ~loc:(Shared.here __POS__) "serve.stats.jobs-err" 0;
    queue_depth =
      Shared.Atomic.make ~loc:(Shared.here __POS__) "serve.stats.queue-depth" 0;
    shed = Shared.Atomic.make ~loc:(Shared.here __POS__) "serve.stats.shed" 0;
    deadline_expired =
      Shared.Atomic.make ~loc:(Shared.here __POS__)
        "serve.stats.deadline-expired" 0;
  }

let shutting_down t = Shared.Atomic.get t.stop

(* Runs inside the SIGTERM handler: the silent accessors skip trace
   recording, which is not reentrant from a signal context. *)
let request_shutdown t =
  Shared.Atomic.silent_set t.stop true;
  Shared.Atomic.silent_set t.cancel true

(* With a journal enabled, persistence goes through a checkpoint (atomic
   snapshot + journal truncation) so the pair on disk stays consistent;
   otherwise a plain (still atomic) snapshot. *)
let snapshot t =
  match (t.fun_cache, t.cache_save) with
  | Some fc, _ when Fun_cache.journal_enabled fc -> Fun_cache.checkpoint fc
  | Some fc, Some path -> Fun_cache.save fc path
  | Some _, None | None, Some _ | None, None -> Ok ()

(* Fold a wire deadline into a job spec: the job's effective budget
   deadline is the smaller of what the manifest args asked for and what
   remains of the client's end-to-end deadline at dispatch time. *)
let clamp_deadline spec remaining =
  let limits = spec.Job.limits in
  let deadline =
    match limits.Budget.deadline with
    | Some d -> Some (Float.min d remaining)
    | None -> Some remaining
  in
  { spec with Job.limits = { limits with Budget.deadline } }

(* The answer for a job cancelled by its own deadline, queued or running:
   the same status string the budget ladder produces, so clients see one
   vocabulary for deadline exhaustion. *)
let deadline_expired_fields ~shed =
  let open Protocol in
  [
    ("status", String (Job.status_to_string (Job.Budget_exhausted Budget.Deadline)));
    ("shed", Bool shed);
  ]

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

(* Job args reuse the manifest grammar; [certify] is sweep with
   certify=true forced (a trailing repeat of an option wins in the
   manifest parser, so a client-supplied certify=false cannot undo it). *)
let spec_of_job ~id cmd args =
  let line =
    match cmd with
    | "certify" -> "sweep " ^ args ^ " certify=true"
    | cmd -> cmd ^ " " ^ args
  in
  match Manifest.parse_lines [ line ] with
  | [ spec ] -> Ok { spec with Job.id }
  | specs ->
      Error (Printf.sprintf "expected one job, got %d" (List.length specs))
  | exception Failure msg -> Error msg

let vector_string vec =
  String.init (Array.length vec) (fun i -> if vec.(i) then '1' else '0')

let result_fields (r : Job.result) =
  let open Protocol in
  let verdict =
    match r.Job.status with
    | Job.Not_equivalent { po; vector } ->
        [ ("po", Int po); ("vector", String (vector_string vector)) ]
    | Job.Inconclusive { pos } ->
        [ ("quarantined_pos", List (List.map (fun p -> Int p) pos)) ]
    | Job.Equivalent | Job.Swept | Job.Budget_exhausted _ | Job.Failed _ -> []
  in
  [
    ("status", String (Job.status_to_string r.Job.status));
    ("final_cost", Int r.Job.final_cost);
    ("sat_calls", Int (r.Job.sat.Sweeper.calls + r.Job.po_calls));
    ("cache_hits", Int r.Job.cache_hits);
    ("cache_added", Int r.Job.cache_added);
    ("attempts", Int r.Job.attempts);
    ("worker", Int r.Job.worker);
    ("time", Float r.Job.time);
  ]
  @ verdict

let job_succeeded (r : Job.result) =
  match r.Job.status with
  | Job.Equivalent | Job.Not_equivalent _ | Job.Swept -> true
  | Job.Inconclusive _ | Job.Budget_exhausted _ | Job.Failed _ -> false

(* Run one job spec, mirroring its telemetry to the daemon sink and to
   the requesting client. *)
let run_job t ?on_event ~worker spec =
  let sink =
    Events.callback (fun e ->
        Events.emit t.telemetry ~job:e.Events.job ~label:e.Events.label
          e.Events.payload;
        match on_event with
        | None -> ()
        | Some f -> (
            match Protocol.parse (Events.to_json e) with
            | Ok j -> f j
            | Error _ -> ()))
  in
  let r =
    Exec.run ?cache:t.pattern_cache ?fun_cache:t.fun_cache ~cancel:t.cancel
      ~events:sink ~worker spec
  in
  if job_succeeded r then Shared.Atomic.incr t.jobs_ok
  else Shared.Atomic.incr t.jobs_err;
  r

let circuit_extensions = [ ".blif"; ".bench"; ".aag"; ".cnf"; ".dimacs" ]

let lint_fields target =
  let from_file =
    Sys.file_exists target
    || String.contains target '/'
    || List.exists (Filename.check_suffix target) circuit_extensions
  in
  let diags =
    if from_file then Lint.file target
    else Lint.network ~name:target (Job.load (Job.Suite target))
  in
  let errors, warnings, infos = Diagnostic.counts diags in
  let open Protocol in
  let diag_json d =
    match parse (Diagnostic.to_json d) with
    | Ok j -> j
    | Error _ -> String (Diagnostic.to_string d)
  in
  [
    ("target", String target);
    ("errors", Int errors);
    ("warnings", Int warnings);
    ("infos", Int infos);
    ("diagnostics", List (List.map diag_json (Diagnostic.sort diags)));
  ]

let stats_fields t =
  let open Protocol in
  let base =
    [
      ("uptime", Float (Timer.now () -. t.started));
      ("workers", Int t.workers);
      ("requests", Int (Shared.Atomic.get t.requests));
      ("jobs_ok", Int (Shared.Atomic.get t.jobs_ok));
      ("jobs_err", Int (Shared.Atomic.get t.jobs_err));
      ("queue_depth", Int (Shared.Atomic.get t.queue_depth));
      ("max_queue", Int t.max_queue);
      ("shed", Int (Shared.Atomic.get t.shed));
      ("deadline_expired", Int (Shared.Atomic.get t.deadline_expired));
    ]
  in
  let patterns =
    match t.pattern_cache with
    | None -> []
    | Some pc ->
        [
          ( "pattern_cache",
            Obj
              [
                ("hits", Int (Pattern_cache.hits pc));
                ("misses", Int (Pattern_cache.misses pc));
                ("size", Int (Pattern_cache.size pc));
                ("dropped", Int (Pattern_cache.dropped pc));
              ] );
        ]
  in
  let fun_cache =
    match t.fun_cache with
    | None -> []
    | Some fc ->
        let s = Fun_cache.stats fc in
        [
          ( "fun_cache",
            Obj
              [
                ("consults", Int s.Fun_cache.consults);
                ("hits", Int s.Fun_cache.hits);
                ("misses", Int s.Fun_cache.misses);
                ("unsupported", Int s.Fun_cache.unsupported);
                ("local_proofs", Int s.Fun_cache.local_proofs);
                ("local_cexes", Int s.Fun_cache.local_cexes);
                ("pattern_hits", Int s.Fun_cache.pattern_hits);
                ("collisions", Int s.Fun_cache.collisions);
                ("inserts", Int s.Fun_cache.inserts);
                ("evictions", Int s.Fun_cache.evictions);
                ("dropped", Int s.Fun_cache.dropped);
                ("entries", Int s.Fun_cache.entries);
                ("bytes", Int s.Fun_cache.bytes);
                ("journal_appends", Int s.Fun_cache.journal_appends);
                ("journal_replayed", Int s.Fun_cache.journal_replayed);
                ("journal_corrupt", Int s.Fun_cache.journal_corrupt);
                ("checkpoints", Int s.Fun_cache.checkpoints);
              ] );
        ]
  in
  base @ patterns @ fun_cache

let handle t ?on_event req =
  Shared.Atomic.incr t.requests;
  let open Protocol in
  try
    match req with
    | Ping ->
        Result
          [
            ("status", String "ok");
            ("pid", Int (Unix.getpid ()));
            ("protocol", Int version);
          ]
    | Stats -> Result (stats_fields t)
    | Shutdown ->
        request_shutdown t;
        let saved =
          match snapshot t with Ok () -> true | Error _ -> false
        in
        Result [ ("status", String "shutting-down"); ("cache_saved", Bool saved) ]
    | Lint { target } -> Result (lint_fields target)
    | Job { cmd; args; deadline_ms } ->
        if Shared.Atomic.get t.stop then Failed "server is shutting down"
        else (
          match spec_of_job ~id:0 cmd args with
          | Error msg -> Failed msg
          | Ok spec ->
              (* Synchronous path: nothing queues, so the whole wire
                 deadline is available to the job. *)
              let spec =
                match deadline_ms with
                | Some ms -> clamp_deadline spec (float_of_int ms /. 1000.)
                | None -> spec
              in
              Result (result_fields (run_job t ?on_event ~worker:0 spec)))
  with
  | Failure msg -> Failed msg
  | exn -> Failed (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* The socket daemon                                                   *)
(* ------------------------------------------------------------------ *)

(* One connected client. [wmutex] serialises frame writes (worker
   domains stream events concurrently) and guards [alive]/[inflight]
   (cells, so the detector can check that); the main loop owns [rbuf]
   and [eof]. *)
type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  wmutex : Shared.Mutex.t;
  alive : bool Shared.Cell.t;
  inflight : int Shared.Cell.t;
  mutable eof : bool;
}

let with_lock m f = Shared.Mutex.with_lock m f

let write_all fd s =
  let data = Bytes.of_string s in
  let n = Bytes.length data in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd data !off (n - !off)
  done

let write_line conn line =
  with_lock conn.wmutex (fun () ->
      (* Service-level fault sites, probed with the write lock held so an
         injected drop/stall interleaves with concurrent event writers
         exactly like a real one. [slow-client] models a reader that has
         stopped draining its socket; [conn-drop] a peer that vanished
         mid-stream. *)
      if Fault.enabled () && Fault.fire "slow-client" then Unix.sleepf 0.05;
      if Fault.enabled () && Fault.fire "conn-drop" then begin
        Shared.Cell.set ~at:(Shared.here __POS__) conn.alive false;
        try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ()
      end;
      if Shared.Cell.get ~at:(Shared.here __POS__) conn.alive then
        try write_all conn.fd (line ^ "\n")
        with Unix.Unix_error _ | Sys_error _ ->
          Shared.Cell.set ~at:(Shared.here __POS__) conn.alive false)

let write_frame conn ~id frame =
  write_line conn (Protocol.frame_to_line ~id frame)

(* [deadline] is absolute ([Timer.now]-based), set at admission: the
   client's budget covers queueing, so a task can expire on the queue. *)
type task = { conn : conn; id : int; spec : Job.spec; deadline : float option }

type queue = {
  tasks : task Queue.t;
  tasks_shadow : unit Shared.Cell.t;  (* written on push/pop, read on empty-check *)
  qmutex : Shared.Mutex.t;
  qcond : Shared.Condition.t;
}

(* Admission control: refuse (rather than buffer without bound) once
   [max_queue] jobs are waiting. Returns [false] on refusal; the caller
   answers [Overloaded]. In-flight jobs don't count — the bound is on
   latency the queue adds, not on concurrency. *)
let enqueue t q task =
  with_lock q.qmutex (fun () ->
      if Queue.length q.tasks >= t.max_queue then false
      else begin
        Shared.Cell.set ~at:(Shared.here __POS__) q.tasks_shadow ();
        Queue.push task q.tasks;
        Shared.Atomic.set t.queue_depth (Queue.length q.tasks);
        Shared.Condition.signal q.qcond;
        true
      end)

(* Blocks until a task is available; [None] once the drain flag is set
   and the queue is empty (queued tasks are still answered during a
   drain — the shared cancellation token makes them return quickly). *)
let dequeue t q =
  with_lock q.qmutex (fun () ->
      let rec wait () =
        ignore (Shared.Cell.get ~at:(Shared.here __POS__) q.tasks_shadow);
        if not (Queue.is_empty q.tasks) then begin
          Shared.Cell.set ~at:(Shared.here __POS__) q.tasks_shadow ();
          let task = Queue.pop q.tasks in
          Shared.Atomic.set t.queue_depth (Queue.length q.tasks);
          Some task
        end
        else if Shared.Atomic.get t.stop then None
        else begin
          Shared.Condition.wait q.qcond q.qmutex;
          wait ()
        end
      in
      wait ())

let task_done conn =
  with_lock conn.wmutex (fun () ->
      Shared.Cell.add ~at:(Shared.here __POS__) conn.inflight (-1))

let worker_loop t q i =
  let rec loop () =
    match dequeue t q with
    | None -> ()
    | Some { conn; id; spec; deadline } ->
        let frame =
          (* Shed rather than dispatch a job whose deadline passed while
             it queued: running it would answer late AND hold a worker
             other (still-meetable) deadlines are waiting on. *)
          match deadline with
          | Some d when Timer.now () >= d ->
              Shared.Atomic.incr t.deadline_expired;
              Protocol.Result (deadline_expired_fields ~shed:true)
          | _ ->
              let spec =
                match deadline with
                | Some d -> clamp_deadline spec (d -. Timer.now ())
                | None -> spec
              in
              (try
                 let on_event j = write_frame conn ~id (Protocol.Event j) in
                 let r = run_job t ~on_event ~worker:i spec in
                 (match r.Job.status with
                  | Job.Budget_exhausted Budget.Deadline ->
                      if deadline <> None then
                        Shared.Atomic.incr t.deadline_expired
                  | Job.Budget_exhausted
                      ( Budget.Watchdog | Budget.Sat_calls
                      | Budget.Guided_iterations | Budget.Cancelled )
                  | Job.Equivalent | Job.Not_equivalent _ | Job.Inconclusive _
                  | Job.Swept | Job.Failed _ -> ());
                 Protocol.Result (result_fields r)
               with
               | Failure msg -> Protocol.Failed msg
               | exn -> Protocol.Failed (Printexc.to_string exn))
        in
        write_frame conn ~id frame;
        task_done conn;
        loop ()
  in
  loop ()

(* Split complete lines off the connection's read buffer. *)
let drain_lines conn =
  let data = Buffer.contents conn.rbuf in
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := String.sub data !start (i - !start) :: !lines;
        start := i + 1
      end)
    data;
  Buffer.clear conn.rbuf;
  Buffer.add_substring conn.rbuf data !start (String.length data - !start);
  List.rev !lines

(* The retry-after hint when shedding: a full queue clears in roughly
   (depth / workers) × typical-job-time; with job times unknown, a small
   multiple of the per-worker backlog bounded away from zero is an
   honest, cheap estimate. *)
let retry_after_hint t =
  let backlog = float_of_int t.max_queue /. float_of_int t.workers in
  Float.min 2.0 (Float.max 0.05 (0.05 *. backlog))

let handle_line t q conn line =
  let line = String.trim line in
  if line <> "" then
    match Protocol.request_of_line line with
    | Error msg -> write_frame conn ~id:0 (Protocol.Failed msg)
    | Ok (id, Protocol.Job { cmd; args; deadline_ms }) ->
        Shared.Atomic.incr t.requests;
        if Shared.Atomic.get t.stop then
          write_frame conn ~id (Protocol.Failed "server is shutting down")
        else (
          match spec_of_job ~id cmd args with
          | Error msg -> write_frame conn ~id (Protocol.Failed msg)
          | Ok spec ->
              let deadline =
                match deadline_ms with
                | Some ms -> Some (Timer.now () +. (float_of_int ms /. 1000.))
                | None -> None
              in
              with_lock conn.wmutex (fun () ->
                  Shared.Cell.incr ~at:(Shared.here __POS__) conn.inflight);
              if not (enqueue t q { conn; id; spec; deadline }) then begin
                Shared.Atomic.incr t.shed;
                write_frame conn ~id
                  (Protocol.Overloaded { retry_after = retry_after_hint t });
                task_done conn
              end)
    | Ok
        ( id,
          ((Protocol.Ping | Protocol.Stats | Protocol.Shutdown | Protocol.Lint _)
           as req) ) -> write_frame conn ~id (handle t req)

let read_chunk t q conn =
  let buf = Bytes.create 4096 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> conn.eof <- true
  | n ->
      Buffer.add_subbytes conn.rbuf buf 0 n;
      List.iter (handle_line t q conn) (drain_lines conn)
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      conn.eof <- true

let close_conn conn =
  with_lock conn.wmutex (fun () ->
      Shared.Cell.set ~at:(Shared.here __POS__) conn.alive false);
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let serve t ~socket =
  (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 16;
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  ignore
    (Sys.signal Sys.sigterm
       (Sys.Signal_handle (fun _ -> request_shutdown t)));
  let qloc = Shared.here __POS__ in
  let q =
    {
      tasks = Queue.create ();
      tasks_shadow = Shared.Cell.make ~loc:qloc "serve.queue.tasks" ();
      qmutex = Shared.Mutex.create ~loc:qloc "serve.queue.lock";
      qcond = Shared.Condition.create ();
    }
  in
  let domains =
    List.init t.workers (fun i ->
        Shared.spawn ~loc:(Shared.here __POS__) (fun () -> worker_loop t q i))
  in
  let conns = ref [] in
  while not (Shared.Atomic.get t.stop) do
    let live = List.filter (fun c -> not c.eof) !conns in
    let fds = listen_fd :: List.map (fun c -> c.fd) live in
    (match Unix.select fds [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = listen_fd then begin
              match Unix.accept listen_fd with
              | client, _ ->
                  conns :=
                    (let cloc = Shared.here __POS__ in
                     {
                       fd = client;
                       rbuf = Buffer.create 256;
                       wmutex = Shared.Mutex.create ~loc:cloc "serve.conn.wmutex";
                       alive = Shared.Cell.make ~loc:cloc "serve.conn.alive" true;
                       inflight =
                         Shared.Cell.make ~loc:cloc "serve.conn.inflight" 0;
                       eof = false;
                     })
                    :: !conns
              | exception Unix.Unix_error _ -> ()
            end
            else
              match List.find_opt (fun c -> c.fd = fd) live with
              | Some conn -> read_chunk t q conn
              | None -> ())
          readable);
    (* Reap clients that disconnected and have no jobs in flight. *)
    let gone, keep =
      List.partition
        (fun c ->
          c.eof
          && with_lock c.wmutex (fun () ->
                 Shared.Cell.get ~at:(Shared.here __POS__) c.inflight <= 0))
        !conns
    in
    List.iter close_conn gone;
    conns := keep
  done;
  (* Drain: stop accepting, wake the workers, let queued and in-flight
     jobs finish (the cancellation token trips their budgets), answer
     everything, then tear down — the same shape as the batch runner's
     SIGINT path. *)
  with_lock q.qmutex (fun () -> Shared.Condition.broadcast q.qcond);
  List.iter Shared.join domains;
  List.iter close_conn !conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
  match snapshot t with Ok () -> () | Error _ -> ()
