(** The daemon's versioned JSONL request/response protocol.

    One JSON object per line in both directions. Requests:

    {v
    {"v":1,"id":7,"cmd":"ping"}
    {"v":1,"id":8,"cmd":"stats"}
    {"v":1,"id":9,"cmd":"shutdown"}
    {"v":1,"id":10,"cmd":"lint","target":"apex2"}
    {"v":1,"id":11,"cmd":"sweep","args":"apex2 stacked=true"}
    {"v":1,"id":12,"cmd":"cec","args":"apex2 apex2 stacked=true deadline=5.0"}
    {"v":1,"id":13,"cmd":"certify","args":"square stacked=true"}
    {"v":1,"id":14,"cmd":"sweep","args":"apex2","deadline_ms":2000}
    v}

    [args] for job commands is the tail of a {!Simgen_runner.Manifest}
    line — circuits plus [key=value] options — so per-request budgets,
    retry policy, seeds and certification ride the existing manifest
    grammar. [certify] is [sweep] with [certify=true] forced.

    Responses all carry the request's [id] and a [type]:

    {v
    {"id":11,"type":"event","event":{...runner telemetry event...}}
    {"id":11,"type":"result","status":"swept","final_cost":123,...}
    {"id":11,"type":"error","message":"..."}
    {"id":11,"type":"overloaded","retry_after":0.25}
    v}

    A request is answered by zero or more [event] frames followed by
    exactly one [result], [error] or [overloaded] frame. The JSON parser/printer here
    is hand-rolled like the rest of the repo's JSON surface (the
    container has no JSON library); it covers the full value grammar at
    the subset of escapes the repo emits. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result
val to_string : json -> string

val member : string -> json -> json option
(** Field lookup on an [Obj]; [None] otherwise. *)

val int_member : string -> json -> int option
val string_member : string -> json -> string option
(** Typed field lookups: [None] when absent or of another type. *)

val version : int
(** 1. Requests with any other [v] are rejected. *)

type request =
  | Ping
  | Stats
  | Shutdown
  | Lint of { target : string }
  | Job of { cmd : string; args : string; deadline_ms : int option }
      (** [cmd] is ["sweep"], ["cec"] or ["certify"]; [args] a manifest
          line tail. [deadline_ms], when present, is the client's
          end-to-end budget for the request measured from daemon receipt:
          it bounds time spent queued {e plus} running (the server sheds
          the job with a deadline answer if it expires before dispatch,
          and otherwise folds the remaining time into the job's
          {!Simgen_runner.Budget} deadline). Must be positive;
          non-positive values are rejected at parse time. *)

val request_to_line : id:int -> request -> string
val request_of_line : string -> (int * request, string) result

type frame =
  | Event of json  (** one runner telemetry event *)
  | Result of (string * json) list  (** final answer fields *)
  | Failed of string  (** the [error] frame *)
  | Overloaded of { retry_after : float }
      (** admission control refused the job: the bounded queue is full.
          [retry_after] is the daemon's estimate (seconds) of when
          capacity frees up — a hint, not a promise. Clients should
          back off at least that long before retrying
          ({!Client} does, with jitter). *)

val frame_to_line : id:int -> frame -> string
val frame_of_line : string -> (int * frame, string) result
