(** Hardened blocking client for the daemon protocol: one request per
    connection, used by [simgen_cli submit]/[ping] and the CI parity
    checks. Every blocking step is bounded by a timeout, and
    [Overloaded] answers are retried with jittered backoff. *)

type reply = (string * Protocol.json) list
(** The payload fields of a [result] frame. *)

type error =
  | Timeout of string
      (** the daemon went silent past the connect/read timeout; the
          payload names the phase ("connect" or "read") *)
  | Overloaded of { retry_after : float }
      (** the daemon shed the request and every configured retry was
          also shed; [retry_after] is its latest hint *)
  | Dropped of string  (** transport failure: no daemon, reset, bad frame *)
  | Remote of string  (** the daemon answered with an [error] frame *)

val error_to_string : error -> string

val call :
  socket:string ->
  ?connect_timeout:float ->
  ?read_timeout:float ->
  ?retry:Simgen_runner.Retry_policy.t ->
  ?retry_seed:int ->
  ?on_event:(Protocol.json -> unit) ->
  Protocol.request ->
  (reply, error) result
(** Connect to the daemon at [socket], send the request, feed each
    streamed [event] frame to [on_event], and return the final result
    fields. [connect_timeout] (default 5s) bounds connection
    establishment; [read_timeout] (default 120s) bounds the wait for
    {e each} protocol line, so a job that streams progress events keeps
    the connection alive however long it runs, while a daemon that went
    silent surfaces as [Timeout] instead of hanging the caller forever.
    An [Overloaded] answer is retried on a fresh connection up to
    [retry].max_attempts times (default {!Simgen_runner.Retry_policy.default},
    3 attempts), sleeping at least the daemon's [retry_after] hint and at
    most the policy's jittered backoff — [retry_seed] decorrelates
    concurrent clients. Pass [retry = Retry_policy.none] to surface
    [Overloaded] immediately. Never raises. *)
