(** Thin blocking client for the daemon protocol: one request per
    connection, used by [simgen_cli submit]/[ping] and the CI parity
    checks. *)

type reply = (string * Protocol.json) list
(** The payload fields of a [result] frame. *)

val call :
  socket:string ->
  ?on_event:(Protocol.json -> unit) ->
  Protocol.request ->
  (reply, string) result
(** Connect to the daemon at [socket], send the request, feed each
    streamed [event] frame to [on_event], and return the final result
    fields. Transport failures (no daemon, dropped connection) and
    [error] frames both come back as [Error]. Never raises. *)
