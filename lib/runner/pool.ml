module Timer = Simgen_base.Timer
module Shared = Simgen_base.Shared

type report = {
  results : Job.result array;
  wall_time : float;
  workers : int;
}

let run ?(workers = 1) ?(events = Events.null) ?cache ?cancel jobs =
  let jobs = Array.of_list jobs in
  Array.iter
    (fun (j : Job.spec) ->
      Events.emit events ~job:j.Job.id ~label:j.Job.label Events.Queued)
    jobs;
  let n = Array.length jobs in
  let results = Array.make n None in
  let next = Shared.Atomic.make ~loc:(Shared.here __POS__) "runner.pool.next" 0 in
  let t0 = Timer.now () in
  (* Self-scheduling: each worker pulls the next job index off a shared
     atomic counter, so long jobs do not serialize behind short ones.
     Each slot of [results] is written by exactly one domain and read only
     after the joins below — which is why [results] stays a plain array
     with no shadow cell: disjoint-slot writes are race-free by
     construction and would only false-positive the detector. *)
  let worker w =
    let rec loop () =
      let i = Shared.Atomic.fetch_and_add next 1 in
      if i < n then begin
        (* [Exec.run] never raises — its supervisor converts every attempt
           failure into a structured status. This catch-all is the last
           line of crash isolation: should that contract ever break, the
           job is recorded as [Failed] and the domain keeps pulling work
           instead of taking the whole pool down with it. *)
        (results.(i) <-
           (try Some (Exec.run ?cache ?cancel ~events ~worker:w jobs.(i))
            with e ->
              Some
                {
                  Job.spec = jobs.(i);
                  status =
                    Job.Failed
                      {
                        message = "escaped executor: " ^ Printexc.to_string e;
                        attempts = 1;
                        faults = [];
                      };
                  final_cost = 0;
                  cost_history = [];
                  guided = Simgen_sweep.Sweeper.empty_guided;
                  sat = Simgen_sweep.Sweeper.empty_sat;
                  po_calls = 0;
                  cache_hits = 0;
                  cache_added = 0;
                  worker = w;
                  attempts = 1;
                  quarantined = [];
                  time = 0.0;
                }));
        loop ()
      end
    in
    loop ()
  in
  let workers = max 1 workers in
  if workers = 1 || n <= 1 then worker 0
  else begin
    let spawned = min (workers - 1) (max 0 (n - 1)) in
    let domains =
      Array.init spawned (fun w ->
          Shared.spawn ~loc:(Shared.here __POS__) (fun () -> worker (w + 1)))
    in
    worker 0;
    Array.iter Shared.join domains
  end;
  {
    results =
      Array.map
        (function Some r -> r | None -> assert false (* all indices ran *))
        results;
    wall_time = Timer.now () -. t0;
    workers;
  }

let summary report =
  let ok, inconclusive, exhausted, failed =
    Array.fold_left
      (fun (ok, inc, ex, failed) (r : Job.result) ->
        match r.Job.status with
        | Job.Equivalent | Job.Not_equivalent _ | Job.Swept ->
            (ok + 1, inc, ex, failed)
        | Job.Inconclusive _ -> (ok, inc + 1, ex, failed)
        | Job.Budget_exhausted _ -> (ok, inc, ex + 1, failed)
        | Job.Failed _ -> (ok, inc, ex, failed + 1))
      (0, 0, 0, 0) report.results
  in
  let quarantined =
    Array.fold_left
      (fun acc (r : Job.result) -> acc + List.length r.Job.quarantined)
      0 report.results
  in
  Printf.sprintf
    "%d jobs on %d workers in %.3fs: %d completed, %d inconclusive, %d \
     budget-exhausted, %d failed, %d pairs quarantined"
    (Array.length report.results)
    report.workers report.wall_time ok inconclusive exhausted failed
    quarantined
