module Timer = Simgen_base.Timer

type report = {
  results : Job.result array;
  wall_time : float;
  workers : int;
}

let run ?(workers = 1) ?(events = Events.null) ?cache ?cancel jobs =
  let jobs = Array.of_list jobs in
  Array.iter
    (fun (j : Job.spec) ->
      Events.emit events ~job:j.Job.id ~label:j.Job.label Events.Queued)
    jobs;
  let n = Array.length jobs in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let t0 = Timer.now () in
  (* Self-scheduling: each worker pulls the next job index off a shared
     atomic counter, so long jobs do not serialize behind short ones.
     Each slot of [results] is written by exactly one domain and read only
     after the joins below. *)
  let worker w =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (Exec.run ?cache ?cancel ~events ~worker:w jobs.(i));
        loop ()
      end
    in
    loop ()
  in
  let workers = max 1 workers in
  if workers = 1 || n <= 1 then worker 0
  else begin
    let spawned = min (workers - 1) (max 0 (n - 1)) in
    let domains =
      Array.init spawned (fun w -> Domain.spawn (fun () -> worker (w + 1)))
    in
    worker 0;
    Array.iter Domain.join domains
  end;
  {
    results =
      Array.map
        (function Some r -> r | None -> assert false (* all indices ran *))
        results;
    wall_time = Timer.now () -. t0;
    workers;
  }

let summary report =
  let ok, exhausted, failed =
    Array.fold_left
      (fun (ok, ex, failed) (r : Job.result) ->
        match r.Job.status with
        | Job.Equivalent | Job.Not_equivalent _ | Job.Swept ->
            (ok + 1, ex, failed)
        | Job.Budget_exhausted _ -> (ok, ex + 1, failed)
        | Job.Failed _ -> (ok, ex, failed + 1))
      (0, 0, 0) report.results
  in
  Printf.sprintf
    "%d jobs on %d workers in %.3fs: %d completed, %d budget-exhausted, %d \
     failed"
    (Array.length report.results)
    report.workers report.wall_time ok exhausted failed
