(** The Domain-based batch worker pool.

    Jobs are pulled off a shared queue by [workers] OCaml 5 domains
    (worker 0 is the calling domain, so [workers = 1] runs inline with no
    spawning). Jobs share no mutable state except the telemetry sink, the
    optional pattern cache and the optional cancel flag — all
    thread-safe — so per-job results are deterministic in the job seed
    regardless of scheduling, except for the effect of the shared cache
    (whose replayed patterns depend on job completion order; pass no
    cache for bit-identical reruns). *)

type report = {
  results : Job.result array;  (** in job-list order *)
  wall_time : float;
  workers : int;
}

val run :
  ?workers:int ->
  ?events:Events.sink ->
  ?cache:Pattern_cache.t ->
  ?cancel:bool Simgen_base.Shared.Atomic.t ->
  Job.spec list ->
  report
(** Runs every job to completion (or budget exhaustion); a job that
    raises yields a [Job.Failed] result without affecting its siblings.
    Setting [cancel] to [true] (e.g. from a signal handler) makes every
    running and queued job finish early as [Budget_exhausted Cancelled]. *)

val summary : report -> string
(** One human-readable line: job counts by outcome, workers, wall time. *)
