(** Execute one job: the budgeted CEC/sweep flow with telemetry and the
    shared pattern cache. Never raises — any exception becomes a
    [Job.Failed] result. Used by {!Pool}; exposed for tests and for
    embedding a single budgeted run without a pool. *)

val run :
  ?cache:Pattern_cache.t ->
  ?cancel:bool Atomic.t ->
  events:Events.sink ->
  worker:int ->
  Job.spec ->
  Job.result
