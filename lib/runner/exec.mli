(** Execute one job: the budgeted CEC/sweep flow with telemetry and the
    shared pattern cache. Never raises — any exception becomes a
    [Job.Failed] result. Used by {!Pool}; exposed for tests and for
    embedding a single budgeted run without a pool. *)

val run :
  ?cache:Pattern_cache.t ->
  ?fun_cache:Simgen_sweep.Fun_cache.t ->
  ?cancel:bool Simgen_base.Shared.Atomic.t ->
  events:Events.sink ->
  worker:int ->
  Job.spec ->
  Job.result
(** [fun_cache] attaches the serving layer's cross-request NPN function
    cache: {!Simgen_sweep.Sweeper.verify_pair} consults it before any
    SAT query and populates it on every verdict, and a [fun-cache]
    telemetry event with the job's hit/miss deltas is emitted at
    finish. *)
