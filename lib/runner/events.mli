(** Structured runner telemetry.

    One event per job phase, serialized as one JSON object per line
    (JSONL). Every event carries the job id, its label, and a timestamp
    relative to the sink's creation; the payload fields depend on the
    phase (see the README for the full schema). Sinks are thread-safe —
    workers on different domains emit concurrently. *)

type payload =
  | Queued
  | Started of { worker : int }
  | Lint of { target : string; errors : int; warnings : int; infos : int }
      (** pre-flight [simgen_check] lint of a loaded input network; a job
          with lint errors fails before burning any budget *)
  | Cache_replay of { vectors : int; cost : int }
      (** shared patterns replayed before any generation *)
  | Random_round of { round : int; cost : int }
  | Guided_round of {
      round : int;
      cost : int;
      vectors : int;
      conflicts : int;
      skipped : int;
    }
  | Sat_sweep of {
      calls : int;
      proved : int;
      disproved : int;
      conflicts : int;  (** solver conflict delta attributable to the sweep *)
      propagations : int;  (** solver propagation delta for the sweep *)
      restarts : int;  (** solver restart delta for the sweep *)
      cost : int;
    }
  | Finished of {
      status : string;  (** {!Job.status_to_string} *)
      budget : string;  (** ["ok"] or the exhaustion reason *)
      final_cost : int;
      cost_history : int list;
      sat_calls : int;
      sat_conflicts : int;  (** sweep + PO-phase solver conflicts *)
      sat_propagations : int;  (** sweep + PO-phase solver propagations *)
      sat_restarts : int;  (** sweep + PO-phase solver restarts *)
      cache_hits : int;
      cache_added : int;
      time : float;
    }

type event = { job : int; label : string; at : float; payload : payload }

val to_json : event -> string
(** One JSON object, no trailing newline. *)

type sink

val null : sink

val memory : unit -> sink * (unit -> event list)
(** In-memory sink for tests: the second component returns the events
    emitted so far, oldest first. *)

val channel : out_channel -> sink
(** JSONL sink: one [to_json] line per event, flushed per line so the
    stream is tail-able while a batch runs. The caller owns the channel. *)

val emit : sink -> job:int -> label:string -> payload -> unit
