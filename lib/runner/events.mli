(** Structured runner telemetry.

    One event per job phase, serialized as one JSON object per line
    (JSONL). Every event carries the job id, its label, and a timestamp
    relative to the sink's creation; the payload fields depend on the
    phase (see the README for the full schema). Sinks are thread-safe —
    workers on different domains emit concurrently. *)

type payload =
  | Queued
  | Started of { worker : int }
  | Lint of { target : string; errors : int; warnings : int; infos : int }
      (** pre-flight [simgen_check] lint of a loaded input network; a job
          with lint errors fails before burning any budget *)
  | Cache_replay of { vectors : int; cost : int }
      (** shared patterns replayed before any generation *)
  | Random_round of { round : int; cost : int }
  | Guided_round of {
      round : int;
      cost : int;
      vectors : int;
      conflicts : int;
      skipped : int;
    }
  | Sat_sweep of {
      calls : int;
      proved : int;
      disproved : int;
      conflicts : int;  (** solver conflict delta attributable to the sweep *)
      propagations : int;  (** solver propagation delta for the sweep *)
      restarts : int;  (** solver restart delta for the sweep *)
      deleted : int;
          (** clauses physically deleted during the sweep: learnt-clause
              reductions plus session GC retractions *)
      cost : int;
    }
  | Fault of { site : string; count : int }
      (** an armed {!Simgen_fault.Fault} site fired [count] times during
          the attempt just finished *)
  | Retry of { attempt : int; delay : float; cause : string }
      (** attempt [attempt] failed on a retryable [cause]; the supervisor
          sleeps [delay] seconds and re-runs the job *)
  | Degrade of {
      unknowns : int;
      escalations : int;
      fresh_fallbacks : int;
      bdd_fallbacks : int;
      session_rebuilds : int;
    }
      (** what the degradation ladder had to do
          ({!Simgen_sweep.Sweeper.degrade_stats}); emitted only when
          non-zero *)
  | Quarantine of { a : int; b : int }
      (** a candidate pair every ladder rung gave up on — reported, never
          merged *)
  | Fun_cache_stats of {
      consults : int;
      hits : int;
      misses : int;
      local_proofs : int;
      pattern_hits : int;
      collisions : int;
      evictions : int;
      dropped : int;
      entries : int;
      bytes : int;
      journal_appends : int;
      journal_replayed : int;
      checkpoints : int;
    }
      (** per-job delta of the cross-request NPN function cache
          ({!Simgen_sweep.Fun_cache}), except [entries]/[bytes] and the
          journal/checkpoint persistence counters, which are the cache's
          resident totals at job finish; emitted only when a cache was
          attached to the job *)
  | Certificate of {
      queries : int;
      proved : int;
      merges : int;
      steps_checked : int;
      steps_trimmed : int;
      valid : bool;
      time : float;
    }
      (** the whole-sweep certificate of a [certify] job was replayed by
          the independent checker ({!Simgen_check.Certificate.check});
          [valid = false] fails the job *)
  | Finished of {
      status : string;  (** {!Job.status_to_string} *)
      budget : string;  (** ["ok"] or the exhaustion reason *)
      final_cost : int;
      cost_history : int list;
      sat_calls : int;
      sat_conflicts : int;  (** sweep + PO-phase solver conflicts *)
      sat_propagations : int;  (** sweep + PO-phase solver propagations *)
      sat_restarts : int;  (** sweep + PO-phase solver restarts *)
      cache_hits : int;
      cache_added : int;
      attempts : int;  (** supervisor attempts this result took *)
      time : float;
    }

type event = { job : int; label : string; at : float; payload : payload }

val to_json : event -> string
(** One JSON object, no trailing newline. *)

type sink

val null : sink

val memory : unit -> sink * (unit -> event list)
(** In-memory sink for tests: the second component returns the events
    emitted so far, oldest first. *)

val callback : (event -> unit) -> sink
(** Route every event to [f] (serialised under the sink's mutex). The
    serving layer uses this to multiplex one job's telemetry to both the
    daemon log and the requesting client. *)

val channel : out_channel -> sink
(** JSONL sink: one [to_json] line per event, flushed per line so the
    stream is tail-able while a batch runs. The caller owns the channel. *)

val emit : sink -> job:int -> label:string -> payload -> unit
