module N = Simgen_network.Network
module Timer = Simgen_base.Timer
module Sweeper = Simgen_sweep.Sweeper
module Cec = Simgen_sweep.Cec
module Sat_session = Simgen_sweep.Sat_session
module Sweep_options = Simgen_sweep.Sweep_options
module Solver = Simgen_sat.Solver
module Strategy = Simgen_core.Strategy

(* The budgeted CEC/sweep flow. Mirrors [Cec.check] (random rounds, guided
   rounds, SAT sweep, PO miters with substitution and counter-example
   feedback) with three additions: a cooperative budget check at every
   phase boundary, a telemetry event per phase, and the shared pattern
   cache consulted before and fed after the solver work. The first random
   round always runs, so even a job whose deadline has already passed
   returns a non-empty cost history with its partial result. *)

exception Over_budget

let run ?cache ?cancel ~events ~worker (spec : Job.spec) : Job.result =
  let t0 = Timer.now () in
  let emit payload = Events.emit events ~job:spec.id ~label:spec.label payload in
  emit (Started { worker });
  let cache_hits = ref 0 and cache_added = ref 0 in
  let po_calls = ref 0 in
  (* PO-phase solver-counter deltas, kept apart from the sweep's own
     stats so the Finished totals attribute work per phase. *)
  let po_conflicts = ref 0 and po_propagations = ref 0 and po_restarts = ref 0 in
  let finish sweeper status =
    let budget_status =
      match status with
      | Job.Budget_exhausted reason -> Budget.reason_to_string reason
      | Job.Swept | Job.Equivalent | Job.Not_equivalent _ | Job.Failed _ ->
          "ok"
    in
    let result =
      {
        Job.spec;
        status;
        final_cost =
          (match sweeper with Some sw -> Sweeper.cost sw | None -> 0);
        cost_history =
          (match sweeper with Some sw -> Sweeper.cost_history sw | None -> []);
        guided =
          (match sweeper with
           | Some sw -> Sweeper.guided_stats sw
           | None -> Sweeper.(empty_guided));
        sat =
          (match sweeper with
           | Some sw -> Sweeper.sat_stats sw
           | None -> Sweeper.(empty_sat));
        po_calls = !po_calls;
        cache_hits = !cache_hits;
        cache_added = !cache_added;
        worker;
        time = Timer.now () -. t0;
      }
    in
    emit
      (Finished
         {
           status = Job.status_to_string status;
           budget = budget_status;
           final_cost = result.Job.final_cost;
           cost_history = result.Job.cost_history;
           sat_calls = result.Job.sat.Sweeper.calls + !po_calls;
           sat_conflicts = result.Job.sat.Sweeper.conflicts + !po_conflicts;
           sat_propagations =
             result.Job.sat.Sweeper.propagations + !po_propagations;
           sat_restarts = result.Job.sat.Sweeper.restarts + !po_restarts;
           cache_hits = !cache_hits;
           cache_added = !cache_added;
           time = result.Job.time;
         });
    result
  in
  try
    let budget = Budget.start ?cancel spec.limits in
    let stop = Budget.should_stop budget in
    (* Pre-flight validation: a structurally broken input would burn its
       whole budget on garbage (or crash mid-sweep); lint errors fail the
       job here, as a [Failed] result with the first diagnostic. *)
    let lint net =
      let diags = Simgen_check.Lint.network net in
      let errors, warnings, infos = Simgen_check.Diagnostic.counts diags in
      emit (Lint { target = N.name net; errors; warnings; infos });
      Simgen_check.Audit.check_exn ~what:(N.name net) diags;
      net
    in
    let net, po_pairs =
      match spec.kind with
      | Job.Sweep c -> (lint (Job.load c), None)
      | Job.Cec (c1, c2) ->
          let n1 = lint (Job.load c1) and n2 = lint (Job.load c2) in
          if N.num_pos n1 <> N.num_pos n2 then
            failwith "PO count mismatch";
          let joined, pos1, pos2 = Cec.join n1 n2 in
          (joined, Some (pos1, pos2))
    in
    let sweeper = Sweeper.create ~seed:spec.seed net in
    let config = Strategy.config spec.strategy in
    let share vec =
      match cache with
      | Some c -> if Pattern_cache.add c vec then incr cache_added
      | None -> ()
    in
    try
      (* Phase 0: replay shared patterns from earlier compatible jobs so
         related instances start with pre-split classes. *)
      (match cache with
       | Some c -> (
           match Pattern_cache.borrow c ~npis:(N.num_pis net) with
           | [] -> ()
           | vecs ->
               cache_hits := List.length vecs;
               Sweeper.apply_vectors sweeper vecs;
               emit
                 (Cache_replay
                    { vectors = !cache_hits; cost = Sweeper.cost sweeper }))
       | None -> ());
      (* Phase 1: random simulation. The first round is unconditional so a
         partial result always carries at least one cost sample. *)
      for round = 1 to max 1 spec.random_rounds do
        if round > 1 && stop () then raise Over_budget;
        Sweeper.random_round sweeper;
        emit (Random_round { round; cost = Sweeper.cost sweeper })
      done;
      (* Phase 2: guided simulation, budget-checked per round. *)
      for round = 1 to spec.guided_iterations do
        if stop () then raise Over_budget;
        let d = Sweeper.guided_round_config sweeper config in
        Budget.note_guided_iteration budget;
        emit
          (Guided_round
             {
               round;
               cost = Sweeper.cost sweeper;
               vectors = d.Sweeper.vectors;
               conflicts = d.Sweeper.gen_conflicts;
               skipped = d.Sweeper.skipped;
             })
      done;
      (* Phase 3: SAT sweeping under the remaining call/deadline budget;
         counter-examples feed the shared cache. *)
      if stop () then raise Over_budget;
      let s =
        Sweeper.sat_sweep_with
          {
            Sweep_options.default with
            Sweep_options.max_sat_calls = Budget.remaining_sat_calls budget;
            should_stop = stop;
            on_cex = Some share;
          }
          sweeper
      in
      Budget.note_sat_calls budget s.Sweeper.calls;
      emit
        (Sat_sweep
           {
             calls = s.Sweeper.calls;
             proved = s.Sweeper.proved;
             disproved = s.Sweeper.disproved;
             conflicts = s.Sweeper.conflicts;
             propagations = s.Sweeper.propagations;
             restarts = s.Sweeper.restarts;
             cost = Sweeper.cost sweeper;
           });
      if stop () then raise Over_budget;
      (* Phase 4 (CEC only): PO miters over the proven substitution. *)
      match po_pairs with
      | None -> finish (Some sweeper) Job.Swept
      | Some (pos1, pos2) ->
          let subst = Sweeper.substitution sweeper in
          let session = Sweeper.session sweeper in
          (* PO miters reuse the sweep's session: cone encodings and
             learned clauses carry over, and per-call counter deltas are
             attributed to the PO phase. *)
          let check_po a b =
            let before = Sat_session.solver_stats session in
            let verdict = Sat_session.check_pair session a b in
            let after = Sat_session.solver_stats session in
            po_conflicts :=
              !po_conflicts + after.Solver.conflicts - before.Solver.conflicts;
            po_propagations :=
              !po_propagations + after.Solver.propagations
              - before.Solver.propagations;
            po_restarts :=
              !po_restarts + after.Solver.restarts - before.Solver.restarts;
            verdict
          in
          let rec check_pos i =
            if i >= Array.length pos1 then Job.Equivalent
            else begin
              let a = Sweeper.representative sweeper pos1.(i)
              and b = Sweeper.representative sweeper pos2.(i) in
              if a = b then check_pos (i + 1)
              else if stop () then raise Over_budget
              else begin
                incr po_calls;
                Budget.note_sat_calls budget 1;
                match check_po a b with
                | Sat_session.Equal ->
                    let lo = min a b and hi = max a b in
                    subst.(hi) <- lo;
                    check_pos (i + 1)
                | Sat_session.Counterexample vector ->
                    share vector;
                    Sweeper.apply_vector sweeper vector;
                    Job.Not_equivalent { po = i; vector }
              end
            end
          in
          finish (Some sweeper) (check_pos 0)
    with Over_budget ->
      let reason =
        match Budget.check budget with
        | Some r -> r
        | None -> assert false (* Over_budget is only raised when tripped *)
      in
      finish (Some sweeper) (Job.Budget_exhausted reason)
  with
  | Over_budget -> assert false (* handled by the inner handler *)
  | e -> finish None (Job.Failed (Printexc.to_string e))
