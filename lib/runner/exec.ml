module N = Simgen_network.Network
module Timer = Simgen_base.Timer
module Rng = Simgen_base.Rng
module Runtime_check = Simgen_base.Runtime_check
module Fault = Simgen_fault.Fault
module Sweeper = Simgen_sweep.Sweeper
module Cec = Simgen_sweep.Cec
module Sat_session = Simgen_sweep.Sat_session
module Sweep_options = Simgen_sweep.Sweep_options
module Solver = Simgen_sat.Solver
module Strategy = Simgen_core.Strategy

(* The budgeted CEC/sweep flow under a supervisor. One attempt mirrors
   [Cec.check] (random rounds, guided rounds, SAT sweep, PO miters with
   substitution and counter-example feedback) with a cooperative budget
   check at every phase boundary, a telemetry event per phase, and the
   shared pattern cache consulted before and fed after the solver work.
   The first random round always runs, so even a job whose deadline has
   already passed returns a non-empty cost history with its partial
   result.

   The supervisor around it owns the retry policy: an attempt that dies
   on an exception (a parse error, an invariant violation the sweeper
   could not absorb, an injected crash) or that a watchdog cut off is
   retried with jittered exponential backoff, up to [spec.retry]'s
   attempt cap; the wall-clock deadline spans attempts (each retry gets
   the remaining time), while the watchdog restarts per attempt. Every
   outcome — success, exhaustion, or the last attempt's failure — leaves
   through [finish], so exactly one Finished event is emitted and
   nothing ever escapes to the worker domain. *)

exception Over_budget

(* How long an injected worker stall may hold the domain when no budget
   is armed to cut it off — bounded so unbudgeted smoke runs cannot
   hang. *)
let max_unbudgeted_stall = 0.5

let fault_delta before after =
  List.filter_map
    (fun (site, n) ->
      let prev =
        match List.assoc_opt site before with Some p -> p | None -> 0
      in
      if n > prev then Some (site, n - prev) else None)
    after

let run ?cache ?fun_cache ?cancel ~events ~worker (spec : Job.spec) : Job.result
    =
  let t0 = Timer.now () in
  let emit payload = Events.emit events ~job:spec.id ~label:spec.label payload in
  emit (Started { worker });
  let fc_before =
    Option.map Simgen_sweep.Fun_cache.stats fun_cache
  in
  let cache_hits = ref 0 and cache_added = ref 0 in
  let po_calls = ref 0 in
  (* PO-phase solver-counter deltas, kept apart from the sweep's own
     stats so the Finished totals attribute work per phase. *)
  let po_conflicts = ref 0 and po_propagations = ref 0 and po_restarts = ref 0 in
  let attempts = ref 0 in
  let retry_rng = Rng.create (spec.seed lxor 0x7e7a) in
  let faults_at_start = Fault.log () in
  let finish sweeper status =
    let budget_status =
      match status with
      | Job.Budget_exhausted reason -> Budget.reason_to_string reason
      | Job.Swept | Job.Equivalent | Job.Not_equivalent _ | Job.Inconclusive _
      | Job.Failed _ ->
          "ok"
    in
    (* Ladder telemetry: what degradation the attempt needed, and which
       pairs were quarantined rather than decided. *)
    let quarantined =
      match sweeper with
      | None -> []
      | Some sw ->
          let d = Sweeper.degrade_stats sw in
          if
            d.Sweeper.unknowns > 0 || d.Sweeper.escalations > 0
            || d.Sweeper.fresh_fallbacks > 0 || d.Sweeper.bdd_fallbacks > 0
            || d.Sweeper.session_rebuilds > 0
          then
            emit
              (Degrade
                 {
                   unknowns = d.Sweeper.unknowns;
                   escalations = d.Sweeper.escalations;
                   fresh_fallbacks = d.Sweeper.fresh_fallbacks;
                   bdd_fallbacks = d.Sweeper.bdd_fallbacks;
                   session_rebuilds = d.Sweeper.session_rebuilds;
                 });
          List.iter
            (fun (a, b) -> emit (Quarantine { a; b }))
            (List.rev d.Sweeper.quarantined);
          d.Sweeper.quarantined
    in
    (* Function-cache telemetry: this job's consult/hit deltas plus the
       cache's resident totals. The cache outlives the job (it is the
       serving layer's cross-request asset), hence the delta. *)
    (match (fun_cache, fc_before) with
     | Some fc, Some b ->
         let s = Simgen_sweep.Fun_cache.stats fc in
         emit
           (Fun_cache_stats
              {
                consults = s.Simgen_sweep.Fun_cache.consults - b.Simgen_sweep.Fun_cache.consults;
                hits = s.Simgen_sweep.Fun_cache.hits - b.Simgen_sweep.Fun_cache.hits;
                misses = s.Simgen_sweep.Fun_cache.misses - b.Simgen_sweep.Fun_cache.misses;
                local_proofs =
                  s.Simgen_sweep.Fun_cache.local_proofs
                  - b.Simgen_sweep.Fun_cache.local_proofs;
                pattern_hits =
                  s.Simgen_sweep.Fun_cache.pattern_hits
                  - b.Simgen_sweep.Fun_cache.pattern_hits;
                collisions =
                  s.Simgen_sweep.Fun_cache.collisions
                  - b.Simgen_sweep.Fun_cache.collisions;
                evictions =
                  s.Simgen_sweep.Fun_cache.evictions
                  - b.Simgen_sweep.Fun_cache.evictions;
                dropped =
                  s.Simgen_sweep.Fun_cache.dropped - b.Simgen_sweep.Fun_cache.dropped;
                entries = s.Simgen_sweep.Fun_cache.entries;
                bytes = s.Simgen_sweep.Fun_cache.bytes;
                journal_appends = s.Simgen_sweep.Fun_cache.journal_appends;
                journal_replayed = s.Simgen_sweep.Fun_cache.journal_replayed;
                checkpoints = s.Simgen_sweep.Fun_cache.checkpoints;
              })
     | _ -> ());
    let result =
      {
        Job.spec;
        status;
        final_cost =
          (match sweeper with Some sw -> Sweeper.cost sw | None -> 0);
        cost_history =
          (match sweeper with Some sw -> Sweeper.cost_history sw | None -> []);
        guided =
          (match sweeper with
           | Some sw -> Sweeper.guided_stats sw
           | None -> Sweeper.(empty_guided));
        sat =
          (match sweeper with
           | Some sw -> Sweeper.sat_stats sw
           | None -> Sweeper.(empty_sat));
        po_calls = !po_calls;
        cache_hits = !cache_hits;
        cache_added = !cache_added;
        worker;
        attempts = max 1 !attempts;
        quarantined;
        time = Timer.now () -. t0;
      }
    in
    emit
      (Finished
         {
           status = Job.status_to_string status;
           budget = budget_status;
           final_cost = result.Job.final_cost;
           cost_history = result.Job.cost_history;
           sat_calls = result.Job.sat.Sweeper.calls + !po_calls;
           sat_conflicts = result.Job.sat.Sweeper.conflicts + !po_conflicts;
           sat_propagations =
             result.Job.sat.Sweeper.propagations + !po_propagations;
           sat_restarts = result.Job.sat.Sweeper.restarts + !po_restarts;
           cache_hits = !cache_hits;
           cache_added = !cache_added;
           attempts = result.Job.attempts;
           time = result.Job.time;
         });
    result
  in
  (* One full attempt of the flow. Returns the sweeper (for partial
     stats) and the attempt's status; raises on crash-shaped failures,
     which the supervisor turns into retries or a structured [Failed]. *)
  let attempt_once budget =
    (* The worker-crash fault dies here, before any phase: the shape of a
       domain lost to a poisoned job. *)
    Fault.crash "worker-crash";
    let stop = Budget.should_stop budget in
    (* The worker-stall fault holds the domain until a watchdog (or any
       other budget) cuts it off — bounded when nothing is armed. *)
    let stalled_out =
      if Fault.enabled () && Fault.fire "worker-stall" then begin
        let t_stall = Timer.now () in
        while
          Budget.check budget = None
          && Timer.now () -. t_stall < max_unbudgeted_stall
        do
          Unix.sleepf 0.01
        done;
        Budget.check budget
      end
      else None
    in
    match stalled_out with
    | Some reason ->
        (* The stall consumed the whole attempt: a structured exhaustion
           with no partial stats. (A budget that trips without a stall
           still runs the unconditional first round, so those partial
           results keep at least one cost sample.) *)
        (None, Job.Budget_exhausted reason)
    | None ->
    (* Pre-flight validation: a structurally broken input would burn its
       whole budget on garbage (or crash mid-sweep); lint errors fail the
       job here, as a [Failed] result with the first diagnostic. *)
    let lint net =
      let diags = Simgen_check.Lint.network net in
      (* Under runtime checks, also audit the clause stream the Tseitin
         encoder would emit for this network (C001..C008) — catches
         encoder regressions before the sweep trusts the encoding. *)
      let diags =
        if Runtime_check.enabled () then
          diags @ Simgen_check.Lint.tseitin_encoding net
        else diags
      in
      let errors, warnings, infos = Simgen_check.Diagnostic.counts diags in
      emit (Lint { target = N.name net; errors; warnings; infos });
      Simgen_check.Audit.check_exn ~what:(N.name net) diags;
      net
    in
    let net, po_pairs =
      match spec.kind with
      | Job.Sweep c -> (lint (Job.load c), None)
      | Job.Cec (c1, c2) ->
          let n1 = lint (Job.load c1) and n2 = lint (Job.load c2) in
          if N.num_pos n1 <> N.num_pos n2 then
            failwith "PO count mismatch";
          let joined, pos1, pos2 = Cec.join n1 n2 in
          (joined, Some (pos1, pos2))
    in
    let config = Strategy.config spec.strategy in
    let sweep_opts =
      {
        Sweep_options.default with
        Sweep_options.seed = spec.seed;
        strategy = spec.strategy;
        max_conflicts = spec.max_conflicts;
        certify = spec.certify;
        solver_audit = spec.solver_audit;
        should_stop = stop;
        fun_cache;
      }
    in
    let sweeper = Sweeper.create sweep_opts net in
    (* Certificate phase (certify jobs): assemble the whole-sweep
       certificate and replay it through the independent checker before
       declaring the status final. An invalid certificate overrides any
       status — a merge the checker cannot re-establish makes the whole
       result untrustworthy. *)
    let certified status =
      if not spec.certify then status
      else begin
        let t_cert = Timer.now () in
        let report = Simgen_check.Certificate.check (Sweeper.certificate sweeper) in
        emit
          (Certificate
             {
               queries = report.Simgen_check.Certificate.queries;
               proved = report.Simgen_check.Certificate.proved;
               merges = report.Simgen_check.Certificate.merges;
               steps_checked = report.Simgen_check.Certificate.steps_checked;
               steps_trimmed = report.Simgen_check.Certificate.steps_trimmed;
               valid = report.Simgen_check.Certificate.valid;
               time = Timer.now () -. t_cert;
             });
        if report.Simgen_check.Certificate.valid then status
        else
          Job.Failed
            {
              message =
                (match report.Simgen_check.Certificate.diags with
                 | d :: _ -> "certificate:" ^ Simgen_check.Diagnostic.to_string d
                 | [] -> "certificate:invalid");
              attempts = !attempts;
              faults = fault_delta faults_at_start (Fault.log ());
            }
      end
    in
    let share vec =
      match cache with
      | Some c -> if Pattern_cache.add c vec then incr cache_added
      | None -> ()
    in
    try
      (* Phase 0: replay shared patterns from earlier compatible jobs so
         related instances start with pre-split classes. *)
      (match cache with
       | Some c -> (
           match Pattern_cache.borrow c ~npis:(N.num_pis net) with
           | [] -> ()
           | vecs ->
               cache_hits := List.length vecs;
               Sweeper.apply_vectors sweeper vecs;
               emit
                 (Cache_replay
                    { vectors = !cache_hits; cost = Sweeper.cost sweeper }))
       | None -> ());
      (* Phase 1: random simulation. The first round is unconditional so a
         partial result always carries at least one cost sample. *)
      for round = 1 to max 1 spec.random_rounds do
        if round > 1 && stop () then raise Over_budget;
        Sweeper.random_round sweeper;
        emit (Random_round { round; cost = Sweeper.cost sweeper })
      done;
      (* Phase 2: guided simulation, budget-checked per round. *)
      for round = 1 to spec.guided_iterations do
        if stop () then raise Over_budget;
        let d = Sweeper.guided_round_config sweeper config in
        Budget.note_guided_iteration budget;
        emit
          (Guided_round
             {
               round;
               cost = Sweeper.cost sweeper;
               vectors = d.Sweeper.vectors;
               conflicts = d.Sweeper.gen_conflicts;
               skipped = d.Sweeper.skipped;
             })
      done;
      (* Phase 3: SAT sweeping under the remaining call/deadline budget;
         counter-examples feed the shared cache. *)
      if stop () then raise Over_budget;
      let s =
        Sweeper.sat_sweep
          {
            sweep_opts with
            Sweep_options.max_sat_calls = Budget.remaining_sat_calls budget;
            on_cex = Some share;
          }
          sweeper
      in
      Budget.note_sat_calls budget s.Sweeper.calls;
      emit
        (Sat_sweep
           {
             calls = s.Sweeper.calls;
             proved = s.Sweeper.proved;
             disproved = s.Sweeper.disproved;
             conflicts = s.Sweeper.conflicts;
             propagations = s.Sweeper.propagations;
             restarts = s.Sweeper.restarts;
             deleted = s.Sweeper.deleted;
             cost = Sweeper.cost sweeper;
           });
      if stop () then raise Over_budget;
      (* Phase 4 (CEC only): PO miters over the proven substitution,
         through the degradation ladder (the sweep's session by default —
         cone encodings and learned clauses carry over; per-call counter
         deltas are attributed to the PO phase). *)
      match po_pairs with
      | None -> (Some sweeper, certified Job.Swept)
      | Some (pos1, pos2) ->
          let check_po a b =
            let verdict, st = Sweeper.verify_pair sweep_opts sweeper a b in
            po_conflicts := !po_conflicts + st.Solver.conflicts;
            po_propagations := !po_propagations + st.Solver.propagations;
            po_restarts := !po_restarts + st.Solver.restarts;
            verdict
          in
          let rec check_pos i unknowns =
            if i >= Array.length pos1 then
              match unknowns with
              | [] -> Job.Equivalent
              | pos -> Job.Inconclusive { pos = List.rev pos }
            else begin
              let a = Sweeper.representative sweeper pos1.(i)
              and b = Sweeper.representative sweeper pos2.(i) in
              if a = b then check_pos (i + 1) unknowns
              else if stop () then raise Over_budget
              else begin
                incr po_calls;
                Budget.note_sat_calls budget 1;
                match check_po a b with
                | Sat_session.Equal ->
                    (* Through [Sweeper.merge] so certify jobs log the PO
                       merge against the proof that established it. *)
                    Sweeper.merge sweeper a b;
                    check_pos (i + 1) unknowns
                | Sat_session.Counterexample vector ->
                    share vector;
                    Sweeper.apply_vector sweeper vector;
                    Job.Not_equivalent { po = i; vector }
                | Sat_session.Unknown -> check_pos (i + 1) (i :: unknowns)
              end
            end
          in
          (Some sweeper, certified (check_pos 0 []))
    with Over_budget ->
      let reason =
        match Budget.check budget with
        | Some r -> r
        | None -> assert false (* Over_budget is only raised when tripped *)
      in
      (Some sweeper, Job.Budget_exhausted reason)
  in
  (* The supervisor: run attempts until one yields a final status. *)
  let cancelled () =
    match cancel with Some c -> Simgen_base.Shared.Atomic.get c | None -> false
  in
  let rec supervise () =
    incr attempts;
    let n = !attempts in
    let faults_before = Fault.log () in
    (* The deadline spans attempts — each retry gets the remaining
       wall-clock time — while the watchdog restarts per attempt. *)
    let limits =
      match spec.limits.Budget.deadline with
      | None -> spec.limits
      | Some d ->
          {
            spec.limits with
            Budget.deadline = Some (Float.max 0.0 (d -. (Timer.now () -. t0)));
          }
    in
    let budget = Budget.start ?cancel limits in
    let note_faults () =
      List.iter
        (fun (site, count) -> emit (Fault { site; count }))
        (fault_delta faults_before (Fault.log ()))
    in
    let retry_or ~cause fallback =
      if n < spec.retry.Retry_policy.max_attempts && not (cancelled ()) then begin
        let delay = Retry_policy.delay spec.retry retry_rng ~attempt:n in
        emit (Retry { attempt = n; delay; cause });
        if delay > 0.0 then Unix.sleepf delay;
        supervise ()
      end
      else fallback ()
    in
    match attempt_once budget with
    | sweeper, status -> (
        note_faults ();
        match status with
        | Job.Budget_exhausted Budget.Watchdog ->
            (* A stalled attempt is retried; other exhaustions are final —
               retrying would spend the same budget the same way. *)
            retry_or ~cause:"watchdog" (fun () -> finish sweeper status)
        | Job.Budget_exhausted
            ( Budget.Deadline | Budget.Sat_calls | Budget.Guided_iterations
            | Budget.Cancelled )
        | Job.Equivalent | Job.Not_equivalent _ | Job.Inconclusive _
        | Job.Swept | Job.Failed _ ->
            finish sweeper status)
    | exception e ->
        note_faults ();
        let message =
          match e with
          | Runtime_check.Violation msg -> "violation:" ^ msg
          | Fault.Injected site -> "injected-fault:" ^ site
          | e -> Printexc.to_string e
        in
        retry_or ~cause:message (fun () ->
            finish None
              (Job.Failed
                 {
                   message;
                   attempts = n;
                   faults = fault_delta faults_at_start (Fault.log ());
                 }))
  in
  supervise ()
