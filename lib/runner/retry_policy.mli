(** Retry policy for supervised jobs.

    The executor's supervisor ({!Exec.run}) re-runs a job whose attempt
    died on a retryable failure — an escaped exception (including injected
    worker crashes) or a {!Budget.Watchdog} stall — sleeping an
    exponentially growing, jittered delay between attempts. Budget
    exhaustions other than the watchdog, and genuine verdicts, are final:
    retrying them would just spend the same budget again. *)

type t = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  backoff : float;  (** seconds before the second attempt *)
  multiplier : float;  (** backoff growth per further attempt *)
  jitter : float;
      (** relative jitter in [0, 1]: each delay is scaled by a uniform
          factor from [1 - jitter, 1 + jitter], decorrelating workers
          that fail together *)
}

val none : t
(** One attempt, no retries — the pre-supervisor behaviour. *)

val default : t
(** 3 attempts, 50 ms initial backoff, doubling, 0.5 jitter. *)

val with_attempts : int -> t -> t
(** Override [max_attempts] (raises [Invalid_argument] below 1). *)

val delay : t -> Simgen_base.Rng.t -> attempt:int -> float
(** Seconds to sleep after failed attempt [attempt] (1-based). The jitter
    scale is drawn from [rng], so the sequence is deterministic per
    seed. *)

val to_string : t -> string
