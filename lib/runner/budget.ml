module Timer = Simgen_base.Timer
module Shared = Simgen_base.Shared

type limits = {
  deadline : float option;
  watchdog : float option;
  max_sat_calls : int option;
  max_guided_iterations : int option;
}

let unlimited =
  {
    deadline = None;
    watchdog = None;
    max_sat_calls = None;
    max_guided_iterations = None;
  }

type reason = Deadline | Watchdog | Sat_calls | Guided_iterations | Cancelled

let reason_to_string = function
  | Deadline -> "deadline"
  | Watchdog -> "watchdog"
  | Sat_calls -> "sat-calls"
  | Guided_iterations -> "guided-iterations"
  | Cancelled -> "cancelled"

type t = {
  limits : limits;
  started : float;
  cancel : bool Shared.Atomic.t;
  mutable sat_calls : int;
  mutable guided_iterations : int;
  (* First exhaustion reason, sticky: once a budget trips, every later
     check reports the same reason, so a job's exit cause is stable even
     if a second limit would also have tripped meanwhile. *)
  mutable verdict : reason option;
}

let start ?cancel limits =
  {
    limits;
    started = Timer.now ();
    cancel =
      (match cancel with
      | Some c -> c
      | None ->
          Shared.Atomic.make ~loc:(Shared.here __POS__) "runner.budget.cancel"
            false);
    sat_calls = 0;
    guided_iterations = 0;
    verdict = None;
  }

let elapsed t = Timer.now () -. t.started
let note_sat_calls t n = t.sat_calls <- t.sat_calls + n
let note_guided_iteration t = t.guided_iterations <- t.guided_iterations + 1

let check t =
  match t.verdict with
  | Some _ as v -> v
  | None ->
      let over limit value =
        match limit with Some m -> value >= m | None -> false
      in
      let v =
        if Shared.Atomic.get t.cancel then Some Cancelled
        else if over t.limits.deadline (elapsed t) then Some Deadline
        else if over t.limits.watchdog (elapsed t) then Some Watchdog
        else if over t.limits.max_sat_calls t.sat_calls then Some Sat_calls
        else if over t.limits.max_guided_iterations t.guided_iterations then
          Some Guided_iterations
        else None
      in
      t.verdict <- v;
      v

let should_stop t () = check t <> None

let remaining_sat_calls t =
  Option.map (fun m -> max 0 (m - t.sat_calls)) t.limits.max_sat_calls

let sat_calls t = t.sat_calls
let guided_iterations t = t.guided_iterations
