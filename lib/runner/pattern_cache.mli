(** Cross-job distinguishing-pattern cache.

    Counter-examples found while sweeping one job are {e real}
    distinguishing patterns; on stacked or otherwise related benchmarks
    (same PI count) they tend to split the next job's equivalence classes
    too. The cache keys vectors by PI count; compatible jobs replay the
    cached vectors as their first simulation words, before any guided
    generation, so related instances start with pre-split classes.

    All operations are mutex-protected: one cache is shared by every
    worker domain of a pool run. Vectors are copied on both {!add} and
    {!borrow}, and every entry carries a checksum taken at insertion:
    {!borrow} re-verifies it and silently drops corrupted entries (a
    dropped pattern only costs a class split it would have bought — the
    sweep stays correct), counting them in {!dropped}. *)

type t

val create : ?capacity_per_key:int -> unit -> t
(** Keep at most [capacity_per_key] vectors per PI count (default 64, one
    simulation word), evicting the oldest. *)

val add : t -> bool array -> bool
(** Store a vector under its PI count. Returns [false] (and stores
    nothing) if an identical vector is already cached. *)

val borrow : t -> npis:int -> bool array list
(** All cached vectors for the PI count, newest first (at most the
    per-key capacity). Counts as one hit if non-empty, one miss if
    empty. *)

val hits : t -> int
val misses : t -> int

val size : t -> int
(** Vectors currently stored across all keys. *)

val dropped : t -> int
(** Entries discarded by {!borrow} because their checksum no longer
    matched their contents. *)
