module Timer = Simgen_base.Timer
module Shared = Simgen_base.Shared

type payload =
  | Queued
  | Started of { worker : int }
  | Lint of { target : string; errors : int; warnings : int; infos : int }
  | Cache_replay of { vectors : int; cost : int }
  | Random_round of { round : int; cost : int }
  | Guided_round of {
      round : int;
      cost : int;
      vectors : int;
      conflicts : int;
      skipped : int;
    }
  | Sat_sweep of {
      calls : int;
      proved : int;
      disproved : int;
      conflicts : int;
      propagations : int;
      restarts : int;
      deleted : int;
      cost : int;
    }
  | Fault of { site : string; count : int }
  | Retry of { attempt : int; delay : float; cause : string }
  | Degrade of {
      unknowns : int;
      escalations : int;
      fresh_fallbacks : int;
      bdd_fallbacks : int;
      session_rebuilds : int;
    }
  | Quarantine of { a : int; b : int }
  | Fun_cache_stats of {
      consults : int;
      hits : int;
      misses : int;
      local_proofs : int;
      pattern_hits : int;
      collisions : int;
      evictions : int;
      dropped : int;
      entries : int;
      bytes : int;
      journal_appends : int;
      journal_replayed : int;
      checkpoints : int;
    }
  | Certificate of {
      queries : int;
      proved : int;
      merges : int;
      steps_checked : int;
      steps_trimmed : int;
      valid : bool;
      time : float;
    }
  | Finished of {
      status : string;
      budget : string;
      final_cost : int;
      cost_history : int list;
      sat_calls : int;
      sat_conflicts : int;
      sat_propagations : int;
      sat_restarts : int;
      cache_hits : int;
      cache_added : int;
      attempts : int;
      time : float;
    }

type event = { job : int; label : string; at : float; payload : payload }

(* ------------------------------------------------------------------ *)
(* JSON serialization (hand-rolled: the container has no JSON library, *)
(* and the schema is flat enough that a writer is all we need)         *)
(* ------------------------------------------------------------------ *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_field buf first name value =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_char buf '"';
  Buffer.add_string buf name;
  Buffer.add_string buf "\":";
  Buffer.add_string buf value

let str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  json_escape buf s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let phase_name = function
  | Queued -> "queued"
  | Started _ -> "started"
  | Lint _ -> "lint"
  | Cache_replay _ -> "cache-replay"
  | Random_round _ -> "random-round"
  | Guided_round _ -> "guided-round"
  | Sat_sweep _ -> "sat-sweep"
  | Fault _ -> "fault"
  | Retry _ -> "retry"
  | Degrade _ -> "degrade"
  | Quarantine _ -> "quarantine"
  | Fun_cache_stats _ -> "fun-cache"
  | Certificate _ -> "certificate"
  | Finished _ -> "finished"

let to_json { job; label; at; payload } =
  let buf = Buffer.create 128 in
  let first = ref true in
  let field name value = add_field buf first name value in
  let int_field name v = field name (string_of_int v) in
  let float_field name v = field name (Printf.sprintf "%.6f" v) in
  Buffer.add_char buf '{';
  int_field "job" job;
  field "label" (str label);
  float_field "at" at;
  field "phase" (str (phase_name payload));
  (match payload with
   | Queued -> ()
   | Started { worker } -> int_field "worker" worker
   | Lint { target; errors; warnings; infos } ->
       field "target" (str target);
       int_field "errors" errors;
       int_field "warnings" warnings;
       int_field "infos" infos
   | Cache_replay { vectors; cost } ->
       int_field "vectors" vectors;
       int_field "cost" cost
   | Random_round { round; cost } ->
       int_field "round" round;
       int_field "cost" cost
   | Guided_round { round; cost; vectors; conflicts; skipped } ->
       int_field "round" round;
       int_field "cost" cost;
       int_field "vectors" vectors;
       int_field "conflicts" conflicts;
       int_field "skipped" skipped
   | Sat_sweep
       { calls; proved; disproved; conflicts; propagations; restarts;
         deleted; cost } ->
       int_field "calls" calls;
       int_field "proved" proved;
       int_field "disproved" disproved;
       int_field "conflicts" conflicts;
       int_field "propagations" propagations;
       int_field "restarts" restarts;
       int_field "deleted" deleted;
       int_field "cost" cost
   | Fault { site; count } ->
       field "site" (str site);
       int_field "count" count
   | Retry { attempt; delay; cause } ->
       int_field "attempt" attempt;
       float_field "delay" delay;
       field "cause" (str cause)
   | Degrade d ->
       int_field "unknowns" d.unknowns;
       int_field "escalations" d.escalations;
       int_field "fresh_fallbacks" d.fresh_fallbacks;
       int_field "bdd_fallbacks" d.bdd_fallbacks;
       int_field "session_rebuilds" d.session_rebuilds
   | Quarantine { a; b } ->
       int_field "a" a;
       int_field "b" b
   | Fun_cache_stats s ->
       int_field "consults" s.consults;
       int_field "hits" s.hits;
       int_field "misses" s.misses;
       int_field "local_proofs" s.local_proofs;
       int_field "pattern_hits" s.pattern_hits;
       int_field "collisions" s.collisions;
       int_field "evictions" s.evictions;
       int_field "dropped" s.dropped;
       int_field "entries" s.entries;
       int_field "bytes" s.bytes;
       int_field "journal_appends" s.journal_appends;
       int_field "journal_replayed" s.journal_replayed;
       int_field "checkpoints" s.checkpoints
   | Certificate c ->
       int_field "queries" c.queries;
       int_field "proved" c.proved;
       int_field "merges" c.merges;
       int_field "steps_checked" c.steps_checked;
       int_field "steps_trimmed" c.steps_trimmed;
       field "valid" (if c.valid then "true" else "false");
       float_field "time" c.time
   | Finished f ->
       field "status" (str f.status);
       field "budget" (str f.budget);
       int_field "final_cost" f.final_cost;
       field "cost_history"
         (Printf.sprintf "[%s]"
            (String.concat "," (List.map string_of_int f.cost_history)));
       int_field "sat_calls" f.sat_calls;
       int_field "sat_conflicts" f.sat_conflicts;
       int_field "sat_propagations" f.sat_propagations;
       int_field "sat_restarts" f.sat_restarts;
       int_field "cache_hits" f.cache_hits;
       int_field "cache_added" f.cache_added;
       int_field "attempts" f.attempts;
       float_field "time" f.time);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

(* Every sink carries the batch's epoch (event timestamps are relative to
   sink creation) and a mutex: workers on different domains emit
   concurrently. *)
type sink = { epoch : float; write : event -> unit; mutex : Shared.Mutex.t }

let protect mutex f = Shared.Mutex.with_lock mutex f

let mk_mutex () =
  Shared.Mutex.create ~loc:(Shared.here __POS__) "runner.events.sink-lock"

let null = { epoch = 0.0; write = (fun _ -> ()); mutex = mk_mutex () }

let memory () =
  let events =
    Shared.Cell.make ~loc:(Shared.here __POS__) "runner.events.memory" []
  in
  let mutex = mk_mutex () in
  let sink =
    {
      epoch = Timer.now ();
      write = (fun e -> Shared.Cell.update ~at:(Shared.here __POS__) events
                  (fun evs -> e :: evs));
      mutex;
    }
  in
  ( sink,
    fun () ->
      protect mutex (fun () ->
          List.rev (Shared.Cell.get ~at:(Shared.here __POS__) events)) )

let callback f = { epoch = Timer.now (); write = f; mutex = mk_mutex () }

let channel oc =
  {
    epoch = Timer.now ();
    write =
      (fun e ->
        output_string oc (to_json e);
        output_char oc '\n';
        flush oc);
    mutex = mk_mutex ();
  }

let emit sink ~job ~label payload =
  let e = { job; label; at = Timer.now () -. sink.epoch; payload } in
  protect sink.mutex (fun () -> sink.write e)
