(** Cooperative per-job resource budgets.

    A job carries {!limits} (wall-clock deadline, SAT-call cap, guided
    iteration cap); the executor threads {!should_stop} into the sweeping
    loops ({!Simgen_sweep.Sweeper.sat_sweep} and the guided rounds) so a
    job that exceeds its budget returns a partial result instead of
    running to completion. Checks are cooperative: they happen at loop
    boundaries, never by preemption, so a single SAT call always runs to
    its own completion. *)

type limits = {
  deadline : float option;  (** wall-clock seconds for the whole job *)
  watchdog : float option;
      (** wall-clock seconds for {e one attempt} of the job. The
          supervisor restarts the clock on retry (with the [deadline]
          carrying over as the remaining time), so a stalled attempt is
          cut off and retried where a [deadline] exhaustion would end the
          job. *)
  max_sat_calls : int option;  (** sweep + PO miter solver calls *)
  max_guided_iterations : int option;
}

val unlimited : limits

type reason = Deadline | Watchdog | Sat_calls | Guided_iterations | Cancelled

val reason_to_string : reason -> string

type t
(** A running budget: limits plus consumption counters. Not thread-safe —
    one budget belongs to exactly one job on one worker; only the
    [cancel] flag is shared across domains. *)

val start : ?cancel:bool Simgen_base.Shared.Atomic.t -> limits -> t
(** Start the wall clock. [cancel] is an external kill switch (typically
    shared by every job of a pool run); when it becomes [true] the next
    check reports [Cancelled]. *)

val check : t -> reason option
(** [None] while within budget. The first exhaustion reason is sticky. *)

val should_stop : t -> unit -> bool
(** Closure form of {!check} for threading into sweeping loops. *)

val elapsed : t -> float
val note_sat_calls : t -> int -> unit
val note_guided_iteration : t -> unit

val remaining_sat_calls : t -> int option
(** SAT calls left under [max_sat_calls] ([None] if unlimited) — pass as
    [?max_calls] to {!Simgen_sweep.Sweeper.sat_sweep}. *)

val sat_calls : t -> int
val guided_iterations : t -> int
