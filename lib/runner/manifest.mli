(** Job-manifest parsing for [simgen batch].

    One job per line, ['#'] comments, blank lines skipped:

    {v
    # stacked CEC regression, 2s deadline each
    cec   apex2 apex2  stacked=true deadline=2.0
    sweep designs/top.blif  iterations=40 max-sat=500 seed=11
    v}

    A circuit token that names an existing file or carries a circuit
    extension ([.blif]/[.bench]/[.aag]) or a ['/'] is read from disk;
    anything else must be a built-in suite benchmark name
    ([stacked=true] selects its putontop variant). Options: [seed],
    [strategy], [iterations] (guided), [random] (random rounds),
    [deadline] (seconds, float), [max-sat], [max-guided], [stacked],
    [label]. Job ids number the jobs in file order from 0. *)

val parse_file : string -> Job.spec list
(** @raise Failure with a [line N:] prefix on malformed input. *)

val parse_string : string -> Job.spec list
val parse_lines : string list -> Job.spec list
