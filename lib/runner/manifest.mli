(** Job-manifest parsing for [simgen batch].

    One job per line, ['#'] comments, blank lines skipped:

    {v
    # stacked CEC regression, 2s deadline each, 3 attempts per job
    cec   apex2 apex2  stacked=true deadline=2.0 retries=3
    sweep designs/top.blif  iterations=40 max-sat=500 seed=11
    v}

    A circuit token that names an existing file or carries a circuit
    extension ([.blif]/[.bench]/[.aag]) or a ['/'] is read from disk;
    anything else must be a built-in suite benchmark name
    ([stacked=true] selects its putontop variant). Options: [seed],
    [strategy], [iterations] (guided), [random] (random rounds),
    [deadline] (seconds, float), [watchdog] (seconds per attempt,
    float), [max-sat], [max-guided], [max-conflicts] (base per-query
    conflict budget for the degradation ladder), [retries] (supervisor
    attempts, >= 1; backoff schedule from {!Retry_policy.default}),
    [backoff] (first retry delay, seconds), [stacked], [certify]
    (record and validate a whole-sweep certificate), [solver-audit]
    (arm the sampled solver-state sanitizer), [label]. Job ids number
    the jobs in file order from 0. *)

type options = {
  seed : int;
  strategy : Simgen_core.Strategy.t;
  iterations : int;
  random : int;
  stacked : bool;
  certify : bool;
  solver_audit : bool;
  label : string option;
  limits : Budget.limits;
  retry : Retry_policy.t;
  max_conflicts : int option;
}
(** Per-line options after defaults; [defaults] below lets a caller (the
    CLI's [--retry]/[--max-conflicts] flags) override the baseline that
    per-line [key=value] pairs then refine. *)

val default_options : options

val parse_file : ?defaults:options -> string -> Job.spec list
(** @raise Failure with a [line N:] prefix on malformed input. *)

val parse_string : ?defaults:options -> string -> Job.spec list
val parse_lines : ?defaults:options -> string list -> Job.spec list
