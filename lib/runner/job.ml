module N = Simgen_network.Network
module Blif = Simgen_network.Blif
module Bench_format = Simgen_network.Bench_format
module Convert = Simgen_aig.Convert
module Aiger = Simgen_aig.Aiger
module Suite = Simgen_benchgen.Suite
module Sweeper = Simgen_sweep.Sweeper
module Fault = Simgen_fault.Fault
module Srcloc = Simgen_base.Srcloc

type circuit =
  | File of string
  | Suite of string
  | Suite_stacked of string
  | Inline of N.t

type kind = Cec of circuit * circuit | Sweep of circuit

type spec = {
  id : int;
  label : string;
  kind : kind;
  seed : int;
  strategy : Simgen_core.Strategy.t;
  random_rounds : int;
  guided_iterations : int;
  limits : Budget.limits;
  retry : Retry_policy.t;
  max_conflicts : int option;
  certify : bool;
  solver_audit : bool;
}

type status =
  | Equivalent
  | Not_equivalent of { po : int; vector : bool array }
  | Inconclusive of { pos : int list }
  | Swept
  | Budget_exhausted of Budget.reason
  | Failed of { message : string; attempts : int; faults : (string * int) list }

type result = {
  spec : spec;
  status : status;
  final_cost : int;
  cost_history : int list;
  guided : Sweeper.guided_stats;
  sat : Sweeper.sat_stats;
  po_calls : int;
  cache_hits : int;
  cache_added : int;
  worker : int;
  attempts : int;
  quarantined : (int * int) list;
  time : float;
}

let circuit_to_string = function
  | File path -> path
  | Suite name -> name
  | Suite_stacked name -> name ^ "(stacked)"
  | Inline net -> Printf.sprintf "<inline:%s>" (N.name net)

let default_label kind =
  match kind with
  | Cec (a, b) ->
      Printf.sprintf "cec %s %s" (circuit_to_string a) (circuit_to_string b)
  | Sweep c -> Printf.sprintf "sweep %s" (circuit_to_string c)

let make ?label ?(seed = 1) ?(strategy = Simgen_core.Strategy.AI_DC_MFFC)
    ?(random_rounds = 1) ?(guided_iterations = 20)
    ?(limits = Budget.unlimited) ?(retry = Retry_policy.none) ?max_conflicts
    ?(certify = false) ?(solver_audit = false) ~id kind =
  let label = match label with Some l -> l | None -> default_label kind in
  {
    id;
    label;
    kind;
    seed;
    strategy;
    random_rounds;
    guided_iterations;
    limits;
    retry;
    max_conflicts;
    certify;
    solver_audit;
  }

let status_to_string = function
  | Equivalent -> "equivalent"
  | Not_equivalent { po; _ } -> Printf.sprintf "not-equivalent@po%d" po
  | Inconclusive { pos } ->
      Printf.sprintf "inconclusive@po%s"
        (String.concat "," (List.map string_of_int pos))
  | Swept -> "swept"
  | Budget_exhausted reason ->
      Printf.sprintf "budget-exhausted:%s" (Budget.reason_to_string reason)
  | Failed { message; attempts; faults } ->
      let faults =
        match faults with
        | [] -> ""
        | fs ->
            Printf.sprintf " faults=%s"
              (String.concat ","
                 (List.map (fun (site, n) -> Printf.sprintf "%s*%d" site n) fs))
      in
      Printf.sprintf "failed:%s (attempt %d%s)" message attempts faults

let read_network path =
  if Filename.check_suffix path ".blif" then Blif.parse_file path
  else if Filename.check_suffix path ".bench" then Bench_format.parse_file path
  else if Filename.check_suffix path ".aag" then
    Convert.network_of_aig (Aiger.parse_file path)
  else failwith (path ^ ": unknown extension (expected .blif/.bench/.aag)")

let load circuit =
  (* The parse fault raises the same located Parse_error a truncated or
     garbled input would: the supervisor treats it like any other load
     failure and retries (one-shot in the fault matrix, so the retry
     loads cleanly). *)
  if Fault.enabled () && Fault.fire "parse" then
    raise
      (Blif.Parse_error
         ( Srcloc.in_file (circuit_to_string circuit),
           "F-parse: injected parse failure" ));
  match circuit with
  | File path -> read_network path
  | Suite name -> (
      match Suite.find name with
      | Some _ -> Suite.lut_network name
      | None -> failwith (name ^ ": unknown suite benchmark"))
  | Suite_stacked name -> (
      match Suite.find name with
      | Some _ -> Suite.stacked_lut_network name
      | None -> failwith (name ^ ": unknown suite benchmark"))
  | Inline net -> net
