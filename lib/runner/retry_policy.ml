module Rng = Simgen_base.Rng

type t = {
  max_attempts : int;
  backoff : float;
  multiplier : float;
  jitter : float;
}

let none = { max_attempts = 1; backoff = 0.0; multiplier = 2.0; jitter = 0.0 }
let default = { max_attempts = 3; backoff = 0.05; multiplier = 2.0; jitter = 0.5 }

let with_attempts n p =
  if n < 1 then invalid_arg "Retry_policy.with_attempts: need at least 1";
  { p with max_attempts = n }

(* Exponential backoff with deterministic jitter: the delay before attempt
   [n+1] (1-based [n]) is [backoff * multiplier^(n-1)] scaled by a factor
   drawn uniformly from [1 - jitter, 1 + jitter] off an RNG the caller
   seeds per job — two workers retrying the same manifest line back off
   identically across runs, but differently from each other. *)
let delay p rng ~attempt =
  if attempt < 1 then invalid_arg "Retry_policy.delay: attempt is 1-based";
  let base = p.backoff *. (p.multiplier ** float_of_int (attempt - 1)) in
  let scale =
    if p.jitter <= 0.0 then 1.0
    else 1.0 -. p.jitter +. Rng.float rng (2.0 *. p.jitter)
  in
  Float.max 0.0 (base *. scale)

let to_string p =
  if p.max_attempts <= 1 then "1 attempt"
  else
    Printf.sprintf "%d attempts, backoff %gs x%g, jitter %g" p.max_attempts
      p.backoff p.multiplier p.jitter
