module Strategy = Simgen_core.Strategy

(* One job per line:

     cec   <circuit> <circuit> [key=value ...]
     sweep <circuit>           [key=value ...]

   '#' starts a comment; blank lines are skipped. A circuit token naming
   an existing file (or carrying a known circuit extension) is loaded
   from disk; anything else must be a built-in suite benchmark name.
   Keys: seed, strategy, iterations, random, deadline, deadline-ms,
   watchdog, max-sat, max-guided, max-conflicts, retries, backoff,
   stacked, certify, label. *)

let is_file_token tok =
  Sys.file_exists tok
  || Filename.check_suffix tok ".blif"
  || Filename.check_suffix tok ".bench"
  || Filename.check_suffix tok ".aag"
  || String.contains tok '/'

let circuit ~line ~stacked tok =
  if is_file_token tok then Job.File tok
  else if Simgen_benchgen.Suite.find tok = None then
    failwith
      (Printf.sprintf
         "line %d: unknown circuit %S (neither a file nor a suite benchmark)"
         line tok)
  else if stacked then Job.Suite_stacked tok
  else Job.Suite tok

type options = {
  seed : int;
  strategy : Strategy.t;
  iterations : int;
  random : int;
  stacked : bool;
  certify : bool;
  solver_audit : bool;
  label : string option;
  limits : Budget.limits;
  retry : Retry_policy.t;
  max_conflicts : int option;
}

let default_options =
  {
    seed = 1;
    strategy = Strategy.AI_DC_MFFC;
    iterations = 20;
    random = 1;
    stacked = false;
    certify = false;
    solver_audit = false;
    label = None;
    limits = Budget.unlimited;
    (* The default backoff schedule with a single attempt: [retries=N]
       only has to raise the attempt cap, and [backoff]/[retries] compose
       in either order. *)
    retry = Retry_policy.(with_attempts 1 default);
    max_conflicts = None;
  }

let parse_bool ~line what v =
  match String.lowercase_ascii v with
  | "true" | "yes" | "1" -> true
  | "false" | "no" | "0" -> false
  | _ -> failwith (Printf.sprintf "line %d: %s: bad boolean %S" line what v)

let parse_int ~line what v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> failwith (Printf.sprintf "line %d: %s: bad integer %S" line what v)

let parse_float ~line what v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> failwith (Printf.sprintf "line %d: %s: bad number %S" line what v)

let apply_option ~line opts key value =
  match key with
  | "seed" -> { opts with seed = parse_int ~line key value }
  | "strategy" -> (
      match Strategy.of_string value with
      | Some s -> { opts with strategy = s }
      | None ->
          failwith (Printf.sprintf "line %d: unknown strategy %S" line value))
  | "iterations" -> { opts with iterations = parse_int ~line key value }
  | "random" -> { opts with random = parse_int ~line key value }
  | "stacked" -> { opts with stacked = parse_bool ~line key value }
  | "certify" -> { opts with certify = parse_bool ~line key value }
  | "solver-audit" ->
      { opts with solver_audit = parse_bool ~line key value }
  | "label" -> { opts with label = Some value }
  | "deadline" ->
      {
        opts with
        limits =
          { opts.limits with Budget.deadline = Some (parse_float ~line key value) };
      }
  | "deadline-ms" ->
      (* The wire format's [deadline_ms] rides the manifest grammar, so a
         daemon job line can carry its client deadline verbatim. *)
      {
        opts with
        limits =
          {
            opts.limits with
            Budget.deadline = Some (parse_float ~line key value /. 1000.);
          };
      }
  | "max-sat" ->
      {
        opts with
        limits =
          { opts.limits with Budget.max_sat_calls = Some (parse_int ~line key value) };
      }
  | "max-guided" ->
      {
        opts with
        limits =
          {
            opts.limits with
            Budget.max_guided_iterations = Some (parse_int ~line key value);
          };
      }
  | "watchdog" ->
      {
        opts with
        limits =
          { opts.limits with Budget.watchdog = Some (parse_float ~line key value) };
      }
  | "max-conflicts" ->
      { opts with max_conflicts = Some (parse_int ~line key value) }
  | "retries" ->
      let n = parse_int ~line key value in
      if n < 1 then
        failwith (Printf.sprintf "line %d: retries must be >= 1, got %d" line n);
      { opts with retry = Retry_policy.with_attempts n opts.retry }
  | "backoff" ->
      {
        opts with
        retry = { opts.retry with Retry_policy.backoff = parse_float ~line key value };
      }
  | _ -> failwith (Printf.sprintf "line %d: unknown option %S" line key)

let parse_options ~line ~defaults tokens =
  List.fold_left
    (fun opts tok ->
      match String.index_opt tok '=' with
      | Some i ->
          apply_option ~line opts
            (String.sub tok 0 i)
            (String.sub tok (i + 1) (String.length tok - i - 1))
      | None ->
          failwith
            (Printf.sprintf "line %d: expected key=value, got %S" line tok))
    defaults tokens

let spec_of_line ~line ~id ~defaults text =
  let text =
    match String.index_opt text '#' with
    | Some i -> String.sub text 0 i
    | None -> text
  in
  match
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  with
  | [] -> None
  | "cec" :: c1 :: c2 :: rest ->
      let opts = parse_options ~line ~defaults rest in
      let kind =
        Job.Cec
          ( circuit ~line ~stacked:opts.stacked c1,
            circuit ~line ~stacked:opts.stacked c2 )
      in
      Some
        (Job.make ?label:opts.label ~seed:opts.seed ~strategy:opts.strategy
           ~random_rounds:opts.random ~guided_iterations:opts.iterations
           ~limits:opts.limits ~retry:opts.retry
           ?max_conflicts:opts.max_conflicts ~certify:opts.certify
           ~solver_audit:opts.solver_audit ~id kind)
  | "sweep" :: c :: rest ->
      let opts = parse_options ~line ~defaults rest in
      let kind = Job.Sweep (circuit ~line ~stacked:opts.stacked c) in
      Some
        (Job.make ?label:opts.label ~seed:opts.seed ~strategy:opts.strategy
           ~random_rounds:opts.random ~guided_iterations:opts.iterations
           ~limits:opts.limits ~retry:opts.retry
           ?max_conflicts:opts.max_conflicts ~certify:opts.certify
           ~solver_audit:opts.solver_audit ~id kind)
  | directive :: _ ->
      failwith
        (Printf.sprintf
           "line %d: unknown directive %S (expected \"cec\" or \"sweep\")"
           line directive)

let parse_lines ?(defaults = default_options) lines =
  let specs = ref [] in
  let id = ref 0 in
  List.iteri
    (fun i text ->
      match spec_of_line ~line:(i + 1) ~id:!id ~defaults text with
      | Some spec ->
          incr id;
          specs := spec :: !specs
      | None -> ())
    lines;
  List.rev !specs

let parse_string ?defaults s =
  parse_lines ?defaults (String.split_on_char '\n' s)

let parse_file ?defaults path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      parse_lines ?defaults (List.rev !lines))
