module Fault = Simgen_fault.Fault

(* Entries carry an FNV-1a checksum computed at insertion; [borrow]
   re-checks it so a corrupted entry (torn write, injected poisoning) is
   dropped at the boundary instead of feeding garbage vectors into a
   sweep. Vectors are copied on both add and borrow — the cache never
   shares an array with a worker, so no worker can corrupt it (or be
   corrupted by it) after the checksum is taken. *)
type entry = { vec : bool array; sum : int }

type t = {
  mutex : Mutex.t;
  capacity : int;  (* per key *)
  table : (int, entry list) Hashtbl.t;  (* PI count -> newest first *)
  mutable hits : int;
  mutable misses : int;
  mutable stored : int;
  mutable dropped : int;
}

let checksum vec =
  (* FNV-1a offset basis truncated to OCaml's 63-bit int range. *)
  let h = ref 0x3bf29ce484222325 in
  Array.iter
    (fun b ->
      h := !h lxor (if b then 1 else 0);
      h := !h * 0x100000001b3)
    vec;
  (* Fold in the length so a truncation cannot preserve the sum. *)
  !h lxor Array.length vec

let create ?(capacity_per_key = 64) () =
  if capacity_per_key <= 0 then
    invalid_arg "Pattern_cache.create: capacity_per_key must be positive";
  {
    mutex = Mutex.create ();
    capacity = capacity_per_key;
    table = Hashtbl.create 16;
    hits = 0;
    misses = 0;
    stored = 0;
    dropped = 0;
  }

let protect t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let add t vec =
  let key = Array.length vec in
  let vec = Array.copy vec in
  let entry = { vec; sum = checksum vec } in
  (* The cache-poison fault flips a stored bit *after* the checksum, the
     shape a torn or corrupted write would take. *)
  if !Fault.active && Array.length vec > 0 && Fault.fire "cache-poison" then
    vec.(0) <- not vec.(0);
  protect t (fun () ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt t.table key) in
      if List.exists (fun e -> e.vec = vec) existing then false
      else begin
        let trimmed = take (t.capacity - 1) existing in
        let dropped = List.length existing - List.length trimmed in
        Hashtbl.replace t.table key (entry :: trimmed);
        t.stored <- t.stored + 1 - dropped;
        true
      end)

let borrow t ~npis =
  protect t (fun () ->
      match Hashtbl.find_opt t.table npis with
      | Some (_ :: _ as entries) ->
          let sound, corrupt =
            List.partition (fun e -> checksum e.vec = e.sum) entries
          in
          if corrupt <> [] then begin
            t.dropped <- t.dropped + List.length corrupt;
            t.stored <- t.stored - List.length corrupt;
            Hashtbl.replace t.table npis sound
          end;
          if sound = [] then begin
            t.misses <- t.misses + 1;
            []
          end
          else begin
            t.hits <- t.hits + 1;
            List.map (fun e -> Array.copy e.vec) sound
          end
      | Some [] | None ->
          t.misses <- t.misses + 1;
          [])

let hits t = protect t (fun () -> t.hits)
let misses t = protect t (fun () -> t.misses)
let size t = protect t (fun () -> t.stored)
let dropped t = protect t (fun () -> t.dropped)
