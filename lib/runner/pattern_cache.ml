module Fault = Simgen_fault.Fault
module Shared = Simgen_base.Shared

(* Entries carry an FNV-1a checksum computed at insertion; [borrow]
   re-checks it so a corrupted entry (torn write, injected poisoning) is
   dropped at the boundary instead of feeding garbage vectors into a
   sweep. Vectors are copied on both add and borrow — the cache never
   shares an array with a worker, so no worker can corrupt it (or be
   corrupted by it) after the checksum is taken. *)
type entry = { vec : bool array; sum : int }

(* The Hashtbl and every counter are guarded by [mutex]; the counters
   are [Shared.Cell]s (plus a shadow cell for the table itself) so the
   race detector can check that convention instead of us asserting it. *)
type t = {
  mutex : Shared.Mutex.t;
  capacity : int;  (* per key *)
  table : (int, entry list) Hashtbl.t;  (* PI count -> newest first *)
  table_shadow : unit Shared.Cell.t;  (* written on mutation, read on lookup *)
  hits : int Shared.Cell.t;
  misses : int Shared.Cell.t;
  stored : int Shared.Cell.t;
  dropped : int Shared.Cell.t;
}

let checksum vec =
  (* FNV-1a offset basis truncated to OCaml's 63-bit int range. *)
  let h = ref 0x3bf29ce484222325 in
  Array.iter
    (fun b ->
      h := !h lxor (if b then 1 else 0);
      h := !h * 0x100000001b3)
    vec;
  (* Fold in the length so a truncation cannot preserve the sum. *)
  !h lxor Array.length vec

let create ?(capacity_per_key = 64) () =
  if capacity_per_key <= 0 then
    invalid_arg "Pattern_cache.create: capacity_per_key must be positive";
  let loc = Shared.here __POS__ in
  {
    mutex = Shared.Mutex.create ~loc "runner.pattern-cache.lock";
    capacity = capacity_per_key;
    table = Hashtbl.create 16;
    table_shadow = Shared.Cell.make ~loc "runner.pattern-cache.table" ();
    hits = Shared.Cell.make ~loc "runner.pattern-cache.hits" 0;
    misses = Shared.Cell.make ~loc "runner.pattern-cache.misses" 0;
    stored = Shared.Cell.make ~loc "runner.pattern-cache.stored" 0;
    dropped = Shared.Cell.make ~loc "runner.pattern-cache.dropped" 0;
  }

let protect t f = Shared.Mutex.with_lock t.mutex f

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let add t vec =
  let key = Array.length vec in
  let vec = Array.copy vec in
  let entry = { vec; sum = checksum vec } in
  (* The cache-poison fault flips a stored bit *after* the checksum, the
     shape a torn or corrupted write would take. *)
  if Fault.enabled () && Array.length vec > 0 && Fault.fire "cache-poison" then
    vec.(0) <- not vec.(0);
  protect t (fun () ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt t.table key) in
      if List.exists (fun e -> e.vec = vec) existing then false
      else begin
        let trimmed = take (t.capacity - 1) existing in
        let dropped = List.length existing - List.length trimmed in
        Shared.Cell.set ~at:(Shared.here __POS__) t.table_shadow ();
        Hashtbl.replace t.table key (entry :: trimmed);
        Shared.Cell.add ~at:(Shared.here __POS__) t.stored (1 - dropped);
        true
      end)

let borrow t ~npis =
  protect t (fun () ->
      ignore (Shared.Cell.get ~at:(Shared.here __POS__) t.table_shadow);
      match Hashtbl.find_opt t.table npis with
      | Some (_ :: _ as entries) ->
          let sound, corrupt =
            List.partition (fun e -> checksum e.vec = e.sum) entries
          in
          if corrupt <> [] then begin
            Shared.Cell.add ~at:(Shared.here __POS__) t.dropped
              (List.length corrupt);
            Shared.Cell.add ~at:(Shared.here __POS__) t.stored
              (-List.length corrupt);
            Shared.Cell.set ~at:(Shared.here __POS__) t.table_shadow ();
            Hashtbl.replace t.table npis sound
          end;
          if sound = [] then begin
            Shared.Cell.incr ~at:(Shared.here __POS__) t.misses;
            []
          end
          else begin
            Shared.Cell.incr ~at:(Shared.here __POS__) t.hits;
            List.map (fun e -> Array.copy e.vec) sound
          end
      | Some [] | None ->
          Shared.Cell.incr ~at:(Shared.here __POS__) t.misses;
          [])

let hits t = protect t (fun () -> Shared.Cell.get t.hits)
let misses t = protect t (fun () -> Shared.Cell.get t.misses)
let size t = protect t (fun () -> Shared.Cell.get t.stored)
let dropped t = protect t (fun () -> Shared.Cell.get t.dropped)
