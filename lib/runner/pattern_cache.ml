type t = {
  mutex : Mutex.t;
  capacity : int;  (* per key *)
  table : (int, bool array list) Hashtbl.t;  (* PI count -> newest first *)
  mutable hits : int;
  mutable misses : int;
  mutable stored : int;
}

let create ?(capacity_per_key = 64) () =
  if capacity_per_key <= 0 then
    invalid_arg "Pattern_cache.create: capacity_per_key must be positive";
  {
    mutex = Mutex.create ();
    capacity = capacity_per_key;
    table = Hashtbl.create 16;
    hits = 0;
    misses = 0;
    stored = 0;
  }

let protect t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let add t vec =
  let key = Array.length vec in
  protect t (fun () ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt t.table key) in
      if List.exists (fun v -> v = vec) existing then false
      else begin
        let trimmed = take (t.capacity - 1) existing in
        let dropped = List.length existing - List.length trimmed in
        Hashtbl.replace t.table key (vec :: trimmed);
        t.stored <- t.stored + 1 - dropped;
        true
      end)

let borrow t ~npis =
  protect t (fun () ->
      match Hashtbl.find_opt t.table npis with
      | Some (_ :: _ as vecs) ->
          t.hits <- t.hits + 1;
          vecs
      | Some [] | None ->
          t.misses <- t.misses + 1;
          [])

let hits t = protect t (fun () -> t.hits)
let misses t = protect t (fun () -> t.misses)
let size t = protect t (fun () -> t.stored)
