(** Batch job descriptions and results.

    A job is one CEC instance (a pair of circuits) or one sweep instance
    (a single circuit to simplify), plus its seed, strategy and budget.
    Circuits are loaded {e inside} the worker that executes the job, so
    jobs share no mutable state and can run on separate domains. *)

type circuit =
  | File of string  (** a [.blif], [.bench] or [.aag] file *)
  | Suite of string  (** a built-in suite benchmark by name *)
  | Suite_stacked of string  (** its [putontop]-stacked variant (§6.4) *)
  | Inline of Simgen_network.Network.t
      (** an in-memory network (tests/embedding); treated as read-only *)

type kind = Cec of circuit * circuit | Sweep of circuit

type spec = {
  id : int;  (** unique within a batch; keys the telemetry stream *)
  label : string;
  kind : kind;
  seed : int;  (** per-job RNG seed — results are deterministic in it *)
  strategy : Simgen_core.Strategy.t;
  random_rounds : int;
  guided_iterations : int;
  limits : Budget.limits;
  retry : Retry_policy.t;  (** supervisor policy for retryable failures *)
  max_conflicts : int option;
      (** base per-query conflict budget for the degradation ladder
          ({!Simgen_sweep.Sweep_options.t}[.max_conflicts]) *)
  certify : bool;
      (** record a whole-sweep certificate and validate it with the
          independent checker ({!Simgen_check.Certificate}) before the
          job finishes; an invalid certificate fails the job *)
  solver_audit : bool;
      (** arm the sampled solver-state sanitizer on the job's SAT
          sessions ({!Simgen_sweep.Sweep_options.t}[.solver_audit]) *)
}

type status =
  | Equivalent  (** CEC: all PO pairs proved *)
  | Not_equivalent of { po : int; vector : bool array }
  | Inconclusive of { pos : int list }
      (** CEC: no PO pair disproved, but these PO indices were
          quarantined by the degradation ladder — no verdict rather than
          a wrong one *)
  | Swept  (** sweep job ran to completion *)
  | Budget_exhausted of Budget.reason
      (** partial result: the stats and cost history cover the work done
          before the budget tripped *)
  | Failed of { message : string; attempts : int; faults : (string * int) list }
      (** every attempt raised (bad file, PI mismatch, a repeated
          invariant violation, ...): the last message, the attempts
          spent, and the fault sites that fired during the job *)

type result = {
  spec : spec;
  status : status;
  final_cost : int;
  cost_history : int list;
  guided : Simgen_sweep.Sweeper.guided_stats;
  sat : Simgen_sweep.Sweeper.sat_stats;
  po_calls : int;
  cache_hits : int;  (** patterns replayed from the shared cache *)
  cache_added : int;  (** counter-examples contributed to the cache *)
  worker : int;
  attempts : int;  (** supervisor attempts this result took (>= 1) *)
  quarantined : (int * int) list;
      (** candidate pairs the degradation ladder gave up on *)
  time : float;
}

val make :
  ?label:string ->
  ?seed:int ->
  ?strategy:Simgen_core.Strategy.t ->
  ?random_rounds:int ->
  ?guided_iterations:int ->
  ?limits:Budget.limits ->
  ?retry:Retry_policy.t ->
  ?max_conflicts:int ->
  ?certify:bool ->
  ?solver_audit:bool ->
  id:int ->
  kind ->
  spec
(** Defaults mirror {!Simgen_sweep.Cec.check}: SimGen strategy
    (AI+DC+MFFC), 1 random round, 20 guided iterations, no limits, no
    retries ({!Retry_policy.none}), unlimited conflicts, no
    certification. *)

val status_to_string : status -> string
val circuit_to_string : circuit -> string

val read_network : string -> Simgen_network.Network.t
(** Parse a circuit file by extension ([.blif]/[.bench]/[.aag]). *)

val load : circuit -> Simgen_network.Network.t
(** Load or generate the circuit. @raise Failure on unknown names/files. *)
