(** Light structural rewriting of AIGs.

    Used to derive functionally equivalent but structurally different
    variants of a circuit — the "optimized copy" side of a CEC problem —
    and to shake redundancy into or out of generated benchmarks. All
    rewrites are local and verified equivalences. *)

val rebuild : Aig.t -> Aig.t
(** Reconstructs the AIG bottom-up through the strashing constructors,
    folding any constants and duplicate structure that appeared after
    construction. *)

val shuffle_rebuild : Simgen_base.Rng.t -> Aig.t -> Aig.t
(** Rebuilds while randomly re-associating chains of conjunctions, yielding
    an equivalent AIG with different structure (useful as the second CEC
    input). *)

val balance : Aig.t -> Aig.t
(** Depth-oriented re-association of AND trees (a miniature of ABC's
    [balance]). *)
