let rebuild = Aig.cleanup

(* Collect the conjunction leaves of the single-fanout AND tree rooted at
   [id]: fanins that are uncomplemented, single-fanout AND nodes are
   flattened recursively. *)
let conjunction_leaves aig refcounts id =
  let rec go l acc =
    let n = Aig.node_of_lit l in
    if (not (Aig.is_complemented l)) && Aig.is_and aig n && refcounts.(n) = 1
    then go (Aig.fanin1 aig n) (go (Aig.fanin0 aig n) acc)
    else l :: acc
  in
  List.rev (go (Aig.fanin1 aig id) (go (Aig.fanin0 aig id) []))

let transform ~combine aig =
  let refcounts = Aig.fanout_counts aig in
  let aig' = Aig.create ~name:(Aig.name aig) () in
  let map = Array.make (Aig.num_nodes aig) Aig.false_ in
  Array.iter (fun id -> map.(id) <- Aig.add_pi aig') (Aig.pis aig);
  let map_lit l =
    let m = map.(Aig.node_of_lit l) in
    if Aig.is_complemented l then Aig.not_ m else m
  in
  Aig.iter_ands aig (fun id ->
      (* Only roots of flattened trees need explicit construction, but
         building interior nodes too is harmless: they are strashed away if
         unused and keep [map] total. *)
      let leaves = conjunction_leaves aig refcounts id in
      map.(id) <- combine aig' (List.map map_lit leaves));
  Array.iteri
    (fun i l -> Aig.add_po ?name:(Aig.po_name aig i) aig' (map_lit l))
    (Aig.pos aig);
  Aig.cleanup aig'

let shuffle_rebuild rng aig =
  let combine dst lits =
    let arr = Array.of_list lits in
    Simgen_base.Rng.shuffle rng arr;
    (* Left-leaning chain in shuffled order: different association than the
       balanced reducer, hence structurally distinct results. *)
    match Array.to_list arr with
    | [] -> Aig.true_
    | first :: rest -> List.fold_left (Aig.and_ dst) first rest
  in
  transform ~combine aig

let balance aig =
  let levels = ref [||] in
  let combine dst lits =
    (* Huffman-style: repeatedly join the two shallowest operands. *)
    let lvl l =
      let ls = !levels in
      let n = Aig.node_of_lit l in
      if n < Array.length ls then ls.(n) else 0
    in
    let sorted = List.sort (fun a b -> compare (lvl a) (lvl b)) lits in
    let rec join = function
      | [] -> Aig.true_
      | [ x ] -> x
      | x :: y :: rest ->
          let l = Aig.and_ dst x y in
          levels := Aig.level dst;
          let rec insert v = function
            | [] -> [ v ]
            | h :: t as all ->
                if lvl v <= lvl h then v :: all else h :: insert v t
          in
          join (insert l rest)
    in
    join sorted
  in
  transform ~combine aig
