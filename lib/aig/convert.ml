module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Cube = Simgen_network.Cube
module Isop = Simgen_network.Isop

let network_of_aig aig =
  let net = N.create ~name:(Aig.name aig) () in
  (* map.(id) = network node computing the *uncomplemented* AIG node. *)
  let map = Array.make (Aig.num_nodes aig) (-1) in
  Array.iter (fun id -> map.(id) <- N.add_pi net) (Aig.pis aig);
  let and2 c0 c1 =
    (* AND of (var0 xor c0) (var1 xor c1) as a 2-input truth table. *)
    let v i c = if c then TT.not_ (TT.var i 2) else TT.var i 2 in
    TT.and_ (v 0 c0) (v 1 c1)
  in
  Aig.iter_ands aig (fun id ->
      let l0 = Aig.fanin0 aig id and l1 = Aig.fanin1 aig id in
      let n0 = map.(Aig.node_of_lit l0) and n1 = map.(Aig.node_of_lit l1) in
      let f = and2 (Aig.is_complemented l0) (Aig.is_complemented l1) in
      map.(id) <- N.add_gate net f [| n0; n1 |]);
  Array.iteri
    (fun i l ->
      let po_name = Aig.po_name aig i in
      let node = Aig.node_of_lit l in
      let base =
        if Aig.is_const aig node then
          (* Constant PO: encode the polarity in a constant gate. *)
          N.add_const net (Aig.is_complemented l)
        else if Aig.is_complemented l then
          N.add_gate net (TT.not_ (TT.var 0 1)) [| map.(node) |]
        else map.(node)
      in
      N.add_po ?name:po_name net base)
    (Aig.pos aig);
  net

let aig_of_network net =
  let aig = Aig.create ~name:(N.name net) () in
  let map = Array.make (N.num_nodes net) Aig.false_ in
  N.iter_nodes net (fun id ->
      match N.kind net id with
      | N.Pi _ -> map.(id) <- Aig.add_pi aig
      | N.Gate f ->
          let fanins = N.fanins net id in
          (match TT.is_const f with
           | Some b -> map.(id) <- (if b then Aig.true_ else Aig.false_)
           | None ->
               let cube_lit (c : Cube.t) =
                 let lits = ref [] in
                 Array.iteri
                   (fun i l ->
                     let fl = map.(fanins.(i)) in
                     match l with
                     | Cube.DC -> ()
                     | Cube.T -> lits := fl :: !lits
                     | Cube.F -> lits := Aig.not_ fl :: !lits)
                   c.Cube.lits;
                 Aig.and_list aig (List.rev !lits)
               in
               let terms = List.map cube_lit (Isop.cover f) in
               map.(id) <- Aig.or_list aig terms));
  Array.iteri
    (fun i id -> Aig.add_po ?name:(N.po_name net i) aig map.(id))
    (N.pos net);
  aig
