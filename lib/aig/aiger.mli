(** AIGER ASCII ("aag") reader and writer, combinational subset
    (no latches). *)

exception Parse_error of Simgen_base.Srcloc.t * string
(** Malformed input, located by file and (for body/header problems) the
    offending physical line. *)

val parse_string : ?file:string -> string -> Aig.t
(** [file] only labels {!Parse_error} locations; the string is the input. *)

val parse_file : string -> Aig.t

val to_string : Aig.t -> string
val write_file : string -> Aig.t -> unit
