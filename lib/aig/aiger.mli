(** AIGER ASCII ("aag") reader and writer, combinational subset
    (no latches). *)

exception Parse_error of string

val parse_string : string -> Aig.t
val parse_file : string -> Aig.t

val to_string : Aig.t -> string
val write_file : string -> Aig.t -> unit
