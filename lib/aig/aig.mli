(** And-Inverter Graphs with structural hashing.

    The AIG is the construction substrate: benchmark generators build AIGs
    through the smart constructors below (which fold constants, share
    structurally identical nodes and normalise operand order), and the K-LUT
    mapper consumes AIGs to produce the LUT networks SimGen operates on —
    the in-repo equivalent of feeding a design through ABC. *)

type t

type lit = int
(** A literal is [2 * node + complement]. Node 0 is the constant false, so
    {!false_} = 0 and {!true_} = 1. *)

val create : ?name:string -> unit -> t

val name : t -> string

(** {2 Literals} *)

val false_ : lit
val true_ : lit
val not_ : lit -> lit
val lit_of_node : int -> bool -> lit
val node_of_lit : lit -> int
val is_complemented : lit -> bool

(** {2 Construction} *)

val add_pi : t -> lit
val and_ : t -> lit -> lit -> lit
(** Strashing constructor: constant folding, idempotence, complement
    annihilation, operand ordering, structural-hash lookup. *)

val or_ : t -> lit -> lit -> lit
val xor : t -> lit -> lit -> lit
val mux : t -> lit -> lit -> lit -> lit
(** [mux t sel a b] is [if sel then a else b]. *)

val and_list : t -> lit list -> lit
val or_list : t -> lit list -> lit
val xor_list : t -> lit list -> lit

val add_po : ?name:string -> t -> lit -> unit

(** {2 Inspection} *)

val num_nodes : t -> int
(** Including the constant node 0 and PIs. *)

val num_pis : t -> int
val num_pos : t -> int
val num_ands : t -> int

val is_pi : t -> int -> bool
val is_const : t -> int -> bool
val is_and : t -> int -> bool
val pi_index : t -> int -> int

val fanin0 : t -> int -> lit
val fanin1 : t -> int -> lit
(** Fanins of an AND node. *)

val pis : t -> int array
val pos : t -> lit array
val po_name : t -> int -> string option

val fanout_counts : t -> int array
(** Number of AND/PO references per node. *)

val iter_ands : t -> (int -> unit) -> unit
(** AND nodes in topological (id) order. *)

val level : t -> int array
(** Longest-path levels (PIs and constant at 0). *)

val eval : t -> bool array -> bool array
(** Scalar simulation: value of every node given PI values (by PI index). *)

val eval_pos : t -> bool array -> bool array
val eval_lit : bool array -> lit -> bool
(** [eval_lit node_values l]. *)

val cleanup : t -> t
(** Structural copy keeping only nodes reachable from POs. PIs are all kept
    (indices preserved). *)

val pp_stats : Format.formatter -> t -> unit

(** Unchecked construction, for mutation testing and importers of
    already-built graphs. *)
module Unsafe : sig
  val push_and : t -> lit -> lit -> lit
  (** Append an AND node verbatim: no operand ordering, constant folding,
      or structural-hash lookup — and no validation of the fanin literals.
      Can produce exactly the non-canonical or ill-formed structures the
      [simgen_check] AIG lints detect. *)
end
