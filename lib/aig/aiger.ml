module Srcloc = Simgen_base.Srcloc

exception Parse_error of Srcloc.t * string

let () =
  Printexc.register_printer (function
    | Parse_error (loc, msg) ->
        Some
          (match Srcloc.to_string loc with
           | Some at -> Printf.sprintf "AIGER parse error: %s: %s" at msg
           | None -> Printf.sprintf "AIGER parse error: %s" msg)
    | _ -> None)

let fail_at loc fmt = Printf.ksprintf (fun s -> raise (Parse_error (loc, s))) fmt

let parse_string ?file text =
  let floc = Srcloc.make ?file () in
  let loc line = Srcloc.with_line floc line in
  (* Keep the 1-based physical line of every non-empty line so errors in
     the positional body sections can name their source line. *)
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  match lines with
  | [] -> fail_at floc "empty file"
  | (header_line, header) :: rest ->
      let ints at s =
        String.split_on_char ' ' s
        |> List.filter (fun x -> x <> "")
        |> List.map (fun x ->
               match int_of_string_opt x with
               | Some v -> v
               | None -> fail_at at "bad integer %S" x)
      in
      let m, i, l, o, a =
        match String.split_on_char ' ' header with
        | "aag" :: nums ->
            (match List.map int_of_string_opt nums with
             | [ Some m; Some i; Some l; Some o; Some a ] -> (m, i, l, o, a)
             | _ -> fail_at (loc header_line) "bad header %S" header)
        | _ -> fail_at (loc header_line) "not an aag file"
      in
      if l <> 0 then fail_at (loc header_line) "latches not supported";
      let body = Array.of_list rest in
      if Array.length body < i + o + a then fail_at floc "truncated file";
      let aig = Aig.create ~name:"aiger" () in
      (* aag literal -> our literal. Variable v of the file maps to our
         node map.(v). *)
      (* map.(v) is our literal for the file's variable v viewed
         uncomplemented; constant folding may complement it. *)
      let map = Array.make (m + 1) (-1) in
      map.(0) <- Aig.false_;
      let our_lit at file_lit =
        let v = file_lit / 2 in
        if v > m || map.(v) < 0 then fail_at at "undefined literal %d" file_lit;
        if file_lit land 1 = 1 then Aig.not_ map.(v) else map.(v)
      in
      for k = 0 to i - 1 do
        let line_no, content = body.(k) in
        let at = loc line_no in
        match ints at content with
        | [ lit ] ->
            if lit land 1 = 1 then fail_at at "complemented input";
            map.(lit / 2) <- Aig.add_pi aig
        | _ -> fail_at at "bad input line"
      done;
      let po_lits =
        Array.init o (fun k ->
            let line_no, content = body.(i + k) in
            let at = loc line_no in
            match ints at content with
            | [ lit ] -> (at, lit)
            | _ -> fail_at at "bad output line")
      in
      for k = 0 to a - 1 do
        let line_no, content = body.(i + o + k) in
        let at = loc line_no in
        match ints at content with
        | [ lhs; rhs0; rhs1 ] ->
            if lhs land 1 = 1 then fail_at at "complemented AND lhs";
            map.(lhs / 2) <- Aig.and_ aig (our_lit at rhs0) (our_lit at rhs1)
        | _ -> fail_at at "bad and line"
      done;
      Array.iter (fun (at, lit) -> Aig.add_po aig (our_lit at lit)) po_lits;
      aig

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string ~file:path s

let to_string aig =
  let buf = Buffer.create 4096 in
  (* Assign compact aag variable numbers: inputs then ANDs in topo order. *)
  let n = Aig.num_nodes aig in
  let var = Array.make n (-1) in
  var.(Aig.node_of_lit Aig.false_) <- 0;
  let next = ref 1 in
  Array.iter
    (fun id ->
      var.(id) <- !next;
      incr next)
    (Aig.pis aig);
  Aig.iter_ands aig (fun id ->
      var.(id) <- !next;
      incr next);
  let file_lit l =
    (2 * var.(Aig.node_of_lit l)) lor (if Aig.is_complemented l then 1 else 0)
  in
  let num_ands = Aig.num_ands aig in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d 0 %d %d\n" (!next - 1) (Aig.num_pis aig)
       (Aig.num_pos aig) num_ands);
  Array.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "%d\n" (2 * var.(id))))
    (Aig.pis aig);
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d\n" (file_lit l)))
    (Aig.pos aig);
  Aig.iter_ands aig (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" (2 * var.(id))
           (file_lit (Aig.fanin0 aig id))
           (file_lit (Aig.fanin1 aig id))));
  Buffer.contents buf

let write_file path aig =
  let oc = open_out path in
  output_string oc (to_string aig);
  close_out oc
