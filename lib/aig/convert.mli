(** Conversions between AIGs and {!Simgen_network.Network} LUT networks. *)

val network_of_aig : Aig.t -> Simgen_network.Network.t
(** One 2-input AND LUT per AIG node, with inverters folded into the LUT
    functions of the fanouts (a complemented PO becomes a 1-input NOT
    LUT). *)

val aig_of_network : Simgen_network.Network.t -> Aig.t
(** Decomposes every node function through its ISOP cover into AND/OR
    structure (with strashing). *)
