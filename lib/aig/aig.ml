module Vec = Simgen_base.Vec

type lit = int

type node =
  | Const  (* node 0 only *)
  | Pi of int
  | And of lit * lit

type t = {
  aig_name : string;
  nodes : node Vec.t;
  mutable pi_ids : int list;  (* reversed *)
  mutable po_list : (lit * string option) list;  (* reversed *)
  strash : (int * int, int) Hashtbl.t;
}

let create ?(name = "aig") () =
  let nodes = Vec.create ~dummy:Const () in
  Vec.push nodes Const;
  { aig_name = name; nodes; pi_ids = []; po_list = []; strash = Hashtbl.create 1024 }

let name t = t.aig_name

let false_ : lit = 0
let true_ : lit = 1
let not_ (l : lit) : lit = l lxor 1
let lit_of_node n c : lit = (2 * n) lor (if c then 1 else 0)
let node_of_lit (l : lit) = l lsr 1
let is_complemented (l : lit) = l land 1 = 1

let num_nodes t = Vec.length t.nodes
let num_pis t = List.length t.pi_ids
let num_pos t = List.length t.po_list

let node t id = Vec.get t.nodes id

let is_pi t id = match node t id with Pi _ -> true | Const | And _ -> false
let is_const t id =
  id = 0 && (match node t id with Const -> true | Pi _ | And _ -> false)
let is_and t id = match node t id with And _ -> true | Const | Pi _ -> false

let num_ands t =
  let c = ref 0 in
  for id = 0 to num_nodes t - 1 do
    if is_and t id then incr c
  done;
  !c

let pi_index t id =
  match node t id with
  | Pi idx -> idx
  | Const | And _ -> invalid_arg "Aig.pi_index"

let fanin0 t id =
  match node t id with
  | And (a, _) -> a
  | Const | Pi _ -> invalid_arg "Aig.fanin0"

let fanin1 t id =
  match node t id with
  | And (_, b) -> b
  | Const | Pi _ -> invalid_arg "Aig.fanin1"

let add_pi t =
  let id = num_nodes t in
  Vec.push t.nodes (Pi (num_pis t));
  t.pi_ids <- id :: t.pi_ids;
  lit_of_node id false

let and_ t a b =
  (* Normalise operand order so that strashing is canonical. *)
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = false_ then false_
  else if a = true_ then b
  else if a = b then a
  else if a = not_ b then false_
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some id -> lit_of_node id false
    | None ->
        let id = num_nodes t in
        Vec.push t.nodes (And (a, b));
        Hashtbl.replace t.strash (a, b) id;
        lit_of_node id false

let or_ t a b = not_ (and_ t (not_ a) (not_ b))

let xor t a b =
  (* (a & ~b) | (~a & b) with sharing through strashing. *)
  or_ t (and_ t a (not_ b)) (and_ t (not_ a) b)

let mux t sel a b = or_ t (and_ t sel a) (and_ t (not_ sel) b)

(* Balanced reduction keeps AIG depth logarithmic for wide gates. *)
let rec reduce f t = function
  | [] -> invalid_arg "Aig: empty literal list"
  | [ x ] -> x
  | lits ->
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | x :: y :: rest -> f t x y :: pair rest
      in
      reduce f t (pair lits)

let and_list t = function [] -> true_ | lits -> reduce and_ t lits
let or_list t = function [] -> false_ | lits -> reduce or_ t lits
let xor_list t = function [] -> false_ | lits -> reduce xor t lits

let add_po ?name t l = t.po_list <- (l, name) :: t.po_list

let pis t = Array.of_list (List.rev t.pi_ids)
let pos t = Array.of_list (List.rev_map fst t.po_list)

let po_name t i =
  let arr = Array.of_list (List.rev t.po_list) in
  snd arr.(i)

let iter_ands t f =
  for id = 0 to num_nodes t - 1 do
    if is_and t id then f id
  done

let fanout_counts t =
  let counts = Array.make (num_nodes t) 0 in
  let bump l = counts.(node_of_lit l) <- counts.(node_of_lit l) + 1 in
  iter_ands t (fun id ->
      bump (fanin0 t id);
      bump (fanin1 t id));
  List.iter (fun (l, _) -> bump l) t.po_list;
  counts

let level t =
  let levels = Array.make (num_nodes t) 0 in
  iter_ands t (fun id ->
      let l0 = levels.(node_of_lit (fanin0 t id))
      and l1 = levels.(node_of_lit (fanin1 t id)) in
      levels.(id) <- 1 + max l0 l1);
  levels

let eval_lit vals (l : lit) =
  let v = vals.(node_of_lit l) in
  if is_complemented l then not v else v

let eval t pi_values =
  if Array.length pi_values <> num_pis t then invalid_arg "Aig.eval";
  let vals = Array.make (num_nodes t) false in
  for id = 0 to num_nodes t - 1 do
    match node t id with
    | Const -> vals.(id) <- false
    | Pi idx -> vals.(id) <- pi_values.(idx)
    | And (a, b) -> vals.(id) <- eval_lit vals a && eval_lit vals b
  done;
  vals

let eval_pos t pi_values =
  let vals = eval t pi_values in
  Array.map (eval_lit vals) (pos t)

let cleanup t =
  let t' = create ~name:t.aig_name () in
  (* map.(id) is the t'-literal representing node id viewed uncomplemented;
     constant folding in [and_] may make it a complemented literal. *)
  let map = Array.make (num_nodes t) (-1) in
  map.(0) <- false_;
  (* PIs first, preserving indices. *)
  Array.iter (fun id -> map.(id) <- add_pi t') (pis t);
  let map_lit l =
    let m = map.(node_of_lit l) in
    assert (m >= 0);
    if is_complemented l then not_ m else m
  in
  (* Mark reachable AND nodes from POs. *)
  let reach = Array.make (num_nodes t) false in
  let stack = ref (List.rev_map (fun (l, _) -> node_of_lit l) t.po_list) in
  let rec mark () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if (not reach.(id)) && is_and t id then begin
          reach.(id) <- true;
          stack :=
            node_of_lit (fanin0 t id) :: node_of_lit (fanin1 t id) :: !stack
        end;
        mark ()
  in
  mark ();
  iter_ands t (fun id ->
      if reach.(id) then
        map.(id) <- and_ t' (map_lit (fanin0 t id)) (map_lit (fanin1 t id)));
  List.iter
    (fun (l, po_name) -> add_po ?name:po_name t' (map_lit l))
    (List.rev t.po_list);
  t'

let pp_stats fmt t =
  Format.fprintf fmt "%s: %d PIs, %d POs, %d ANDs" t.aig_name (num_pis t)
    (num_pos t) (num_ands t)

module Unsafe = struct
  let push_and t a b =
    let id = num_nodes t in
    Vec.push t.nodes (And (a, b));
    lit_of_node id false
end
