(* simgen: command-line front end.

   Subcommands:
     list               - list the built-in benchmark suite
     gen                - generate a benchmark and write BLIF/BENCH/AIGER
     map                - LUT-map a BLIF/BENCH/AIGER input
     sweep              - run the simulation + SAT sweeping flow, print stats
     certify-sweep      - certified sweep + independent certificate re-check
     cec                - equivalence-check two circuit files (SAT or BDD)
     batch              - run a manifest of CEC/sweep jobs on a worker pool
     serve              - persistent sweep daemon on a Unix socket
     submit             - send one request to a running daemon
     ping               - liveness check against a running daemon
     atpg               - stuck-at test generation campaign
     lint               - static checks over circuit/CNF files or suites
     race-check         - replay a --tsan trace through the race detector
     proof-lint         - static analysis over a DRUP proof file
     info               - parse a circuit file and print statistics *)

open Cmdliner
module Suite = Simgen_benchgen.Suite
module N = Simgen_network.Network
module Blif = Simgen_network.Blif
module Bench_format = Simgen_network.Bench_format
module Aiger = Simgen_aig.Aiger
module Convert = Simgen_aig.Convert
module Mapper = Simgen_mapping.Lut_mapper
module Sweeper = Simgen_sweep.Sweeper
module Cec = Simgen_sweep.Cec
module Sweep_options = Simgen_sweep.Sweep_options
module Strategy = Simgen_core.Strategy
module Runner = Simgen_runner
module Shared = Simgen_base.Shared
module Check = Simgen_check
module Serve = Simgen_serve
module Fun_cache = Simgen_sweep.Fun_cache
module Drup = Simgen_sat.Drup

(* ------------------------------------------------------------------ *)
(* I/O helpers                                                         *)
(* ------------------------------------------------------------------ *)

let read_network = Runner.Job.read_network

let write_network path net =
  if Filename.check_suffix path ".blif" then Blif.write_file path net
  else if Filename.check_suffix path ".bench" then
    Bench_format.write_file path net
  else if Filename.check_suffix path ".aag" then
    Aiger.write_file path (Convert.aig_of_network net)
  else failwith (path ^ ": unknown extension (expected .blif/.bench/.aag)")

let load_or_generate spec =
  (* A circuit argument is either a file path or a suite benchmark name. *)
  if Sys.file_exists spec then read_network spec
  else
    match Suite.find spec with
    | Some _ -> Suite.lut_network spec
    | None -> failwith (spec ^ ": neither a file nor a known benchmark")

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let circuit_arg n doc =
  Arg.(required & pos n (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let strategy_arg =
  let parse s =
    match Strategy.of_string s with
    | Some st -> Ok st
    | None -> Error (`Msg (s ^ ": unknown strategy"))
  in
  let print fmt s = Format.pp_print_string fmt (Strategy.name s) in
  Arg.(
    value
    & opt (conv (parse, print)) Strategy.AI_DC_MFFC
    & info [ "strategy" ] ~docv:"S"
        ~doc:
          "Pattern generation strategy: RevS, SI+RD, AI+RD, AI+DC, \
           AI+DC+MFFC (or 'simgen').")

let iterations_arg =
  Arg.(
    value & opt int 20
    & info [ "iterations" ] ~docv:"N" ~doc:"Guided simulation iterations.")

let fresh_arg =
  Arg.(
    value & flag
    & info [ "fresh" ]
        ~doc:
          "Use a fresh SAT solver per candidate pair instead of the \
           incremental per-sweep session (the pre-session behaviour; \
           mainly for comparison).")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Validate a DRUP proof for every UNSAT verdict. Composes with \
           the incremental session (per-query proof slices are logged and \
           replayed); add --fresh only to force the standalone-solver \
           route.")

let solver_audit_arg =
  Arg.(
    value & flag
    & info [ "solver-audit" ]
        ~doc:
          "Arm the sampled solver-state sanitizer (R007..R013) on every \
           SAT session: watch integrity, reason/trail and decision-heap \
           consistency, focus-fence soundness and counter monotonicity \
           are audited every few conflicts. Observes only — verdicts and \
           merge partitions are unchanged; a tripped invariant raises a \
           runtime-check violation through the session recovery path.")

let max_conflicts_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-conflicts" ] ~docv:"N"
        ~doc:
          "Base per-query SAT conflict budget. A query that exhausts it \
           climbs the degradation ladder (escalated budgets, fresh solver, \
           BDD fallback) and is quarantined as inconclusive rather than \
           answered wrongly. Unlimited by default.")

let retry_arg =
  Arg.(
    value & opt int 1
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "Attempts per job or check, including the first (>= 1). Crashed \
           or watchdog-stalled attempts are retried with jittered \
           exponential backoff.")

(* The options record shared by sweep and cec. *)
let sweep_options strategy iterations seed fresh certify =
  {
    Sweep_options.default with
    Sweep_options.strategy;
    guided_iterations = iterations;
    seed;
    incremental = not fresh;
    certify;
  }

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-12s %-12s %s\n" "name" "family" "stacked copies";
    List.iter
      (fun e ->
        let family =
          match e.Suite.family with
          | Suite.Mcnc_pla -> "mcnc-pla"
          | Suite.Arithmetic -> "arithmetic"
          | Suite.Epfl_control -> "epfl-ctrl"
          | Suite.Itc99 -> "itc99"
        in
        Printf.printf "%-12s %-12s %s\n" e.Suite.name family
          (match e.Suite.stack_copies with
           | Some c -> string_of_int c
           | None -> "-"))
      Suite.entries
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark suite.")
    Term.(const run $ const ())

let gen_cmd =
  let run name output stacked =
    let net =
      if stacked then Suite.stacked_lut_network name else Suite.lut_network name
    in
    write_network output net;
    Format.printf "%a -> %s@." N.pp_stats net output
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output file (.blif, .bench or .aag).")
  in
  let stacked =
    Arg.(
      value & flag
      & info [ "stacked" ] ~doc:"Emit the stacked (putontop) variant.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a suite benchmark and write it to a file.")
    Term.(const run $ circuit_arg 0 "Benchmark name." $ output $ stacked)

let map_cmd =
  let run input output k =
    let net = read_network input in
    let aig = Convert.aig_of_network net in
    let mapped, stats = Mapper.map_with_stats ~k aig in
    write_network output mapped;
    Printf.printf "%s: %d LUTs, depth %d, %d edges -> %s\n" input
      stats.Mapper.luts stats.Mapper.depth stats.Mapper.edges output
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let k =
    Arg.(value & opt int 6 & info [ "k" ] ~docv:"K" ~doc:"LUT input count.")
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Technology-map a circuit into K-LUTs.")
    Term.(const run $ circuit_arg 0 "Input circuit file." $ output $ k)

let sweep_cmd =
  let run spec strategy iterations seed fresh certify =
    let opts = sweep_options strategy iterations seed fresh certify in
    let net = load_or_generate spec in
    Format.printf "%a@." N.pp_stats net;
    let sw = Sweeper.create opts net in
    Sweeper.random_round sw;
    Printf.printf "cost after random simulation : %d\n" (Sweeper.cost sw);
    let g = Sweeper.run_guided opts sw in
    Printf.printf "cost after %d guided rounds   : %d (%s)\n" iterations
      (Sweeper.cost sw) (Strategy.name strategy);
    Printf.printf
      "  vectors %d, skipped classes %d, conflicts %d, implications %d, \
       decisions %d, %.3fs\n"
      g.Sweeper.vectors g.Sweeper.skipped g.Sweeper.gen_conflicts
      g.Sweeper.implications g.Sweeper.decisions g.Sweeper.guided_time;
    let s = Sweeper.sat_sweep opts sw in
    Printf.printf
      "SAT sweeping: %d calls (%d proved, %d disproved) in %.3fs\n"
      s.Sweeper.calls s.Sweeper.proved s.Sweeper.disproved s.Sweeper.sat_time;
    Printf.printf "  solver: %d conflicts, %d propagations, %d restarts%s\n"
      s.Sweeper.conflicts s.Sweeper.propagations s.Sweeper.restarts
      (if certify && fresh then " (DRUP-certified, fresh solver per pair)"
       else if certify then " (DRUP-certified incremental session)"
       else if fresh then " (fresh solver per pair)"
       else " (incremental session)");
    Printf.printf "final cost                   : %d\n" (Sweeper.cost sw)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run random + guided simulation and SAT sweeping on a circuit file \
          or suite benchmark.")
    Term.(
      const run
      $ circuit_arg 0 "Circuit file or benchmark name."
      $ strategy_arg $ iterations_arg $ seed_arg $ fresh_arg $ certify_arg)

let certify_sweep_cmd =
  let run spec strategy iterations seed fresh out drup_out =
    let net =
      try load_or_generate spec
      with Failure msg ->
        Printf.eprintf "certify-sweep: %s\n" msg;
        exit 2
    in
    let opts =
      { (sweep_options strategy iterations seed fresh true) with
        Sweep_options.certify = true }
    in
    let sw = Sweeper.create opts net in
    Sweeper.random_round sw;
    ignore (Sweeper.run_guided opts sw);
    let s = Sweeper.sat_sweep opts sw in
    let cert = Sweeper.certificate sw in
    let report = Check.Certificate.check cert in
    (match out with
     | Some path ->
         let oc = open_out path in
         output_string oc (Check.Certificate.to_jsonl cert (Some report));
         close_out oc
     | None -> ());
    (match drup_out with
     | Some path ->
         let oc = open_out path in
         Array.iter
           (function
             | Check.Certificate.Session { events; _ }
             | Check.Certificate.Fresh { events; _ } ->
                 output_string oc (Drup.to_dimacs_proof events)
             | Check.Certificate.Rebuild -> ())
           cert.Check.Certificate.queries;
         close_out oc
     | None -> ());
    Printf.printf
      "sweep: %d SAT calls (%d proved, %d disproved), final cost %d\n"
      s.Sweeper.calls s.Sweeper.proved s.Sweeper.disproved (Sweeper.cost sw);
    Printf.printf
      "certificate: %d queries (%d proved), %d merges, %d proof steps (%d \
       checked, %d trimmed)\n"
      report.Check.Certificate.queries report.Check.Certificate.proved
      report.Check.Certificate.merges report.Check.Certificate.steps
      report.Check.Certificate.steps_checked
      report.Check.Certificate.steps_trimmed;
    if report.Check.Certificate.valid then print_endline "certificate: VALID"
    else begin
      List.iter
        (fun d -> prerr_endline (Check.Diagnostic.to_string d))
        report.Check.Certificate.diags;
      print_endline "certificate: INVALID";
      exit 1
    end
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the certificate (queries, merges and the check report) \
             as JSONL to $(docv).")
  in
  let drup_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "drup" ] ~docv:"FILE"
          ~doc:
            "Also write the concatenated DRUP text of every proof slice \
             to $(docv) — input for $(b,proof-lint) and drat-trim-style \
             tools.")
  in
  Cmd.v
    (Cmd.info "certify-sweep"
       ~doc:
         "Run a DRUP-certified sweep and independently re-check the \
          resulting certificate: every learned clause is validated by \
          reverse unit propagation and the merge log is replayed against \
          the proved equivalences. Exit codes: 0 certificate valid, 1 \
          invalid, 2 usage or load error.")
    Term.(
      const run
      $ circuit_arg 0 "Circuit file or benchmark name."
      $ strategy_arg $ iterations_arg $ seed_arg $ fresh_arg $ out $ drup_out)

let cec_cmd =
  let run spec1 spec2 strategy iterations seed use_bdd fresh certify
      solver_audit max_conflicts retries =
    if retries < 1 then begin
      Printf.eprintf "--retry must be at least 1\n";
      exit 1
    end;
    let net1 = load_or_generate spec1 in
    let net2 = load_or_generate spec2 in
    if use_bdd then begin
      match Simgen_sweep.Bdd_backend.check_outputs net1 net2 with
      | Some None -> Printf.printf "EQUIVALENT (BDD)\n"
      | Some (Some (po, vector)) ->
          Printf.printf "NOT EQUIVALENT at PO %d (BDD)\nwitness: %s\n" po
            (String.concat ""
               (List.map
                  (fun b -> if b then "1" else "0")
                  (Array.to_list vector)));
          exit 1
      | None ->
          Printf.eprintf "BDD node quota exceeded; rerun without --bdd\n";
          exit 2
    end
    else begin
    let opts =
      {
        (sweep_options strategy iterations seed fresh certify) with
        Sweep_options.max_conflicts;
        solver_audit;
      }
    in
    (* The same supervisor loop the batch runner uses, inline: a check
       that dies on an exception is retried with jittered backoff. *)
    let retry =
      Runner.Retry_policy.(with_attempts retries default)
    in
    let retry_rng = Simgen_base.Rng.create seed in
    let rec attempt n =
      try Cec.check opts net1 net2
      with e when n < retry.Runner.Retry_policy.max_attempts ->
        let delay = Runner.Retry_policy.delay retry retry_rng ~attempt:n in
        Printf.eprintf "attempt %d failed (%s); retrying in %.3fs\n" n
          (Printexc.to_string e) delay;
        if delay > 0.0 then Unix.sleepf delay;
        attempt (n + 1)
    in
    let report = attempt 1 in
    (match report.Cec.outcome with
     | Cec.Equivalent -> Printf.printf "EQUIVALENT\n"
     | Cec.Not_equivalent { po; vector } ->
         Printf.printf "NOT EQUIVALENT at PO %d\nwitness: %s\n" po
           (String.concat ""
              (List.map
                 (fun b -> if b then "1" else "0")
                 (Array.to_list vector)))
     | Cec.Inconclusive { pos } ->
         Printf.printf
           "INCONCLUSIVE: PO pair(s) %s quarantined by the degradation \
            ladder (every other PO pair proved equal)\n"
           (String.concat "," (List.map string_of_int pos)));
    Printf.printf
      "sweep: %d SAT calls (%d proved, %d disproved), %d PO miters, %.3fs \
       total\n"
      report.Cec.sat.Sweeper.calls report.Cec.sat.Sweeper.proved
      report.Cec.sat.Sweeper.disproved report.Cec.po_calls
      report.Cec.total_time;
    Printf.printf "       %d conflicts, %d propagations, %d restarts\n"
      report.Cec.sat.Sweeper.conflicts report.Cec.sat.Sweeper.propagations
      report.Cec.sat.Sweeper.restarts;
    match report.Cec.outcome with
    | Cec.Equivalent -> ()
    | Cec.Not_equivalent _ -> exit 1
    | Cec.Inconclusive _ -> exit 3
    end
  in
  let bdd_flag =
    Arg.(
      value & flag
      & info [ "bdd" ]
          ~doc:"Use the BDD backend instead of simulation + SAT sweeping.")
  in
  Cmd.v
    (Cmd.info "cec"
       ~doc:
         "Combinational equivalence check of two circuits. Exit codes: 0 \
          equivalent, 1 not equivalent, 3 inconclusive (quarantined PO \
          pairs under --max-conflicts).")
    Term.(
      const run
      $ circuit_arg 0 "First circuit."
      $ circuit_arg 1 "Second circuit."
      $ strategy_arg $ iterations_arg $ seed_arg $ bdd_flag $ fresh_arg
      $ certify_arg $ solver_audit_arg $ max_conflicts_arg $ retry_arg)

(* Shared by batch --tsan, serve --tsan and race-check: drain-time
   analysis of the recorded trace. Returns 1 if any non-info race
   diagnostic was found, 0 otherwise. *)
let tsan_report ?trace_out ~json () =
  Shared.disarm ();
  let trace = Shared.snapshot () in
  (match trace_out with
  | Some path ->
      Shared.write_trace trace path;
      Printf.eprintf "tsan: %d event(s) written to %s\n%!"
        (List.length trace.Shared.events) path
  | None -> ());
  let diags = Check.Race_check.analyze trace in
  Check.Diagnostic.render ~json Format.std_formatter diags;
  Check.Race_check.exit_code diags

let tsan_arg =
  Arg.(
    value & flag
    & info [ "tsan" ]
        ~doc:
          "Arm the concurrency sanitizer: record every shared-state \
           access during the run and run the vector-clock race detector \
           at drain. Any T diagnostic forces a non-zero exit.")

let tsan_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tsan-trace" ] ~docv:"FILE"
        ~doc:
          "With $(b,--tsan), also write the recorded event trace to \
           $(docv) for offline replay with $(b,race-check).")

let batch_cmd =
  let run manifest workers telemetry no_cache cache_capacity max_conflicts
      retries certify solver_audit tsan tsan_trace =
    if retries < 1 then begin
      Printf.eprintf "--retry must be at least 1\n";
      exit 1
    end;
    (* CLI flags set the manifest baseline; per-line key=value pairs
       still override per job. *)
    let defaults =
      let d = Runner.Manifest.default_options in
      let d =
        match max_conflicts with
        | Some _ -> { d with Runner.Manifest.max_conflicts }
        | None -> d
      in
      let d = if certify then { d with Runner.Manifest.certify = true } else d in
      let d =
        if solver_audit then { d with Runner.Manifest.solver_audit = true }
        else d
      in
      {
        d with
        Runner.Manifest.retry =
          Runner.Retry_policy.with_attempts retries d.Runner.Manifest.retry;
      }
    in
    let jobs =
      try Runner.Manifest.parse_file ~defaults manifest
      with Failure msg ->
        Printf.eprintf "%s: %s\n" manifest msg;
        exit 1
    in
    if jobs = [] then begin
      Printf.eprintf "%s: no jobs\n" manifest;
      exit 1
    end;
    if workers < 1 then begin
      Printf.eprintf "--workers must be at least 1\n";
      exit 1
    end;
    let telemetry_oc = Option.map open_out telemetry in
    let events =
      match telemetry_oc with
      | Some oc -> Runner.Events.channel oc
      | None -> Runner.Events.null
    in
    let cache =
      if no_cache then None
      else Some (Runner.Pattern_cache.create ~capacity_per_key:cache_capacity ())
    in
    (* SIGINT drains rather than kills: the cancel flag makes every
       running job return Budget_exhausted Cancelled at its next budget
       check and keeps queued jobs from doing work, so the pool joins,
       the telemetry sink is flushed, and the partial table still
       prints. A second Ctrl-C falls back to the default behaviour. *)
    let cancel =
      Shared.Atomic.make ~loc:(Shared.here __POS__) "cli.batch.cancel" false
    in
    let previous_sigint =
      try
        Some
          (Sys.signal Sys.sigint
             (Sys.Signal_handle
                (fun _ ->
                  (* signal context: the silent accessors skip trace
                     recording, which is not reentrant *)
                  if Shared.Atomic.silent_get cancel then exit 130;
                  Shared.Atomic.silent_set cancel true;
                  prerr_endline
                    "interrupted: draining running jobs (Ctrl-C again to \
                     kill)")))
      with Invalid_argument _ | Sys_error _ -> None
    in
    if tsan then Shared.arm ();
    let report = Runner.Pool.run ~workers ~events ?cache ~cancel jobs in
    Option.iter (Sys.set_signal Sys.sigint) previous_sigint;
    Option.iter close_out telemetry_oc;
    Printf.printf "%-4s %-32s %-24s %8s %8s %8s %9s %6s %6s %3s %4s %8s %3s\n"
      "job" "label" "status" "cost" "SAT" "confl" "props" "hits" "added"
      "att" "quar" "time" "wkr";
    Array.iter
      (fun (r : Runner.Job.result) ->
        Printf.printf
          "%-4d %-32s %-24s %8d %8d %8d %9d %6d %6d %3d %4d %7.3fs %3d\n"
          r.Runner.Job.spec.Runner.Job.id
          r.Runner.Job.spec.Runner.Job.label
          (Runner.Job.status_to_string r.Runner.Job.status)
          r.Runner.Job.final_cost
          (r.Runner.Job.sat.Sweeper.calls + r.Runner.Job.po_calls)
          r.Runner.Job.sat.Sweeper.conflicts
          r.Runner.Job.sat.Sweeper.propagations r.Runner.Job.cache_hits
          r.Runner.Job.cache_added r.Runner.Job.attempts
          (List.length r.Runner.Job.quarantined)
          r.Runner.Job.time r.Runner.Job.worker)
      report.Runner.Pool.results;
    (match cache with
     | Some c ->
         Printf.printf
           "pattern cache: %d vectors, %d hits, %d misses, %d dropped\n"
           (Runner.Pattern_cache.size c)
           (Runner.Pattern_cache.hits c)
           (Runner.Pattern_cache.misses c)
           (Runner.Pattern_cache.dropped c)
     | None -> ());
    print_endline (Runner.Pool.summary report);
    let failed = ref false and inconclusive = ref false in
    Array.iter
      (fun (r : Runner.Job.result) ->
        if r.Runner.Job.quarantined <> [] then inconclusive := true;
        match r.Runner.Job.status with
        | Runner.Job.Failed _ -> failed := true
        | Runner.Job.Inconclusive _ -> inconclusive := true
        | Runner.Job.Swept | Runner.Job.Equivalent
        | Runner.Job.Not_equivalent _ | Runner.Job.Budget_exhausted _ ->
            ())
      report.Runner.Pool.results;
    let races =
      if tsan || Shared.is_armed () then
        tsan_report ?trace_out:tsan_trace ~json:false () = 1
      else false
    in
    if Shared.Atomic.silent_get cancel then exit 130
    else if !failed || races then exit 1
    else if !inconclusive then exit 3
  in
  let manifest =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MANIFEST"
          ~doc:
            "Job manifest: one \"cec A B [key=value ...]\" or \"sweep C \
             [key=value ...]\" per line. Keys: seed, strategy, iterations, \
             random, deadline, watchdog, max-sat, max-guided, \
             max-conflicts, retries, backoff, stacked, certify, \
             solver-audit, label.")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains executing jobs in parallel.")
  in
  let telemetry =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:"Write one JSON event per job phase to $(docv) (JSONL).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the cross-job pattern cache (replaying distinguishing \
             patterns between jobs with matching PI counts).")
  in
  let cache_capacity =
    Arg.(
      value & opt int 64
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Cached patterns kept per PI count.")
  in
  let batch_certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Default every job to certify=true: sweeps record DRUP proof \
             slices, the certificate is re-checked after each job, and an \
             invalid certificate fails the job. Per-line certify=false \
             still overrides.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a manifest of CEC/sweep jobs on a parallel worker pool with \
          per-job budgets, retry supervision, JSONL telemetry and a shared \
          pattern cache. Exit codes: 0 all decided, 1 any job failed, 3 \
          inconclusive/quarantined results, 130 interrupted (SIGINT \
          drains running jobs and flushes telemetry first).")
    Term.(
      const run $ manifest $ workers $ telemetry $ no_cache $ cache_capacity
      $ max_conflicts_arg $ retry_arg $ batch_certify $ solver_audit_arg
      $ tsan_arg $ tsan_trace_arg)

(* ------------------------------------------------------------------ *)
(* Daemon and client                                                   *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt string "simgen.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let run socket workers max_queue cache_mb no_cache cache_load cache_save
      journal checkpoint_every checkpoint_seconds telemetry tsan tsan_trace =
    if cache_mb < 1 then begin
      Printf.eprintf "--cache-mb must be at least 1\n";
      exit 1
    end;
    let fun_cache =
      if no_cache then None
      else Some (Fun_cache.create ~max_bytes:(cache_mb * 1024 * 1024) ())
    in
    (match (fun_cache, cache_load) with
     | Some fc, Some path -> (
         match Fun_cache.load fc path with
         | Ok n -> Printf.printf "fun-cache: restored %d entries from %s\n%!" n path
         | Error msg -> Printf.eprintf "fun-cache: %s (starting cold)\n%!" msg)
     | Some _, None | None, Some _ | None, None -> ());
    (* Crash-safe persistence: with --cache-save, run journaled — replay
       the previous process's journal over the restored snapshot (so a
       SIGKILL lost at most the unsynced tail), then append insertions
       and checkpoint on a size/time schedule. *)
    (match (fun_cache, cache_save) with
     | Some fc, Some snap -> (
         let jpath =
           match journal with Some p -> p | None -> snap ^ ".journal"
         in
         let replayed, corrupt = Fun_cache.replay_journal fc jpath in
         if replayed > 0 || corrupt > 0 then
           Printf.printf
             "fun-cache: replayed %d journal entries from %s%s\n%!" replayed
             jpath
             (if corrupt > 0 then
                Printf.sprintf " (%d corrupt lines truncated)" corrupt
              else "");
         match
           Fun_cache.enable_journal fc ~snapshot:snap ~journal:jpath
             ~checkpoint_entries:checkpoint_every ~checkpoint_seconds ()
         with
         | Ok () -> ()
         | Error msg ->
             Printf.eprintf "fun-cache: journal disabled: %s\n%!" msg)
     | Some _, None | None, Some _ | None, None -> ());
    let telemetry_oc = Option.map open_out telemetry in
    let events =
      match telemetry_oc with
      | Some oc -> Runner.Events.channel oc
      | None -> Runner.Events.null
    in
    let pattern_cache = Runner.Pattern_cache.create () in
    let server =
      Serve.Server.create ?workers ~max_queue ?fun_cache ~pattern_cache
        ?cache_save ~telemetry:events ()
    in
    Printf.printf "simgen daemon: listening on %s (pid %d)\n%!" socket
      (Unix.getpid ());
    if tsan then Shared.arm ();
    Serve.Server.serve server ~socket;
    Option.iter close_out telemetry_oc;
    Printf.printf "simgen daemon: drained, exiting\n%!";
    if tsan || Shared.is_armed () then
      exit (tsan_report ?trace_out:tsan_trace ~json:false ())
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains executing jobs (default: the recommended \
             domain count minus one).")
  in
  let cache_mb =
    Arg.(
      value & opt int 64
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:
            "Resident size bound of the cross-request NPN function cache; \
             LRU+cost eviction keeps the estimate under it.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the NPN function cache (verdicts are unchanged — the \
             cache only skips SAT work — so this exists for parity checks \
             and measurement).")
  in
  let cache_load =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-load" ] ~docv:"FILE"
          ~doc:
            "Warm-start the function cache from a snapshot; corrupted \
             lines are dropped, a missing file starts cold.")
  in
  let cache_save =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-save" ] ~docv:"FILE"
          ~doc:
            "Snapshot the function cache here on graceful shutdown, and \
             run journaled persistence while serving: insertions are \
             appended to a checksummed journal and checkpointed on a \
             size/time schedule, so even SIGKILL loses at most the \
             unsynced journal tail.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Journal path for crash-safe persistence (default: the \
             --cache-save path with a .journal suffix; ignored without \
             --cache-save). On startup a journal left by a crashed \
             process is replayed over the snapshot; a torn tail is \
             truncated with a warning, never a refused start.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 128
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Checkpoint (atomic snapshot + journal truncation) after N \
             journal appends.")
  in
  let checkpoint_seconds =
    Arg.(
      value & opt float 30.0
      & info [ "checkpoint-seconds" ] ~docv:"S"
          ~doc:"Also checkpoint when S seconds have passed since the last.")
  in
  let max_queue =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission bound: queued (not yet dispatched) jobs beyond N \
             are refused with an overloaded answer carrying a retry-after \
             hint, instead of buffering without bound.")
  in
  let telemetry =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Daemon-side JSONL event log: every job's telemetry across \
             all clients, flushed per line.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent sweep daemon: a Unix-domain-socket JSONL \
          service dispatching sweep/cec/certify/lint jobs onto a worker \
          pool, with a cross-request NPN function cache shared by every \
          request, bounded-queue admission control, per-request \
          deadlines, and journaled crash-safe cache persistence. SIGTERM \
          or a shutdown request drains in-flight jobs (the batch SIGINT \
          path), flushes telemetry, checkpoints the cache, and exits 0.")
    Term.(
      const run $ socket_arg $ workers $ max_queue $ cache_mb $ no_cache
      $ cache_load $ cache_save $ journal $ checkpoint_every
      $ checkpoint_seconds $ telemetry $ tsan_arg $ tsan_trace_arg)

let submit_cmd =
  let run socket cmd args deadline_ms timeout show_events =
    let req =
      match cmd with
      | "ping" -> Ok Serve.Protocol.Ping
      | "stats" -> Ok Serve.Protocol.Stats
      | "shutdown" -> Ok Serve.Protocol.Shutdown
      | "lint" -> (
          match args with
          | [ target ] -> Ok (Serve.Protocol.Lint { target })
          | [] | _ :: _ -> Error "lint takes exactly one target")
      | "sweep" | "cec" | "certify" ->
          if args = [] then Error (cmd ^ " needs circuit arguments")
          else
            Ok
              (Serve.Protocol.Job
                 { cmd; args = String.concat " " args; deadline_ms })
      | cmd -> Error (cmd ^ ": unknown command")
    in
    match req with
    | Error msg ->
        Printf.eprintf "submit: %s\n" msg;
        exit 2
    | Ok req -> (
        let on_event j =
          if show_events then prerr_endline (Serve.Protocol.to_string j)
        in
        match Serve.Client.call ~socket ?read_timeout:timeout ~on_event req with
        | Error err ->
            Printf.eprintf "submit: %s\n" (Serve.Client.error_to_string err);
            exit 2
        | Ok fields ->
            print_endline (Serve.Protocol.to_string (Serve.Protocol.Obj fields));
            (* Exit codes mirror the one-shot cec/batch conventions. *)
            (match
               Serve.Protocol.string_member "status" (Serve.Protocol.Obj fields)
             with
             | Some status ->
                 let prefixed p = String.length status >= String.length p
                                  && String.sub status 0 (String.length p) = p in
                 if status = "equivalent" || status = "swept"
                    || status = "ok" || status = "shutting-down"
                 then exit 0
                 else if prefixed "not-equivalent" then exit 1
                 else if prefixed "inconclusive" || prefixed "budget-exhausted"
                 then exit 3
                 else if prefixed "failed" then exit 1
                 else exit 0
             | None -> exit 0))
  in
  let cmd =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CMD"
          ~doc:
            "Request: sweep, cec, certify, lint, stats, ping or shutdown.")
  in
  let args =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"ARGS"
          ~doc:
            "Job arguments in the batch manifest grammar: circuits plus \
             key=value options (seed, deadline, retries, stacked, ...).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "End-to-end deadline for a job request, in milliseconds, \
             measured from daemon receipt: covers queueing and \
             execution. An expired job is answered \
             budget-exhausted:deadline (exit 3) instead of holding a \
             worker.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"S"
          ~doc:
            "Client-side read timeout in seconds per protocol line \
             (default 120); streamed events reset it.")
  in
  let show_events =
    Arg.(
      value & flag
      & info [ "events" ]
          ~doc:"Print the job's streamed telemetry events to stderr.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Send one request to a running simgen daemon and print the \
          result as JSON. Overloaded answers are retried with jittered \
          backoff before giving up. Exit codes mirror the one-shot \
          commands: 0 equivalent/swept/ok, 1 not equivalent or failed, \
          3 inconclusive or budget-exhausted, 2 transport, timeout, \
          overload or usage error.")
    Term.(
      const run $ socket_arg $ cmd $ args $ deadline_ms $ timeout
      $ show_events)

let ping_cmd =
  let run socket =
    match
      Serve.Client.call ~socket ~connect_timeout:2.0 ~read_timeout:5.0
        Serve.Protocol.Ping
    with
    | Ok fields ->
        print_endline (Serve.Protocol.to_string (Serve.Protocol.Obj fields))
    | Error err ->
        Printf.eprintf "ping: %s\n" (Serve.Client.error_to_string err);
        exit 1
  in
  Cmd.v
    (Cmd.info "ping"
       ~doc:
         "Liveness check: exit 0 if a daemon answers on the socket, 1 \
          otherwise.")
    Term.(const run $ socket_arg)

let atpg_cmd =
  let run spec seed =
    let net = load_or_generate spec in
    Format.printf "%a@." N.pp_stats net;
    let stats = Simgen_atpg.Tpg.campaign ~seed net in
    Format.printf "%a@." Simgen_atpg.Tpg.pp_stats stats
  in
  Cmd.v
    (Cmd.info "atpg"
       ~doc:
         "Stuck-at test generation: random patterns, then guided \
          activation, then SAT.")
    Term.(const run $ circuit_arg 0 "Circuit file or benchmark name." $ seed_arg)

let lint_cmd =
  let run targets json suites tseitin semantic sem_budget =
    (* Each target is a file (routed by extension), or a suite benchmark
       name (lints its AIG and its mapped LUT network); --suites appends
       every suite entry. Exit code: 0 clean/info, 1 warnings, 2 errors. *)
    let targets =
      if suites then targets @ Suite.names else targets
    in
    if targets = [] then begin
      Printf.eprintf "lint: no targets (give files, names, or --suites)\n";
      exit 2
    end;
    let fmt = Format.std_formatter in
    let extra_lints net =
      let enc_diags =
        if tseitin then Check.Lint.tseitin_encoding net else []
      in
      let sem_diags =
        if semantic then Check.Lint.semantic ~budget:sem_budget net else []
      in
      enc_diags @ sem_diags
    in
    let lint_one target =
      if Sys.file_exists target then begin
        let diags = Check.Lint.file target in
        (* The semantic tier needs a network; re-route circuit files
           through the loader (CNF/AIG targets get the base lints only). *)
        if (semantic || tseitin)
           && (Filename.check_suffix target ".blif"
               || Filename.check_suffix target ".bench")
           && not
                (List.exists
                   (fun d -> d.Check.Diagnostic.code = "P001")
                   diags)
        then diags @ extra_lints (read_network target)
        else diags
      end
      else
        match Suite.find target with
        | None ->
            [ Check.Diagnostic.error ~loc:(Check.Diagnostic.Named target)
                "P002" "neither a file nor a known benchmark" ]
        | Some _ ->
            let aig_diags = Check.Lint.aig (Suite.aig target) in
            let net = Suite.lut_network target in
            let net_diags = Check.Lint.network net in
            aig_diags @ net_diags @ extra_lints net
    in
    let worst = ref 0 in
    List.iter
      (fun target ->
        let diags = lint_one target in
        let errors, warnings, infos = Check.Diagnostic.counts diags in
        if not json then
          Format.fprintf fmt "%s: %d error(s), %d warning(s), %d info(s)@."
            target errors warnings infos;
        Check.Diagnostic.render ~json fmt diags;
        worst := max !worst (Check.Diagnostic.exit_code diags))
      targets;
    exit !worst
  in
  let targets =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:
            "Circuit or CNF file (.blif, .bench, .aag, .cnf, .dimacs) or \
             suite benchmark name.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one JSON object per diagnostic (JSONL) instead of text.")
  in
  let suites =
    Arg.(
      value & flag
      & info [ "suites" ] ~doc:"Lint every built-in suite benchmark.")
  in
  let tseitin =
    Arg.(
      value & flag
      & info [ "tseitin" ]
          ~doc:
            "Additionally lint the Tseitin CNF encoding of each linted \
             network.")
  in
  let semantic =
    Arg.(
      value & flag
      & info [ "semantic" ]
          ~doc:
            "Additionally run the SAT/BDD-proved semantic tier \
             (S001..S008): provably-constant gates, redundant fanins, \
             equivalent nodes, equal/complementary POs and dead logic. \
             Every finding carries an independently re-checked DRUP \
             witness; budget-exhausted queries surface as info-level \
             S008 'unknown' and never affect the exit code.")
  in
  let sem_budget =
    Arg.(
      value & opt int 2000
      & info [ "sem-budget" ] ~docv:"N"
          ~doc:
            "Per-query conflict budget for --semantic; no single SAT \
             call may exceed it.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static network/AIG/CNF checks; exit 0 on clean or \
          info-only, 1 on warnings, 2 on errors.")
    Term.(const run $ targets $ json $ suites $ tseitin $ semantic $ sem_budget)

let race_check_cmd =
  let run trace json output =
    match Check.Race_check.file trace with
    | Error msg ->
        Printf.eprintf "race-check: %s\n" msg;
        exit 2
    | Ok diags ->
        let fmt, close =
          match output with
          | Some path ->
              let oc = open_out path in
              (Format.formatter_of_out_channel oc, fun () -> close_out oc)
          | None -> (Format.std_formatter, fun () -> ())
        in
        Check.Diagnostic.render ~json fmt diags;
        Format.pp_print_flush fmt ();
        close ();
        let errors, warnings, infos = Check.Diagnostic.counts diags in
        if output <> None || not json then
          Printf.eprintf "race-check: %d error(s), %d warning(s), %d info(s)\n"
            errors warnings infos;
        exit (Check.Race_check.exit_code diags)
  in
  let trace =
    (* a plain string, not Arg.file: an unreadable trace is this
       command's documented exit-2 path, not a cmdliner usage error *)
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Event trace recorded by a $(b,--tsan) run (header \
             simgen-tsan 1).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one JSON object per diagnostic (JSONL) instead of text.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write diagnostics to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "race-check"
       ~doc:
         "Replay a recorded concurrency trace through the vector-clock \
          happens-before race detector (T001-T008 diagnostics; corrupt \
          trace lines degrade to located P001 warnings). Exit 0 clean or \
          info-only, 1 on any race or parse finding, 2 on usage or an \
          unreadable trace.")
    Term.(const run $ trace $ json $ output)

let proof_lint_cmd =
  let run file formula expect_unsat json output =
    let fail msg =
      Printf.eprintf "proof-lint: %s\n" msg;
      exit 2
    in
    let formula =
      match formula with
      | None -> None
      | Some path -> (
          try Some (snd (Simgen_sat.Dimacs.parse_file path)) with
          | Sys_error msg -> fail msg
          | Simgen_sat.Dimacs.Parse_error (loc, msg) ->
              fail
                (Printf.sprintf "%s: %s"
                   (Option.value
                      (Simgen_base.Srcloc.to_string loc)
                      ~default:path)
                   msg))
    in
    let diags =
      (* A malformed proof degrades to a located P001 error diagnostic
         (exit 2 through the normal severity mapping), matching the lint
         subcommand's treatment of unparsable inputs. *)
      match Drup.parse_file file with
      | events -> Check.Proof_lint.run ?formula ~expect_unsat events
      | exception Sys_error msg -> fail msg
      | exception Drup.Parse_error (loc, msg) ->
          [ Check.Diagnostic.error ~loc:(Check.Diagnostic.Src loc) "P001"
              "parse error: %s" msg ]
    in
    let fmt, close =
      match output with
      | Some path ->
          let oc = open_out path in
          (Format.formatter_of_out_channel oc, fun () -> close_out oc)
      | None -> (Format.std_formatter, fun () -> ())
    in
    Check.Diagnostic.render ~json fmt diags;
    Format.pp_print_flush fmt ();
    close ();
    let errors, warnings, infos = Check.Diagnostic.counts diags in
    if output <> None || not json then
      Printf.eprintf "proof-lint: %d error(s), %d warning(s), %d info(s)\n"
        errors warnings infos;
    exit (Check.Diagnostic.exit_code diags)
  in
  let file =
    (* a plain string, not Arg.file: an unreadable proof is this
       command's documented exit-2 path, not a cmdliner usage error *)
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROOF"
          ~doc:
            "DRUP proof file ($(b,certify-sweep --drup) output, or any \
             drat-trim-style text proof).")
  in
  let formula =
    Arg.(
      value
      & opt (some string) None
      & info [ "formula" ] ~docv:"CNF"
          ~doc:
            "Original formula in DIMACS CNF. Enables the semantic \
             deletion checks (D001, D002, D006) on top of the structural \
             ones; without it, deletions are never flagged (a session \
             proof slice legitimately deletes clauses learned in earlier \
             slices).")
  in
  let expect_unsat =
    Arg.(
      value & flag
      & info [ "expect-unsat" ]
          ~doc:
            "Require the proof to derive the empty clause; its absence \
             is a D008 error.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one JSON object per diagnostic (JSONL) instead of text.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write diagnostics to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "proof-lint"
       ~doc:
         "Static analysis over a DRUP proof-event stream (D001-D009): \
          tautological and duplicate-literal steps, learns after the \
          empty clause, and — with $(b,--formula) — deletion-stream \
          defects (delete of a never-added or exhausted clause, \
          delete-then-use). Exit 0 clean or info-only, 1 on warnings, 2 \
          on errors or an unreadable proof.")
    Term.(const run $ file $ formula $ expect_unsat $ json $ output)

let info_cmd =
  let run spec =
    let net = load_or_generate spec in
    Format.printf "%a@." N.pp_stats net;
    Printf.printf "depth: %d\n" (Simgen_network.Level.depth net)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print statistics of a circuit file or benchmark.")
    Term.(const run $ circuit_arg 0 "Circuit file or benchmark name.")

let () =
  let doc = "SimGen: simulation pattern generation for equivalence checking" in
  let info = Cmd.info "simgen" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ list_cmd; gen_cmd; map_cmd; sweep_cmd; certify_sweep_cmd; cec_cmd;
         batch_cmd; serve_cmd; submit_cmd; ping_cmd; atpg_cmd; lint_cmd;
         race_check_cmd; proof_lint_cmd;
         info_cmd ]))
