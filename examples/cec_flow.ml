(* Combinational equivalence checking, end to end.

   Builds a benchmark AIG, derives a structurally different but
   functionally equivalent variant (re-association + fresh LUT mapping
   with a different K), and runs the full CEC flow: join over shared PIs,
   random + SimGen-guided simulation, SAT sweeping with counter-example
   feedback, then PO miters. Also demonstrates the negative case by
   mutating one LUT.

   Run with: dune exec examples/cec_flow.exe [-- <benchmark>] *)

module Suite = Simgen_benchgen.Suite
module Rewrite = Simgen_aig.Rewrite
module Mapper = Simgen_mapping.Lut_mapper
module Cec = Simgen_sweep.Cec
module Sweeper = Simgen_sweep.Sweeper
module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Rng = Simgen_base.Rng

let describe tag report =
  Printf.printf "%s:\n" tag;
  (match report.Cec.outcome with
   | Cec.Equivalent -> Printf.printf "  verdict        : EQUIVALENT\n"
   | Cec.Not_equivalent { po; vector } ->
       Printf.printf "  verdict        : NOT EQUIVALENT (PO %d)\n" po;
       Printf.printf "  witness        : %s\n"
         (String.concat ""
            (List.map (fun b -> if b then "1" else "0") (Array.to_list vector)))
   | Cec.Inconclusive { pos } ->
       Printf.printf "  verdict        : INCONCLUSIVE (quarantined POs: %s)\n"
         (String.concat "," (List.map string_of_int pos)));
  Printf.printf "  guided vectors : %d (skipped classes: %d)\n"
    report.Cec.guided.Sweeper.vectors report.Cec.guided.Sweeper.skipped;
  Printf.printf "  sweep SAT calls: %d (%d proved, %d disproved)\n"
    report.Cec.sat.Sweeper.calls report.Cec.sat.Sweeper.proved
    report.Cec.sat.Sweeper.disproved;
  Printf.printf "  PO miter calls : %d\n" report.Cec.po_calls;
  Printf.printf "  total time     : %.3fs\n\n" report.Cec.total_time

(* Flip one random LUT's function. *)
let mutate rng net =
  let mutated = N.create ~name:(N.name net ^ "_mut") () in
  let gates = ref [] in
  N.iter_gates net (fun id -> gates := id :: !gates);
  let victim =
    let arr = Array.of_list !gates in
    arr.(Rng.int rng (Array.length arr))
  in
  N.iter_nodes net (fun id ->
      match N.kind net id with
      | N.Pi _ -> ignore (N.add_pi mutated)
      | N.Gate f ->
          let f = if id = victim then TT.not_ f else f in
          ignore (N.add_gate mutated f (N.fanins net id)));
  Array.iter (fun id -> N.add_po mutated id) (N.pos net);
  mutated

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "cps" in
  let aig = Suite.aig name in
  let rng = Rng.of_string (name ^ "-cec") in
  let net1 = Mapper.map ~k:6 aig in
  let net2 = Mapper.map ~k:4 (Rewrite.shuffle_rebuild rng aig) in
  Format.printf "Design A: %a@." N.pp_stats net1;
  Format.printf "Design B: %a@.@." N.pp_stats net2;

  let opts =
    { Simgen_sweep.Sweep_options.default with Simgen_sweep.Sweep_options.seed = 3 }
  in
  describe "CEC of the two equivalent implementations" (Cec.check opts net1 net2);

  describe "CEC against a single-LUT mutation"
    (Cec.check opts net1 (mutate rng net2))
