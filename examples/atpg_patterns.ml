(* ATPG heritage demo: stuck-at test generation with the SimGen engine.

   SimGen borrows activation/propagation reasoning from ATPG (paper
   §2.4). This example closes the loop and uses the pattern generator AS
   an ATPG through the [Simgen_atpg] library: random patterns catch the
   easy faults, guided activation (the SimGen engine driving the fault
   site to the opposite value) catches most of the rest, and a
   good-vs-faulty SAT miter decides the leftovers exactly — the same
   cheap-to-exact escalation as the sweeping flow.

   Run with: dune exec examples/atpg_patterns.exe [-- <benchmark>] *)

module Suite = Simgen_benchgen.Suite
module N = Simgen_network.Network
module Fault = Simgen_atpg.Fault
module Tpg = Simgen_atpg.Tpg

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "misex3c" in
  let net = Suite.lut_network name in
  Format.printf "Benchmark %s: %a@.@." name N.pp_stats net;
  let faults = Fault.all_gate_faults net in
  Printf.printf "Fault list: %d single stuck-at faults on LUT outputs\n"
    (List.length faults);

  (* A couple of individual faults, narrated. *)
  (match faults with
   | f1 :: _ ->
       Printf.printf "\nFault %s:\n" (Fault.to_string net f1);
       (match Tpg.generate_guided net f1 with
        | Some vec ->
            Printf.printf "  guided activation found a test: %s\n"
              (String.concat ""
                 (List.map (fun b -> if b then "1" else "0") (Array.to_list vec)))
        | None -> Printf.printf "  guided activation gave up\n");
       (match Tpg.generate_sat net f1 with
        | Tpg.Detected _ -> Printf.printf "  SAT confirms the fault is testable\n"
        | Tpg.Untestable -> Printf.printf "  SAT proves the fault untestable\n")
   | [] -> ());

  (* The full campaign. *)
  let stats = Tpg.campaign ~seed:1 net in
  Format.printf "@.Campaign: %a@." Tpg.pp_stats stats;
  let detected = stats.Tpg.by_random + stats.Tpg.by_guided + stats.Tpg.by_sat in
  Printf.printf "Coverage: %d/%d testable faults = %.1f%%\n" detected
    (stats.Tpg.total - stats.Tpg.untestable)
    (100.0 *. float_of_int detected
    /. float_of_int (max 1 (stats.Tpg.total - stats.Tpg.untestable)));
  Printf.printf
    "\nThe tier split mirrors the paper's sweeping story: cheap random\n\
     vectors first, guided (conflict-avoiding, backtrack-free) generation\n\
     for the structured cases, and the exact-but-expensive solver only\n\
     for what is left.\n"
