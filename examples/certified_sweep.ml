(* Certified sweeping and network simplification.

   Sweeping exists to simplify: proven-equivalent LUTs merge into one.
   This example runs the full flow on a benchmark and then goes further
   than the paper on trust: every UNSAT merge is re-validated by checking
   the solver's DRUP proof with an independent reverse-unit-propagation
   checker, and every counter-example is re-validated (and minimized) by
   simulation.

   Run with: dune exec examples/certified_sweep.exe [-- <benchmark>] *)

module Suite = Simgen_benchgen.Suite
module N = Simgen_network.Network
module Sweeper = Simgen_sweep.Sweeper
module Miter = Simgen_sweep.Miter
module Minimize = Simgen_sweep.Minimize
module Strategy = Simgen_core.Strategy
module Eq = Simgen_sim.Eq_classes
module Rng = Simgen_base.Rng

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "apex5" in
  let net = Suite.lut_network name in
  Format.printf "Benchmark %s: %a@.@." name N.pp_stats net;

  (* Phase 1-2: random + SimGen simulation. *)
  let opts =
    {
      Simgen_sweep.Sweep_options.default with
      Simgen_sweep.Sweep_options.seed = 11;
      strategy = Strategy.AI_DC_MFFC;
      guided_iterations = 20;
    }
  in
  let sw = Sweeper.create opts net in
  Sweeper.random_round sw;
  ignore (Sweeper.run_guided opts sw);
  Printf.printf "cost after simulation: %d (%d classes)\n" (Sweeper.cost sw)
    (Eq.num_classes (Sweeper.classes sw));

  (* Phase 3: certified SAT resolution of a few candidate pairs. *)
  Printf.printf "\ncertified candidate checks:\n";
  let shown = ref 0 in
  List.iter
    (fun cls ->
      match cls with
      | a :: b :: _ when !shown < 6 -> (
          incr shown;
          match Miter.check_pair_certified net a b with
          | Miter.Equal, proof_ok ->
              Printf.printf "  n%-4d = n%-4d  EQUAL (DRUP proof %s)\n" a b
                (if proof_ok then "checked" else "REJECTED")
          | Miter.Counterexample cex, cex_ok ->
              let kernel = Minimize.essential_bits net a b cex in
              Printf.printf
                "  n%-4d ~ n%-4d  DIFFER (cex %s; %d essential bits: %s)\n" a b
                (if cex_ok then "validated" else "INVALID")
                (List.length kernel)
                (String.concat "," (List.map string_of_int kernel))
          | Miter.Unknown, _ ->
              (* Unreachable: certified checks run without a conflict
                 budget. *)
              Printf.printf "  n%-4d ? n%-4d  UNKNOWN\n" a b)
      | _ -> ())
    (Eq.classes (Sweeper.classes sw));

  (* Full sweep and extraction of the simplified network. *)
  let s = Sweeper.sat_sweep opts sw in
  Printf.printf "\nSAT sweeping: %d calls, %d proved, %d disproved (%.3fs)\n"
    s.Sweeper.calls s.Sweeper.proved s.Sweeper.disproved s.Sweeper.sat_time;
  let merged = Sweeper.merged_network sw in
  Printf.printf "simplification: %d LUTs -> %d LUTs\n" (N.num_gates net)
    (N.num_gates merged);

  (* Spot-check equivalence of the simplified network. *)
  let rng = Rng.create 1 in
  let agree = ref true in
  for _ = 1 to 1000 do
    let vec = Array.init (N.num_pis net) (fun _ -> Rng.bool rng) in
    if N.eval_pos net vec <> N.eval_pos merged vec then agree := false
  done;
  Printf.printf "merged network agrees on 1000 random vectors: %b\n" !agree
