(* Strategy comparison on one benchmark: the paper's §6.2 experiment in
   miniature.

   Takes a benchmark name (default "apex2"), LUT-maps it, runs one round
   of random simulation followed by 20 guided iterations under each of
   the five strategies of Table 1, then finishes each run with SAT
   sweeping and prints the resulting cost, runtime and SAT statistics.

   Run with: dune exec examples/sweeping_strategies.exe [-- <benchmark>] *)

module Suite = Simgen_benchgen.Suite
module Sweeper = Simgen_sweep.Sweeper
module Sweep_options = Simgen_sweep.Sweep_options
module Strategy = Simgen_core.Strategy
module N = Simgen_network.Network

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "apex2" in
  (match Suite.find name with
   | Some _ -> ()
   | None ->
       Printf.eprintf "unknown benchmark %S; known: %s\n" name
         (String.concat " " Suite.names);
       exit 1);
  let net = Suite.lut_network name in
  Format.printf "Benchmark %s: %a@.@." name N.pp_stats net;
  Printf.printf "%-11s %8s %8s %9s %9s %9s %10s %9s\n" "strategy" "cost0"
    "cost" "vectors" "conflicts" "sim_time" "SAT_calls" "SAT_time";
  List.iter
    (fun strategy ->
      let opts =
        { Sweep_options.default with
          Sweep_options.seed = 7;
          strategy;
          guided_iterations = 20
        }
      in
      let sw = Sweeper.create opts net in
      Sweeper.random_round sw;
      let cost0 = Sweeper.cost sw in
      let g = Sweeper.run_guided opts sw in
      let cost1 = Sweeper.cost sw in
      let s = Sweeper.sat_sweep opts sw in
      Printf.printf "%-11s %8d %8d %9d %9d %8.3fs %10d %8.3fs\n"
        (Strategy.name strategy) cost0 cost1 g.Sweeper.vectors
        g.Sweeper.gen_conflicts g.Sweeper.guided_time s.Sweeper.calls
        s.Sweeper.sat_time)
    Strategy.all;
  Printf.printf
    "\ncost = Eq. (5): worst-case SAT calls left after simulation.\n\
     Guided strategies that split more classes leave fewer SAT calls.\n"
