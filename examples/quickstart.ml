(* Quickstart: the paper's Figure 1 circuit, end to end.

   Builds the four-gate network from Figure 1, asks SimGen for an input
   vector that sets output D to 1, and contrasts it with reverse
   simulation, which fails on this circuit about half the time.

   Run with: dune exec examples/quickstart.exe *)

open Simgen_network
module Engine = Simgen_core.Engine
module Config = Simgen_core.Config
module VG = Simgen_core.Vector_gen
module Rng = Simgen_base.Rng

let tt_not = Truth_table.not_ (Truth_table.var 0 1)
let tt_and2 = Truth_table.and_ (Truth_table.var 0 2) (Truth_table.var 1 2)
let tt_nand2 = Truth_table.not_ tt_and2

let tt_and_not =
  Truth_table.and_ (Truth_table.var 0 2) (Truth_table.not_ (Truth_table.var 1 2))

(* Figure 1: D = z = AND(x, y); x = AND(A, ~B); y = NAND(inv, C);
   inv = NOT(B). *)
let build () =
  let net = Network.create ~name:"figure1" () in
  let a = Network.add_pi ~name:"A" net in
  let b = Network.add_pi ~name:"B" net in
  let c = Network.add_pi ~name:"C" net in
  let x = Network.add_gate ~name:"x" net tt_and_not [| a; b |] in
  let inv = Network.add_gate ~name:"inv" net tt_not [| b |] in
  let y = Network.add_gate ~name:"y" net tt_nand2 [| inv; c |] in
  let z = Network.add_gate ~name:"z" net tt_and2 [| x; y |] in
  Network.add_po ~name:"D" net z;
  (net, z)

let show_vector net vec =
  String.concat " "
    (List.mapi
       (fun i v ->
         let name =
           match Network.node_name net (Network.pis net).(i) with
           | Some n -> n
           | None -> Printf.sprintf "pi%d" i
         in
         Printf.sprintf "%s=%d" name (if v then 1 else 0))
       (Array.to_list vec))

let () =
  let net, z = build () in
  Format.printf "Network: %a@." Network.pp_stats net;

  (* SimGen: advanced implication + DC/MFFC decisions, bidirectional. *)
  let report = VG.generate ~config:Config.default ~rng:(Rng.create 1) net [ (z, true) ] in
  Printf.printf "\nSimGen asked for D = 1:\n";
  Printf.printf "  vector        : %s\n" (show_vector net report.VG.vector);
  Printf.printf "  implications  : %d\n" report.VG.implications;
  Printf.printf "  decisions     : %d\n" report.VG.decisions;
  Printf.printf "  conflicts     : %d\n" report.VG.conflicts;
  let vals = Network.eval net report.VG.vector in
  Printf.printf "  simulated D   : %d  (expected 1)\n" (if vals.(z) then 1 else 0);

  (* Reverse simulation on the same problem, across seeds. *)
  let failures = ref 0 and runs = 100 in
  for seed = 1 to runs do
    let net, z = build () in
    let r =
      VG.generate ~config:Config.reverse_simulation ~rng:(Rng.create seed) net
        [ (z, true) ]
    in
    if r.VG.satisfied = [] then incr failures
  done;
  Printf.printf
    "\nReverse simulation on the same request: %d conflicts out of %d runs\n"
    !failures runs;
  Printf.printf
    "(the Figure 1 story: without forward implication, the NAND decision\n\
    \ guesses the inverter output and collides with B about half the time)\n"
