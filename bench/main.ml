(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (§6) on the synthetic 42-circuit suite, plus a
   Bechamel micro-benchmark per table/figure and an ablation study.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- table1  -- run one experiment
     (ids: table1 table2 table2s fig5 fig6 fig7 ablation baselines runner
      micro sat-session sat-session-smoke cert cert-smoke serve
      serve-smoke race solver-audit soak soak-smoke)

   Numbers are not expected to match the paper's testbed; the shapes are:
   SimGen variants beat RevS on cost at a simulation-time premium, SAT
   calls and SAT time drop accordingly, and random simulation stalls
   where guided simulation keeps splitting (Fig. 7). *)

module Suite = Simgen_benchgen.Suite
module Sweeper = Simgen_sweep.Sweeper
module Sweep_options = Simgen_sweep.Sweep_options
module Strategy = Simgen_core.Strategy
module Config = Simgen_core.Config
module Stack = Simgen_network.Stack_networks
module N = Simgen_network.Network

let seed = 7

(* Local shorthand for the one options record every entry point takes:
   most experiments only vary the strategy, iteration count or a single
   flag off the defaults. *)
let opts_with ?(seed = seed) ?(strategy = Strategy.AI_DC_MFFC)
    ?(iterations = 20) ?(one_distance = false)
    ?(outgold = Sweep_options.default.Sweep_options.outgold) () =
  {
    Sweep_options.default with
    Sweep_options.seed;
    strategy;
    guided_iterations = iterations;
    one_distance;
    outgold;
  }

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table 1: average normalized cost and simulation runtime             *)
(* ------------------------------------------------------------------ *)

let table1_seeds = [ 7; 11 ]

let table1 () =
  header
    "Table 1: normalized Cost and Simulation Runtime vs RevS (42 benchmarks)";
  let per_strategy = Hashtbl.create 7 in
  List.iter
    (fun bench ->
      let net = Suite.lut_network bench in
      (* Average each strategy over the seeds, then normalize vs RevS. *)
      let averaged strategy =
        let rs =
          List.map
            (fun seed -> Runs.run ~seed ~with_sat:false ~bench net strategy)
            table1_seeds
        in
        ( Runs.mean (List.map (fun r -> float_of_int r.Runs.cost) rs),
          Runs.mean (List.map (fun r -> r.Runs.sim_time) rs) )
      in
      let base_cost, base_time = averaged Strategy.RevS in
      List.iter
        (fun strategy ->
          let cost, time =
            if strategy = Strategy.RevS then (base_cost, base_time)
            else averaged strategy
          in
          let cost_ratio = Runs.ratio cost base_cost in
          let time_ratio = Runs.ratio time base_time in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt per_strategy strategy)
          in
          Hashtbl.replace per_strategy strategy
            ((cost_ratio, time_ratio) :: prev))
        Strategy.all)
    (Runs.benchmarks ());
  Printf.printf "%-22s" "";
  List.iter (fun s -> Printf.printf "%12s" (Strategy.name s)) Strategy.all;
  Printf.printf "\n%-22s" "Cost";
  List.iter
    (fun s ->
      let rs = Hashtbl.find per_strategy s in
      Printf.printf "%12.3f" (Runs.mean (List.map fst rs)))
    Strategy.all;
  Printf.printf "\n%-22s" "Simulation Runtime";
  List.iter
    (fun s ->
      let rs = Hashtbl.find per_strategy s in
      Printf.printf "%12.3f" (Runs.geo_mean (List.map snd rs)))
    Strategy.all;
  Printf.printf
    "\n\n(paper: 1.000 / 0.814 / 0.812 / 0.810 / 0.807 cost; runtime rises \
     mildly.\n\
    \ Expected shape: every SimGen variant < 1.000 cost, runtime > 1.000.)\n"

(* ------------------------------------------------------------------ *)
(* Table 2 (upper): SAT calls and SAT time per benchmark               *)
(* ------------------------------------------------------------------ *)

let rows_cache :
    (string, (string * Runs.result * Runs.result) list) Hashtbl.t =
  Hashtbl.create 4

let table2_rows ~cache_key benches net_of =
  match Hashtbl.find_opt rows_cache cache_key with
  | Some rows -> rows
  | None ->
      let rows =
        List.map
          (fun bench ->
            let net = net_of bench in
            let revs = Runs.run ~seed ~bench net Strategy.RevS in
            let sgen = Runs.run ~seed ~bench net Strategy.AI_DC_MFFC in
            (bench, revs, sgen))
          benches
      in
      Hashtbl.replace rows_cache cache_key rows;
      rows

let print_table2 rows ~time_unit =
  let scale = if time_unit = "ms" then 1000.0 else 1.0 in
  Printf.printf "%-12s %10s %10s %12s %12s\n" "Bmk" "RevS calls" "SGen calls"
    (Printf.sprintf "RevS %s" time_unit)
    (Printf.sprintf "SGen %s" time_unit);
  let tc_r = ref 0 and tc_s = ref 0 and tt_r = ref 0.0 and tt_s = ref 0.0 in
  List.iter
    (fun (bench, revs, sgen) ->
      tc_r := !tc_r + revs.Runs.sat_calls;
      tc_s := !tc_s + sgen.Runs.sat_calls;
      tt_r := !tt_r +. revs.Runs.sat_time;
      tt_s := !tt_s +. sgen.Runs.sat_time;
      Printf.printf "%-12s %10d %10d %12.2f %12.2f\n" bench
        revs.Runs.sat_calls sgen.Runs.sat_calls
        (revs.Runs.sat_time *. scale)
        (sgen.Runs.sat_time *. scale))
    rows;
  Printf.printf "%-12s %10d %10d %12.2f %12.2f   (totals)\n" "TOTAL" !tc_r
    !tc_s (!tt_r *. scale) (!tt_s *. scale)

let table2 () =
  header "Table 2 (upper): SAT calls and SAT time, RevS vs SimGen";
  let rows =
    table2_rows ~cache_key:"flat" (Runs.benchmarks ()) Suite.lut_network
  in
  print_table2 rows ~time_unit:"ms";
  Printf.printf
    "\n(expected shape: SimGen needs fewer SAT calls than RevS on most rows,\n\
    \ and total SAT time drops accordingly.)\n"

(* ------------------------------------------------------------------ *)
(* Table 2 (lower): stacked benchmarks (&putontop, §6.4)               *)
(* ------------------------------------------------------------------ *)

let stacked_rows () =
  match Hashtbl.find_opt rows_cache "stacked" with
  | Some rows -> rows
  | None ->
      let rows =
        List.map
          (fun (bench, copies) ->
            let net = Suite.stacked_lut_network bench in
            let label = Printf.sprintf "%s (%d)" bench copies in
            let revs = Runs.run ~seed ~bench:label net Strategy.RevS in
            let sgen = Runs.run ~seed ~bench:label net Strategy.AI_DC_MFFC in
            (label, revs, sgen))
          (Runs.stacked_benchmarks ())
      in
      Hashtbl.replace rows_cache "stacked" rows;
      rows

let table2_stacked () =
  header "Table 2 (lower): stacked benchmarks (putontop)";
  let rows = stacked_rows () in
  print_table2 rows ~time_unit:"ms";
  Printf.printf
    "\n(same trend as the upper table at larger scale: the copies multiply\n\
    \ the candidate pairs and deepen the miter cones.)\n"

(* ------------------------------------------------------------------ *)
(* Figures 5 and 6: per-benchmark normalized differences               *)
(* ------------------------------------------------------------------ *)

let figure_rows rows =
  List.map
    (fun (bench, revs, sgen) ->
      let r v b = Runs.ratio v b in
      ( bench,
        r (float_of_int sgen.Runs.cost) (float_of_int revs.Runs.cost),
        r sgen.Runs.sim_time revs.Runs.sim_time,
        r (float_of_int sgen.Runs.sat_calls) (float_of_int revs.Runs.sat_calls),
        r sgen.Runs.sat_time revs.Runs.sat_time ))
    rows

let spark v =
  (* Tiny text bar: 1.0 is the RevS baseline. *)
  let n = int_of_float (v *. 10.0 +. 0.5) in
  String.concat "" (List.init (min n 30) (fun _ -> "#"))

let print_figure rows =
  Printf.printf "%-14s %28s %28s %28s %28s\n" "" "cost" "sim runtime"
    "SAT calls" "SAT time";
  List.iter
    (fun (bench, c, st, sc, stt) ->
      Printf.printf "%-14s %8.3f %-19s %8.3f %-19s %8.3f %-19s %8.3f %-19s\n"
        bench c (spark c) st (spark st) sc (spark sc) stt (spark stt))
    rows;
  let col f = Runs.mean (List.map f rows) in
  Printf.printf "%-14s %8.3f %19s %8.3f %19s %8.3f %19s %8.3f %19s\n" "MEAN"
    (col (fun (_, c, _, _, _) -> c))
    ""
    (col (fun (_, _, st, _, _) -> st))
    ""
    (col (fun (_, _, _, sc, _) -> sc))
    ""
    (col (fun (_, _, _, _, stt) -> stt))
    ""

let fig5 () =
  header
    "Figure 5: SimGen/RevS ratios per benchmark (cost, sim runtime, SAT \
     calls, SAT time; 1.0 = RevS)";
  print_figure
    (figure_rows
       (table2_rows ~cache_key:"flat" (Runs.benchmarks ()) Suite.lut_network))

let fig6 () =
  header "Figure 6: the same ratios on the stacked benchmarks";
  print_figure (figure_rows (stacked_rows ()))

(* ------------------------------------------------------------------ *)
(* Figure 7: iteration traces, RandS vs RandS->RevS vs RandS->SimGen   *)
(* ------------------------------------------------------------------ *)

let fig7_trace net mode ~iterations =
  (* RandS until the cost stalls for 3 consecutive iterations, then switch
     to the guided strategy (if any). Returns (cost, cumulative seconds)
     per iteration. *)
  let sw = Sweeper.create (opts_with ()) net in
  let t0 = Unix.gettimeofday () in
  let trace = ref [] in
  let stall = ref 0 in
  let switched = ref false in
  let last_cost = ref max_int in
  for _ = 1 to iterations do
    (match (mode, !switched) with
     | `Random_only, _ | _, false -> Sweeper.random_round sw
     | `Then rs, true -> ignore (Sweeper.guided_round sw rs));
    let c = Sweeper.cost sw in
    if c = !last_cost then incr stall else stall := 0;
    last_cost := c;
    if !stall >= 3 && mode <> `Random_only then switched := true;
    trace := (c, Unix.gettimeofday () -. t0) :: !trace
  done;
  List.rev !trace

let fig7 () =
  header
    "Figure 7: cost per iteration, RandS vs RandS->RevS vs RandS->SimGen";
  List.iter
    (fun bench ->
      let net = Suite.lut_network bench in
      let iterations = 45 in
      let rand = fig7_trace net `Random_only ~iterations in
      let revs = fig7_trace net (`Then Strategy.RevS) ~iterations in
      let sgen = fig7_trace net (`Then Strategy.AI_DC_MFFC) ~iterations in
      Printf.printf "\n[%s]\n%5s %22s %22s %22s\n" bench "iter"
        "RandS cost/time" "+RevS cost/time" "+SimGen cost/time";
      List.iteri
        (fun i ((c1, t1), ((c2, t2), (c3, t3))) ->
          Printf.printf "%5d %12d %8.4fs %12d %8.4fs %12d %8.4fs\n" (i + 1) c1
            t1 c2 t2 c3 t3)
        (List.combine rand (List.combine revs sgen)))
    [ "apex2"; "cps" ];
  Printf.printf
    "\n(expected shape: RandS flattens after a few iterations; the guided\n\
    \ tails keep reducing cost, SimGen at least as fast as RevS.)\n"

(* ------------------------------------------------------------------ *)
(* Ablation: Eq. 4 coefficients and implication power                  *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "Ablation: Eq. (4) alpha/beta and implication strategy";
  let benches = [ "apex2"; "cps"; "seq"; "b14_C"; "voter" ] in
  Printf.printf "alpha/beta sweep (AI + DC + MFFC decisions):\n";
  Printf.printf "%-18s %10s %10s\n" "(alpha, beta)" "mean cost" "conflicts";
  List.iter
    (fun (alpha, beta) ->
      let costs = ref [] and conflicts = ref 0 in
      List.iter
        (fun bench ->
          let net = Suite.lut_network bench in
          let sw = Sweeper.create (opts_with ()) net in
          Sweeper.random_round sw;
          let config = { Config.default with Config.alpha; beta } in
          for _ = 1 to 20 do
            ignore (Sweeper.guided_round_config sw config)
          done;
          let g = Sweeper.guided_stats sw in
          conflicts := !conflicts + g.Sweeper.gen_conflicts;
          costs := float_of_int (Sweeper.cost sw) :: !costs)
        benches;
      Printf.printf "%-18s %10.2f %10d\n"
        (Printf.sprintf "(%.1f, %.2f)" alpha beta)
        (Runs.mean !costs) !conflicts)
    [ (1.0, 0.0); (1.0, 0.25); (1.0, 0.5); (1.0, 1.0); (0.0, 1.0) ];
  Printf.printf
    "\nimplication power (conflicts and implied values per guided phase):\n";
  Printf.printf "%-11s %12s %12s %12s\n" "strategy" "implications" "decisions"
    "conflicts";
  List.iter
    (fun strategy ->
      let impl = ref 0 and dec = ref 0 and conf = ref 0 in
      List.iter
        (fun bench ->
          let net = Suite.lut_network bench in
          let r = Runs.run ~seed ~with_sat:false ~bench net strategy in
          impl := !impl + r.Runs.implications;
          dec := !dec + r.Runs.decisions;
          conf := !conf + r.Runs.gen_conflicts)
        benches;
      Printf.printf "%-11s %12d %12d %12d\n" (Strategy.name strategy) !impl
        !dec !conf)
    Strategy.all

(* ------------------------------------------------------------------ *)
(* Related-work baselines (extension): SAT vectors, 1-distance,        *)
(* OUTgold strategies                                                  *)
(* ------------------------------------------------------------------ *)

let baselines () =
  header
    "Baselines: SimGen vs SAT-vector generation (Lee/Amaru) and 1-distance \
     (Mishchenko)";
  let benches = [ "apex2"; "cps"; "seq"; "b14_C"; "pdc" ] in
  Printf.printf "%-8s %-14s %8s %10s %10s %10s\n" "bench" "generator" "cost"
    "gen calls" "gen time" "sweep SAT";
  List.iter
    (fun bench ->
      let net = Suite.lut_network bench in
      let flow label guide =
        let sw = Sweeper.create (opts_with ()) net in
        Sweeper.random_round sw;
        let g = guide sw in
        let cost_after_guided = Sweeper.cost sw in
        let s = Sweeper.sat_sweep (opts_with ()) sw in
        Printf.printf "%-8s %-14s %8d %10d %9.3fs %10d\n" bench label
          cost_after_guided g.Sweeper.gen_sat_calls g.Sweeper.guided_time
          s.Sweeper.calls
      in
      flow "RevS" (Sweeper.run_guided (opts_with ~strategy:Strategy.RevS ()));
      flow "SimGen" (Sweeper.run_guided (opts_with ()));
      flow "SAT vectors" (Sweeper.run_sat_guided (opts_with ())))
    benches;
  Printf.printf
    "\n(the SAT-vector generator is exact, so its post-simulation cost is \
     the floor;\n\
    \ SimGen approaches it without spending any generation SAT calls.)\n";
  Printf.printf "\n1-distance counter-example expansion during SAT sweeping:\n";
  Printf.printf "%-8s %-16s %10s %10s\n" "bench" "mode" "SAT calls" "disproved";
  List.iter
    (fun bench ->
      let net = Suite.lut_network bench in
      let flow label one_distance =
        let opts = opts_with ~iterations:5 ~one_distance () in
        let sw = Sweeper.create opts net in
        Sweeper.random_round sw;
        ignore (Sweeper.run_guided opts sw);
        let s = Sweeper.sat_sweep opts sw in
        Printf.printf "%-8s %-16s %10d %10d\n" bench label s.Sweeper.calls
          s.Sweeper.disproved
      in
      flow "plain cex" false;
      flow "1-distance cex" true)
    benches;
  Printf.printf "\nOUTgold strategies (SimGen, cost after 20 iterations):\n";
  Printf.printf "%-8s %12s %12s %12s\n" "bench" "alternating" "random" "level";
  List.iter
    (fun bench ->
      let net = Suite.lut_network bench in
      let cost_with outgold =
        let opts = opts_with ~outgold () in
        let sw = Sweeper.create opts net in
        Sweeper.random_round sw;
        ignore (Sweeper.run_guided opts sw);
        Sweeper.cost sw
      in
      Printf.printf "%-8s %12d %12d %12d\n" bench
        (cost_with Simgen_core.Outgold.Alternating)
        (cost_with Simgen_core.Outgold.Random_balanced)
        (cost_with Simgen_core.Outgold.Level_split))
    benches

(* ------------------------------------------------------------------ *)
(* Incremental SAT sessions: fresh-per-pair vs one persistent solver   *)
(* ------------------------------------------------------------------ *)

(* One full sweep flow (random round + guided rounds + SAT sweep) with
   the miter route fixed by [incremental]. Returns the sweep stats and
   the final merge partition (each gate's representative), which must be
   identical across routes: refinement only separates inequivalent nodes,
   so the final partition is path-independent. *)
let session_flow ~incremental ~guided_iterations net =
  let opts =
    {
      Sweep_options.default with
      Sweep_options.seed;
      guided_iterations;
      incremental;
    }
  in
  let sw = Sweeper.create opts net in
  Sweeper.random_round sw;
  ignore (Sweeper.run_guided opts sw);
  let s = Sweeper.sat_sweep opts sw in
  let partition = ref [] in
  N.iter_gates net (fun id ->
      partition := Sweeper.representative sw id :: !partition);
  (s, List.rev !partition)

(* The gate the incremental session must clear on every suite: no slower
   than fresh solving on wall time, and no more than 1.5x the fresh
   propagation volume (BCP over a garbage-collected clause database). *)
let props_slack = 1.5

let sat_session_compare ~benches ~net_of ~guided_iterations ~out_file title =
  header title;
  Printf.printf "%-14s %9s | %9s %9s %8s | %9s %9s %8s | %7s %5s %5s\n" "bench"
    "calls" "fr confl" "fr props" "fr time" "inc confl" "inc props" "inc time"
    "confl x" "same" "gate";
  let rows =
    List.map
      (fun bench ->
        let net = net_of bench in
        let fresh, part_f =
          session_flow ~incremental:false ~guided_iterations net
        in
        let inc, part_i =
          session_flow ~incremental:true ~guided_iterations net
        in
        (* Verdicts are route-independent, so both routes end at the exact
           functional-equivalence partition; the counter-example sequences
           (and hence call counts) may differ along the way. *)
        let same = part_f = part_i in
        let gate =
          inc.Sweeper.sat_time <= fresh.Sweeper.sat_time
          && float_of_int inc.Sweeper.propagations
             <= props_slack *. float_of_int fresh.Sweeper.propagations
        in
        let ratio =
          if inc.Sweeper.conflicts = 0 then Float.infinity
          else
            float_of_int fresh.Sweeper.conflicts
            /. float_of_int inc.Sweeper.conflicts
        in
        Printf.printf
          "%-14s %9d | %9d %9d %7.3fs | %9d %9d %7.3fs | %7.2f %5s %5s\n"
          bench inc.Sweeper.calls fresh.Sweeper.conflicts
          fresh.Sweeper.propagations fresh.Sweeper.sat_time
          inc.Sweeper.conflicts inc.Sweeper.propagations inc.Sweeper.sat_time
          ratio
          (if same then "yes" else "NO")
          (if gate then "ok" else "FAIL");
        (bench, fresh, inc, same, gate))
      benches
  in
  let total f =
    List.fold_left (fun acc (_, fr, inc, _, _) -> acc + f fr inc) 0 rows
  in
  let t_fresh_confl = total (fun fr _ -> fr.Sweeper.conflicts)
  and t_inc_confl = total (fun _ inc -> inc.Sweeper.conflicts)
  and t_fresh_props = total (fun fr _ -> fr.Sweeper.propagations)
  and t_inc_props = total (fun _ inc -> inc.Sweeper.propagations)
  and t_inc_deleted = total (fun _ inc -> inc.Sweeper.deleted) in
  let all_same = List.for_all (fun (_, _, _, same, _) -> same) rows in
  let all_gated = List.for_all (fun (_, _, _, _, gate) -> gate) rows in
  Printf.printf
    "TOTAL: conflicts %d -> %d, propagations %d -> %d (%d clauses GCed), \
     merge results %s, perf gate %s\n"
    t_fresh_confl t_inc_confl t_fresh_props t_inc_props t_inc_deleted
    (if all_same then "identical" else "DIFFER")
    (if all_gated then "passed" else "FAILED");
  (* Hand-rolled JSON (the container has no JSON library), one object per
     bench plus totals; schema mirrors the console table. *)
  let buf = Buffer.create 1024 in
  let stats_json (s : Sweeper.sat_stats) =
    Printf.sprintf
      "{\"calls\":%d,\"proved\":%d,\"disproved\":%d,\"conflicts\":%d,\"propagations\":%d,\"restarts\":%d,\"deleted\":%d,\"sat_time\":%.6f}"
      s.Sweeper.calls s.Sweeper.proved s.Sweeper.disproved s.Sweeper.conflicts
      s.Sweeper.propagations s.Sweeper.restarts s.Sweeper.deleted
      s.Sweeper.sat_time
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"experiment\":\"sat-session\",\"seed\":%d,\"guided_iterations\":%d,\"props_slack\":%.2f,\"benches\":["
       seed guided_iterations props_slack);
  List.iteri
    (fun i (bench, fresh, inc, same, gate) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"bench\":\"%s\",\"fresh\":%s,\"incremental\":%s,\"identical_merges\":%b,\"gate\":%b}"
           bench (stats_json fresh) (stats_json inc) same gate))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"total\":{\"fresh_conflicts\":%d,\"incremental_conflicts\":%d,\"fresh_propagations\":%d,\"incremental_propagations\":%d,\"incremental_deleted\":%d,\"identical_merges\":%b,\"gate\":%b}}"
       t_fresh_confl t_inc_confl t_fresh_props t_inc_props t_inc_deleted
       all_same all_gated);
  let oc = open_out out_file in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out_file;
  if not all_same then begin
    Printf.eprintf
      "sat-session: merge results differ between fresh and incremental\n";
    exit 1
  end;
  if not all_gated then begin
    Printf.eprintf
      "sat-session: incremental route exceeded the perf gate (sat_time <= \
       fresh and propagations <= %.1fx fresh)\n"
      props_slack;
    exit 1
  end

let sat_session () =
  (* A representative slice of the stacked suite — one bench per size
     band; the full suite at both routes runs for tens of minutes. *)
  sat_session_compare
    ~benches:[ "apex2"; "square"; "arbiter" ]
    ~net_of:Suite.stacked_lut_network ~guided_iterations:10
    ~out_file:"BENCH_SAT_SESSION.json"
    "Incremental SAT sessions vs fresh-per-pair solvers (stacked suite)"

let sat_session_smoke () =
  (* Stacked subset: only stacked suites make enough queries against one
     instance for the session's clause-database management to matter, so
     the gate is meaningful here in a way the flat suite cannot be. *)
  sat_session_compare
    ~benches:[ "apex2"; "square" ]
    ~net_of:Suite.stacked_lut_network ~guided_iterations:10
    ~out_file:"BENCH_SAT_SESSION.json"
    "Incremental SAT sessions vs fresh-per-pair solvers (stacked smoke \
     subset)"

(* ------------------------------------------------------------------ *)
(* Certification overhead: certified session sweep + independent check *)
(* ------------------------------------------------------------------ *)

(* One full certified-or-not sweep flow; wall time covers the whole flow
   (simulation + SAT) plus, on the certified side, assembling and
   independently re-checking the certificate — the honest end-to-end
   price of not trusting the solver. *)
let cert_flow ~certify ~guided_iterations net =
  let opts =
    {
      Sweep_options.default with
      Sweep_options.seed;
      guided_iterations;
      certify;
    }
  in
  let t0 = Unix.gettimeofday () in
  let sw = Sweeper.create opts net in
  Sweeper.random_round sw;
  ignore (Sweeper.run_guided opts sw);
  let s = Sweeper.sat_sweep opts sw in
  let report =
    if certify then Some (Simgen_check.Certificate.check (Sweeper.certificate sw))
    else None
  in
  let time = Unix.gettimeofday () -. t0 in
  let partition = ref [] in
  N.iter_gates net (fun id ->
      partition := Sweeper.representative sw id :: !partition);
  (s, report, time, List.rev !partition)

let cert_compare ~benches ~net_of ~guided_iterations ~out_file title =
  header title;
  Printf.printf "%-14s %9s | %8s | %8s %9s %9s %7s | %8s %5s %5s\n" "bench"
    "calls" "plain" "cert" "queries" "steps" "checked" "overhead" "valid"
    "same";
  let rows =
    List.map
      (fun bench ->
        let net = net_of bench in
        let plain, _, t_plain, part_p =
          cert_flow ~certify:false ~guided_iterations net
        in
        let cert, report, t_cert, part_c =
          cert_flow ~certify:true ~guided_iterations net
        in
        let report = Option.get report in
        let same = part_p = part_c in
        let overhead = if t_plain > 0.0 then t_cert /. t_plain else 1.0 in
        Printf.printf
          "%-14s %9d | %7.3fs | %7.3fs %9d %9d %7d | %7.2fx %5s %5s\n" bench
          cert.Sweeper.calls t_plain t_cert
          report.Simgen_check.Certificate.queries
          report.Simgen_check.Certificate.steps
          report.Simgen_check.Certificate.steps_checked overhead
          (if report.Simgen_check.Certificate.valid then "yes" else "NO")
          (if same then "yes" else "NO");
        (bench, plain, cert, report, t_plain, t_cert, overhead, same))
      benches
  in
  let t_plain_total =
    List.fold_left (fun acc (_, _, _, _, tp, _, _, _) -> acc +. tp) 0.0 rows
  and t_cert_total =
    List.fold_left (fun acc (_, _, _, _, _, tc, _, _) -> acc +. tc) 0.0 rows
  in
  let total_overhead =
    if t_plain_total > 0.0 then t_cert_total /. t_plain_total else 1.0
  in
  let all_same = List.for_all (fun (_, _, _, _, _, _, _, s) -> s) rows in
  let all_valid =
    List.for_all
      (fun (_, _, _, r, _, _, _, _) -> r.Simgen_check.Certificate.valid)
      rows
  in
  let within_2x = total_overhead <= 2.0 in
  Printf.printf
    "TOTAL: %.3fs plain -> %.3fs certified (%.2fx, %s), certificates %s, \
     merge results %s\n"
    t_plain_total t_cert_total total_overhead
    (if within_2x then "within 2x" else "OVER 2x")
    (if all_valid then "all valid" else "INVALID")
    (if all_same then "identical" else "DIFFER");
  (* Hand-rolled JSON, same convention as the sat-session experiment. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"experiment\":\"cert\",\"seed\":%d,\"guided_iterations\":%d,\"benches\":["
       seed guided_iterations);
  List.iteri
    (fun i (bench, plain, cert, report, tp, tc, overhead, same) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"bench\":\"%s\",\"calls\":%d,\"proved\":%d,\"plain_time\":%.6f,\"certified_time\":%.6f,\"overhead\":%.4f,\"queries\":%d,\"proof_steps\":%d,\"steps_checked\":%d,\"steps_trimmed\":%d,\"certificate_valid\":%b,\"identical_merges\":%b}"
           bench cert.Sweeper.calls cert.Sweeper.proved tp tc overhead
           report.Simgen_check.Certificate.queries
           report.Simgen_check.Certificate.steps
           report.Simgen_check.Certificate.steps_checked
           report.Simgen_check.Certificate.steps_trimmed
           report.Simgen_check.Certificate.valid same);
      ignore plain)
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"total\":{\"plain_time\":%.6f,\"certified_time\":%.6f,\"overhead\":%.4f,\"within_2x\":%b,\"all_valid\":%b,\"identical_merges\":%b}}"
       t_plain_total t_cert_total total_overhead within_2x all_valid all_same);
  let oc = open_out out_file in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out_file;
  if not (all_same && all_valid) then begin
    Printf.eprintf
      "cert: %s\n"
      (if not all_valid then "a certificate failed its independent check"
       else "merge results differ between plain and certified sweeps");
    exit 1
  end

let cert () =
  cert_compare
    ~benches:[ "apex2"; "square"; "arbiter" ]
    ~net_of:Suite.stacked_lut_network ~guided_iterations:10
    ~out_file:"BENCH_CERT.json"
    "Certified sweeps: proof logging + independent re-check vs plain \
     (stacked suite)"

let cert_smoke () =
  cert_compare
    ~benches:[ "apex2"; "cps" ]
    ~net_of:Suite.lut_network ~guided_iterations:5
    ~out_file:"BENCH_CERT.json"
    "Certified sweeps: proof logging + independent re-check vs plain \
     (smoke subset)"

(* ------------------------------------------------------------------ *)
(* Serve: warm vs cold requests through the persistent sweep service   *)
(* ------------------------------------------------------------------ *)

module Serve_server = Simgen_serve.Server
module Serve_protocol = Simgen_serve.Protocol
module Fun_cache = Simgen_sweep.Fun_cache

(* The daemon's value proposition is the cross-request function cache:
   the SECOND submission of a workload should spend fewer SAT calls than
   the first. Each bench contributes one sweep and one self-CEC job; the
   whole list runs twice against one in-process server (cold, then warm)
   plus once against a deliberately tiny cache to exercise eviction. *)

let serve_requests ~stacked benches =
  let s = if stacked then " stacked=true" else "" in
  List.concat_map
    (fun bench ->
      [
        ( bench,
          "sweep",
          Serve_protocol.Job
            { cmd = "sweep"; args = bench ^ s; deadline_ms = None } );
        ( bench,
          "cec",
          Serve_protocol.Job
            {
              cmd = "cec";
              args = Printf.sprintf "%s %s%s" bench bench s;
              deadline_ms = None;
            } );
      ])
    benches

let frame_status = function
  | Serve_protocol.Result fields -> (
      match
        Serve_protocol.string_member "status" (Serve_protocol.Obj fields)
      with
      | Some s -> s
      | None -> "missing-status")
  | Serve_protocol.Failed msg -> "failed: " ^ msg
  | Serve_protocol.Overloaded _ -> "overloaded"
  | Serve_protocol.Event _ -> "unexpected-event"

let serve_phase server reqs =
  List.map
    (fun (bench, kind, req) ->
      let t0 = Unix.gettimeofday () in
      let status = frame_status (Serve_server.handle server req) in
      (bench, kind, status, Unix.gettimeofday () -. t0))
    reqs

let percentile latencies p =
  let sorted = Array.of_list (List.sort compare latencies) in
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let serve_hit_rate (after : Fun_cache.stats) (before : Fun_cache.stats) =
  let consults = after.Fun_cache.consults - before.Fun_cache.consults in
  let hits = after.Fun_cache.hits - before.Fun_cache.hits in
  if consults = 0 then 0.0 else float_of_int hits /. float_of_int consults

let serve_compare ~benches ~stacked ~out_file title =
  header title;
  let fun_cache = Fun_cache.create () in
  let server =
    Serve_server.create ~workers:1 ~fun_cache
      ~pattern_cache:(Simgen_runner.Pattern_cache.create ())
      ()
  in
  let reqs = serve_requests ~stacked benches in
  let s0 = Fun_cache.stats fun_cache in
  let cold = serve_phase server reqs in
  let s1 = Fun_cache.stats fun_cache in
  let warm = serve_phase server reqs in
  let s2 = Fun_cache.stats fun_cache in
  Printf.printf "%-10s %-6s %-14s %9s %9s %8s %6s\n" "bench" "cmd" "status"
    "cold" "warm" "speedup" "same";
  let rows =
    List.map2
      (fun (bench, kind, st_c, t_c) (_, _, st_w, t_w) ->
        let speedup = if t_w > 0.0 then t_c /. t_w else 1.0 in
        let same = st_c = st_w in
        Printf.printf "%-10s %-6s %-14s %8.3fs %8.3fs %7.2fx %6s\n" bench kind
          st_c t_c t_w speedup
          (if same then "yes" else "NO");
        (bench, kind, st_c, t_c, st_w, t_w, speedup, same))
      cold warm
  in
  let times phase = List.map (fun (_, _, _, t) -> t) phase in
  let cold_times = times cold and warm_times = times warm in
  let sum = List.fold_left ( +. ) 0.0 in
  let warm_speedup =
    if sum warm_times > 0.0 then sum cold_times /. sum warm_times else 1.0
  in
  let cold_rate = serve_hit_rate s1 s0 and warm_rate = serve_hit_rate s2 s1 in
  let parity = List.for_all (fun (_, _, _, _, _, _, _, s) -> s) rows in
  Printf.printf
    "TOTAL: %.3fs cold -> %.3fs warm (%.2fx), fun-cache hit rate %.3f cold \
     -> %.3f warm, verdicts %s\n"
    (sum cold_times) (sum warm_times) warm_speedup cold_rate warm_rate
    (if parity then "identical" else "DIFFER");
  (* Rerun the same workload against an 8 KiB cache: the workload's
     resident set is orders of magnitude larger, so LRU+cost eviction
     must engage while every verdict stays intact. *)
  let small = Fun_cache.create ~max_bytes:(8 * 1024) () in
  let small_server =
    Serve_server.create ~workers:1 ~fun_cache:small
      ~pattern_cache:(Simgen_runner.Pattern_cache.create ())
      ()
  in
  let evicted = serve_phase small_server reqs in
  let se = Fun_cache.stats small in
  let eviction_parity =
    List.for_all2
      (fun (_, _, st_c, _) (_, _, st_e, _) -> st_c = st_e)
      cold evicted
  in
  Printf.printf
    "eviction: 8 KiB bound -> %d evictions, %d entries / %d bytes resident, \
     verdicts %s\n"
    se.Fun_cache.evictions se.Fun_cache.entries se.Fun_cache.bytes
    (if eviction_parity then "identical" else "DIFFER");
  (* Service-level counters from the daemon's own stats response, plus
     the cache's persistence counters: all zero in this in-process
     harness (nothing queues or journals here) but printed so the table
     matches what a socket deployment reports. *)
  (match Serve_server.handle server Serve_protocol.Stats with
   | Serve_protocol.Result fields ->
       let obj = Serve_protocol.Obj fields in
       let intf name =
         match Serve_protocol.int_member name obj with Some i -> i | None -> 0
       in
       Printf.printf
         "service: queue depth %d/%d, shed %d, deadline-expired %d, journal \
          appends %d replayed %d, checkpoints %d\n"
         (intf "queue_depth") (intf "max_queue") (intf "shed")
         (intf "deadline_expired") s2.Fun_cache.journal_appends
         s2.Fun_cache.journal_replayed s2.Fun_cache.checkpoints
   | Serve_protocol.Failed _ | Serve_protocol.Event _
   | Serve_protocol.Overloaded _ -> ());
  (* Hand-rolled JSON, same convention as the other experiments. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"experiment\":\"serve\",\"seed\":%d,\"requests\":[" seed);
  List.iteri
    (fun i (bench, kind, st_c, t_c, st_w, t_w, speedup, same) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"bench\":\"%s\",\"cmd\":\"%s\",\"cold_status\":\"%s\",\"cold_time\":%.6f,\"warm_status\":\"%s\",\"warm_time\":%.6f,\"speedup\":%.4f,\"parity\":%b}"
           bench kind st_c t_c st_w t_w speedup same))
    rows;
  let phase_json name rate ts =
    Printf.sprintf
      "\"%s\":{\"hit_rate\":%.4f,\"total_time\":%.6f,\"p50\":%.6f,\"p90\":%.6f,\"max\":%.6f}"
      name rate (sum ts) (percentile ts 50.0) (percentile ts 90.0)
      (percentile ts 100.0)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "],%s,%s,\"warm_speedup\":%.4f,\"fun_cache\":{\"consults\":%d,\"hits\":%d,\"local_proofs\":%d,\"local_cexes\":%d,\"pattern_hits\":%d,\"collisions\":%d,\"inserts\":%d,\"entries\":%d,\"bytes\":%d},\"eviction\":{\"max_bytes\":%d,\"evictions\":%d,\"entries\":%d,\"bytes\":%d,\"parity\":%b},\"parity\":%b}"
       (phase_json "cold" cold_rate cold_times)
       (phase_json "warm" warm_rate warm_times)
       warm_speedup s2.Fun_cache.consults s2.Fun_cache.hits
       s2.Fun_cache.local_proofs s2.Fun_cache.local_cexes
       s2.Fun_cache.pattern_hits s2.Fun_cache.collisions s2.Fun_cache.inserts
       s2.Fun_cache.entries s2.Fun_cache.bytes (8 * 1024)
       se.Fun_cache.evictions se.Fun_cache.entries se.Fun_cache.bytes
       eviction_parity parity);
  let oc = open_out out_file in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out_file;
  if not (parity && eviction_parity) then begin
    Printf.eprintf "serve: warm or evicted verdicts differ from cold\n";
    exit 1
  end

let serve () =
  serve_compare
    ~benches:[ "apex2"; "square"; "arbiter" ]
    ~stacked:true ~out_file:"BENCH_SERVE.json"
    "Serve: cold vs warm submissions through the persistent daemon (stacked \
     suite)"

let serve_smoke () =
  serve_compare
    ~benches:[ "apex2"; "cps" ]
    ~stacked:false ~out_file:"BENCH_SERVE.json"
    "Serve: cold vs warm submissions through the persistent daemon (smoke \
     subset)"

(* ------------------------------------------------------------------ *)
(* Runner: parallel batch throughput on stacked suites (§6.4 scale)    *)
(* ------------------------------------------------------------------ *)

let runner () =
  header
    "Runner: batch throughput on stacked benchmarks (putontop), workers vs 1 \
     domain";
  let module R = Simgen_runner in
  (* Two sweep jobs per stacked benchmark (different seeds): the second
     job of each pair is where the shared pattern cache pays off. A
     handful of stacked suites with a per-job deadline keeps the whole
     experiment at interactive scale. *)
  let benches =
    List.filteri (fun i _ -> i < 4) (Runs.stacked_benchmarks ())
  in
  let specs =
    List.concat_map
      (fun (bench, _copies) ->
        List.map
          (fun seed ->
            R.Job.make ~seed ~guided_iterations:10
              ~limits:{ R.Budget.unlimited with R.Budget.deadline = Some 15.0 }
              ~label:(Printf.sprintf "%s/s%d" bench seed)
              ~id:0
              (R.Job.Sweep (R.Job.Suite_stacked bench)))
          [ seed; seed + 1 ])
      benches
  in
  let specs = List.mapi (fun id s -> { s with R.Job.id }) specs in
  let run_with workers =
    let cache = R.Pattern_cache.create () in
    let report = R.Pool.run ~workers ~cache specs in
    (report, cache)
  in
  let print_report workers (report, cache) =
    let jobs = Array.length report.R.Pool.results in
    let cpu_time =
      Array.fold_left
        (fun acc r -> acc +. r.R.Job.time)
        0.0 report.R.Pool.results
    in
    let hits =
      Array.fold_left
        (fun acc r -> acc + r.R.Job.cache_hits)
        0 report.R.Pool.results
    in
    Printf.printf
      "%2d worker(s): %d jobs in %7.3fs wall (%6.2f jobs/s, %7.3fs cpu, \
       per-worker throughput %6.2f jobs/s), %d cached patterns replayed\n"
      workers jobs report.R.Pool.wall_time
      (float_of_int jobs /. report.R.Pool.wall_time)
      cpu_time
      (float_of_int jobs /. report.R.Pool.wall_time /. float_of_int workers)
      hits;
    ignore cache
  in
  let r1 = run_with 1 in
  print_report 1 r1;
  let parallel = max 2 (Domain.recommended_domain_count ()) in
  let rn = run_with parallel in
  print_report parallel rn;
  let w1 = (fst r1).R.Pool.wall_time and wn = (fst rn).R.Pool.wall_time in
  Printf.printf
    "speedup vs 1 domain: %.2fx on %d domains (recommended domain count %d)\n"
    (w1 /. wn) parallel
    (Domain.recommended_domain_count ());
  Printf.printf
    "\n(expected shape: near-linear speedup while jobs outnumber domains and \
     the\n machine has cores to spare; on a single-core container the \
     speedup is ~1x.)\n"

(* ------------------------------------------------------------------ *)
(* Race: concurrency sanitizer overhead on the stacked batch suite     *)
(* ------------------------------------------------------------------ *)

(* Instrumentation is compiled in unconditionally, so "baseline" is the
   production configuration (probes present, recording disarmed) and the
   disarmed gate bounds probe cost + run-to-run noise: a second
   independent disarmed series must stay within 1.05x of the first.
   The armed series (full event recording + drain-time analysis) must
   stay within 3x and produce zero race diagnostics. Min-of-3 per
   series keeps a single noisy rep from tripping the gate. *)
let race () =
  header
    "Race: concurrency sanitizer overhead on the stacked batch suite \
     (min of 3 reps per series)";
  let module R = Simgen_runner in
  let module Shared = Simgen_base.Shared in
  let module Race_check = Simgen_check.Race_check in
  let workers = 2 and reps = 3 in
  let specs () =
    let specs =
      List.concat_map
        (fun bench ->
          List.map
            (fun seed ->
              R.Job.make ~seed ~guided_iterations:10
                ~limits:
                  { R.Budget.unlimited with R.Budget.deadline = Some 30.0 }
                ~label:(Printf.sprintf "%s/s%d" bench seed)
                ~id:0
                (R.Job.Sweep (R.Job.Suite_stacked bench)))
            [ seed; seed + 1 ])
        [ "apex2"; "square" ]
    in
    List.mapi (fun id s -> { s with R.Job.id }) specs
  in
  let run_once ~armed () =
    Shared.disarm ();
    Shared.reset_trace ();
    if armed then Shared.arm ();
    let cache = R.Pattern_cache.create () in
    let report = R.Pool.run ~workers ~cache (specs ()) in
    Shared.disarm ();
    let trace = if armed then Some (Shared.snapshot ()) else None in
    Shared.reset_trace ();
    (report.R.Pool.wall_time, trace)
  in
  let series name ~armed =
    let runs = List.init reps (fun _ -> run_once ~armed ()) in
    let best =
      List.fold_left (fun acc (t, _) -> min acc t) infinity runs
    in
    Printf.printf "%-10s min %7.3fs  (reps:%s)\n%!" name best
      (String.concat ""
         (List.map (fun (t, _) -> Printf.sprintf " %.3fs" t) runs));
    (best, List.filter_map snd runs)
  in
  let baseline, _ = series "baseline" ~armed:false in
  let disarmed, _ = series "disarmed" ~armed:false in
  let armed, traces = series "armed" ~armed:true in
  let trace = List.nth traces 0 in
  let events = List.length trace.Shared.events in
  let diags =
    List.filter
      (fun (d : Simgen_check.Diagnostic.t) ->
        d.Simgen_check.Diagnostic.severity <> Simgen_check.Diagnostic.Info)
      (Race_check.analyze trace)
  in
  List.iter
    (fun d -> print_endline (Simgen_check.Diagnostic.to_string d))
    diags;
  let disarmed_overhead = disarmed /. baseline in
  let armed_overhead = armed /. baseline in
  let disarmed_ok = disarmed_overhead <= 1.05 in
  let armed_ok = armed_overhead <= 3.0 in
  let race_clean = diags = [] in
  Printf.printf
    "disarmed overhead %.3fx (gate 1.05x, %s); armed %.3fx (gate 3x, %s); \
     %d events, %d race diagnostic(s) (%s)\n"
    disarmed_overhead
    (if disarmed_ok then "ok" else "OVER")
    armed_overhead
    (if armed_ok then "ok" else "OVER")
    events (List.length diags)
    (if race_clean then "clean" else "RACES");
  let oc = open_out "BENCH_RACE.json" in
  Printf.fprintf oc
    "{\"experiment\":\"race\",\"seed\":%d,\"workers\":%d,\"jobs\":%d,\"reps\":%d,\"baseline_time\":%.6f,\"disarmed_time\":%.6f,\"armed_time\":%.6f,\"disarmed_overhead\":%.4f,\"armed_overhead\":%.4f,\"events\":%d,\"race_diagnostics\":%d,\"disarmed_within_1_05x\":%b,\"armed_within_3x\":%b,\"race_clean\":%b}\n"
    seed workers
    (List.length (specs ()))
    reps baseline disarmed armed disarmed_overhead armed_overhead events
    (List.length diags) disarmed_ok armed_ok race_clean;
  close_out oc;
  Printf.printf "wrote BENCH_RACE.json\n";
  if not (disarmed_ok && armed_ok && race_clean) then begin
    Printf.eprintf "race: %s\n"
      (if not race_clean then "the armed run found data races"
       else "sanitizer overhead gate breached");
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Solver-audit: solver-state sanitizer overhead on stacked sweeps     *)
(* ------------------------------------------------------------------ *)

(* Same three-series shape as the race experiment. The sampling hook is
   compiled into the solver's conflict path unconditionally (one counter
   test per conflict when disarmed), so "baseline" is the production
   configuration and the disarmed gate bounds hook cost + run-to-run
   noise at 1.05x. The sampled series arms the sanitizer through
   [Sweep_options.solver_audit] — audit_light (trail/reason, focus
   fence, decision heap, counter monotonicity) every 16th conflict —
   and must stay within 1.5x. The sanitizer observes, never steers:
   merge partitions must be identical across all three series. *)
let solver_audit () =
  header
    "Solver-audit: solver-state sanitizer overhead on the stacked smoke \
     subset (min of 3 reps per series)";
  let benches = [ "apex2"; "square" ] and reps = 3 in
  let flow ~audit bench =
    let opts =
      {
        Sweep_options.default with
        Sweep_options.seed;
        guided_iterations = 10;
        solver_audit = audit;
      }
    in
    let net = Suite.stacked_lut_network bench in
    let t0 = Unix.gettimeofday () in
    let sw = Sweeper.create opts net in
    Sweeper.random_round sw;
    ignore (Sweeper.run_guided opts sw);
    let s = Sweeper.sat_sweep opts sw in
    let t = Unix.gettimeofday () -. t0 in
    let partition = ref [] in
    N.iter_gates net (fun id ->
        partition := Sweeper.representative sw id :: !partition);
    (t, s, List.rev !partition)
  in
  let series name ~audit =
    let passes =
      List.init reps (fun _ -> List.map (flow ~audit) benches)
    in
    let time pass = List.fold_left (fun a (t, _, _) -> a +. t) 0.0 pass in
    let best = List.fold_left (fun acc p -> min acc (time p)) infinity passes in
    Printf.printf "%-10s min %7.3fs  (reps:%s)\n%!" name best
      (String.concat ""
         (List.map (fun p -> Printf.sprintf " %.3fs" (time p)) passes));
    (* Partitions and stats from the first rep: the flow is deterministic
       for a fixed seed, so reps only differ in wall time. *)
    (best, List.hd passes)
  in
  let baseline, rows_b = series "baseline" ~audit:false in
  let disarmed, _ = series "disarmed" ~audit:false in
  let sampled, rows_s = series "sampled" ~audit:true in
  let part (_, _, p) = p in
  let same = List.map part rows_b = List.map part rows_s in
  let conflicts rows =
    List.fold_left (fun a (_, s, _) -> a + s.Sweeper.conflicts) 0 rows
  in
  let disarmed_overhead = disarmed /. baseline in
  let sampled_overhead = sampled /. baseline in
  let disarmed_ok = disarmed_overhead <= 1.05 in
  let sampled_ok = sampled_overhead <= 1.5 in
  Printf.printf
    "disarmed overhead %.3fx (gate 1.05x, %s); sampled %.3fx (gate 1.5x, \
     %s); %d conflicts audited every 16th, merge partitions %s\n"
    disarmed_overhead
    (if disarmed_ok then "ok" else "OVER")
    sampled_overhead
    (if sampled_ok then "ok" else "OVER")
    (conflicts rows_s)
    (if same then "identical" else "DIFFER");
  let oc = open_out "BENCH_SOLVERSAN.json" in
  Printf.fprintf oc
    "{\"experiment\":\"solver-audit\",\"seed\":%d,\"reps\":%d,\"benches\":[%s],\"baseline_time\":%.6f,\"disarmed_time\":%.6f,\"sampled_time\":%.6f,\"disarmed_overhead\":%.4f,\"sampled_overhead\":%.4f,\"baseline_conflicts\":%d,\"sampled_conflicts\":%d,\"disarmed_within_1_05x\":%b,\"sampled_within_1_5x\":%b,\"identical_merges\":%b}\n"
    seed reps
    (String.concat "," (List.map (Printf.sprintf "\"%s\"") benches))
    baseline disarmed sampled disarmed_overhead sampled_overhead
    (conflicts rows_b) (conflicts rows_s) disarmed_ok sampled_ok same;
  close_out oc;
  Printf.printf "wrote BENCH_SOLVERSAN.json\n";
  if not (disarmed_ok && sampled_ok && same) then begin
    Printf.eprintf "solver-audit: %s\n"
      (if not same then
         "merge partitions differ with the sanitizer armed (it must only \
          observe)"
       else "sanitizer overhead gate breached");
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Soak: chaos harness for the overload/crash-safety layer             *)
(* ------------------------------------------------------------------ *)

module Fault = Simgen_fault.Fault
module Serve_client = Simgen_serve.Client

(* Two phases, recovery first because it forks (fork is only safe before
   this process has spawned any domain, which is also why soak is not in
   the default experiment list):

   1. Recovery: fork a real journaled daemon on a Unix socket, push jobs
      through it, SIGKILL it mid-life, then restore snapshot + journal
      in-process and require warm hits from the replayed entries with
      zero corrupt-entry acceptances. A torn final append is planted so
      the truncation path always runs.
   2. Burst: an in-process daemon on a real socket, driven by more
      client domains than workers with conn-drop/slow-client/disk-full
      faults and the concurrency sanitizer armed. Gates: completion
      without deadlock, queue depth bounded by --max-queue, bounded RSS
      growth, verdict parity with a fault-free baseline, tiny-deadline
      jobs never answered with a normal verdict, zero race diagnostics. *)

let rm_f path = try Sys.remove path with Sys_error _ -> ()

(* Soak scratch artifacts (sockets, snapshots, journals) live under the
   system temp directory, never the working tree: a bench run must not
   litter the repo root. The pid keeps concurrent runs apart. *)
let scratch_path name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "simgen-bench-%d-%s" (Unix.getpid ()) name)

let rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec go () =
        match input_line ic with
        | exception End_of_file ->
            close_in_noerr ic;
            None
        | line -> (
            match Scanf.sscanf line "VmRSS: %d kB" (fun kb -> kb) with
            | kb ->
                close_in_noerr ic;
                Some kb
            | exception Scanf.Scan_failure _ | exception Failure _ -> go ())
      in
      go ()

let client_status = function
  | Ok fields -> (
      match
        Serve_protocol.string_member "status" (Serve_protocol.Obj fields)
      with
      | Some s -> s
      | None -> "missing-status")
  | Error (Serve_client.Timeout _) -> "client-timeout"
  | Error (Serve_client.Overloaded _) -> "overloaded"
  | Error (Serve_client.Dropped _) -> "dropped"
  | Error (Serve_client.Remote msg) -> "failed: " ^ msg

let await_daemon sock =
  let rec go n =
    if n = 0 then false
    else
      match
        Serve_client.call ~socket:sock ~connect_timeout:1.0 ~read_timeout:5.0
          ~retry:Simgen_runner.Retry_policy.none Serve_protocol.Ping
      with
      | Ok _ -> true
      | Error _ ->
          Unix.sleepf 0.1;
          go (n - 1)
  in
  go 100

let soak_recovery ~bench =
  Printf.printf "--- phase 1: SIGKILL recovery through the journal ---\n%!";
  let sock = scratch_path "soak.sock"
  and snap = scratch_path "soak-cache.snap" in
  let jpath = snap ^ ".journal" in
  List.iter rm_f [ sock; snap; jpath ];
  let jobs = [ bench; bench ^ " seed=2" ] in
  match Unix.fork () with
  | 0 ->
      (* Child: a real journaled daemon. No checkpoint schedule fires
         (huge thresholds), so every insertion lives only in the journal
         — exactly what a SIGKILL is allowed to threaten. A rare torn
         append is armed so mid-journal tears are also represented. *)
      Fault.arm ~prob:0.02 ~seed "journal-torn-write";
      let fc = Fun_cache.create () in
      (match
         Fun_cache.enable_journal fc ~snapshot:snap ~journal:jpath
           ~checkpoint_entries:1_000_000 ~checkpoint_seconds:1e9 ()
       with
      | Ok () -> ()
      | Error msg -> Printf.eprintf "soak daemon: %s\n%!" msg);
      let server =
        Serve_server.create ~workers:1 ~max_queue:8 ~fun_cache:fc
          ~pattern_cache:(Simgen_runner.Pattern_cache.create ())
          ~cache_save:snap ()
      in
      Serve_server.serve server ~socket:sock;
      exit 0
  | pid ->
      if not (await_daemon sock) then begin
        Printf.eprintf "soak: daemon did not come up\n";
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid);
        exit 1
      end;
      let statuses =
        List.map
          (fun args ->
            client_status
              (Serve_client.call ~socket:sock
                 (Serve_protocol.Job
                    { cmd = "sweep"; args; deadline_ms = None })))
          jobs
      in
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      rm_f sock;
      (* Plant a half-written final append — the bytes an interrupted
         write(2) leaves — so recovery must truncate a torn tail. *)
      (try
         let oc =
           open_out_gen [ Open_append; Open_creat ] 0o644 jpath
         in
         output_string oc "9999 0123456789abcd";
         close_out oc
       with Sys_error _ -> ());
      let fc2 = Fun_cache.create () in
      let loaded =
        match Fun_cache.load fc2 snap with Ok n -> n | Error _ -> 0
      in
      let replayed, corrupt = Fun_cache.replay_journal fc2 jpath in
      let s_restored = Fun_cache.stats fc2 in
      (* Serve the same workload from the recovered cache and require
         warm hits out of the replayed entries. *)
      let server2 =
        Serve_server.create ~workers:1 ~fun_cache:fc2
          ~pattern_cache:(Simgen_runner.Pattern_cache.create ())
          ()
      in
      let warm_statuses =
        List.map
          (fun args ->
            frame_status
              (Serve_server.handle server2
                 (Serve_protocol.Job
                    { cmd = "sweep"; args; deadline_ms = None })))
          jobs
      in
      let s_after = Fun_cache.stats fc2 in
      let warm_hits = s_after.Fun_cache.hits - s_restored.Fun_cache.hits in
      let corrupt_accepted = s_after.Fun_cache.dropped in
      let parity = statuses = warm_statuses in
      Printf.printf
        "pre-kill: %s | snapshot %d + journal %d entries restored (%d \
         corrupt truncated) | warm: %s, %d hits, %d corrupt accepted\n"
        (String.concat " " statuses) loaded replayed corrupt
        (String.concat " " warm_statuses)
        warm_hits corrupt_accepted;
      let ok =
        replayed > 0 && corrupt > 0 && warm_hits > 0 && corrupt_accepted = 0
        && parity
      in
      if not ok then
        Printf.eprintf
          "soak recovery FAILED (replayed %d, corrupt %d, warm hits %d, \
           corrupt accepted %d, parity %b)\n"
          replayed corrupt warm_hits corrupt_accepted parity;
      (ok, loaded, replayed, corrupt, warm_hits, corrupt_accepted)

let soak_burst ~benches ~workers ~max_queue ~clients =
  Printf.printf
    "--- phase 2: burst at %dx worker capacity with faults armed ---\n%!"
    (clients / workers);
  let module Shared = Simgen_base.Shared in
  let module Race_check = Simgen_check.Race_check in
  let request ~deadline_ms bench =
    ( Printf.sprintf "%s%s" bench
        (match deadline_ms with Some _ -> "/deadline" | None -> ""),
      Serve_protocol.Job { cmd = "sweep"; args = bench; deadline_ms } )
  in
  let reqs =
    List.concat_map
      (fun b -> [ request ~deadline_ms:None b ])
      benches
    @ [ request ~deadline_ms:(Some 1) (List.hd benches) ]
  in
  (* Fault-free baseline for verdict parity, in-process. *)
  let baseline_server =
    Serve_server.create ~workers:1
      ~pattern_cache:(Simgen_runner.Pattern_cache.create ())
      ()
  in
  let baseline =
    List.filter_map
      (fun (label, req) ->
        match req with
        | Serve_protocol.Job { deadline_ms = Some _; _ } -> None
        | Serve_protocol.Job { deadline_ms = None; _ }
        | Serve_protocol.Ping | Serve_protocol.Stats | Serve_protocol.Shutdown
        | Serve_protocol.Lint _ ->
            Some (label, frame_status (Serve_server.handle baseline_server req)))
      reqs
  in
  let sock = scratch_path "soak-burst.sock"
  and snap = scratch_path "soak-burst.snap" in
  List.iter rm_f [ sock; snap ];
  let rss_before = rss_kb () in
  Shared.reset_trace ();
  Shared.arm ();
  Fault.arm ~prob:0.01 ~seed "conn-drop";
  Fault.arm ~prob:0.02 ~seed "slow-client";
  Fault.arm ~prob:1.0 ~seed "disk-full";
  let fun_cache = Fun_cache.create () in
  let server =
    Serve_server.create ~workers ~max_queue ~fun_cache
      ~pattern_cache:(Simgen_runner.Pattern_cache.create ())
      ~cache_save:snap ()
  in
  let server_domain =
    Shared.spawn ~loc:(Shared.here __POS__) (fun () ->
        Serve_server.serve server ~socket:sock)
  in
  if not (await_daemon sock) then begin
    Printf.eprintf "soak: burst daemon did not come up\n";
    exit 1
  end;
  let finished =
    Shared.Atomic.make ~loc:(Shared.here __POS__) "soak.finished" 0
  in
  let client_domains =
    List.init clients (fun c ->
        Shared.spawn ~loc:(Shared.here __POS__) (fun () ->
            let out =
              List.map
                (fun (label, req) ->
                  ( label,
                    client_status
                      (Serve_client.call ~socket:sock ~read_timeout:120.0
                         ~retry_seed:c req) ))
                reqs
            in
            Shared.Atomic.incr finished;
            out))
  in
  (* Sample the daemon's own stats while the burst runs: the max queue
     depth it ever reports is the bounded-queue gate, and finishing the
     sampling loop before the safety deadline is the deadlock gate. *)
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. 600.0 in
  let max_depth = ref 0 and shed = ref 0 and deadline_expired = ref 0 in
  let deadlocked = ref false in
  while Shared.Atomic.get finished < clients && not !deadlocked do
    (match
       Serve_client.call ~socket:sock ~connect_timeout:2.0 ~read_timeout:10.0
         ~retry:Simgen_runner.Retry_policy.none Serve_protocol.Stats
     with
    | Ok fields ->
        let obj = Serve_protocol.Obj fields in
        let intf name =
          match Serve_protocol.int_member name obj with
          | Some i -> i
          | None -> 0
        in
        max_depth := max !max_depth (intf "queue_depth");
        shed := intf "shed";
        deadline_expired := intf "deadline_expired"
    | Error _ -> ());
    if Unix.gettimeofday () > deadline then deadlocked := true
    else Unix.sleepf 0.05
  done;
  if !deadlocked then begin
    Printf.eprintf "soak: burst did not finish within 600s (deadlock?)\n";
    exit 1
  end;
  let outcomes = List.concat_map Shared.join client_domains in
  (match
     Serve_client.call ~socket:sock ~connect_timeout:2.0 ~read_timeout:10.0
       Serve_protocol.Shutdown
   with
  | Ok _ -> ()
  | Error _ ->
      (* The shutdown connection itself can be a conn-drop victim; the
         daemon still drains via its own SIGTERM-equivalent stop flag. *)
      Serve_server.request_shutdown server);
  ignore (Shared.join server_domain);
  let wall = Unix.gettimeofday () -. t0 in
  Fault.reset ();
  Shared.disarm ();
  let trace = Shared.snapshot () in
  Shared.reset_trace ();
  let diags =
    List.filter
      (fun (d : Simgen_check.Diagnostic.t) ->
        d.Simgen_check.Diagnostic.severity <> Simgen_check.Diagnostic.Info)
      (Race_check.analyze trace)
  in
  List.iter
    (fun d -> print_endline (Simgen_check.Diagnostic.to_string d))
    diags;
  let rss_after = rss_kb () in
  (* Gates over the collected outcomes. *)
  let answered label = List.assoc_opt label baseline in
  let parity_checked = ref 0 and parity_bad = ref 0 in
  let shed_answers = ref 0 and dropped_answers = ref 0 in
  let deadline_ok = ref true in
  List.iter
    (fun (label, status) ->
      match answered label with
      | Some expect ->
          if status = "overloaded" then incr shed_answers
          else if status = "client-timeout" || status = "dropped" then
            incr dropped_answers
          else begin
            incr parity_checked;
            if status <> expect then begin
              incr parity_bad;
              Printf.eprintf "soak parity: %s answered %s, baseline %s\n"
                label status expect
            end
          end
      | None ->
          (* A 1 ms-deadline job must never produce a normal verdict. *)
          if status = "swept" || status = "equivalent" then
            deadline_ok := false)
    outcomes;
  let depth_ok = !max_depth <= max_queue in
  let parity_ok = !parity_bad = 0 && !parity_checked > 0 in
  let race_clean = diags = [] in
  let rss_growth_kb =
    match (rss_before, rss_after) with
    | Some a, Some b -> Some (b - a)
    | Some _, None | None, Some _ | None, None -> None
  in
  let rss_ok =
    match rss_growth_kb with Some kb -> kb < 768 * 1024 | None -> true
  in
  Printf.printf
    "burst: %d clients x %d reqs over %d workers in %.1fs | max queue depth \
     %d/%d | %d overloaded, %d dropped/timeout, %d parity-checked (%d bad) \
     | shed %d, deadline-expired %d | rss growth %s | %d race diagnostics\n"
    clients (List.length reqs) workers wall !max_depth max_queue !shed_answers
    !dropped_answers !parity_checked !parity_bad !shed !deadline_expired
    (match rss_growth_kb with
    | Some kb -> Printf.sprintf "%d kB" kb
    | None -> "n/a")
    (List.length diags);
  let ok =
    depth_ok && parity_ok && !deadline_ok && race_clean && rss_ok
  in
  if not ok then
    Printf.eprintf
      "soak burst FAILED (depth ok %b, parity ok %b, deadline ok %b, races \
       clean %b, rss ok %b)\n"
      depth_ok parity_ok !deadline_ok race_clean rss_ok;
  ( ok,
    wall,
    !max_depth,
    !shed_answers,
    !dropped_answers,
    !parity_checked,
    !parity_bad,
    !shed,
    !deadline_expired,
    List.length diags,
    rss_growth_kb )

let soak_run ~bench ~burst_benches ~clients title =
  header title;
  let workers = 2 and max_queue = 4 in
  let r_ok, loaded, replayed, corrupt, warm_hits, corrupt_accepted =
    soak_recovery ~bench
  in
  let ( b_ok,
        wall,
        max_depth,
        shed_answers,
        dropped,
        parity_checked,
        parity_bad,
        shed,
        deadline_expired,
        races,
        rss_growth_kb ) =
    soak_burst ~benches:burst_benches ~workers ~max_queue ~clients
  in
  let oc = open_out "BENCH_SOAK.json" in
  Printf.fprintf oc
    "{\"experiment\":\"soak\",\"seed\":%d,\"recovery\":{\"snapshot_entries\":%d,\"journal_replayed\":%d,\"journal_corrupt\":%d,\"warm_hits\":%d,\"corrupt_accepted\":%d,\"ok\":%b},\"burst\":{\"workers\":%d,\"max_queue\":%d,\"clients\":%d,\"wall_time\":%.3f,\"max_queue_depth\":%d,\"overloaded_answers\":%d,\"dropped_answers\":%d,\"parity_checked\":%d,\"parity_bad\":%d,\"shed\":%d,\"deadline_expired\":%d,\"race_diagnostics\":%d,\"rss_growth_kb\":%s,\"ok\":%b},\"ok\":%b}\n"
    seed loaded replayed corrupt warm_hits corrupt_accepted r_ok workers
    max_queue clients wall max_depth shed_answers dropped parity_checked
    parity_bad shed deadline_expired races
    (match rss_growth_kb with Some kb -> string_of_int kb | None -> "null")
    b_ok (r_ok && b_ok);
  close_out oc;
  Printf.printf "wrote BENCH_SOAK.json\n";
  if not (r_ok && b_ok) then exit 1

let soak () =
  soak_run ~bench:"apex2" ~burst_benches:[ "apex2"; "square" ] ~clients:4
    "Soak: SIGKILL recovery + burst overload with faults and sanitizer armed"

let soak_smoke () =
  soak_run ~bench:"apex2" ~burst_benches:[ "apex2" ] ~clients:4
    "Soak (smoke): SIGKILL recovery + burst overload with faults and \
     sanitizer armed"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Bechamel micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let net = Suite.lut_network "apex2" in
  let guided strategy () =
    let sw = Sweeper.create (opts_with ()) net in
    Sweeper.random_round sw;
    ignore (Sweeper.guided_round sw strategy)
  in
  (* table1: one guided iteration per strategy (the simulation-runtime
     column); table2: one full SAT sweep after simulation (the SAT-time
     column); fig7: one random round (the RandS curve). *)
  let test_table1 =
    Test.make_grouped ~name:"table1_guided_round"
      (List.map
         (fun s ->
           Test.make ~name:(Strategy.name s) (Staged.stage (guided s)))
         Strategy.all)
  in
  let test_table2 =
    Test.make ~name:"table2_sat_sweep"
      (Staged.stage (fun () ->
           let opts = opts_with ~iterations:5 () in
           let sw = Sweeper.create opts net in
           Sweeper.random_round sw;
           ignore (Sweeper.run_guided opts sw);
           ignore (Sweeper.sat_sweep opts sw)))
  in
  let test_fig7 =
    Test.make ~name:"fig7_random_round"
      (Staged.stage (fun () ->
           let sw = Sweeper.create (opts_with ()) net in
           Sweeper.random_round sw))
  in
  let test_fig5 =
    Test.make ~name:"fig5_vector_generation"
      (Staged.stage (fun () ->
           let targets =
             let all = ref [] in
             N.iter_gates net (fun id -> all := id :: !all);
             List.filteri (fun i _ -> i < 8) !all
           in
           let outgold = Simgen_core.Outgold.assign targets in
           ignore
             (Simgen_core.Vector_gen.generate ~config:Config.default net
                outgold)))
  in
  let tests =
    Test.make_grouped ~name:"simgen"
      [ test_table1; test_table2; test_fig5; test_fig7 ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  Printf.printf "%-45s %15s\n" "benchmark" "time/run";
  List.iter
    (fun (name, ols) ->
      let time =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Printf.sprintf "%12.3f us" (t /. 1_000.0)
        | Some [] | None -> "n/a"
      in
      Printf.printf "%-45s %15s\n" name time)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(* Quick experiments first so partial console output is still useful if a
   run is interrupted; fig5/fig6 reuse the table2/table2s row caches. *)
let experiments =
  [
    ("table1", table1);
    ("fig7", fig7);
    ("ablation", ablation);
    ("baselines", baselines);
    ("sat-session", sat_session);
    ("sat-session-smoke", sat_session_smoke);
    ("cert", cert);
    ("cert-smoke", cert_smoke);
    ("serve", serve);
    ("serve-smoke", serve_smoke);
    ("runner", runner);
    ("race", race);
    ("solver-audit", solver_audit);
    ("soak", soak);
    ("soak-smoke", soak_smoke);
    ("micro", micro);
    ("table2", table2);
    ("fig5", fig5);
    ("table2s", table2_stacked);
    ("fig6", fig6);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    (* The smoke variant is a CI alias for sat-session; running both by
       default would just overwrite the same JSON. race and solver-audit
       are gated pass/fail checks (they can exit 1 on a noisy machine),
       so they only run when requested explicitly; soak additionally forks, which is
       only safe before any other experiment has spawned domains. *)
    | _ ->
        List.filter_map
          (fun (name, _) ->
            if
              name = "sat-session-smoke" || name = "cert-smoke"
              || name = "serve-smoke" || name = "race"
              || name = "solver-audit" || name = "soak"
              || name = "soak-smoke"
            then None
            else Some name)
          experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          f ();
          flush stdout
      | None ->
          Printf.eprintf "unknown experiment %S (known: %s)\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested
