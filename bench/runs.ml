(* Shared experiment machinery for the benchmark harness.

   One [run] executes the paper's §6.1 protocol on one LUT network under
   one strategy: one round (64 vectors) of random simulation, 20 guided
   iterations, then SAT sweeping; every metric of Tables 1-2 and
   Figures 5-7 is read off the result. *)

module Suite = Simgen_benchgen.Suite
module Sweeper = Simgen_sweep.Sweeper
module Strategy = Simgen_core.Strategy
module N = Simgen_network.Network

type result = {
  bench : string;
  strategy : Strategy.t;
  cost0 : int;  (* after random simulation *)
  cost : int;  (* after guided simulation *)
  sim_time : float;  (* guided generation + simulation wall time *)
  vectors : int;
  skipped : int;
  gen_conflicts : int;
  implications : int;
  decisions : int;
  sat_calls : int;
  sat_time : float;
  sat_proved : int;
  sat_disproved : int;
}

let random_rounds = 1
let guided_iterations = 20

let run ?(seed = 7) ?(with_sat = true) ~bench net strategy =
  let opts =
    {
      Simgen_sweep.Sweep_options.default with
      Simgen_sweep.Sweep_options.seed;
      strategy;
      guided_iterations;
    }
  in
  let sw = Sweeper.create opts net in
  for _ = 1 to random_rounds do
    Sweeper.random_round sw
  done;
  let cost0 = Sweeper.cost sw in
  let g = Sweeper.run_guided opts sw in
  let cost = Sweeper.cost sw in
  let s =
    if with_sat then Sweeper.sat_sweep opts sw
    else Sweeper.empty_sat
  in
  {
    bench;
    strategy;
    cost0;
    cost;
    sim_time = g.Sweeper.guided_time;
    vectors = g.Sweeper.vectors;
    skipped = g.Sweeper.skipped;
    gen_conflicts = g.Sweeper.gen_conflicts;
    implications = g.Sweeper.implications;
    decisions = g.Sweeper.decisions;
    sat_calls = s.Sweeper.calls;
    sat_time = s.Sweeper.sat_time;
    sat_proved = s.Sweeper.proved;
    sat_disproved = s.Sweeper.disproved;
  }

(* Normalisation against the RevS baseline, guarding tiny denominators. *)
let ratio value baseline =
  if baseline <= 0.0 then 1.0 else value /. baseline

let geo_mean = function
  | [] -> 1.0
  | xs ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log (max x 1e-9)) 0.0 xs /. n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let benchmarks () = Suite.names

let stacked_benchmarks () =
  List.filter_map
    (fun e ->
      match e.Suite.stack_copies with
      | Some copies -> Some (e.Suite.name, copies)
      | None -> None)
    Suite.entries
