module Aig = Simgen_aig.Aig
module Cut = Simgen_mapping.Cut
module Mapper = Simgen_mapping.Lut_mapper
module N = Simgen_network.Network
module Rng = Simgen_base.Rng

let random_aig rng npis nands npos =
  let aig = Aig.create () in
  let lits = ref [] in
  for _ = 1 to npis do
    lits := Aig.add_pi aig :: !lits
  done;
  let arr = ref (Array.of_list !lits) in
  for _ = 1 to nands do
    let pick () =
      let l = Rng.choose rng !arr in
      if Rng.bool rng then Aig.not_ l else l
    in
    let l = Aig.and_ aig (pick ()) (pick ()) in
    arr := Array.append !arr [| l |]
  done;
  for _ = 1 to npos do
    let l = Rng.choose rng !arr in
    Aig.add_po aig (if Rng.bool rng then Aig.not_ l else l)
  done;
  aig

(* ------------------------------------------------------------------ *)
(* Cut                                                                 *)
(* ------------------------------------------------------------------ *)

let cut leaves = { Cut.leaves; depth = 0; area_flow = 0.0 }

let test_merge_within_limit () =
  let a = cut [| 1; 3; 5 |] and b = cut [| 2; 3; 6 |] in
  (match Cut.merge 6 a b with
   | Some leaves -> Alcotest.(check (array int)) "union" [| 1; 2; 3; 5; 6 |] leaves
   | None -> Alcotest.fail "merge should fit");
  Alcotest.(check bool) "overflow rejected" true (Cut.merge 4 a b = None)

let test_merge_exact_limit () =
  let a = cut [| 1; 2 |] and b = cut [| 3; 4 |] in
  match Cut.merge 4 a b with
  | Some leaves -> Alcotest.(check (array int)) "exact" [| 1; 2; 3; 4 |] leaves
  | None -> Alcotest.fail "k-sized union must fit"

let test_dominance () =
  let a = cut [| 1; 3 |] and b = cut [| 1; 2; 3 |] in
  Alcotest.(check bool) "subset dominates" true (Cut.dominates a b);
  Alcotest.(check bool) "superset does not" false (Cut.dominates b a);
  Alcotest.(check bool) "self dominates" true (Cut.dominates a a)

let test_quality_order () =
  let shallow = { Cut.leaves = [| 1; 2; 3 |]; depth = 1; area_flow = 9.0 } in
  let deep = { Cut.leaves = [| 1 |]; depth = 2; area_flow = 0.0 } in
  Alcotest.(check bool) "depth first" true (Cut.compare_quality shallow deep < 0);
  let cheap = { Cut.leaves = [| 1; 2 |]; depth = 1; area_flow = 1.0 } in
  Alcotest.(check bool) "area tie-break" true
    (Cut.compare_quality cheap shallow < 0)

(* ------------------------------------------------------------------ *)
(* Mapper                                                              *)
(* ------------------------------------------------------------------ *)

let test_map_equivalence () =
  let rng = Rng.create 61 in
  for _ = 1 to 25 do
    let npis = 4 + Rng.int rng 6 in
    let aig = random_aig rng npis (20 + Rng.int rng 150) 4 in
    let net = Mapper.map ~k:6 aig in
    let trials = if npis <= 9 then 1 lsl npis else 256 in
    for t = 0 to trials - 1 do
      let vec =
        Array.init npis (fun i ->
            if npis <= 9 then (t lsr i) land 1 = 1 else Rng.bool rng)
      in
      Alcotest.(check (array bool)) "equivalent" (Aig.eval_pos aig vec)
        (N.eval_pos net vec)
    done
  done

let test_map_arity_bound () =
  let rng = Rng.create 67 in
  List.iter
    (fun k ->
      let aig = random_aig rng 8 120 4 in
      let net = Mapper.map ~k aig in
      Alcotest.(check bool)
        (Printf.sprintf "arity <= %d" k)
        true
        (N.max_fanin_arity net <= k))
    [ 2; 3; 4; 6 ]

let test_map_smaller_than_aig () =
  (* 6-LUTs cover multiple AND nodes: LUT count must be well below the AND
     count on a non-trivial circuit. *)
  let rng = Rng.create 71 in
  let aig = random_aig rng 8 200 4 in
  let net, stats = Mapper.map_with_stats ~k:6 aig in
  Alcotest.(check bool) "fewer LUTs than ANDs" true
    (stats.Mapper.luts < Aig.num_ands aig);
  Alcotest.(check int) "stats consistent" (N.num_gates net) stats.Mapper.luts

let test_map_depth_bound () =
  (* LUT depth can never exceed AIG depth. *)
  let rng = Rng.create 73 in
  for _ = 1 to 10 do
    let aig = random_aig rng 6 100 4 in
    let levels = Aig.level aig in
    let aig_depth =
      Array.fold_left
        (fun acc l -> max acc levels.(Aig.node_of_lit l))
        0 (Aig.pos aig)
    in
    let _, stats = Mapper.map_with_stats ~k:6 aig in
    Alcotest.(check bool) "lut depth <= aig depth" true
      (stats.Mapper.depth <= aig_depth)
  done

let test_map_constant_po () =
  let aig = Aig.create () in
  let a = Aig.add_pi aig in
  Aig.add_po aig Aig.false_;
  Aig.add_po aig Aig.true_;
  Aig.add_po aig (Aig.not_ a);
  let net = Mapper.map aig in
  Alcotest.(check (array bool)) "const + inverted pi" [| false; true; true |]
    (N.eval_pos net [| false |]);
  Alcotest.(check (array bool)) "inverted pi on 1" [| false; true; false |]
    (N.eval_pos net [| true |])

let test_map_po_to_pi () =
  let aig = Aig.create () in
  let a = Aig.add_pi aig in
  Aig.add_po aig a;
  let net = Mapper.map aig in
  Alcotest.(check (array bool)) "buffer" [| true |] (N.eval_pos net [| true |])

let test_map_wide_conjunction () =
  (* 12-input AND maps into a small 6-LUT tree. *)
  let aig = Aig.create () in
  let xs = Array.init 12 (fun _ -> Aig.add_pi aig) in
  Aig.add_po aig (Aig.and_list aig (Array.to_list xs));
  let net, stats = Mapper.map_with_stats ~k:6 aig in
  Alcotest.(check bool) "few luts" true (stats.Mapper.luts <= 4);
  let all_true = Array.make 12 true in
  Alcotest.(check (array bool)) "all ones" [| true |] (N.eval_pos net all_true);
  all_true.(7) <- false;
  Alcotest.(check (array bool)) "one zero" [| false |] (N.eval_pos net all_true)

let test_cut_limit_tradeoff () =
  (* More priority cuts can only improve (or preserve) depth. *)
  let rng = Rng.create 79 in
  let aig = random_aig rng 8 150 4 in
  let _, s1 = Mapper.map_with_stats ~k:6 ~cut_limit:1 aig in
  let _, s8 = Mapper.map_with_stats ~k:6 ~cut_limit:8 aig in
  Alcotest.(check bool) "depth monotone in cut budget" true
    (s8.Mapper.depth <= s1.Mapper.depth)

let () =
  Alcotest.run "mapping"
    [
      ( "cut",
        [
          Alcotest.test_case "merge" `Quick test_merge_within_limit;
          Alcotest.test_case "merge exact" `Quick test_merge_exact_limit;
          Alcotest.test_case "dominance" `Quick test_dominance;
          Alcotest.test_case "quality order" `Quick test_quality_order;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "equivalence" `Quick test_map_equivalence;
          Alcotest.test_case "arity bound" `Quick test_map_arity_bound;
          Alcotest.test_case "compression" `Quick test_map_smaller_than_aig;
          Alcotest.test_case "depth bound" `Quick test_map_depth_bound;
          Alcotest.test_case "constant po" `Quick test_map_constant_po;
          Alcotest.test_case "po to pi" `Quick test_map_po_to_pi;
          Alcotest.test_case "wide conjunction" `Quick test_map_wide_conjunction;
          Alcotest.test_case "cut limit" `Quick test_cut_limit_tradeoff;
        ] );
    ]
