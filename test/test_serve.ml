(* The serving layer: the JSONL protocol codec, the cross-request NPN
   function cache (trust boundary: a hit can never change a verdict),
   and the daemon's request handler exercised in-process.

   The adversarial NPN-collision cases — equal canonical signatures over
   inequivalent functions — live in test_npn.ml next to the
   canonicalisation they attack. *)

module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Rng = Simgen_base.Rng
module Shared = Simgen_base.Shared
module Fault = Simgen_fault.Fault
module Retry_policy = Simgen_runner.Retry_policy
module Fun_cache = Simgen_sweep.Fun_cache
module Protocol = Simgen_serve.Protocol
module Server = Simgen_serve.Server
module Client = Simgen_serve.Client

let tt_and2 = TT.and_ (TT.var 0 2) (TT.var 1 2)
let tt_or2 = TT.or_ (TT.var 0 2) (TT.var 1 2)

let identity_subst net = Array.init (N.num_nodes net) Fun.id

(* Direct cone evaluation: the test-side oracle for counterexamples. *)
let eval net vec id =
  let memo = Hashtbl.create 16 in
  let rec ev id =
    match Hashtbl.find_opt memo id with
    | Some v -> v
    | None ->
        let v =
          match N.kind net id with
          | N.Pi k -> vec.(k)
          | N.Gate f -> TT.eval f (Array.map ev (N.fanins net id))
        in
        Hashtbl.replace memo id v;
        v
  in
  ev id

let with_faults f =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset f

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let json_roundtrip v =
  match Protocol.parse (Protocol.to_string v) with
  | Ok v' -> v'
  | Error msg -> Alcotest.failf "reparse failed: %s" msg

let test_json_roundtrip () =
  let v =
    Protocol.(
      Obj
        [
          ("a", Int 42);
          ("b", String "x \"quoted\"\nline\ttab");
          ("c", List [ Bool true; Bool false; Null ]);
          ("d", Obj [ ("nested", List [ Int (-7); Int 0 ]) ]);
          ("e", String "");
        ])
  in
  Alcotest.(check bool) "roundtrip" true (json_roundtrip v = v)

let test_json_rejects () =
  List.iter
    (fun s ->
      match Protocol.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "{\"a\":}"; "[1,2"; "{\"a\":1} trailing"; "nul"; "\"open" ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let line = Protocol.request_to_line ~id:9 req in
      match Protocol.request_of_line line with
      | Ok (9, req') ->
          Alcotest.(check bool) ("roundtrip " ^ line) true (req = req')
      | Ok (id, _) -> Alcotest.failf "wrong id %d" id
      | Error msg -> Alcotest.failf "%s: %s" line msg)
    Protocol.
      [
        Ping;
        Stats;
        Shutdown;
        Lint { target = "apex2" };
        Job { cmd = "sweep"; args = "apex2 stacked=true seed=3"; deadline_ms = None };
        Job { cmd = "cec"; args = "a.blif b.blif deadline=2.0"; deadline_ms = None };
        Job { cmd = "certify"; args = "square"; deadline_ms = None };
        Job { cmd = "sweep"; args = "apex2"; deadline_ms = Some 1500 };
      ]

let test_request_rejects () =
  List.iter
    (fun line ->
      match Protocol.request_of_line line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [
      "{\"v\":2,\"id\":1,\"cmd\":\"ping\"}";
      "{\"v\":1,\"id\":1,\"cmd\":\"nope\"}";
      "{\"v\":1,\"cmd\":\"ping\"}";
      "{\"v\":1,\"id\":1,\"cmd\":\"sweep\"}";
      "{\"v\":1,\"id\":1,\"cmd\":\"lint\"}";
      "{\"v\":1,\"id\":1,\"cmd\":\"sweep\",\"args\":\"apex2\",\"deadline_ms\":0}";
      "{\"v\":1,\"id\":1,\"cmd\":\"sweep\",\"args\":\"apex2\",\"deadline_ms\":-5}";
      "not json";
    ]

let test_frame_roundtrip () =
  let check frame =
    let line = Protocol.frame_to_line ~id:3 frame in
    match Protocol.frame_of_line line with
    | Ok (3, frame') ->
        Alcotest.(check bool) ("roundtrip " ^ line) true (frame = frame')
    | Ok (id, _) -> Alcotest.failf "wrong id %d" id
    | Error msg -> Alcotest.failf "%s: %s" line msg
  in
  check (Protocol.Event (Protocol.Obj [ ("phase", Protocol.String "queued") ]));
  check
    (Protocol.Result
       [ ("status", Protocol.String "swept"); ("final_cost", Protocol.Int 7) ]);
  check (Protocol.Failed "boom \"quoted\"");
  check (Protocol.Overloaded { retry_after = 0.25 })

(* ------------------------------------------------------------------ *)
(* Function cache: serving rules                                       *)
(* ------------------------------------------------------------------ *)

(* x1 = and(a,b), x2 = and(b,a) (equal), y1 = or(a,b) (distinct). *)
let pair_net () =
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let x1 = N.add_gate net tt_and2 [| a; b |] in
  let x2 = N.add_gate net tt_and2 [| b; a |] in
  let y1 = N.add_gate net tt_or2 [| a; b |] in
  List.iter (N.add_po net) [ x1; x2; y1 ];
  (net, x1, x2, y1)

let test_local_proof () =
  let fc = Fun_cache.create () in
  let net, x1, x2, _ = pair_net () in
  let rng = Rng.create 1 in
  let subst = identity_subst net in
  (match Fun_cache.consult fc ~rng ~subst net x1 x2 with
   | Fun_cache.Equal -> ()
   | _ -> Alcotest.fail "equal cones must be served locally");
  let s = Fun_cache.stats fc in
  Alcotest.(check int) "hits" 1 s.Fun_cache.hits;
  Alcotest.(check int) "local proofs" 1 s.Fun_cache.local_proofs;
  Alcotest.(check int) "entries" 1 s.Fun_cache.entries

let test_exact_cut_cex () =
  let fc = Fun_cache.create () in
  let net, x1, _, y1 = pair_net () in
  let rng = Rng.create 1 in
  let subst = identity_subst net in
  (match Fun_cache.consult fc ~rng ~subst net x1 y1 with
   | Fun_cache.Counterexample vec ->
       Alcotest.(check int) "full PI vector" (N.num_pis net) (Array.length vec);
       Alcotest.(check bool) "distinguishes" true
         (eval net vec x1 <> eval net vec y1)
   | _ -> Alcotest.fail "exact-cut difference must yield a counterexample");
  let s = Fun_cache.stats fc in
  Alcotest.(check int) "local cexes" 1 s.Fun_cache.local_cexes

let test_certify_never_serves_equal () =
  let fc = Fun_cache.create () in
  let net, x1, x2, _ = pair_net () in
  let rng = Rng.create 1 in
  let subst = identity_subst net in
  let slot =
    match Fun_cache.consult fc ~serve_equal:false ~rng ~subst net x1 x2 with
    | Fun_cache.Miss slot -> slot
    | _ -> Alcotest.fail "under certification Equal must come back as Miss"
  in
  Fun_cache.record fc slot
    (Fun_cache.Proved { conflicts = 17; proof = Some [ [ 1; -2 ]; [ 2 ] ] });
  (* outside certification the same pair is again proven locally *)
  (match Fun_cache.consult fc ~rng ~subst net x1 x2 with
   | Fun_cache.Equal -> ()
   | _ -> Alcotest.fail "local proof must still serve");
  let s = Fun_cache.stats fc in
  Alcotest.(check int) "one miss, one hit" 1 s.Fun_cache.misses;
  Alcotest.(check int) "hit" 1 s.Fun_cache.hits

(* An inexact cut: with max_support=2 the frontier stays {a, b} (both
   gates), so nothing can be proven locally and only validated stored
   patterns may be served. *)
let inexact_net () =
  let net = N.create () in
  let p0 = N.add_pi net in
  let p1 = N.add_pi net in
  let p2 = N.add_pi net in
  let g = N.add_gate net tt_and2 [| p0; p1 |] in
  let a = N.add_gate net tt_and2 [| g; p2 |] in
  let b = N.add_gate net tt_or2 [| g; p2 |] in
  N.add_po net a;
  N.add_po net b;
  (net, a, b)

let test_pattern_replay () =
  let fc = Fun_cache.create ~max_support:2 () in
  let net, a, b = inexact_net () in
  let rng = Rng.create 1 in
  let subst = identity_subst net in
  let slot =
    match Fun_cache.consult fc ~rng ~subst net a b with
    | Fun_cache.Miss slot -> slot
    | _ -> Alcotest.fail "inexact cut with no patterns must miss"
  in
  (* p0=1 p1=1 p2=0: g=1, a=0, b=1 — a genuine SAT counterexample *)
  Fun_cache.record fc slot (Fun_cache.Refuted [| true; true; false |]);
  (match Fun_cache.consult fc ~rng ~subst net a b with
   | Fun_cache.Counterexample vec ->
       Alcotest.(check bool) "distinguishes" true
         (eval net vec a <> eval net vec b)
   | _ -> Alcotest.fail "recorded pattern must replay");
  let s = Fun_cache.stats fc in
  Alcotest.(check int) "pattern hit" 1 s.Fun_cache.pattern_hits

let test_invalid_pattern_not_served () =
  let fc = Fun_cache.create ~max_support:2 () in
  let net, a, b = inexact_net () in
  let rng = Rng.create 1 in
  let subst = identity_subst net in
  let slot =
    match Fun_cache.consult fc ~rng ~subst net a b with
    | Fun_cache.Miss slot -> slot
    | _ -> Alcotest.fail "expected a miss"
  in
  (* p0=p1=p2=0: a=0, b=0 — does NOT distinguish the pair. A colliding
     entry could hold exactly this; validation must refuse to serve it. *)
  Fun_cache.record fc slot (Fun_cache.Refuted [| false; false; false |]);
  (match Fun_cache.consult fc ~rng ~subst net a b with
   | Fun_cache.Miss _ -> ()
   | Fun_cache.Counterexample _ ->
       Alcotest.fail "a non-distinguishing stored vector was served"
   | _ -> Alcotest.fail "expected a miss");
  let s = Fun_cache.stats fc in
  Alcotest.(check int) "counted as collision" 1 s.Fun_cache.collisions

(* ------------------------------------------------------------------ *)
(* Function cache: eviction, snapshots, poison                         *)
(* ------------------------------------------------------------------ *)

(* Fill a cache with entries for random 4-input function pairs. Exact
   cuts make most consults insert a local-counterexample entry on their
   own; a Miss (equal canonical keys colliding, or equal functions under
   serve_equal:false) is filed as a SAT verdict. *)
let fill_random fc ~pairs seed =
  let rng = Rng.create seed in
  for _ = 1 to pairs do
    let net = N.create () in
    let pis = Array.init 4 (fun _ -> N.add_pi net) in
    let f = TT.random rng 4 and g = TT.random rng 4 in
    let a = N.add_gate net f pis in
    let b = N.add_gate net g pis in
    N.add_po net a;
    N.add_po net b;
    let subst = identity_subst net in
    match Fun_cache.consult fc ~rng ~subst net a b with
    | Fun_cache.Miss slot ->
        Fun_cache.record fc slot
          (Fun_cache.Proved { conflicts = 100; proof = Some [ [ 1; 2; -3 ] ] })
    | _ -> ()
  done

let test_eviction_under_bound () =
  (* create clamps max_bytes up to 4096: a few dozen entries fit *)
  let fc = Fun_cache.create ~max_bytes:1 () in
  fill_random fc ~pairs:400 5;
  let s = Fun_cache.stats fc in
  Alcotest.(check bool) "evictions happened" true (s.Fun_cache.evictions > 0);
  Alcotest.(check bool) "bound respected" true (s.Fun_cache.bytes <= 4096);
  Alcotest.(check bool) "entries resident" true (s.Fun_cache.entries > 0);
  Alcotest.(check int) "accounting" s.Fun_cache.entries
    (s.Fun_cache.inserts - s.Fun_cache.evictions)

let test_snapshot_roundtrip () =
  let fc = Fun_cache.create ~max_support:2 () in
  let net, a, b = inexact_net () in
  let rng = Rng.create 1 in
  let subst = identity_subst net in
  (match Fun_cache.consult fc ~rng ~subst net a b with
   | Fun_cache.Miss slot ->
       Fun_cache.record fc slot (Fun_cache.Refuted [| true; true; false |])
   | _ -> Alcotest.fail "expected a miss");
  fill_random fc ~pairs:10 7;
  let before = Fun_cache.stats fc in
  let path = Filename.temp_file "simgen-fc" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Fun_cache.save fc path with
       | Ok () -> ()
       | Error msg -> Alcotest.failf "save: %s" msg);
      let fc' = Fun_cache.create ~max_support:2 () in
      (match Fun_cache.load fc' path with
       | Ok n ->
           Alcotest.(check int) "all entries restored"
             before.Fun_cache.entries n
       | Error msg -> Alcotest.failf "load: %s" msg);
      let after = Fun_cache.stats fc' in
      Alcotest.(check int) "entries" before.Fun_cache.entries
        after.Fun_cache.entries;
      (* the restored pattern block still replays — and still validates *)
      match Fun_cache.consult fc' ~rng ~subst net a b with
      | Fun_cache.Counterexample vec ->
          Alcotest.(check bool) "distinguishes" true
            (eval net vec a <> eval net vec b)
      | _ -> Alcotest.fail "restored pattern must replay")

let test_snapshot_corruption_dropped () =
  let fc = Fun_cache.create () in
  fill_random fc ~pairs:8 11;
  Alcotest.(check bool) "filled some" true
    ((Fun_cache.stats fc).Fun_cache.entries >= 4);
  let path = Filename.temp_file "simgen-fc" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Fun_cache.save fc path with
       | Ok () -> ()
       | Error msg -> Alcotest.failf "save: %s" msg);
      (* flip one payload character of the second entry line *)
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      let corrupted =
        List.mapi
          (fun i line ->
            if i = 2 && String.length line > 3 then begin
              let b = Bytes.of_string line in
              Bytes.set b 2 (if Bytes.get b 2 = '1' then '0' else '1');
              Bytes.to_string b
            end
            else line)
          lines
      in
      let oc = open_out path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        corrupted;
      close_out oc;
      let fc' = Fun_cache.create () in
      let entries = (Fun_cache.stats fc).Fun_cache.entries in
      match Fun_cache.load fc' path with
      | Ok n ->
          Alcotest.(check int) "one entry lost" (entries - 1) n;
          Alcotest.(check int) "counted as dropped" 1
            (Fun_cache.stats fc').Fun_cache.dropped
      | Error msg -> Alcotest.failf "load: %s" msg)

let test_snapshot_bad_header () =
  let path = Filename.temp_file "simgen-fc" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a snapshot\n";
      close_out oc;
      let fc = Fun_cache.create () in
      match Fun_cache.load fc path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad header accepted")

(* ------------------------------------------------------------------ *)
(* Function cache: crash-safe persistence                              *)
(* ------------------------------------------------------------------ *)

let rm_f path = if Sys.file_exists path then Sys.remove path

(* A cache with a journal whose checkpoint thresholds are unreachable:
   everything inserted after [enable_journal] lives only in the journal,
   so replay is guaranteed to do real work. *)
let with_journaled_cache f =
  let snap = Filename.temp_file "simgen-fc" ".snap" in
  let jpath = Filename.temp_file "simgen-fc" ".journal" in
  Fun.protect
    ~finally:(fun () -> List.iter rm_f [ snap; jpath ])
    (fun () ->
      let fc = Fun_cache.create () in
      fill_random fc ~pairs:3 19;
      (match
         Fun_cache.enable_journal fc ~snapshot:snap ~journal:jpath
           ~checkpoint_entries:1_000_000 ~checkpoint_seconds:1e9 ()
       with
       | Ok () -> ()
       | Error msg -> Alcotest.failf "enable_journal: %s" msg);
      Alcotest.(check bool) "journal enabled" true
        (Fun_cache.journal_enabled fc);
      fill_random fc ~pairs:8 23;
      f ~snap ~jpath ~fc)

let recover ~snap ~jpath =
  let fc = Fun_cache.create () in
  (match Fun_cache.load fc snap with
   | Ok _ -> ()
   | Error msg -> Alcotest.failf "load: %s" msg);
  let replayed, corrupt = Fun_cache.replay_journal fc jpath in
  (fc, replayed, corrupt)

let test_journal_replay () =
  with_journaled_cache (fun ~snap ~jpath ~fc ->
      let s = Fun_cache.stats fc in
      Alcotest.(check bool) "insertions journaled" true
        (s.Fun_cache.journal_appends > 0);
      let fc', replayed, corrupt = recover ~snap ~jpath in
      Alcotest.(check bool) "journal replayed" true (replayed > 0);
      Alcotest.(check int) "clean tail" 0 corrupt;
      Alcotest.(check int) "entry parity" s.Fun_cache.entries
        (Fun_cache.stats fc').Fun_cache.entries)

let test_journal_torn_tail () =
  with_journaled_cache (fun ~snap ~jpath ~fc ->
      let live = (Fun_cache.stats fc).Fun_cache.entries in
      (* a torn write: half an entry, no newline, as a SIGKILL mid-append
         would leave behind *)
      let oc = open_out_gen [ Open_append ] 0o644 jpath in
      output_string oc "9999 0123456789abcd";
      close_out oc;
      let fc1, replayed, corrupt = recover ~snap ~jpath in
      Alcotest.(check bool) "valid prefix replayed" true (replayed > 0);
      Alcotest.(check bool) "torn tail detected" true (corrupt > 0);
      Alcotest.(check int) "no torn entry admitted" live
        (Fun_cache.stats fc1).Fun_cache.entries;
      (* the bad tail was physically truncated: a second recovery over
         the same file is clean and agrees *)
      let fc2, replayed', corrupt' = recover ~snap ~jpath in
      Alcotest.(check int) "tail truncated" 0 corrupt';
      Alcotest.(check int) "same entries replayed" replayed replayed';
      Alcotest.(check int) "stable entry count" live
        (Fun_cache.stats fc2).Fun_cache.entries)

let test_journal_checkpoint () =
  with_journaled_cache (fun ~snap ~jpath ~fc ->
      (match Fun_cache.checkpoint fc with
       | Ok () -> ()
       | Error msg -> Alcotest.failf "checkpoint: %s" msg);
      Alcotest.(check bool) "checkpoint counted" true
        ((Fun_cache.stats fc).Fun_cache.checkpoints > 0);
      (* everything moved into the snapshot; the journal is empty *)
      let fc', replayed, corrupt = recover ~snap ~jpath in
      Alcotest.(check int) "journal truncated" 0 replayed;
      Alcotest.(check int) "clean tail" 0 corrupt;
      Alcotest.(check int) "entry parity" (Fun_cache.stats fc).Fun_cache.entries
        (Fun_cache.stats fc').Fun_cache.entries)

let test_atomic_save_disk_full () =
  with_faults (fun () ->
      let fc = Fun_cache.create () in
      fill_random fc ~pairs:6 29;
      let path = Filename.temp_file "simgen-fc" ".snap" in
      Fun.protect
        ~finally:(fun () -> List.iter rm_f [ path; path ^ ".tmp" ])
        (fun () ->
          (match Fun_cache.save fc path with
           | Ok () -> ()
           | Error msg -> Alcotest.failf "save: %s" msg);
          let entries = (Fun_cache.stats fc).Fun_cache.entries in
          (* grow the cache, then fail the re-save with a full disk *)
          fill_random fc ~pairs:6 31;
          Fault.arm ~times:1 "disk-full";
          (match Fun_cache.save fc path with
           | Error _ -> ()
           | Ok () -> Alcotest.fail "injected disk-full must fail the save");
          Alcotest.(check bool) "no tmp residue" false
            (Sys.file_exists (path ^ ".tmp"));
          (* the previous snapshot was never touched: it still loads whole *)
          let fc' = Fun_cache.create () in
          match Fun_cache.load fc' path with
          | Ok n -> Alcotest.(check int) "old snapshot intact" entries n
          | Error msg -> Alcotest.failf "load: %s" msg))

let test_poison_dropped_never_served () =
  with_faults (fun () ->
      Fault.arm ~times:1 "serve-cache-poison";
      let fc = Fun_cache.create () in
      let net, x1, x2, _ = pair_net () in
      let rng = Rng.create 1 in
      let subst = identity_subst net in
      (* first consult inserts an entry; the armed fault corrupts it
         after its checksum was taken — the verdict is local and stays
         correct regardless *)
      (match Fun_cache.consult fc ~rng ~subst net x1 x2 with
       | Fun_cache.Equal -> ()
       | _ -> Alcotest.fail "poison must not change a verdict");
      (* next lookup detects the corruption and drops the entry *)
      (match Fun_cache.consult fc ~rng ~subst net x1 x2 with
       | Fun_cache.Equal -> ()
       | _ -> Alcotest.fail "poison must not change a verdict");
      let s = Fun_cache.stats fc in
      Alcotest.(check int) "poisoned entry dropped" 1 s.Fun_cache.dropped;
      Alcotest.(check int) "reinserted" 2 s.Fun_cache.inserts)

(* ------------------------------------------------------------------ *)
(* Server.handle: in-process daemon semantics                          *)
(* ------------------------------------------------------------------ *)

let write_blif path lines =
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

let with_two_circuits f =
  let a = Filename.temp_file "simgen-a" ".blif" in
  let b = Filename.temp_file "simgen-b" ".blif" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove a;
      Sys.remove b)
    (fun () ->
      write_blif a
        [ ".model a"; ".inputs x y"; ".outputs f"; ".names x y f"; "11 1";
          ".end" ];
      write_blif b
        [ ".model b"; ".inputs x y"; ".outputs f"; ".names x y f"; "1- 1";
          "-1 1"; ".end" ];
      f a b)

let result_status = function
  | Protocol.Result fields ->
      (match Protocol.string_member "status" (Protocol.Obj fields) with
       | Some s -> s
       | None -> Alcotest.fail "result without status")
  | Protocol.Failed msg -> Alcotest.failf "error frame: %s" msg
  | Protocol.Event _ -> Alcotest.fail "event is not a final frame"
  | Protocol.Overloaded _ -> Alcotest.fail "unexpected overload answer"

let test_handle_ping_stats () =
  let server = Server.create ~workers:1 ~fun_cache:(Fun_cache.create ()) () in
  Alcotest.(check string) "ping" "ok"
    (result_status (Server.handle server Protocol.Ping));
  match Server.handle server Protocol.Stats with
  | Protocol.Result fields ->
      let has k = List.mem_assoc k fields in
      List.iter
        (fun k -> Alcotest.(check bool) ("stats has " ^ k) true (has k))
        [ "uptime"; "requests"; "jobs_ok"; "fun_cache" ]
  | _ -> Alcotest.fail "stats must answer with a result"

let test_handle_jobs_and_parity () =
  with_two_circuits (fun a b ->
      let cached = Server.create ~workers:1 ~fun_cache:(Fun_cache.create ()) () in
      let bare = Server.create ~workers:1 () in
      let spec c1 c2 = Printf.sprintf "%s %s seed=5" c1 c2 in
      let run server args =
        result_status
          (Server.handle server
             (Protocol.Job { cmd = "cec"; args; deadline_ms = None }))
      in
      (* same circuit twice: equivalent, and the warm re-run agrees *)
      let eq = run cached (spec a a) in
      Alcotest.(check string) "equivalent" "equivalent" eq;
      Alcotest.(check string) "warm parity" eq (run cached (spec a a));
      Alcotest.(check string) "cache on/off parity" eq (run bare (spec a a));
      (* distinct circuits: not equivalent everywhere, cache or not *)
      let ne = run cached (spec a b) in
      Alcotest.(check string) "not equivalent" "not-equivalent@po0" ne;
      Alcotest.(check string) "warm parity" ne (run cached (spec a b));
      Alcotest.(check string) "cache on/off parity" ne (run bare (spec a b)))

let test_handle_streams_events () =
  with_two_circuits (fun a _ ->
      let server = Server.create ~workers:1 ~fun_cache:(Fun_cache.create ()) () in
      let phases = ref [] in
      let on_event j =
        match Protocol.string_member "phase" j with
        | Some p -> phases := p :: !phases
        | None -> ()
      in
      let frame =
        Server.handle server ~on_event
          (Protocol.Job { cmd = "sweep"; args = a; deadline_ms = None })
      in
      Alcotest.(check string) "swept" "swept" (result_status frame);
      Alcotest.(check bool) "streamed events" true (!phases <> []);
      Alcotest.(check bool) "finished event present" true
        (List.mem "finished" !phases))

let test_handle_certify_forced () =
  with_two_circuits (fun a _ ->
      let server = Server.create ~workers:1 ~fun_cache:(Fun_cache.create ()) () in
      let phases = ref [] in
      let on_event j =
        match Protocol.string_member "phase" j with
        | Some p -> phases := p :: !phases
        | None -> ()
      in
      let frame =
        Server.handle server ~on_event
          (Protocol.Job
             { cmd = "certify"; args = a ^ " certify=false"; deadline_ms = None })
      in
      Alcotest.(check string) "swept" "swept" (result_status frame);
      (* certify=true was forced despite the client's certify=false: the
         independent checker ran and emitted its telemetry *)
      Alcotest.(check bool) "certificate checked" true
        (List.mem "certificate" !phases))

let test_handle_errors () =
  let server = Server.create ~workers:1 () in
  (match
     Server.handle server
       (Protocol.Job { cmd = "cec"; args = "nope"; deadline_ms = None })
   with
   | Protocol.Failed _ -> ()
   | _ -> Alcotest.fail "bad manifest args must fail");
  match Server.handle server (Protocol.Lint { target = "no-such-bench" }) with
  | Protocol.Failed _ -> ()
  | _ -> Alcotest.fail "unknown lint target must fail"

let test_handle_lint () =
  with_two_circuits (fun a _ ->
      let server = Server.create ~workers:1 () in
      match Server.handle server (Protocol.Lint { target = a }) with
      | Protocol.Result fields ->
          Alcotest.(check bool) "has errors field" true
            (List.mem_assoc "errors" fields)
      | _ -> Alcotest.fail "lint must answer with a result")

let test_shutdown_drains () =
  let dir = Filename.temp_file "simgen-fc" ".snap" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then Sys.remove dir)
    (fun () ->
      let fc = Fun_cache.create () in
      fill_random fc ~pairs:5 3;
      let server = Server.create ~workers:1 ~fun_cache:fc ~cache_save:dir () in
      Alcotest.(check bool) "running" false (Server.shutting_down server);
      Alcotest.(check string) "shutdown ack" "shutting-down"
        (result_status (Server.handle server Protocol.Shutdown));
      Alcotest.(check bool) "draining" true (Server.shutting_down server);
      (* jobs are refused during the drain *)
      (match
         Server.handle server
           (Protocol.Job { cmd = "sweep"; args = "x"; deadline_ms = None })
       with
       | Protocol.Failed _ -> ()
       | _ -> Alcotest.fail "jobs must be refused while shutting down");
      (* the cache was snapshotted *)
      let fc' = Fun_cache.create () in
      match Fun_cache.load fc' dir with
      | Ok n ->
          Alcotest.(check int) "snapshot complete"
            (Fun_cache.stats fc).Fun_cache.entries n
      | Error msg -> Alcotest.failf "snapshot: %s" msg)

(* ------------------------------------------------------------------ *)
(* Client hardening and the socket daemon under load                   *)
(* ------------------------------------------------------------------ *)

let temp_socket () =
  let path = Filename.temp_file "simgen-serve" ".sock" in
  Sys.remove path;
  path

let test_client_timeout () =
  let sock = temp_socket () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      rm_f sock)
    (fun () ->
      Unix.bind fd (Unix.ADDR_UNIX sock);
      Unix.listen fd 1;
      (* the listener never accepts or answers: the read must time out,
         distinctly from a refused or dropped connection *)
      (match
         Client.call ~socket:sock ~connect_timeout:1.0 ~read_timeout:0.2
           ~retry:Retry_policy.none Protocol.Ping
       with
       | Error (Client.Timeout _) -> ()
       | Ok _ -> Alcotest.fail "a silent daemon answered?"
       | Error e ->
           Alcotest.failf "expected a timeout: %s" (Client.error_to_string e));
      (* a missing socket fails fast and differently *)
      match
        Client.call ~socket:(sock ^ ".gone") ~connect_timeout:0.5
          ~read_timeout:0.2 ~retry:Retry_policy.none Protocol.Ping
      with
      | Error (Client.Dropped _) -> ()
      | Ok _ -> Alcotest.fail "a missing socket answered?"
      | Error e ->
          Alcotest.failf "expected a drop: %s" (Client.error_to_string e))

(* The client retries a shed request by itself: a hand-rolled daemon
   answers the first connection [Overloaded] and the second one [Result]. *)
let test_client_overload_retry () =
  let sock = temp_socket () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      rm_f sock)
    (fun () ->
      Unix.bind fd (Unix.ADDR_UNIX sock);
      Unix.listen fd 2;
      let daemon =
        Shared.spawn (fun () ->
            let answer frame =
              let conn, _ = Unix.accept fd in
              let ic = Unix.in_channel_of_descr conn in
              let (_ : string) = input_line ic in
              let line = Protocol.frame_to_line ~id:1 frame ^ "\n" in
              ignore (Unix.write_substring conn line 0 (String.length line));
              Unix.close conn
            in
            answer (Protocol.Overloaded { retry_after = 0.01 });
            answer (Protocol.Result [ ("status", Protocol.String "ok") ]))
      in
      let res =
        Client.call ~socket:sock ~connect_timeout:2.0 ~read_timeout:5.0
          ~retry:
            {
              Retry_policy.max_attempts = 3;
              backoff = 0.01;
              multiplier = 2.0;
              jitter = 0.0;
            }
          Protocol.Ping
      in
      Shared.join daemon;
      match res with
      | Ok fields -> (
          match Protocol.string_member "status" (Protocol.Obj fields) with
          | Some s -> Alcotest.(check string) "answered on retry" "ok" s
          | None -> Alcotest.fail "result without status")
      | Error e ->
          Alcotest.failf "retry did not recover: %s" (Client.error_to_string e))

(* The drain contract, end to end over a real socket: pin the single
   worker with a slow job, fill the queue past [max_queue], then request
   shutdown. Every admitted job must be answered (the overflow one with
   [Overloaded], the expired one as shed), telemetry must survive, and
   the snapshot+journal pair on disk must reload to the live cache. *)
let test_drain_under_load () =
  with_two_circuits (fun a _ ->
      let sock = temp_socket () in
      let snap = Filename.temp_file "simgen-fc" ".snap" in
      let jpath = snap ^ ".journal" in
      Fun.protect
        ~finally:(fun () -> List.iter rm_f [ sock; snap; jpath ])
        (fun () ->
          let fc = Fun_cache.create () in
          (match
             Fun_cache.enable_journal fc ~snapshot:snap ~journal:jpath
               ~checkpoint_entries:1_000_000 ~checkpoint_seconds:1e9 ()
           with
           | Ok () -> ()
           | Error msg -> Alcotest.failf "enable_journal: %s" msg);
          let server =
            Server.create ~workers:1 ~max_queue:4 ~fun_cache:fc
              ~cache_save:snap ()
          in
          let d = Shared.spawn (fun () -> Server.serve server ~socket:sock) in
          let rec await n =
            if n = 0 then Alcotest.fail "daemon did not come up";
            match
              Client.call ~socket:sock ~connect_timeout:1.0 ~read_timeout:5.0
                ~retry:Retry_policy.none Protocol.Ping
            with
            | Ok _ -> ()
            | Error (Client.Timeout _ | Client.Overloaded _ | Client.Dropped _
                    | Client.Remote _) ->
                Unix.sleepf 0.05;
                await (n - 1)
          in
          await 100;
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX sock);
          let send id req =
            let line = Protocol.request_to_line ~id req ^ "\n" in
            ignore (Unix.write_substring fd line 0 (String.length line))
          in
          (* id 1 pins the worker; id 2's 1 ms deadline will have expired
             by dispatch; ids 3-5 fill the remaining queue slots; id 6
             overflows *)
          send 1
            (Protocol.Job
               { cmd = "sweep"; args = "apex2 stacked=true"; deadline_ms = None });
          send 2
            (Protocol.Job { cmd = "sweep"; args = a; deadline_ms = Some 1 });
          for id = 3 to 6 do
            send id (Protocol.Job { cmd = "sweep"; args = a; deadline_ms = None })
          done;
          let ic = Unix.in_channel_of_descr fd in
          let finals = Hashtbl.create 8 in
          let overloads = ref 0 in
          let parse line =
            match Protocol.frame_of_line line with
            | Error msg -> Alcotest.failf "bad frame %S: %s" line msg
            | Ok (_, Protocol.Event _) -> ()
            | Ok (id, ((Protocol.Result _ | Protocol.Failed _) as frame)) ->
                Hashtbl.replace finals id frame
            | Ok (id, (Protocol.Overloaded _ as frame)) ->
                incr overloads;
                Hashtbl.replace finals id frame
          in
          (* the overload answer for id 6 is written synchronously by the
             accept loop: seeing it proves all six requests were admitted
             and the queue is genuinely full when the drain starts *)
          let rec until_shed () =
            if !overloads = 0 then begin
              parse (input_line ic);
              until_shed ()
            end
          in
          until_shed ();
          Server.request_shutdown server;
          (try
             while true do
               parse (input_line ic)
             done
           with End_of_file -> ());
          Unix.close fd;
          Shared.join d;
          for id = 1 to 6 do
            Alcotest.(check bool)
              (Printf.sprintf "job %d answered" id)
              true (Hashtbl.mem finals id)
          done;
          (match Hashtbl.find finals 2 with
           | Protocol.Result fields -> (
               (match List.assoc_opt "status" fields with
                | Some (Protocol.String s) ->
                    Alcotest.(check string) "expired before dispatch"
                      "budget-exhausted:deadline" s
                | Some _ | None -> Alcotest.fail "job 2: no status");
               match List.assoc_opt "shed" fields with
               | Some (Protocol.Bool true) -> ()
               | Some _ | None -> Alcotest.fail "job 2: not marked shed")
           | Protocol.Failed _ | Protocol.Event _ | Protocol.Overloaded _ ->
               Alcotest.fail "job 2 must be answered with a shed result");
          (* telemetry survived the drain *)
          (match Server.handle server Protocol.Stats with
           | Protocol.Result fields ->
               let counter k =
                 match List.assoc_opt k fields with
                 | Some (Protocol.Int n) -> n
                 | Some _ | None -> Alcotest.failf "stats: no %s" k
               in
               Alcotest.(check bool) "shed counted" true (counter "shed" >= 1);
               Alcotest.(check bool) "deadline expiry counted" true
                 (counter "deadline_expired" >= 1);
               Alcotest.(check int) "queue drained" 0 (counter "queue_depth")
           | Protocol.Failed _ | Protocol.Event _ | Protocol.Overloaded _ ->
               Alcotest.fail "stats must answer");
          (* the checkpoint left a snapshot+journal pair that reloads to
             exactly the live resident set *)
          let live = (Fun_cache.stats fc).Fun_cache.entries in
          let fc', _replayed, corrupt = recover ~snap ~jpath in
          Alcotest.(check int) "clean journal tail" 0 corrupt;
          Alcotest.(check int) "recovered entry parity" live
            (Fun_cache.stats fc').Fun_cache.entries))

let () =
  Alcotest.run "simgen-serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "json rejects" `Quick test_json_rejects;
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "request rejects" `Quick test_request_rejects;
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
        ] );
      ( "fun-cache",
        [
          Alcotest.test_case "local proof" `Quick test_local_proof;
          Alcotest.test_case "exact-cut cex" `Quick test_exact_cut_cex;
          Alcotest.test_case "certify never serves equal" `Quick
            test_certify_never_serves_equal;
          Alcotest.test_case "pattern replay" `Quick test_pattern_replay;
          Alcotest.test_case "invalid pattern not served" `Quick
            test_invalid_pattern_not_served;
          Alcotest.test_case "eviction under bound" `Quick
            test_eviction_under_bound;
          Alcotest.test_case "snapshot roundtrip" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "snapshot corruption dropped" `Quick
            test_snapshot_corruption_dropped;
          Alcotest.test_case "snapshot bad header" `Quick
            test_snapshot_bad_header;
          Alcotest.test_case "poison dropped, never served" `Quick
            test_poison_dropped_never_served;
          Alcotest.test_case "journal replay" `Quick test_journal_replay;
          Alcotest.test_case "journal torn tail truncated" `Quick
            test_journal_torn_tail;
          Alcotest.test_case "journal checkpoint" `Quick
            test_journal_checkpoint;
          Alcotest.test_case "atomic save under disk-full" `Quick
            test_atomic_save_disk_full;
        ] );
      ( "server",
        [
          Alcotest.test_case "ping and stats" `Quick test_handle_ping_stats;
          Alcotest.test_case "jobs and verdict parity" `Quick
            test_handle_jobs_and_parity;
          Alcotest.test_case "event streaming" `Quick
            test_handle_streams_events;
          Alcotest.test_case "certify forced" `Quick test_handle_certify_forced;
          Alcotest.test_case "request errors" `Quick test_handle_errors;
          Alcotest.test_case "lint" `Quick test_handle_lint;
          Alcotest.test_case "shutdown drains and snapshots" `Quick
            test_shutdown_drains;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "client timeout" `Quick test_client_timeout;
          Alcotest.test_case "client retries overload" `Quick
            test_client_overload_retry;
          Alcotest.test_case "drain under load" `Slow test_drain_under_load;
        ] );
    ]
