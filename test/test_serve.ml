(* The serving layer: the JSONL protocol codec, the cross-request NPN
   function cache (trust boundary: a hit can never change a verdict),
   and the daemon's request handler exercised in-process.

   The adversarial NPN-collision cases — equal canonical signatures over
   inequivalent functions — live in test_npn.ml next to the
   canonicalisation they attack. *)

module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Rng = Simgen_base.Rng
module Fault = Simgen_fault.Fault
module Fun_cache = Simgen_sweep.Fun_cache
module Protocol = Simgen_serve.Protocol
module Server = Simgen_serve.Server

let tt_and2 = TT.and_ (TT.var 0 2) (TT.var 1 2)
let tt_or2 = TT.or_ (TT.var 0 2) (TT.var 1 2)

let identity_subst net = Array.init (N.num_nodes net) Fun.id

(* Direct cone evaluation: the test-side oracle for counterexamples. *)
let eval net vec id =
  let memo = Hashtbl.create 16 in
  let rec ev id =
    match Hashtbl.find_opt memo id with
    | Some v -> v
    | None ->
        let v =
          match N.kind net id with
          | N.Pi k -> vec.(k)
          | N.Gate f -> TT.eval f (Array.map ev (N.fanins net id))
        in
        Hashtbl.replace memo id v;
        v
  in
  ev id

let with_faults f =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset f

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let json_roundtrip v =
  match Protocol.parse (Protocol.to_string v) with
  | Ok v' -> v'
  | Error msg -> Alcotest.failf "reparse failed: %s" msg

let test_json_roundtrip () =
  let v =
    Protocol.(
      Obj
        [
          ("a", Int 42);
          ("b", String "x \"quoted\"\nline\ttab");
          ("c", List [ Bool true; Bool false; Null ]);
          ("d", Obj [ ("nested", List [ Int (-7); Int 0 ]) ]);
          ("e", String "");
        ])
  in
  Alcotest.(check bool) "roundtrip" true (json_roundtrip v = v)

let test_json_rejects () =
  List.iter
    (fun s ->
      match Protocol.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "{\"a\":}"; "[1,2"; "{\"a\":1} trailing"; "nul"; "\"open" ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let line = Protocol.request_to_line ~id:9 req in
      match Protocol.request_of_line line with
      | Ok (9, req') ->
          Alcotest.(check bool) ("roundtrip " ^ line) true (req = req')
      | Ok (id, _) -> Alcotest.failf "wrong id %d" id
      | Error msg -> Alcotest.failf "%s: %s" line msg)
    Protocol.
      [
        Ping;
        Stats;
        Shutdown;
        Lint { target = "apex2" };
        Job { cmd = "sweep"; args = "apex2 stacked=true seed=3" };
        Job { cmd = "cec"; args = "a.blif b.blif deadline=2.0" };
        Job { cmd = "certify"; args = "square" };
      ]

let test_request_rejects () =
  List.iter
    (fun line ->
      match Protocol.request_of_line line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [
      "{\"v\":2,\"id\":1,\"cmd\":\"ping\"}";
      "{\"v\":1,\"id\":1,\"cmd\":\"nope\"}";
      "{\"v\":1,\"cmd\":\"ping\"}";
      "{\"v\":1,\"id\":1,\"cmd\":\"sweep\"}";
      "{\"v\":1,\"id\":1,\"cmd\":\"lint\"}";
      "not json";
    ]

let test_frame_roundtrip () =
  let check frame =
    let line = Protocol.frame_to_line ~id:3 frame in
    match Protocol.frame_of_line line with
    | Ok (3, frame') ->
        Alcotest.(check bool) ("roundtrip " ^ line) true (frame = frame')
    | Ok (id, _) -> Alcotest.failf "wrong id %d" id
    | Error msg -> Alcotest.failf "%s: %s" line msg
  in
  check (Protocol.Event (Protocol.Obj [ ("phase", Protocol.String "queued") ]));
  check
    (Protocol.Result
       [ ("status", Protocol.String "swept"); ("final_cost", Protocol.Int 7) ]);
  check (Protocol.Failed "boom \"quoted\"")

(* ------------------------------------------------------------------ *)
(* Function cache: serving rules                                       *)
(* ------------------------------------------------------------------ *)

(* x1 = and(a,b), x2 = and(b,a) (equal), y1 = or(a,b) (distinct). *)
let pair_net () =
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let x1 = N.add_gate net tt_and2 [| a; b |] in
  let x2 = N.add_gate net tt_and2 [| b; a |] in
  let y1 = N.add_gate net tt_or2 [| a; b |] in
  List.iter (N.add_po net) [ x1; x2; y1 ];
  (net, x1, x2, y1)

let test_local_proof () =
  let fc = Fun_cache.create () in
  let net, x1, x2, _ = pair_net () in
  let rng = Rng.create 1 in
  let subst = identity_subst net in
  (match Fun_cache.consult fc ~rng ~subst net x1 x2 with
   | Fun_cache.Equal -> ()
   | _ -> Alcotest.fail "equal cones must be served locally");
  let s = Fun_cache.stats fc in
  Alcotest.(check int) "hits" 1 s.Fun_cache.hits;
  Alcotest.(check int) "local proofs" 1 s.Fun_cache.local_proofs;
  Alcotest.(check int) "entries" 1 s.Fun_cache.entries

let test_exact_cut_cex () =
  let fc = Fun_cache.create () in
  let net, x1, _, y1 = pair_net () in
  let rng = Rng.create 1 in
  let subst = identity_subst net in
  (match Fun_cache.consult fc ~rng ~subst net x1 y1 with
   | Fun_cache.Counterexample vec ->
       Alcotest.(check int) "full PI vector" (N.num_pis net) (Array.length vec);
       Alcotest.(check bool) "distinguishes" true
         (eval net vec x1 <> eval net vec y1)
   | _ -> Alcotest.fail "exact-cut difference must yield a counterexample");
  let s = Fun_cache.stats fc in
  Alcotest.(check int) "local cexes" 1 s.Fun_cache.local_cexes

let test_certify_never_serves_equal () =
  let fc = Fun_cache.create () in
  let net, x1, x2, _ = pair_net () in
  let rng = Rng.create 1 in
  let subst = identity_subst net in
  let slot =
    match Fun_cache.consult fc ~serve_equal:false ~rng ~subst net x1 x2 with
    | Fun_cache.Miss slot -> slot
    | _ -> Alcotest.fail "under certification Equal must come back as Miss"
  in
  Fun_cache.record fc slot
    (Fun_cache.Proved { conflicts = 17; proof = Some [ [ 1; -2 ]; [ 2 ] ] });
  (* outside certification the same pair is again proven locally *)
  (match Fun_cache.consult fc ~rng ~subst net x1 x2 with
   | Fun_cache.Equal -> ()
   | _ -> Alcotest.fail "local proof must still serve");
  let s = Fun_cache.stats fc in
  Alcotest.(check int) "one miss, one hit" 1 s.Fun_cache.misses;
  Alcotest.(check int) "hit" 1 s.Fun_cache.hits

(* An inexact cut: with max_support=2 the frontier stays {a, b} (both
   gates), so nothing can be proven locally and only validated stored
   patterns may be served. *)
let inexact_net () =
  let net = N.create () in
  let p0 = N.add_pi net in
  let p1 = N.add_pi net in
  let p2 = N.add_pi net in
  let g = N.add_gate net tt_and2 [| p0; p1 |] in
  let a = N.add_gate net tt_and2 [| g; p2 |] in
  let b = N.add_gate net tt_or2 [| g; p2 |] in
  N.add_po net a;
  N.add_po net b;
  (net, a, b)

let test_pattern_replay () =
  let fc = Fun_cache.create ~max_support:2 () in
  let net, a, b = inexact_net () in
  let rng = Rng.create 1 in
  let subst = identity_subst net in
  let slot =
    match Fun_cache.consult fc ~rng ~subst net a b with
    | Fun_cache.Miss slot -> slot
    | _ -> Alcotest.fail "inexact cut with no patterns must miss"
  in
  (* p0=1 p1=1 p2=0: g=1, a=0, b=1 — a genuine SAT counterexample *)
  Fun_cache.record fc slot (Fun_cache.Refuted [| true; true; false |]);
  (match Fun_cache.consult fc ~rng ~subst net a b with
   | Fun_cache.Counterexample vec ->
       Alcotest.(check bool) "distinguishes" true
         (eval net vec a <> eval net vec b)
   | _ -> Alcotest.fail "recorded pattern must replay");
  let s = Fun_cache.stats fc in
  Alcotest.(check int) "pattern hit" 1 s.Fun_cache.pattern_hits

let test_invalid_pattern_not_served () =
  let fc = Fun_cache.create ~max_support:2 () in
  let net, a, b = inexact_net () in
  let rng = Rng.create 1 in
  let subst = identity_subst net in
  let slot =
    match Fun_cache.consult fc ~rng ~subst net a b with
    | Fun_cache.Miss slot -> slot
    | _ -> Alcotest.fail "expected a miss"
  in
  (* p0=p1=p2=0: a=0, b=0 — does NOT distinguish the pair. A colliding
     entry could hold exactly this; validation must refuse to serve it. *)
  Fun_cache.record fc slot (Fun_cache.Refuted [| false; false; false |]);
  (match Fun_cache.consult fc ~rng ~subst net a b with
   | Fun_cache.Miss _ -> ()
   | Fun_cache.Counterexample _ ->
       Alcotest.fail "a non-distinguishing stored vector was served"
   | _ -> Alcotest.fail "expected a miss");
  let s = Fun_cache.stats fc in
  Alcotest.(check int) "counted as collision" 1 s.Fun_cache.collisions

(* ------------------------------------------------------------------ *)
(* Function cache: eviction, snapshots, poison                         *)
(* ------------------------------------------------------------------ *)

(* Fill a cache with entries for random 4-input function pairs. Exact
   cuts make most consults insert a local-counterexample entry on their
   own; a Miss (equal canonical keys colliding, or equal functions under
   serve_equal:false) is filed as a SAT verdict. *)
let fill_random fc ~pairs seed =
  let rng = Rng.create seed in
  for _ = 1 to pairs do
    let net = N.create () in
    let pis = Array.init 4 (fun _ -> N.add_pi net) in
    let f = TT.random rng 4 and g = TT.random rng 4 in
    let a = N.add_gate net f pis in
    let b = N.add_gate net g pis in
    N.add_po net a;
    N.add_po net b;
    let subst = identity_subst net in
    match Fun_cache.consult fc ~rng ~subst net a b with
    | Fun_cache.Miss slot ->
        Fun_cache.record fc slot
          (Fun_cache.Proved { conflicts = 100; proof = Some [ [ 1; 2; -3 ] ] })
    | _ -> ()
  done

let test_eviction_under_bound () =
  (* create clamps max_bytes up to 4096: a few dozen entries fit *)
  let fc = Fun_cache.create ~max_bytes:1 () in
  fill_random fc ~pairs:400 5;
  let s = Fun_cache.stats fc in
  Alcotest.(check bool) "evictions happened" true (s.Fun_cache.evictions > 0);
  Alcotest.(check bool) "bound respected" true (s.Fun_cache.bytes <= 4096);
  Alcotest.(check bool) "entries resident" true (s.Fun_cache.entries > 0);
  Alcotest.(check int) "accounting" s.Fun_cache.entries
    (s.Fun_cache.inserts - s.Fun_cache.evictions)

let test_snapshot_roundtrip () =
  let fc = Fun_cache.create ~max_support:2 () in
  let net, a, b = inexact_net () in
  let rng = Rng.create 1 in
  let subst = identity_subst net in
  (match Fun_cache.consult fc ~rng ~subst net a b with
   | Fun_cache.Miss slot ->
       Fun_cache.record fc slot (Fun_cache.Refuted [| true; true; false |])
   | _ -> Alcotest.fail "expected a miss");
  fill_random fc ~pairs:10 7;
  let before = Fun_cache.stats fc in
  let path = Filename.temp_file "simgen-fc" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Fun_cache.save fc path with
       | Ok () -> ()
       | Error msg -> Alcotest.failf "save: %s" msg);
      let fc' = Fun_cache.create ~max_support:2 () in
      (match Fun_cache.load fc' path with
       | Ok n ->
           Alcotest.(check int) "all entries restored"
             before.Fun_cache.entries n
       | Error msg -> Alcotest.failf "load: %s" msg);
      let after = Fun_cache.stats fc' in
      Alcotest.(check int) "entries" before.Fun_cache.entries
        after.Fun_cache.entries;
      (* the restored pattern block still replays — and still validates *)
      match Fun_cache.consult fc' ~rng ~subst net a b with
      | Fun_cache.Counterexample vec ->
          Alcotest.(check bool) "distinguishes" true
            (eval net vec a <> eval net vec b)
      | _ -> Alcotest.fail "restored pattern must replay")

let test_snapshot_corruption_dropped () =
  let fc = Fun_cache.create () in
  fill_random fc ~pairs:8 11;
  Alcotest.(check bool) "filled some" true
    ((Fun_cache.stats fc).Fun_cache.entries >= 4);
  let path = Filename.temp_file "simgen-fc" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Fun_cache.save fc path with
       | Ok () -> ()
       | Error msg -> Alcotest.failf "save: %s" msg);
      (* flip one payload character of the second entry line *)
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      let corrupted =
        List.mapi
          (fun i line ->
            if i = 2 && String.length line > 3 then begin
              let b = Bytes.of_string line in
              Bytes.set b 2 (if Bytes.get b 2 = '1' then '0' else '1');
              Bytes.to_string b
            end
            else line)
          lines
      in
      let oc = open_out path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        corrupted;
      close_out oc;
      let fc' = Fun_cache.create () in
      let entries = (Fun_cache.stats fc).Fun_cache.entries in
      match Fun_cache.load fc' path with
      | Ok n ->
          Alcotest.(check int) "one entry lost" (entries - 1) n;
          Alcotest.(check int) "counted as dropped" 1
            (Fun_cache.stats fc').Fun_cache.dropped
      | Error msg -> Alcotest.failf "load: %s" msg)

let test_snapshot_bad_header () =
  let path = Filename.temp_file "simgen-fc" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a snapshot\n";
      close_out oc;
      let fc = Fun_cache.create () in
      match Fun_cache.load fc path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad header accepted")

let test_poison_dropped_never_served () =
  with_faults (fun () ->
      Fault.arm ~times:1 "serve-cache-poison";
      let fc = Fun_cache.create () in
      let net, x1, x2, _ = pair_net () in
      let rng = Rng.create 1 in
      let subst = identity_subst net in
      (* first consult inserts an entry; the armed fault corrupts it
         after its checksum was taken — the verdict is local and stays
         correct regardless *)
      (match Fun_cache.consult fc ~rng ~subst net x1 x2 with
       | Fun_cache.Equal -> ()
       | _ -> Alcotest.fail "poison must not change a verdict");
      (* next lookup detects the corruption and drops the entry *)
      (match Fun_cache.consult fc ~rng ~subst net x1 x2 with
       | Fun_cache.Equal -> ()
       | _ -> Alcotest.fail "poison must not change a verdict");
      let s = Fun_cache.stats fc in
      Alcotest.(check int) "poisoned entry dropped" 1 s.Fun_cache.dropped;
      Alcotest.(check int) "reinserted" 2 s.Fun_cache.inserts)

(* ------------------------------------------------------------------ *)
(* Server.handle: in-process daemon semantics                          *)
(* ------------------------------------------------------------------ *)

let write_blif path lines =
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

let with_two_circuits f =
  let a = Filename.temp_file "simgen-a" ".blif" in
  let b = Filename.temp_file "simgen-b" ".blif" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove a;
      Sys.remove b)
    (fun () ->
      write_blif a
        [ ".model a"; ".inputs x y"; ".outputs f"; ".names x y f"; "11 1";
          ".end" ];
      write_blif b
        [ ".model b"; ".inputs x y"; ".outputs f"; ".names x y f"; "1- 1";
          "-1 1"; ".end" ];
      f a b)

let result_status = function
  | Protocol.Result fields ->
      (match Protocol.string_member "status" (Protocol.Obj fields) with
       | Some s -> s
       | None -> Alcotest.fail "result without status")
  | Protocol.Failed msg -> Alcotest.failf "error frame: %s" msg
  | Protocol.Event _ -> Alcotest.fail "event is not a final frame"

let test_handle_ping_stats () =
  let server = Server.create ~workers:1 ~fun_cache:(Fun_cache.create ()) () in
  Alcotest.(check string) "ping" "ok"
    (result_status (Server.handle server Protocol.Ping));
  match Server.handle server Protocol.Stats with
  | Protocol.Result fields ->
      let has k = List.mem_assoc k fields in
      List.iter
        (fun k -> Alcotest.(check bool) ("stats has " ^ k) true (has k))
        [ "uptime"; "requests"; "jobs_ok"; "fun_cache" ]
  | _ -> Alcotest.fail "stats must answer with a result"

let test_handle_jobs_and_parity () =
  with_two_circuits (fun a b ->
      let cached = Server.create ~workers:1 ~fun_cache:(Fun_cache.create ()) () in
      let bare = Server.create ~workers:1 () in
      let spec c1 c2 = Printf.sprintf "%s %s seed=5" c1 c2 in
      let run server args =
        result_status
          (Server.handle server (Protocol.Job { cmd = "cec"; args }))
      in
      (* same circuit twice: equivalent, and the warm re-run agrees *)
      let eq = run cached (spec a a) in
      Alcotest.(check string) "equivalent" "equivalent" eq;
      Alcotest.(check string) "warm parity" eq (run cached (spec a a));
      Alcotest.(check string) "cache on/off parity" eq (run bare (spec a a));
      (* distinct circuits: not equivalent everywhere, cache or not *)
      let ne = run cached (spec a b) in
      Alcotest.(check string) "not equivalent" "not-equivalent@po0" ne;
      Alcotest.(check string) "warm parity" ne (run cached (spec a b));
      Alcotest.(check string) "cache on/off parity" ne (run bare (spec a b)))

let test_handle_streams_events () =
  with_two_circuits (fun a _ ->
      let server = Server.create ~workers:1 ~fun_cache:(Fun_cache.create ()) () in
      let phases = ref [] in
      let on_event j =
        match Protocol.string_member "phase" j with
        | Some p -> phases := p :: !phases
        | None -> ()
      in
      let frame =
        Server.handle server ~on_event
          (Protocol.Job { cmd = "sweep"; args = a })
      in
      Alcotest.(check string) "swept" "swept" (result_status frame);
      Alcotest.(check bool) "streamed events" true (!phases <> []);
      Alcotest.(check bool) "finished event present" true
        (List.mem "finished" !phases))

let test_handle_certify_forced () =
  with_two_circuits (fun a _ ->
      let server = Server.create ~workers:1 ~fun_cache:(Fun_cache.create ()) () in
      let phases = ref [] in
      let on_event j =
        match Protocol.string_member "phase" j with
        | Some p -> phases := p :: !phases
        | None -> ()
      in
      let frame =
        Server.handle server ~on_event
          (Protocol.Job { cmd = "certify"; args = a ^ " certify=false" })
      in
      Alcotest.(check string) "swept" "swept" (result_status frame);
      (* certify=true was forced despite the client's certify=false: the
         independent checker ran and emitted its telemetry *)
      Alcotest.(check bool) "certificate checked" true
        (List.mem "certificate" !phases))

let test_handle_errors () =
  let server = Server.create ~workers:1 () in
  (match Server.handle server (Protocol.Job { cmd = "cec"; args = "nope" }) with
   | Protocol.Failed _ -> ()
   | _ -> Alcotest.fail "bad manifest args must fail");
  match Server.handle server (Protocol.Lint { target = "no-such-bench" }) with
  | Protocol.Failed _ -> ()
  | _ -> Alcotest.fail "unknown lint target must fail"

let test_handle_lint () =
  with_two_circuits (fun a _ ->
      let server = Server.create ~workers:1 () in
      match Server.handle server (Protocol.Lint { target = a }) with
      | Protocol.Result fields ->
          Alcotest.(check bool) "has errors field" true
            (List.mem_assoc "errors" fields)
      | _ -> Alcotest.fail "lint must answer with a result")

let test_shutdown_drains () =
  let dir = Filename.temp_file "simgen-fc" ".snap" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then Sys.remove dir)
    (fun () ->
      let fc = Fun_cache.create () in
      fill_random fc ~pairs:5 3;
      let server = Server.create ~workers:1 ~fun_cache:fc ~cache_save:dir () in
      Alcotest.(check bool) "running" false (Server.shutting_down server);
      Alcotest.(check string) "shutdown ack" "shutting-down"
        (result_status (Server.handle server Protocol.Shutdown));
      Alcotest.(check bool) "draining" true (Server.shutting_down server);
      (* jobs are refused during the drain *)
      (match Server.handle server (Protocol.Job { cmd = "sweep"; args = "x" }) with
       | Protocol.Failed _ -> ()
       | _ -> Alcotest.fail "jobs must be refused while shutting down");
      (* the cache was snapshotted *)
      let fc' = Fun_cache.create () in
      match Fun_cache.load fc' dir with
      | Ok n ->
          Alcotest.(check int) "snapshot complete"
            (Fun_cache.stats fc).Fun_cache.entries n
      | Error msg -> Alcotest.failf "snapshot: %s" msg)

let () =
  Alcotest.run "simgen-serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "json rejects" `Quick test_json_rejects;
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "request rejects" `Quick test_request_rejects;
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
        ] );
      ( "fun-cache",
        [
          Alcotest.test_case "local proof" `Quick test_local_proof;
          Alcotest.test_case "exact-cut cex" `Quick test_exact_cut_cex;
          Alcotest.test_case "certify never serves equal" `Quick
            test_certify_never_serves_equal;
          Alcotest.test_case "pattern replay" `Quick test_pattern_replay;
          Alcotest.test_case "invalid pattern not served" `Quick
            test_invalid_pattern_not_served;
          Alcotest.test_case "eviction under bound" `Quick
            test_eviction_under_bound;
          Alcotest.test_case "snapshot roundtrip" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "snapshot corruption dropped" `Quick
            test_snapshot_corruption_dropped;
          Alcotest.test_case "snapshot bad header" `Quick
            test_snapshot_bad_header;
          Alcotest.test_case "poison dropped, never served" `Quick
            test_poison_dropped_never_served;
        ] );
      ( "server",
        [
          Alcotest.test_case "ping and stats" `Quick test_handle_ping_stats;
          Alcotest.test_case "jobs and verdict parity" `Quick
            test_handle_jobs_and_parity;
          Alcotest.test_case "event streaming" `Quick
            test_handle_streams_events;
          Alcotest.test_case "certify forced" `Quick test_handle_certify_forced;
          Alcotest.test_case "request errors" `Quick test_handle_errors;
          Alcotest.test_case "lint" `Quick test_handle_lint;
          Alcotest.test_case "shutdown drains and snapshots" `Quick
            test_shutdown_drains;
        ] );
    ]
