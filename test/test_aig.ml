module Aig = Simgen_aig.Aig
module Aiger = Simgen_aig.Aiger
module Convert = Simgen_aig.Convert
module Rewrite = Simgen_aig.Rewrite
module N = Simgen_network.Network
module Rng = Simgen_base.Rng

let random_aig rng npis nands npos =
  let aig = Aig.create () in
  let lits = ref [] in
  for _ = 1 to npis do
    lits := Aig.add_pi aig :: !lits
  done;
  let arr = ref (Array.of_list !lits) in
  for _ = 1 to nands do
    let pick () =
      let l = Rng.choose rng !arr in
      if Rng.bool rng then Aig.not_ l else l
    in
    let l = Aig.and_ aig (pick ()) (pick ()) in
    arr := Array.append !arr [| l |]
  done;
  for _ = 1 to npos do
    let l = Rng.choose rng !arr in
    Aig.add_po aig (if Rng.bool rng then Aig.not_ l else l)
  done;
  aig

let check_equiv_sampled rng npis a eval_a b eval_b tag =
  let trials = if npis <= 10 then 1 lsl npis else 256 in
  for t = 0 to trials - 1 do
    let vec =
      Array.init npis (fun i ->
          if npis <= 10 then (t lsr i) land 1 = 1 else Rng.bool rng)
    in
    Alcotest.(check (array bool)) tag (eval_a a vec) (eval_b b vec)
  done

(* ------------------------------------------------------------------ *)
(* Literals                                                            *)
(* ------------------------------------------------------------------ *)

let test_literal_encoding () =
  Alcotest.(check int) "false" 0 Aig.false_;
  Alcotest.(check int) "true" 1 Aig.true_;
  Alcotest.(check int) "not false" Aig.true_ (Aig.not_ Aig.false_);
  let l = Aig.lit_of_node 5 true in
  Alcotest.(check int) "node" 5 (Aig.node_of_lit l);
  Alcotest.(check bool) "complement" true (Aig.is_complemented l);
  Alcotest.(check bool) "double negation" true (Aig.not_ (Aig.not_ l) = l)

(* ------------------------------------------------------------------ *)
(* Strashing                                                           *)
(* ------------------------------------------------------------------ *)

let test_strash_folding () =
  let g = Aig.create () in
  let a = Aig.add_pi g and b = Aig.add_pi g in
  Alcotest.(check int) "x & 0 = 0" Aig.false_ (Aig.and_ g a Aig.false_);
  Alcotest.(check int) "x & 1 = x" a (Aig.and_ g a Aig.true_);
  Alcotest.(check int) "x & x = x" a (Aig.and_ g a a);
  Alcotest.(check int) "x & ~x = 0" Aig.false_ (Aig.and_ g a (Aig.not_ a));
  let ab = Aig.and_ g a b in
  Alcotest.(check int) "commutative sharing" ab (Aig.and_ g b a);
  Alcotest.(check int) "only one and" 1 (Aig.num_ands g)

let test_derived_gates () =
  let g = Aig.create () in
  let a = Aig.add_pi g and b = Aig.add_pi g and s = Aig.add_pi g in
  let or_ = Aig.or_ g a b in
  let xor = Aig.xor g a b in
  let mux = Aig.mux g s a b in
  let eval av bv sv l =
    let vals = Aig.eval g [| av; bv; sv |] in
    Aig.eval_lit vals l
  in
  Alcotest.(check bool) "or 10" true (eval true false false or_);
  Alcotest.(check bool) "or 00" false (eval false false false or_);
  Alcotest.(check bool) "xor 11" false (eval true true false xor);
  Alcotest.(check bool) "xor 10" true (eval true false false xor);
  Alcotest.(check bool) "mux sel" true (eval true false true mux);
  Alcotest.(check bool) "mux !sel" false (eval true false false mux)

let test_list_gates () =
  let g = Aig.create () in
  let xs = Array.init 5 (fun _ -> Aig.add_pi g) in
  let all = Aig.and_list g (Array.to_list xs) in
  let any = Aig.or_list g (Array.to_list xs) in
  let parity = Aig.xor_list g (Array.to_list xs) in
  for m = 0 to 31 do
    let vec = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
    let vals = Aig.eval g vec in
    Alcotest.(check bool) "and_list" (Array.for_all Fun.id vec)
      (Aig.eval_lit vals all);
    Alcotest.(check bool) "or_list" (Array.exists Fun.id vec)
      (Aig.eval_lit vals any);
    let p = Array.fold_left (fun acc b -> if b then not acc else acc) false vec in
    Alcotest.(check bool) "xor_list" p (Aig.eval_lit vals parity)
  done;
  Alcotest.(check int) "empty and" Aig.true_ (Aig.and_list g []);
  Alcotest.(check int) "empty or" Aig.false_ (Aig.or_list g [])

let test_levels_and_fanouts () =
  let g = Aig.create () in
  let a = Aig.add_pi g and b = Aig.add_pi g in
  let ab = Aig.and_ g a b in
  let top = Aig.and_ g ab (Aig.not_ a) in
  Aig.add_po g top;
  let levels = Aig.level g in
  Alcotest.(check int) "and level" 1 levels.(Aig.node_of_lit ab);
  Alcotest.(check int) "top level" 2 levels.(Aig.node_of_lit top);
  let counts = Aig.fanout_counts g in
  Alcotest.(check int) "a used twice" 2 counts.(Aig.node_of_lit a);
  Alcotest.(check int) "top used once (po)" 1 counts.(Aig.node_of_lit top)

(* ------------------------------------------------------------------ *)
(* Cleanup                                                             *)
(* ------------------------------------------------------------------ *)

let test_cleanup_removes_dead () =
  let g = Aig.create () in
  let a = Aig.add_pi g and b = Aig.add_pi g in
  let keep = Aig.and_ g a b in
  let _dead = Aig.and_ g (Aig.not_ a) b in
  Aig.add_po g keep;
  let g' = Aig.cleanup g in
  Alcotest.(check int) "one and left" 1 (Aig.num_ands g');
  Alcotest.(check int) "pis preserved" 2 (Aig.num_pis g')

let test_cleanup_preserves_function () =
  let rng = Rng.create 31 in
  for _ = 1 to 20 do
    let aig = random_aig rng 6 40 4 in
    let clean = Aig.cleanup aig in
    check_equiv_sampled rng 6 aig Aig.eval_pos clean Aig.eval_pos "cleanup"
  done

(* ------------------------------------------------------------------ *)
(* AIGER round trip                                                    *)
(* ------------------------------------------------------------------ *)

let test_aiger_roundtrip () =
  let rng = Rng.create 37 in
  for _ = 1 to 20 do
    let aig = random_aig rng 5 30 3 in
    let aig' = Aiger.parse_string (Aiger.to_string aig) in
    Alcotest.(check int) "pis" (Aig.num_pis aig) (Aig.num_pis aig');
    Alcotest.(check int) "pos" (Aig.num_pos aig) (Aig.num_pos aig');
    check_equiv_sampled rng 5 aig Aig.eval_pos aig' Aig.eval_pos "aiger"
  done

let test_aiger_handwritten () =
  (* f = a AND ~b *)
  let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 5\n" in
  let aig = Aiger.parse_string text in
  Alcotest.(check (array bool)) "10" [| true |] (Aig.eval_pos aig [| true; false |]);
  Alcotest.(check (array bool)) "11" [| false |] (Aig.eval_pos aig [| true; true |])

let test_aiger_constant_output () =
  let text = "aag 1 1 0 2 0\n2\n0\n1\n" in
  let aig = Aiger.parse_string text in
  Alcotest.(check (array bool)) "const outputs" [| false; true |]
    (Aig.eval_pos aig [| true |])

let test_aiger_errors () =
  let bad s =
    match Aiger.parse_string s with
    | exception Aiger.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "garbage" true (bad "not an aig");
  Alcotest.(check bool) "latches" true (bad "aag 1 0 1 0 0\n2 3\n");
  Alcotest.(check bool) "truncated" true (bad "aag 3 2 0 1 1\n2\n4\n")

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let test_network_of_aig () =
  let rng = Rng.create 41 in
  for _ = 1 to 20 do
    let aig = random_aig rng 6 40 4 in
    let net = Convert.network_of_aig aig in
    check_equiv_sampled rng 6 aig Aig.eval_pos net
      (fun n v -> N.eval_pos n v)
      "network_of_aig"
  done

let test_aig_of_network () =
  let rng = Rng.create 43 in
  for _ = 1 to 20 do
    let aig = random_aig rng 6 40 4 in
    let net = Convert.network_of_aig aig in
    let aig' = Convert.aig_of_network net in
    check_equiv_sampled rng 6 net
      (fun n v -> N.eval_pos n v)
      aig' Aig.eval_pos "aig_of_network"
  done

(* ------------------------------------------------------------------ *)
(* Rewriting                                                           *)
(* ------------------------------------------------------------------ *)

let test_shuffle_rebuild_equivalent () =
  let rng = Rng.create 47 in
  for _ = 1 to 20 do
    let aig = random_aig rng 6 50 4 in
    let shuffled = Rewrite.shuffle_rebuild rng aig in
    check_equiv_sampled rng 6 aig Aig.eval_pos shuffled Aig.eval_pos "shuffle"
  done

let test_balance_equivalent_and_shallow () =
  let g = Aig.create () in
  let xs = Array.init 8 (fun _ -> Aig.add_pi g) in
  (* Deliberately left-leaning chain of depth 7. *)
  let chain =
    Array.fold_left (fun acc x -> Aig.and_ g acc x) xs.(0)
      (Array.sub xs 1 7)
  in
  Aig.add_po g chain;
  let balanced = Rewrite.balance g in
  let rng = Rng.create 53 in
  check_equiv_sampled rng 8 g Aig.eval_pos balanced Aig.eval_pos "balance";
  let depth aig =
    let levels = Aig.level aig in
    Array.fold_left
      (fun acc l -> max acc levels.(Aig.node_of_lit l))
      0 (Aig.pos aig)
  in
  Alcotest.(check int) "chain depth" 7 (depth g);
  Alcotest.(check bool) "balanced is shallower" true (depth balanced <= 4)

let () =
  Alcotest.run "aig"
    [
      ( "literals",
        [ Alcotest.test_case "encoding" `Quick test_literal_encoding ] );
      ( "strash",
        [
          Alcotest.test_case "folding" `Quick test_strash_folding;
          Alcotest.test_case "derived gates" `Quick test_derived_gates;
          Alcotest.test_case "list gates" `Quick test_list_gates;
          Alcotest.test_case "levels/fanouts" `Quick test_levels_and_fanouts;
        ] );
      ( "cleanup",
        [
          Alcotest.test_case "removes dead" `Quick test_cleanup_removes_dead;
          Alcotest.test_case "preserves function" `Quick
            test_cleanup_preserves_function;
        ] );
      ( "aiger",
        [
          Alcotest.test_case "roundtrip" `Quick test_aiger_roundtrip;
          Alcotest.test_case "handwritten" `Quick test_aiger_handwritten;
          Alcotest.test_case "constants" `Quick test_aiger_constant_output;
          Alcotest.test_case "errors" `Quick test_aiger_errors;
        ] );
      ( "convert",
        [
          Alcotest.test_case "network_of_aig" `Quick test_network_of_aig;
          Alcotest.test_case "aig_of_network" `Quick test_aig_of_network;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "shuffle equivalent" `Quick
            test_shuffle_rebuild_equivalent;
          Alcotest.test_case "balance" `Quick test_balance_equivalent_and_shallow;
        ] );
    ]
