module TT = Simgen_network.Truth_table
module Cube = Simgen_network.Cube
module Isop = Simgen_network.Isop
module Rng = Simgen_base.Rng

let gen_table =
  QCheck2.Gen.(
    bind (int_range 0 8) (fun n ->
        map
          (fun seed -> TT.random (Rng.create seed) n)
          (int_range 0 1_000_000)))

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:300 gen f)

(* ------------------------------------------------------------------ *)
(* Cube                                                                *)
(* ------------------------------------------------------------------ *)

let test_cube_dc_size () =
  let c = Cube.make [| Cube.T; Cube.DC; Cube.F; Cube.DC |] true in
  Alcotest.(check int) "dc_size" 2 (Cube.dc_size c);
  Alcotest.(check int) "assigned" 2 (Cube.num_assigned c);
  Alcotest.(check int) "ninputs" 4 (Cube.ninputs c)

let test_cube_matches () =
  let c = Cube.make [| Cube.T; Cube.DC; Cube.F |] true in
  (* minterm bits: x0=1, x2=0 required. *)
  Alcotest.(check bool) "m=1 (001)" true (Cube.matches_minterm c 0b001);
  Alcotest.(check bool) "m=3 (011)" true (Cube.matches_minterm c 0b011);
  Alcotest.(check bool) "m=0" false (Cube.matches_minterm c 0b000);
  Alcotest.(check bool) "m=5 (101)" false (Cube.matches_minterm c 0b101)

let test_cube_eval_lits () =
  let c = Cube.make [| Cube.F; Cube.T |] false in
  Alcotest.(check bool) "01" true (Cube.eval_lits [| false; true |] c);
  Alcotest.(check bool) "11" false (Cube.eval_lits [| true; true |] c)

let test_cube_to_truth_table () =
  let c = Cube.make [| Cube.T; Cube.DC |] true in
  let t = Cube.to_truth_table 2 c in
  Alcotest.(check int) "two minterms" 2 (TT.count_ones t);
  Alcotest.(check bool) "m1" true (TT.get_bit t 1);
  Alcotest.(check bool) "m3" true (TT.get_bit t 3)

let test_cube_to_string () =
  let c = Cube.make [| Cube.T; Cube.F; Cube.DC |] true in
  Alcotest.(check string) "render" "10- -> 1" (Cube.to_string c)

(* ------------------------------------------------------------------ *)
(* ISOP cover properties                                               *)
(* ------------------------------------------------------------------ *)

let prop_cover_exact =
  prop "cover reconstructs the function" gen_table (fun f ->
      TT.equal f (Isop.cover_to_truth_table (TT.nvars f) (Isop.cover f)))

let prop_cover_cubes_are_implicants =
  prop "every cube is an implicant" gen_table (fun f ->
      List.for_all
        (fun c ->
          let ct = Cube.to_truth_table (TT.nvars f) c in
          (* ct AND ~f must be empty *)
          TT.is_const (TT.and_ ct (TT.not_ f)) = Some false)
        (Isop.cover f))

let prop_rows_partition =
  prop "rows decide every minterm correctly" gen_table (fun f ->
      let n = TT.nvars f in
      let rows = Isop.rows f in
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        let v = TT.get_bit f m in
        let matching = List.filter (fun c -> Cube.matches_minterm c m) rows in
        if matching = [] then ok := false;
        List.iter
          (fun (c : Cube.t) -> if c.Cube.out <> v then ok := false)
          matching
      done;
      !ok)

let prop_cover_irredundant =
  prop "removing any cube loses coverage" gen_table (fun f ->
      let n = TT.nvars f in
      let cover = Isop.cover f in
      List.for_all
        (fun removed ->
          let rest = List.filter (fun c -> c != removed) cover in
          not (TT.equal f (Isop.cover_to_truth_table n rest)))
        cover)

let test_cover_const () =
  Alcotest.(check int) "const0 no cubes" 0
    (List.length (Isop.cover (TT.create_const 3 false)));
  (match Isop.cover (TT.create_const 3 true) with
   | [ c ] -> Alcotest.(check int) "const1 full DC" 3 (Cube.dc_size c)
   | _ -> Alcotest.fail "expected single cube");
  (* Zero-variable constants. *)
  Alcotest.(check int) "0-var const1" 1
    (List.length (Isop.cover (TT.create_const 0 true)))

let test_cover_and_gate () =
  let f = TT.and_ (TT.var 0 2) (TT.var 1 2) in
  match Isop.cover f with
  | [ c ] ->
      Alcotest.(check string) "single product" "11 -> 1" (Cube.to_string c)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 cube, got %d" (List.length l))

let test_rows_nand_gate () =
  (* NAND on-set has two DC-bearing cubes; off-set exactly one. *)
  let f = TT.not_ (TT.and_ (TT.var 0 2) (TT.var 1 2)) in
  let rows = Isop.rows f in
  let on = List.filter (fun (c : Cube.t) -> c.Cube.out) rows in
  let off = List.filter (fun (c : Cube.t) -> not c.Cube.out) rows in
  Alcotest.(check int) "two on cubes" 2 (List.length on);
  Alcotest.(check int) "one off cube" 1 (List.length off);
  List.iter
    (fun c -> Alcotest.(check int) "on cubes have one DC" 1 (Cube.dc_size c))
    on

let test_cover_xor_no_dc () =
  (* XOR has no don't-cares in any cover. *)
  let f = TT.xor (TT.var 0 2) (TT.var 1 2) in
  List.iter
    (fun c -> Alcotest.(check int) "no DC" 0 (Cube.dc_size c))
    (Isop.rows f)

let test_paper_figure3_table () =
  (* Figure 3's f1: rows 1-1->1, 00-->0 style table. We encode the truth
     table of the paper's example: inputs (B, C, E) with
     f1 = 1 on rows matching "1-1" and "11-"; check advanced-implication
     prerequisites: with B=1 set, both matching rows produce out 1. *)
  let b = TT.var 0 3 and c = TT.var 1 3 and e = TT.var 2 3 in
  let f1 = TT.or_ (TT.and_ b e) (TT.and_ b c) in
  let rows = Isop.rows f1 in
  let matching =
    List.filter
      (fun (cb : Cube.t) -> cb.Cube.lits.(0) <> Cube.F)
      rows
    |> List.filter (fun (cb : Cube.t) ->
           (* compatible with B=1 only *)
           Cube.matches_minterm cb 0b001 || Cube.matches_minterm cb 0b011
           || Cube.matches_minterm cb 0b101 || Cube.matches_minterm cb 0b111)
  in
  Alcotest.(check bool) "matching rows exist" true (matching <> [])

let () =
  Alcotest.run "isop"
    [
      ( "cube",
        [
          Alcotest.test_case "dc_size" `Quick test_cube_dc_size;
          Alcotest.test_case "matches" `Quick test_cube_matches;
          Alcotest.test_case "eval_lits" `Quick test_cube_eval_lits;
          Alcotest.test_case "to_truth_table" `Quick test_cube_to_truth_table;
          Alcotest.test_case "to_string" `Quick test_cube_to_string;
        ] );
      ( "cover",
        [
          prop_cover_exact;
          prop_cover_cubes_are_implicants;
          prop_rows_partition;
          prop_cover_irredundant;
          Alcotest.test_case "constants" `Quick test_cover_const;
          Alcotest.test_case "and gate" `Quick test_cover_and_gate;
          Alcotest.test_case "nand rows" `Quick test_rows_nand_gate;
          Alcotest.test_case "xor has no DCs" `Quick test_cover_xor_no_dc;
          Alcotest.test_case "figure 3 table" `Quick test_paper_figure3_table;
        ] );
    ]
