module TT = Simgen_network.Truth_table
module Rng = Simgen_base.Rng

let tt_testable = Alcotest.testable TT.pp TT.equal

let rng = Rng.create 2024

(* qcheck generator over (nvars, table). *)
let gen_table =
  QCheck2.Gen.(
    bind (int_range 0 8) (fun n ->
        map
          (fun seed -> TT.random (Rng.create seed) n)
          (int_range 0 1_000_000)))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:300 gen f)

(* ------------------------------------------------------------------ *)
(* Construction and evaluation                                         *)
(* ------------------------------------------------------------------ *)

let test_const () =
  let f = TT.create_const 3 false and t = TT.create_const 3 true in
  for m = 0 to 7 do
    Alcotest.(check bool) "const0" false (TT.get_bit f m);
    Alcotest.(check bool) "const1" true (TT.get_bit t m)
  done;
  Alcotest.(check (option bool)) "is_const false" (Some false) (TT.is_const f);
  Alcotest.(check (option bool)) "is_const true" (Some true) (TT.is_const t)

let test_var_semantics () =
  for n = 1 to 8 do
    for i = 0 to n - 1 do
      let v = TT.var i n in
      for m = 0 to (1 lsl n) - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "var %d of %d at %d" i n m)
          ((m lsr i) land 1 = 1)
          (TT.get_bit v m)
      done
    done
  done

let test_of_bits_matches_get_bit () =
  let f = TT.of_bits 3 0b10110100L in
  let expected = [ false; false; true; false; true; true; false; true ] in
  List.iteri
    (fun m e -> Alcotest.(check bool) "bit" e (TT.get_bit f m))
    expected

let test_eval_vs_get_bit () =
  for _ = 1 to 50 do
    let n = 1 + Rng.int rng 8 in
    let f = TT.random rng n in
    let m = Rng.int rng (1 lsl n) in
    let inputs = Array.init n (fun i -> (m lsr i) land 1 = 1) in
    Alcotest.(check bool) "eval" (TT.get_bit f m) (TT.eval f inputs)
  done

let test_bad_args () =
  Alcotest.check_raises "nvars too big"
    (Invalid_argument "Truth_table: nvars out of range") (fun () ->
      ignore (TT.create_const 17 false));
  Alcotest.check_raises "var out of range"
    (Invalid_argument "Truth_table.var") (fun () -> ignore (TT.var 3 3))

(* ------------------------------------------------------------------ *)
(* Algebra (property-based)                                            *)
(* ------------------------------------------------------------------ *)

let prop_double_negation =
  prop "double negation" gen_table (fun f -> TT.equal f (TT.not_ (TT.not_ f)))

let prop_de_morgan =
  prop "de morgan" gen_table (fun f ->
      let g = TT.random (Rng.create (TT.hash f land 0xFFFF)) (TT.nvars f) in
      TT.equal
        (TT.not_ (TT.and_ f g))
        (TT.or_ (TT.not_ f) (TT.not_ g)))

let prop_xor_self =
  prop "xor self is const0" gen_table (fun f ->
      TT.is_const (TT.xor f f) = Some false)

let prop_and_idempotent =
  prop "and idempotent" gen_table (fun f -> TT.equal f (TT.and_ f f))

let prop_shannon =
  prop "shannon expansion" gen_table (fun f ->
      let n = TT.nvars f in
      n = 0
      ||
      let i = TT.hash f land 0x3FFF mod n in
      let x = TT.var i n in
      TT.equal f
        (TT.or_
           (TT.and_ x (TT.cofactor f i true))
           (TT.and_ (TT.not_ x) (TT.cofactor f i false))))

let prop_cofactor_independent =
  prop "cofactor removes dependence" gen_table (fun f ->
      let n = TT.nvars f in
      n = 0 || not (TT.depends_on (TT.cofactor f 0 true) 0))

let prop_count_ones_negation =
  prop "count_ones of negation" gen_table (fun f ->
      TT.count_ones f + TT.count_ones (TT.not_ f) = 1 lsl TT.nvars f)

let prop_string_roundtrip =
  prop "to_string/of_string roundtrip" gen_table (fun f ->
      TT.equal f (TT.of_string (TT.to_string f)))

let prop_permute_identity =
  prop "identity permutation" gen_table (fun f ->
      TT.equal f (TT.permute f (Array.init (TT.nvars f) Fun.id)))

let prop_swap_involution =
  prop "swap_adjacent involution" gen_table (fun f ->
      TT.nvars f < 2 || TT.equal f (TT.swap_adjacent (TT.swap_adjacent f 0) 0))

let prop_expand_preserves =
  prop "expand preserves function" gen_table (fun f ->
      let n = TT.nvars f in
      if n >= 8 then true
      else
        let g = TT.expand f (n + 2) in
        let ok = ref true in
        for m = 0 to (1 lsl (n + 2)) - 1 do
          if TT.get_bit g m <> TT.get_bit f (m land ((1 lsl n) - 1)) then
            ok := false
        done;
        !ok)

(* ------------------------------------------------------------------ *)
(* Support & structure                                                 *)
(* ------------------------------------------------------------------ *)

let test_support () =
  (* f = x0 AND x2 over 4 vars: support = [0; 2]. *)
  let f = TT.and_ (TT.var 0 4) (TT.var 2 4) in
  Alcotest.(check (list int)) "support" [ 0; 2 ] (TT.support f)

let test_permute_swap () =
  (* Swapping x0 and x1 in (x0 AND ~x1) gives (x1 AND ~x0). *)
  let f = TT.and_ (TT.var 0 2) (TT.not_ (TT.var 1 2)) in
  let g = TT.permute f [| 1; 0 |] in
  let expected = TT.and_ (TT.var 1 2) (TT.not_ (TT.var 0 2)) in
  Alcotest.check tt_testable "permuted" expected g

let test_of_minterms () =
  let f = TT.of_minterms 3 [ 0; 5; 7 ] in
  Alcotest.(check int) "three ones" 3 (TT.count_ones f);
  Alcotest.(check bool) "bit 5" true (TT.get_bit f 5);
  Alcotest.(check bool) "bit 3" false (TT.get_bit f 3)

let test_large_tables () =
  (* 10-variable tables exercise the multi-word representation. *)
  let f = TT.var 9 10 in
  Alcotest.(check bool) "high var low minterm" false (TT.get_bit f 0);
  Alcotest.(check bool) "high var set" true (TT.get_bit f (1 lsl 9));
  let g = TT.and_ f (TT.var 0 10) in
  Alcotest.(check int) "count" (1 lsl 8) (TT.count_ones g);
  Alcotest.(check (list int)) "support" [ 0; 9 ] (TT.support g);
  (* Cofactor on a word-boundary variable. *)
  let h = TT.cofactor f 9 true in
  Alcotest.(check (option bool)) "cofactor const" (Some true) (TT.is_const h)

let test_hash_consistency () =
  for _ = 1 to 100 do
    let n = Rng.int rng 9 in
    let f = TT.random rng n in
    let g = TT.of_string (TT.to_string f) in
    Alcotest.(check int) "equal tables hash equally" (TT.hash f) (TT.hash g)
  done

let () =
  Alcotest.run "truth_table"
    [
      ( "construction",
        [
          Alcotest.test_case "const" `Quick test_const;
          Alcotest.test_case "var semantics" `Quick test_var_semantics;
          Alcotest.test_case "of_bits" `Quick test_of_bits_matches_get_bit;
          Alcotest.test_case "eval" `Quick test_eval_vs_get_bit;
          Alcotest.test_case "bad args" `Quick test_bad_args;
          Alcotest.test_case "of_minterms" `Quick test_of_minterms;
        ] );
      ( "algebra",
        [
          prop_double_negation;
          prop_de_morgan;
          prop_xor_self;
          prop_and_idempotent;
          prop_shannon;
          prop_cofactor_independent;
          prop_count_ones_negation;
          prop_string_roundtrip;
          prop_permute_identity;
          prop_swap_involution;
          prop_expand_preserves;
        ] );
      ( "structure",
        [
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "permute swap" `Quick test_permute_swap;
          Alcotest.test_case "multi-word tables" `Quick test_large_tables;
          Alcotest.test_case "hash consistency" `Quick test_hash_consistency;
        ] );
    ]
