module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Sim = Simgen_sim.Simulator
module Eq = Simgen_sim.Eq_classes
module Rng = Simgen_base.Rng

let random_net rng npis ngates =
  let net = N.create () in
  let ids = ref [] in
  for _ = 1 to npis do
    ids := N.add_pi net :: !ids
  done;
  for _ = 1 to ngates do
    let pool = Array.of_list !ids in
    let arity = 1 + Rng.int rng (min 5 (Array.length pool)) in
    let fanins = Array.init arity (fun _ -> Rng.choose rng pool) in
    ids := N.add_gate net (TT.random rng arity) fanins :: !ids
  done;
  let pool = Array.of_list !ids in
  for _ = 1 to 3 do
    N.add_po net (Rng.choose rng pool)
  done;
  net

(* ------------------------------------------------------------------ *)
(* Simulator                                                           *)
(* ------------------------------------------------------------------ *)

let test_word_vs_scalar () =
  (* Word simulation bit k must equal scalar simulation of vector k. *)
  let rng = Rng.create 101 in
  for _ = 1 to 15 do
    let npis = 3 + Rng.int rng 5 in
    let net = random_net rng npis 25 in
    let words = Sim.random_word rng net in
    let node_words = Sim.simulate_word net words in
    for k = 0 to 7 do
      let vec =
        Array.init npis (fun i ->
            Int64.logand (Int64.shift_right_logical words.(i) k) 1L = 1L)
      in
      let scalar = N.eval net vec in
      let from_word = Sim.node_values_bit node_words k in
      N.iter_nodes net (fun id ->
          Alcotest.(check bool) "bit matches scalar" scalar.(id) from_word.(id))
    done
  done

let test_word_of_vector_broadcast () =
  let rng = Rng.create 103 in
  let net = random_net rng 4 10 in
  let vec = [| true; false; true; true |] in
  let words = Sim.word_of_vector net vec in
  let node_words = Sim.simulate_word net words in
  let scalar = N.eval net vec in
  (* every bit position holds the same vector *)
  List.iter
    (fun k ->
      let v = Sim.node_values_bit node_words k in
      N.iter_nodes net (fun id ->
          Alcotest.(check bool) "broadcast" scalar.(id) v.(id)))
    [ 0; 17; 63 ]

let test_vector_word_update () =
  let words = [| 0L; -1L; 0L |] in
  Sim.vector_word [| true; false; true |] 5 words;
  Alcotest.(check int64) "set bit" 32L words.(0);
  Alcotest.(check int64) "cleared bit" (Int64.lognot 32L) words.(1);
  Alcotest.(check int64) "set bit third" 32L words.(2)

let test_random_word_determinism () =
  let rng1 = Rng.create 5 and rng2 = Rng.create 5 in
  let net = random_net (Rng.create 9) 4 5 in
  Alcotest.(check bool) "same seed same batch" true
    (Sim.random_word rng1 net = Sim.random_word rng2 net)

(* ------------------------------------------------------------------ *)
(* Equivalence classes                                                 *)
(* ------------------------------------------------------------------ *)

(* Network with two pairs of provably equal gates and one distinct gate:
   x1 = a&b, x2 = b&a (same function, different node), y = a|b, n = a^b *)
let redundant_net () =
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let and2 = TT.and_ (TT.var 0 2) (TT.var 1 2) in
  let or2 = TT.or_ (TT.var 0 2) (TT.var 1 2) in
  let xor2 = TT.xor (TT.var 0 2) (TT.var 1 2) in
  let x1 = N.add_gate net and2 [| a; b |] in
  let x2 = N.add_gate net and2 [| b; a |] in
  let y1 = N.add_gate net or2 [| a; b |] in
  let y2 = N.add_gate net or2 [| b; a |] in
  let n = N.add_gate net xor2 [| a; b |] in
  List.iter (N.add_po net) [ x1; x2; y1; y2; n ];
  (net, x1, x2, y1, y2, n)

let exhaustive_refine net eq =
  for m = 0 to (1 lsl N.num_pis net) - 1 do
    let vec = Array.init (N.num_pis net) (fun i -> (m lsr i) land 1 = 1) in
    Eq.refine_vector eq (N.eval net vec)
  done

let test_initial_class () =
  let net, _, _, _, _, _ = redundant_net () in
  let eq = Eq.create net in
  Alcotest.(check int) "one class" 1 (Eq.num_classes eq);
  Alcotest.(check int) "cost = gates - 1" 4 (Eq.cost eq)

let test_exhaustive_refinement () =
  let net, x1, x2, y1, y2, _ = redundant_net () in
  let eq = Eq.create net in
  exhaustive_refine net eq;
  (* Only the two true-equivalence pairs remain. *)
  Alcotest.(check int) "two classes" 2 (Eq.num_classes eq);
  Alcotest.(check int) "cost" 2 (Eq.cost eq);
  Alcotest.(check (list int)) "and pair" [ x1; x2 ] (Eq.class_of eq x1);
  Alcotest.(check (list int)) "or pair" [ y1; y2 ] (Eq.class_of eq y1)

let test_refinement_never_merges () =
  let rng = Rng.create 107 in
  for _ = 1 to 10 do
    let net = random_net rng 5 30 in
    let eq = Eq.create net in
    let prev_cost = ref (Eq.cost eq) in
    for _ = 1 to 5 do
      let words = Sim.random_word rng net in
      Eq.refine_word eq (Sim.simulate_word net words);
      let c = Eq.cost eq in
      Alcotest.(check bool) "cost non-increasing" true (c <= !prev_cost);
      prev_cost := c
    done
  done

let test_classes_respect_signatures () =
  (* Nodes in the same class after refinement agree on every applied
     vector. *)
  let rng = Rng.create 109 in
  let net = random_net rng 4 25 in
  let eq = Eq.create net in
  exhaustive_refine net eq;
  List.iter
    (fun cls ->
      match cls with
      | rep :: rest ->
          for m = 0 to 15 do
            let vec = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
            let vals = N.eval net vec in
            List.iter
              (fun id ->
                Alcotest.(check bool) "equal signature" vals.(rep) vals.(id))
              rest
          done
      | [] -> ())
    (Eq.classes eq)

let test_singletons_dropped () =
  let net, _, _, _, _, n = redundant_net () in
  let eq = Eq.create net in
  exhaustive_refine net eq;
  Alcotest.(check (list int)) "xor gate is singleton" [] (Eq.class_of eq n)

let test_copy_isolated () =
  let net, _, _, _, _, _ = redundant_net () in
  let eq = Eq.create net in
  let snapshot = Eq.copy eq in
  exhaustive_refine net eq;
  Alcotest.(check int) "copy untouched" 1 (Eq.num_classes snapshot);
  Alcotest.(check bool) "original refined" true (Eq.num_classes eq > 1)

let test_pis_excluded () =
  let net, _, _, _, _, _ = redundant_net () in
  let eq = Eq.create net in
  List.iter
    (fun cls ->
      List.iter
        (fun id -> Alcotest.(check bool) "no PI in class" false (N.is_pi net id))
        cls)
    (Eq.classes eq)

let () =
  Alcotest.run "sim"
    [
      ( "simulator",
        [
          Alcotest.test_case "word vs scalar" `Quick test_word_vs_scalar;
          Alcotest.test_case "broadcast" `Quick test_word_of_vector_broadcast;
          Alcotest.test_case "vector_word" `Quick test_vector_word_update;
          Alcotest.test_case "determinism" `Quick test_random_word_determinism;
        ] );
      ( "eq_classes",
        [
          Alcotest.test_case "initial class" `Quick test_initial_class;
          Alcotest.test_case "exhaustive refinement" `Quick
            test_exhaustive_refinement;
          Alcotest.test_case "never merges" `Quick test_refinement_never_merges;
          Alcotest.test_case "signatures" `Quick test_classes_respect_signatures;
          Alcotest.test_case "singletons dropped" `Quick test_singletons_dropped;
          Alcotest.test_case "copy isolated" `Quick test_copy_isolated;
          Alcotest.test_case "PIs excluded" `Quick test_pis_excluded;
        ] );
    ]
