module Rng = Simgen_base.Rng
module Vec = Simgen_base.Vec
module Timer = Simgen_base.Timer

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_split_diverges () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr matches
  done;
  Alcotest.(check bool) "split stream is distinct" true (!matches < 5)

let test_of_string_deterministic () =
  let a = Rng.of_string "apex2" and b = Rng.of_string "apex2" in
  Alcotest.(check int64) "same" (Rng.int64 a) (Rng.int64 b);
  let c = Rng.of_string "apex3" in
  Alcotest.(check bool) "different name, different stream" true
    (Rng.int64 (Rng.of_string "apex2") <> Rng.int64 c)

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let bound = 1 + Rng.int rng 100 in
    let v = Rng.int rng bound in
    Alcotest.(check bool) "in range" true (v >= 0 && v < bound)
  done

let test_int_coverage () =
  (* All residues of a small bound appear. *)
  let rng = Rng.create 5 in
  let seen = Array.make 7 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 7) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_bool_balance () =
  let rng = Rng.create 13 in
  let trues = ref 0 in
  for _ = 1 to 10000 do
    if Rng.bool rng then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 4500 && !trues < 5500)

let test_shuffle_permutation () =
  let rng = Rng.create 17 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_choose_member () =
  let rng = Rng.create 19 in
  let arr = [| 2; 4; 8 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.choose rng arr) arr)
  done

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_push_get () =
  let v = Vec.create ~dummy:0 () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  for i = 0 to 99 do
    Alcotest.(check int) "get" (i * i) (Vec.get v i)
  done

let test_vec_pop_lifo () =
  let v = Vec.create ~dummy:(-1) () in
  List.iter (Vec.push v) [ 1; 2; 3 ];
  Alcotest.(check int) "pop" 3 (Vec.pop v);
  Alcotest.(check int) "top" 2 (Vec.top v);
  Alcotest.(check int) "pop" 2 (Vec.pop v);
  Alcotest.(check int) "pop" 1 (Vec.pop v);
  Alcotest.(check bool) "empty" true (Vec.is_empty v)

let test_vec_pop_empty () =
  let v = Vec.create ~dummy:0 () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop") (fun () ->
      ignore (Vec.pop v))

let test_vec_set_bounds () =
  let v = Vec.create ~dummy:0 () in
  Vec.push v 1;
  Vec.set v 0 9;
  Alcotest.(check int) "set" 9 (Vec.get v 0);
  Alcotest.check_raises "set out of range" (Invalid_argument "Vec.set")
    (fun () -> Vec.set v 1 0)

let test_vec_shrink_clear () =
  let v = Vec.create ~dummy:0 () in
  for i = 1 to 10 do
    Vec.push v i
  done;
  Vec.shrink v 4;
  Alcotest.(check (list int)) "shrunk" [ 1; 2; 3; 4 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let test_vec_iter_fold () =
  let v = Vec.of_array ~dummy:0 [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 4 (List.length !acc);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v)

(* ------------------------------------------------------------------ *)
(* Timer                                                               *)
(* ------------------------------------------------------------------ *)

let test_timer_accum () =
  let a = Timer.accum () in
  let r = Timer.record a (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 r;
  ignore (Timer.record a (fun () -> ()));
  Alcotest.(check int) "calls" 2 (Timer.calls a);
  Alcotest.(check bool) "non-negative" true (Timer.elapsed a >= 0.0);
  Timer.reset a;
  Alcotest.(check int) "reset" 0 (Timer.calls a)

let test_time_increases () =
  let _, dt = Timer.time (fun () -> Array.init 100000 Fun.id) in
  Alcotest.(check bool) "positive elapsed" true (dt >= 0.0)

let () =
  Alcotest.run "base"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_diverges;
          Alcotest.test_case "of_string" `Quick test_of_string_deterministic;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int coverage" `Quick test_int_coverage;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "bool balance" `Quick test_bool_balance;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
          Alcotest.test_case "choose" `Quick test_choose_member;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "pop lifo" `Quick test_vec_pop_lifo;
          Alcotest.test_case "pop empty" `Quick test_vec_pop_empty;
          Alcotest.test_case "set bounds" `Quick test_vec_set_bounds;
          Alcotest.test_case "shrink/clear" `Quick test_vec_shrink_clear;
          Alcotest.test_case "iter/fold" `Quick test_vec_iter_fold;
        ] );
      ( "timer",
        [
          Alcotest.test_case "accumulator" `Quick test_timer_accum;
          Alcotest.test_case "time" `Quick test_time_increases;
        ] );
    ]
