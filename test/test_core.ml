module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Cube = Simgen_network.Cube
module Level = Simgen_network.Level
module Rng = Simgen_base.Rng
module Value = Simgen_core.Value
module Assignment = Simgen_core.Assignment
module Rows = Simgen_core.Rows
module Config = Simgen_core.Config
module Engine = Simgen_core.Engine
module Decision = Simgen_core.Decision
module Outgold = Simgen_core.Outgold
module VG = Simgen_core.Vector_gen
module RevS = Simgen_core.Reverse_sim
module Strategy = Simgen_core.Strategy

let tt_not = TT.not_ (TT.var 0 1)
let tt_and2 = TT.and_ (TT.var 0 2) (TT.var 1 2)
let tt_nand2 = TT.not_ tt_and2
let tt_or2 = TT.or_ (TT.var 0 2) (TT.var 1 2)
let tt_and_not = TT.and_ (TT.var 0 2) (TT.not_ (TT.var 1 2))

let random_net rng npis ngates =
  let net = N.create () in
  let ids = ref [] in
  for _ = 1 to npis do
    ids := N.add_pi net :: !ids
  done;
  for _ = 1 to ngates do
    let pool = Array.of_list !ids in
    let arity = 1 + Rng.int rng (min 4 (Array.length pool)) in
    let fanins = Array.init arity (fun _ -> Rng.choose rng pool) in
    ids := N.add_gate net (TT.random rng arity) fanins :: !ids
  done;
  let pool = Array.of_list !ids in
  for _ = 1 to 3 do
    N.add_po net (Rng.choose rng pool)
  done;
  net

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_basics () =
  Alcotest.(check bool) "of_bool" true (Value.of_bool true = Value.One);
  Alcotest.(check (option bool)) "to_bool" (Some false) (Value.to_bool Value.Zero);
  Alcotest.(check (option bool)) "unknown" None (Value.to_bool Value.Unknown);
  Alcotest.(check bool) "assigned" true (Value.is_assigned Value.One);
  Alcotest.(check bool) "unassigned" false (Value.is_assigned Value.Unknown)

let test_value_compatibility () =
  Alcotest.(check bool) "unknown/T" true (Value.compatible Value.Unknown Cube.T);
  Alcotest.(check bool) "one/DC" true (Value.compatible Value.One Cube.DC);
  Alcotest.(check bool) "one/T" true (Value.compatible Value.One Cube.T);
  Alcotest.(check bool) "one/F" false (Value.compatible Value.One Cube.F);
  Alcotest.(check bool) "zero/T" false (Value.compatible Value.Zero Cube.T)

(* ------------------------------------------------------------------ *)
(* Assignment                                                          *)
(* ------------------------------------------------------------------ *)

let test_assignment_trail () =
  let a = Assignment.create 10 in
  Assignment.assign a 3 true;
  Assignment.assign a 7 false;
  Alcotest.(check bool) "value" true (Assignment.value a 3 = Value.One);
  Alcotest.(check int) "count" 2 (Assignment.num_assigned a);
  let mark = Assignment.checkpoint a in
  Assignment.assign a 1 true;
  Assignment.rollback a mark;
  Alcotest.(check bool) "rolled back" false (Assignment.is_assigned a 1);
  Alcotest.(check bool) "kept" true (Assignment.is_assigned a 7);
  Assignment.rollback a 0;
  Alcotest.(check int) "empty" 0 (Assignment.num_assigned a)

let test_assignment_double_assign () =
  let a = Assignment.create 4 in
  Assignment.assign a 0 true;
  Alcotest.check_raises "reassign rejected"
    (Invalid_argument "Assignment.assign: already assigned") (fun () ->
      Assignment.assign a 0 false)

let test_assignment_latest_in () =
  let a = Assignment.create 10 in
  let mask = Array.make 10 false in
  mask.(2) <- true;
  mask.(5) <- true;
  Assignment.assign a 2 true;
  Assignment.assign a 9 true;
  Assignment.assign a 5 false;
  Alcotest.(check (option int)) "latest in mask" (Some 5)
    (Assignment.latest_in a ~mask (fun _ -> true));
  Alcotest.(check (option int)) "filtered" (Some 2)
    (Assignment.latest_in a ~mask (fun id -> id <> 5));
  Alcotest.(check (option int)) "none" None
    (Assignment.latest_in a ~mask (fun _ -> false))

let test_assignment_iter_since () =
  let a = Assignment.create 10 in
  Assignment.assign a 1 true;
  let mark = Assignment.checkpoint a in
  Assignment.assign a 2 true;
  Assignment.assign a 3 true;
  let seen = ref [] in
  Assignment.iter_since a mark (fun id -> seen := id :: !seen);
  Alcotest.(check (list int)) "since checkpoint" [ 3; 2 ] !seen

(* ------------------------------------------------------------------ *)
(* Rows cache                                                          *)
(* ------------------------------------------------------------------ *)

let test_rows_cache_sharing () =
  let cache = Rows.create () in
  let r1 = Rows.get cache tt_and2 in
  let r2 = Rows.get cache tt_and2 in
  Alcotest.(check bool) "physically shared" true (r1 == r2);
  Alcotest.(check int) "and rows: 1 on + 2 off" 3 (Array.length r1)

let test_rows_onset_first () =
  let cache = Rows.create () in
  let rows = Rows.get cache tt_nand2 in
  let rec onset_prefix seen_off = function
    | [] -> true
    | (c : Cube.t) :: rest ->
        if c.Cube.out then (not seen_off) && onset_prefix seen_off rest
        else onset_prefix true rest
  in
  Alcotest.(check bool) "onset cubes precede offset" true
    (onset_prefix false (Array.to_list rows))

(* ------------------------------------------------------------------ *)
(* Engine: the paper's Figure 1                                        *)
(* ------------------------------------------------------------------ *)

(* D = z = AND(x, y); x = AND(A, ~B); y = NAND(inv(B), C); inv = NOT(B) *)
let figure1 () =
  let net = N.create ~name:"fig1" () in
  let a = N.add_pi ~name:"A" net in
  let b = N.add_pi ~name:"B" net in
  let c = N.add_pi ~name:"C" net in
  let x = N.add_gate ~name:"x" net tt_and_not [| a; b |] in
  let inv = N.add_gate ~name:"inv" net tt_not [| b |] in
  let y = N.add_gate ~name:"y" net tt_nand2 [| inv; c |] in
  let z = N.add_gate ~name:"z" net tt_and2 [| x; y |] in
  N.add_po ~name:"D" net z;
  (net, a, b, c, inv, x, y, z)

let test_figure1_simgen_all_implied () =
  (* With forward implication the whole Figure 1 example resolves by
     implication alone: no decisions, no conflicts, vector A=1 B=0 C=0. *)
  let net, a, b, c, _, _, _, z = figure1 () in
  let engine = Engine.create ~config:Config.default net in
  Engine.set engine z true;
  (match Engine.propagate engine with
   | Engine.Fixpoint -> ()
   | Engine.Conflict_at g -> Alcotest.fail (Printf.sprintf "conflict at %d" g));
  let asg = Engine.assignment engine in
  Alcotest.(check bool) "A=1" true (Assignment.value asg a = Value.One);
  Alcotest.(check bool) "B=0" true (Assignment.value asg b = Value.Zero);
  Alcotest.(check bool) "C=0" true (Assignment.value asg c = Value.Zero)

let test_figure1_backward_cannot_finish () =
  (* Reverse simulation stops after x's cone: y's inputs stay open
     because NAND with output 1 has two rows. *)
  let net, a, b, c, _, _, _, z = figure1 () in
  let engine = Engine.create ~config:Config.reverse_simulation net in
  Engine.set engine z true;
  (match Engine.propagate engine with
   | Engine.Fixpoint -> ()
   | Engine.Conflict_at _ -> Alcotest.fail "no conflict expected yet");
  let asg = Engine.assignment engine in
  Alcotest.(check bool) "A implied" true (Assignment.value asg a = Value.One);
  Alcotest.(check bool) "B implied" true (Assignment.value asg b = Value.Zero);
  Alcotest.(check bool) "C needs a decision" true
    (Assignment.value asg c = Value.Unknown)

let test_figure1_full_generation () =
  (* SimGen always finds the vector; every produced vector really sets
     D = 1 under simulation. *)
  for seed = 1 to 50 do
    let net, _, _, _, _, _, _, z = figure1 () in
    let r = VG.generate ~config:Config.default ~rng:(Rng.create seed) net [ (z, true) ] in
    Alcotest.(check int) "no conflicts" 0 r.VG.conflicts;
    Alcotest.(check bool) "satisfied" true (r.VG.satisfied <> []);
    let vals = N.eval net r.VG.vector in
    Alcotest.(check bool) "D = 1 under simulation" true vals.(z)
  done

let test_figure1_revs_sometimes_fails () =
  let failures = ref 0 in
  for seed = 1 to 100 do
    let net, _, _, _, _, _, _, z = figure1 () in
    let r = RevS.generate ~rng:(Rng.create seed) net [ (z, true) ] in
    if r.VG.satisfied = [] then incr failures
    else begin
      (* When reverse simulation claims success the vector must be valid. *)
      let vals = N.eval net r.VG.vector in
      Alcotest.(check bool) "valid on success" true vals.(z)
    end
  done;
  Alcotest.(check bool) "reverse simulation conflicts sometimes" true
    (!failures > 10);
  Alcotest.(check bool) "but not always" true (!failures < 90)

(* ------------------------------------------------------------------ *)
(* Engine: the paper's Figure 3 (advanced implication)                 *)
(* ------------------------------------------------------------------ *)

(* Figure 3: F = NOT(B); f1_left(B, C) with O = f1_left; f1_right(B, D=?,
   E) ... We model the essence: a node whose matching rows all agree on
   the output while disagreeing on one input. f = (x0 & x1) | (x0 & x2):
   with x0=1 known: rows 11-, 1-1 both give out 1 -> advanced implication
   sets out without deciding x1/x2. *)
let test_advanced_implication_output_only () =
  let net = N.create () in
  let b = N.add_pi net in
  let c = N.add_pi net in
  let e = N.add_pi net in
  let f =
    TT.or_
      (TT.and_ (TT.var 0 3) (TT.var 1 3))
      (TT.and_ (TT.var 0 3) (TT.var 2 3))
  in
  let o = N.add_gate net f [| b; c; e |] in
  N.add_po net o;
  let engine = Engine.create ~config:Config.default net in
  Engine.set engine b true;
  Engine.set engine c true;
  (match Engine.propagate engine with
   | Engine.Fixpoint -> ()
   | Engine.Conflict_at _ -> Alcotest.fail "no conflict");
  let asg = Engine.assignment engine in
  Alcotest.(check bool) "O implied to 1" true (Assignment.value asg o = Value.One);
  Alcotest.(check bool) "E left unassigned" true
    (Assignment.value asg e = Value.Unknown)

let test_simple_implication_misses_it () =
  (* The same situation under simple implication: two rows match, so
     nothing is implied. *)
  let net = N.create () in
  let b = N.add_pi net in
  let c = N.add_pi net in
  let e = N.add_pi net in
  let f =
    TT.or_
      (TT.and_ (TT.var 0 3) (TT.var 1 3))
      (TT.and_ (TT.var 0 3) (TT.var 2 3))
  in
  let o = N.add_gate net f [| b; c; e |] in
  N.add_po net o;
  let config = { Config.default with Config.implication = Config.Simple } in
  let engine = Engine.create ~config net in
  Engine.set engine b true;
  Engine.set engine c true;
  ignore (Engine.propagate engine);
  let asg = Engine.assignment engine in
  Alcotest.(check bool) "O not implied under simple" true
    (Assignment.value asg o = Value.Unknown);
  ignore e

let test_figure3_cascade () =
  (* Advanced implication enables a further implication downstream
     (Figure 3's G = f2 = AND(O, ...)): once O is implied to 1, the AND's
     output becomes decidable by its other input. *)
  let net = N.create () in
  let b = N.add_pi net in
  let c = N.add_pi net in
  let e = N.add_pi net in
  let d = N.add_pi net in
  let f =
    TT.or_
      (TT.and_ (TT.var 0 3) (TT.var 1 3))
      (TT.and_ (TT.var 0 3) (TT.var 2 3))
  in
  let o = N.add_gate net f [| b; c; e |] in
  let g2 = N.add_gate net tt_and2 [| o; d |] in
  N.add_po net g2;
  let engine = Engine.create ~config:Config.default net in
  Engine.set engine b true;
  Engine.set engine c true;
  Engine.set engine d true;
  ignore (Engine.propagate engine);
  let asg = Engine.assignment engine in
  Alcotest.(check bool) "G implied through cascade" true
    (Assignment.value asg g2 = Value.One)

(* ------------------------------------------------------------------ *)
(* Engine: conflicts and rollback                                      *)
(* ------------------------------------------------------------------ *)

let test_conflict_detection () =
  (* x = AND(a,b) = 1 forces a=b=1; y = NOR(a,b) = 1 forces a=b=0. *)
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let x = N.add_gate net tt_and2 [| a; b |] in
  let y = N.add_gate net (TT.not_ tt_or2) [| a; b |] in
  N.add_po net x;
  N.add_po net y;
  let engine = Engine.create ~config:Config.default net in
  let mark = Engine.checkpoint engine in
  Engine.set engine x true;
  (match Engine.propagate engine with
   | Engine.Fixpoint -> ()
   | Engine.Conflict_at _ -> Alcotest.fail "x=1 alone is consistent");
  Engine.set engine y true;
  (match Engine.propagate engine with
   | Engine.Conflict_at _ -> ()
   | Engine.Fixpoint -> Alcotest.fail "x=1 and y=1 must conflict");
  Engine.rollback engine mark;
  Alcotest.(check int) "clean after rollback" 0
    (Assignment.num_assigned (Engine.assignment engine))

let test_backward_consistency_check () =
  (* Regression: in backward-only mode a gate whose output was required
     must be re-checked when its inputs arrive through other paths.
     g = OR(a, b) required 1; a and b then forced to 0 via other gates. *)
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let g = N.add_gate net tt_or2 [| a; b |] in
  (* Two NOT gates whose outputs at 1 force a = 0 and b = 0. *)
  let na = N.add_gate net tt_not [| a |] in
  let nb = N.add_gate net tt_not [| b |] in
  N.add_po net g;
  N.add_po net na;
  N.add_po net nb;
  let engine = Engine.create ~config:Config.reverse_simulation net in
  Engine.set engine g true;
  (match Engine.propagate engine with
   | Engine.Fixpoint -> ()
   | Engine.Conflict_at _ -> Alcotest.fail "g=1 alone is consistent");
  Engine.set engine na true;
  (match Engine.propagate engine with
   | Engine.Fixpoint -> ()
   | Engine.Conflict_at _ -> Alcotest.fail "a=0 alone is consistent");
  Engine.set engine nb true;
  (match Engine.propagate engine with
   | Engine.Conflict_at _ -> ()
   | Engine.Fixpoint ->
       Alcotest.fail "a=0 and b=0 contradict the required g=1")

let test_scope_confines_propagation () =
  (* With a scope covering only the left half, values must not propagate
     into the right half. *)
  let net = N.create () in
  let a = N.add_pi net in
  let left = N.add_gate net tt_not [| a |] in
  let right = N.add_gate net tt_not [| a |] in
  let right2 = N.add_gate net tt_not [| right |] in
  N.add_po net left;
  N.add_po net right2;
  let engine = Engine.create ~config:Config.default net in
  let mask = Array.make (N.num_nodes net) false in
  mask.(a) <- true;
  mask.(left) <- true;
  Engine.set_scope engine (Some mask);
  Engine.set engine a true;
  (match Engine.propagate engine with
   | Engine.Fixpoint -> ()
   | Engine.Conflict_at _ -> Alcotest.fail "no conflict");
  let asg = Engine.assignment engine in
  Alcotest.(check bool) "in-scope gate implied" true
    (Assignment.value asg left = Value.Zero);
  Alcotest.(check bool) "out-of-scope gate untouched" true
    (Assignment.value asg right = Value.Unknown);
  (* Lifting the scope and re-seeding resumes propagation everywhere. *)
  Engine.set_scope engine None;
  Engine.set engine right false;
  ignore (Engine.propagate engine);
  Alcotest.(check bool) "propagates after unscoping" true
    (Assignment.value asg right2 = Value.One)

let test_pending_conflict_on_set () =
  let net = N.create () in
  let a = N.add_pi net in
  N.add_po net a;
  let engine = Engine.create net in
  Engine.set engine a true;
  Engine.set engine a true;
  (* same value: no-op *)
  (match Engine.propagate engine with
   | Engine.Fixpoint -> ()
   | Engine.Conflict_at _ -> Alcotest.fail "same value is not a conflict");
  Engine.set engine a false;
  match Engine.propagate engine with
  | Engine.Conflict_at _ -> ()
  | Engine.Fixpoint -> Alcotest.fail "opposite value must conflict"

let prop_engine_forward_soundness =
  (* Values propagated forward from PI assignments are realized by
     simulating any completion of the remaining PIs. (Goal values set on
     internal nodes are only guaranteed after Algorithm 1's decision loop
     justifies them; that is covered by the vector_gen property below.) *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"forward implications are sound" ~count:200
       QCheck2.Gen.(int_range 0 1_000_000)
       (fun seed ->
         let rng = Rng.create seed in
         let net = random_net rng 5 20 in
         let engine = Engine.create ~config:Config.default net in
         let pis = N.pis net in
         (* Seed a random subset of PI values. *)
         Array.iter
           (fun pi -> if Rng.bool rng then Engine.set engine pi (Rng.bool rng))
           pis;
         match Engine.propagate engine with
         | Engine.Conflict_at _ -> false (* PI seeds alone cannot conflict *)
         | Engine.Fixpoint ->
             let asg = Engine.assignment engine in
             let vec = Array.make (N.num_pis net) false in
             Array.iter
               (fun pi ->
                 let idx =
                   match N.kind net pi with N.Pi i -> i | N.Gate _ -> 0
                 in
                 vec.(idx) <-
                   (match Value.to_bool (Assignment.value asg pi) with
                    | Some v -> v
                    | None -> Rng.bool rng))
               pis;
             let vals = N.eval net vec in
             let ok = ref true in
             N.iter_nodes net (fun id ->
                 match Value.to_bool (Assignment.value asg id) with
                 | Some v -> if vals.(id) <> v then ok := false
                 | None -> ());
             !ok))

(* ------------------------------------------------------------------ *)
(* Decision: Figure 4 heuristics                                       *)
(* ------------------------------------------------------------------ *)

let test_dc_ranking_prefers_dcs () =
  (* For an AND gate with output 0 the DC-bearing rows (0-, -0) must win
     over... they are the only rows; check priorities directly. *)
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let x = N.add_gate net tt_and2 [| a; b |] in
  N.add_po net x;
  let engine =
    Engine.create
      ~config:{ Config.default with Config.decision = Config.Dc_weighted }
      net
  in
  let decision = Decision.create ~rng:(Rng.create 1) engine in
  Engine.set engine x false;
  ignore (Engine.propagate engine);
  let rows = Engine.matching_rows engine x in
  Alcotest.(check int) "two matching rows" 2 (List.length rows);
  List.iter
    (fun r -> Alcotest.(check int) "each off row has one DC" 1 (Cube.dc_size r))
    rows;
  ignore decision

let test_mffc_rank_figure4c () =
  (* Figure 4c: gate z's two fanins head MFFCs of depth 0 (single gate x)
     and 2 (three-gate chain); mffc_rank must prefer assigning the non-DC
     to the deep side. *)
  let net = N.create () in
  let p1 = N.add_pi net in
  let p2 = N.add_pi net in
  let p3 = N.add_pi net in
  let p4 = N.add_pi net in
  (* left input: single gate x over two PIs -> depth 0 *)
  let x = N.add_gate net tt_and2 [| p1; p2 |] in
  (* right input: chain m -> n -> y of depth 2 *)
  let m = N.add_gate net tt_not [| p3 |] in
  let n = N.add_gate net tt_and2 [| m; p4 |] in
  let y = N.add_gate net tt_not [| n |] in
  let z = N.add_gate net tt_and2 [| x; y |] in
  N.add_po net z;
  let engine = Engine.create ~config:Config.default net in
  let decision = Decision.create ~rng:(Rng.create 1) engine in
  (* Rows of AND with out=0: "0-" (non-DC on x, depth 0) and "-0" (non-DC
     on y, depth 2). *)
  let row_x0 = Cube.make [| Cube.F; Cube.DC |] false in
  let row_y0 = Cube.make [| Cube.DC; Cube.F |] false in
  let rank_x = Decision.mffc_rank decision z row_x0 in
  let rank_y = Decision.mffc_rank decision z row_y0 in
  Alcotest.(check (float 0.001)) "left rank 0" 0.0 rank_x;
  Alcotest.(check bool) "right rank higher" true (rank_y > rank_x);
  (* Equation 4 ordering with equal DC counts follows the MFFC rank. *)
  let p_x = Decision.row_priority decision z ~max_rank:rank_y row_x0 in
  let p_y = Decision.row_priority decision z ~max_rank:rank_y row_y0 in
  Alcotest.(check bool) "priority prefers deep MFFC" true (p_y > p_x)

let test_decision_assigns_matching_row () =
  let rng = Rng.create 211 in
  for _ = 1 to 30 do
    let net = random_net rng 4 15 in
    let engine = Engine.create ~config:Config.default net in
    let decision = Decision.create ~rng:(Rng.split rng) engine in
    let target = N.num_nodes net - 1 in
    if not (N.is_pi net target) then begin
      Engine.set engine target (Rng.bool rng);
      match Engine.propagate engine with
      | Engine.Conflict_at _ -> ()
      | Engine.Fixpoint -> (
          match Engine.matching_rows engine target with
          | [] -> Alcotest.fail "fixpoint with no matching rows"
          | _ :: _ -> (
              match Decision.decide decision target with
              | Error _ -> Alcotest.fail "decision on matching rows failed"
              | Ok () -> (
                  (* After the decision the target must still have matching
                     rows (the chosen row itself). *)
                  match Engine.matching_rows engine target with
                  | [] -> Alcotest.fail "decision created a dead end"
                  | _ -> ())))
    end
  done

(* ------------------------------------------------------------------ *)
(* Outgold                                                             *)
(* ------------------------------------------------------------------ *)

let balance pairs =
  List.fold_left (fun acc (_, g) -> if g then acc + 1 else acc - 1) 0 pairs

let test_outgold_alternating () =
  let pairs = Outgold.assign [ 10; 30; 20; 40 ] in
  Alcotest.(check int) "balanced" 0 (balance pairs);
  (* alternates in sorted id order: 10->0 20->1 30->0 40->1 *)
  Alcotest.(check (list (pair int bool)))
    "alternation by id"
    [ (10, false); (20, true); (30, false); (40, true) ]
    pairs

let test_outgold_balanced_odd () =
  let pairs = Outgold.assign [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check bool) "off by one at most" true (abs (balance pairs) <= 1)

let test_outgold_random_balanced () =
  let rng = Rng.create 3 in
  let pairs =
    Outgold.assign ~strategy:Outgold.Random_balanced ~rng [ 1; 2; 3; 4; 5; 6 ]
  in
  Alcotest.(check int) "balanced" 0 (balance pairs);
  Alcotest.(check int) "all nodes" 6 (List.length pairs)

let test_outgold_level_split () =
  let levels = [| 0; 5; 2; 9 |] in
  let pairs = Outgold.assign ~strategy:Outgold.Level_split ~levels [ 0; 1; 2; 3 ] in
  (* shallow half (levels 0,2) -> false; deep half (5,9) -> true *)
  Alcotest.(check (list (pair int bool)))
    "level split"
    [ (0, false); (2, false); (1, true); (3, true) ]
    pairs

(* ------------------------------------------------------------------ *)
(* Vector generation (Algorithm 1)                                     *)
(* ------------------------------------------------------------------ *)

let prop_generated_vector_realizes_satisfied_targets =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"satisfied targets hold under simulation (all strategies)"
       ~count:150
       QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 4))
       (fun (seed, strat_idx) ->
         let rng = Rng.create seed in
         let net = random_net rng 5 25 in
         let strategy = List.nth Strategy.all strat_idx in
         let gates = ref [] in
         N.iter_gates net (fun id -> gates := id :: !gates);
         let pool = Array.of_list !gates in
         let targets =
           List.sort_uniq compare
             (List.init (min 4 (Array.length pool)) (fun _ -> Rng.choose rng pool))
         in
         let outgold = Outgold.assign targets in
         let r =
           VG.generate ~config:(Strategy.config strategy) ~rng net outgold
         in
         let vals = N.eval net r.VG.vector in
         List.for_all (fun (id, gold) -> vals.(id) = gold) r.VG.satisfied))

let test_useful_requires_opposite_pair () =
  let make () =
    let net = N.create () in
    let a = N.add_pi net in
    let b = N.add_pi net in
    let x = N.add_gate net tt_and2 [| a; b |] in
    let y = N.add_gate net tt_or2 [| a; b |] in
    N.add_po net x;
    N.add_po net y;
    (net, x, y)
  in
  (* Same gold for both: can never be useful. *)
  let net, x, y = make () in
  let r = VG.generate ~rng:(Rng.create 1) net [ (x, true); (y, true) ] in
  Alcotest.(check bool) "same-polarity targets not useful" false r.VG.useful;
  (* Opposite golds on splittable nodes: useful for some seed, and then
     the vector really separates the pair. *)
  let successes = ref 0 in
  for seed = 1 to 20 do
    let net, x, y = make () in
    let r2 = VG.generate ~rng:(Rng.create seed) net [ (x, false); (y, true) ] in
    if r2.VG.useful then begin
      incr successes;
      let vals = N.eval net r2.VG.vector in
      Alcotest.(check bool) "x=0" false vals.(x);
      Alcotest.(check bool) "y=1" true vals.(y)
    end
  done;
  Alcotest.(check bool) "useful for several seeds" true (!successes >= 3)

let test_equivalent_targets_cannot_split () =
  (* Two functionally equivalent nodes can never satisfy opposite golds. *)
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let x1 = N.add_gate net tt_and2 [| a; b |] in
  let x2 = N.add_gate net tt_and2 [| b; a |] in
  N.add_po net x1;
  N.add_po net x2;
  for seed = 1 to 30 do
    let r =
      VG.generate ~rng:(Rng.create seed) net [ (x1, false); (x2, true) ]
    in
    Alcotest.(check bool) "never useful" false r.VG.useful
  done

let test_vector_complete () =
  let rng = Rng.create 223 in
  let net = random_net rng 6 20 in
  let target = N.num_nodes net - 1 in
  let r = VG.generate ~rng net [ (target, true) ] in
  Alcotest.(check int) "full width vector" (N.num_pis net)
    (Array.length r.VG.vector)

let test_deeper_targets_processed_first () =
  (* The deepest target wins when two targets are incompatible. *)
  let net = N.create () in
  let a = N.add_pi net in
  let x = N.add_gate net tt_not [| a |] in
  (* y = NOT x: y and x always differ. Asking both to be 1 can satisfy
     only one, and it must be the deeper one (y). *)
  let y = N.add_gate net tt_not [| x |] in
  N.add_po net y;
  let r = VG.generate ~rng:(Rng.create 1) net [ (x, true); (y, true) ] in
  Alcotest.(check (list (pair int bool))) "deep target satisfied" [ (y, true) ]
    r.VG.satisfied;
  Alcotest.(check int) "shallow target conflicted" 1 r.VG.conflicts

let test_reverse_sim_entry_point () =
  let rng = Rng.create 227 in
  let net = random_net rng 5 20 in
  let target = N.num_nodes net - 1 in
  let r = RevS.generate ~rng net [ (target, true) ] in
  List.iter
    (fun (id, gold) ->
      let vals = N.eval net r.VG.vector in
      Alcotest.(check bool) "revs soundness" gold vals.(id))
    r.VG.satisfied

let test_strategy_parsing () =
  Alcotest.(check int) "five strategies" 5 (List.length Strategy.all);
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        "of_string . name = id"
        (Some (Strategy.name s))
        (Option.map Strategy.name (Strategy.of_string (Strategy.name s))))
    Strategy.all;
  Alcotest.(check (option string)) "simgen alias" (Some "AI+DC+MFFC")
    (Option.map Strategy.name (Strategy.of_string "simgen"));
  Alcotest.(check bool) "unknown rejected" true (Strategy.of_string "zzz" = None)

let () =
  Alcotest.run "core"
    [
      ( "value",
        [
          Alcotest.test_case "basics" `Quick test_value_basics;
          Alcotest.test_case "compatibility" `Quick test_value_compatibility;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "trail" `Quick test_assignment_trail;
          Alcotest.test_case "double assign" `Quick test_assignment_double_assign;
          Alcotest.test_case "latest_in" `Quick test_assignment_latest_in;
          Alcotest.test_case "iter_since" `Quick test_assignment_iter_since;
        ] );
      ( "rows",
        [
          Alcotest.test_case "cache sharing" `Quick test_rows_cache_sharing;
          Alcotest.test_case "onset first" `Quick test_rows_onset_first;
        ] );
      ( "engine-figure1",
        [
          Alcotest.test_case "simgen implies all" `Quick
            test_figure1_simgen_all_implied;
          Alcotest.test_case "backward stalls" `Quick
            test_figure1_backward_cannot_finish;
          Alcotest.test_case "simgen always generates" `Quick
            test_figure1_full_generation;
          Alcotest.test_case "revs sometimes fails" `Quick
            test_figure1_revs_sometimes_fails;
        ] );
      ( "engine-figure3",
        [
          Alcotest.test_case "advanced implication" `Quick
            test_advanced_implication_output_only;
          Alcotest.test_case "simple misses it" `Quick
            test_simple_implication_misses_it;
          Alcotest.test_case "cascade" `Quick test_figure3_cascade;
        ] );
      ( "engine-conflicts",
        [
          Alcotest.test_case "detection" `Quick test_conflict_detection;
          Alcotest.test_case "backward consistency" `Quick
            test_backward_consistency_check;
          Alcotest.test_case "scope" `Quick test_scope_confines_propagation;
          Alcotest.test_case "pending on set" `Quick test_pending_conflict_on_set;
          prop_engine_forward_soundness;
        ] );
      ( "decision",
        [
          Alcotest.test_case "dc ranking" `Quick test_dc_ranking_prefers_dcs;
          Alcotest.test_case "mffc rank (fig 4c)" `Quick test_mffc_rank_figure4c;
          Alcotest.test_case "assigns matching row" `Quick
            test_decision_assigns_matching_row;
        ] );
      ( "outgold",
        [
          Alcotest.test_case "alternating" `Quick test_outgold_alternating;
          Alcotest.test_case "balanced odd" `Quick test_outgold_balanced_odd;
          Alcotest.test_case "random balanced" `Quick test_outgold_random_balanced;
          Alcotest.test_case "level split" `Quick test_outgold_level_split;
        ] );
      ( "vector_gen",
        [
          prop_generated_vector_realizes_satisfied_targets;
          Alcotest.test_case "useful definition" `Quick
            test_useful_requires_opposite_pair;
          Alcotest.test_case "equivalent targets" `Quick
            test_equivalent_targets_cannot_split;
          Alcotest.test_case "vector complete" `Quick test_vector_complete;
          Alcotest.test_case "target order" `Quick
            test_deeper_targets_processed_first;
          Alcotest.test_case "reverse sim wrapper" `Quick
            test_reverse_sim_entry_point;
          Alcotest.test_case "strategy parsing" `Quick test_strategy_parsing;
        ] );
    ]
