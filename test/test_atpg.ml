module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Rng = Simgen_base.Rng
module Fault = Simgen_atpg.Fault
module Tpg = Simgen_atpg.Tpg
module Simulator = Simgen_sim.Simulator

let tt_and2 = TT.and_ (TT.var 0 2) (TT.var 1 2)
let tt_or2 = TT.or_ (TT.var 0 2) (TT.var 1 2)
let tt_xor2 = TT.xor (TT.var 0 2) (TT.var 1 2)

let random_net rng npis ngates =
  let net = N.create () in
  let ids = ref [] in
  for _ = 1 to npis do
    ids := N.add_pi net :: !ids
  done;
  for _ = 1 to ngates do
    let pool = Array.of_list !ids in
    let arity = 1 + Rng.int rng (min 4 (Array.length pool)) in
    let fanins = Array.init arity (fun _ -> Rng.choose rng pool) in
    ids := N.add_gate net (TT.random rng arity) fanins :: !ids
  done;
  let pool = Array.of_list !ids in
  for _ = 1 to 3 do
    N.add_po net (Rng.choose rng pool)
  done;
  net

(* c = a & b feeding the only PO. *)
let and_net () =
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let c = N.add_gate ~name:"c" net tt_and2 [| a; b |] in
  N.add_po net c;
  (net, c)

let test_fault_list () =
  let net, _ = and_net () in
  let faults = Fault.all_gate_faults net in
  Alcotest.(check int) "two polarities per gate" 2 (List.length faults)

let test_to_string () =
  let net, c = and_net () in
  Alcotest.(check string) "named" "c/SA1"
    (Fault.to_string net { Fault.node = c; stuck = true })

let test_detects_and_gate () =
  let net, c = and_net () in
  let sa0 = { Fault.node = c; stuck = false } in
  let sa1 = { Fault.node = c; stuck = true } in
  (* SA0 detected only by 11; SA1 by anything that is not 11. *)
  Alcotest.(check bool) "sa0 by 11" true (Fault.detects net sa0 [| true; true |]);
  Alcotest.(check bool) "sa0 not by 10" false (Fault.detects net sa0 [| true; false |]);
  Alcotest.(check bool) "sa1 by 10" true (Fault.detects net sa1 [| true; false |]);
  Alcotest.(check bool) "sa1 not by 11" false (Fault.detects net sa1 [| true; true |])

let test_detects_word_matches_scalar () =
  let rng = Rng.create 31 in
  for _ = 1 to 10 do
    let net = random_net rng 5 15 in
    let faults = Fault.all_gate_faults net in
    let pi_words = Simulator.random_word rng net in
    List.iteri
      (fun i fault ->
        if i mod 7 = 0 then begin
          let word = Fault.detects_word net fault pi_words in
          for lane = 0 to 7 do
            let vec =
              Array.init 5 (fun k ->
                  Int64.logand (Int64.shift_right_logical pi_words.(k) lane) 1L
                  = 1L)
            in
            let expected = Fault.detects net fault vec in
            let got =
              Int64.logand (Int64.shift_right_logical word lane) 1L = 1L
            in
            Alcotest.(check bool) "word lane = scalar" expected got
          done
        end)
      faults
  done

let test_masked_fault_undetectable () =
  (* g = x OR (NOT x) is constant 1; a SA1 on it changes nothing. *)
  let net = N.create () in
  let x = N.add_pi net in
  let nx = N.add_gate net (TT.not_ (TT.var 0 1)) [| x |] in
  let g = N.add_gate net tt_or2 [| x; nx |] in
  N.add_po net g;
  let sa1 = { Fault.node = g; stuck = true } in
  Alcotest.(check bool) "sa1 on constant-1 node untestable" true
    (Tpg.generate_sat net sa1 = Tpg.Untestable);
  (* SA0 on it is testable by any vector. *)
  match Tpg.generate_sat net { Fault.node = g; stuck = false } with
  | Tpg.Detected vec ->
      Alcotest.(check bool) "witness works" true
        (Fault.detects net { Fault.node = g; stuck = false } vec)
  | Tpg.Untestable -> Alcotest.fail "sa0 is testable"

let test_sat_generation_random () =
  (* Every SAT answer must be correct: Detected vectors detect; for a few
     faults cross-check Untestable with exhaustive simulation. *)
  let rng = Rng.create 37 in
  for _ = 1 to 8 do
    let net = random_net rng 4 12 in
    List.iter
      (fun fault ->
        match Tpg.generate_sat net fault with
        | Tpg.Detected vec ->
            Alcotest.(check bool) "valid test" true (Fault.detects net fault vec)
        | Tpg.Untestable ->
            for m = 0 to 15 do
              let vec = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
              Alcotest.(check bool) "exhaustively untestable" false
                (Fault.detects net fault vec)
            done)
      (Fault.all_gate_faults net)
  done

let test_guided_generation_valid () =
  let rng = Rng.create 41 in
  for _ = 1 to 10 do
    let net = random_net rng 5 15 in
    List.iteri
      (fun i fault ->
        if i mod 5 = 0 then
          match Tpg.generate_guided ~rng net fault with
          | Some vec ->
              Alcotest.(check bool) "guided vector detects" true
                (Fault.detects net fault vec)
          | None -> ())
      (Fault.all_gate_faults net)
  done

let test_campaign_accounting () =
  let rng = Rng.create 43 in
  let net = random_net rng 5 20 in
  let stats = Tpg.campaign ~seed:3 net in
  Alcotest.(check int) "tiers partition the fault list" stats.Tpg.total
    (stats.Tpg.by_random + stats.Tpg.by_guided + stats.Tpg.by_sat
    + stats.Tpg.untestable);
  Alcotest.(check int) "total = 2 * gates" (2 * N.num_gates net) stats.Tpg.total;
  (* SAT calls only for the faults the cheap tiers missed. *)
  Alcotest.(check int) "sat calls" (stats.Tpg.by_sat + stats.Tpg.untestable)
    stats.Tpg.sat_calls

let test_campaign_xor_tree () =
  (* XOR trees: every fault is testable (XOR propagates everything). *)
  let net = N.create () in
  let pis = Array.init 8 (fun _ -> N.add_pi net) in
  let rec tree = function
    | [] -> assert false
    | [ x ] -> x
    | x :: y :: rest -> tree (rest @ [ N.add_gate net tt_xor2 [| x; y |] ])
  in
  N.add_po net (tree (Array.to_list pis));
  let stats = Tpg.campaign ~seed:1 net in
  Alcotest.(check int) "no untestable fault in a xor tree" 0
    stats.Tpg.untestable

let () =
  Alcotest.run "atpg"
    [
      ( "fault",
        [
          Alcotest.test_case "fault list" `Quick test_fault_list;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "and gate" `Quick test_detects_and_gate;
          Alcotest.test_case "word = scalar" `Quick
            test_detects_word_matches_scalar;
        ] );
      ( "tpg",
        [
          Alcotest.test_case "masked fault" `Quick test_masked_fault_undetectable;
          Alcotest.test_case "sat generation" `Quick test_sat_generation_random;
          Alcotest.test_case "guided generation" `Quick
            test_guided_generation_valid;
          Alcotest.test_case "campaign accounting" `Quick
            test_campaign_accounting;
          Alcotest.test_case "xor tree" `Quick test_campaign_xor_tree;
        ] );
    ]
